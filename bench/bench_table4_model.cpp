// E3 -- Table IV: accuracy of the analytic performance model against the
// measured platform (here: the cycle-approximate simulator standing in
// for the VCK190 board), single iteration, PL fixed at 208.3 MHz.
#include <vector>

#include "accel/accelerator.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "perfmodel/perf_model.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Performance model accuracy, single iteration",
                      "Table IV");

  const double paper_meas[3][3] = {{0.993, 6.151, 43.229},
                                   {0.395, 2.853, 21.584},
                                   {0.214, 1.475, 10.965}};
  const int pengs[3] = {2, 4, 8};

  perf::PerformanceModel model;
  Table table({"Matrix", "P_eng", "Sim (ms)", "Model (ms)", "Error",
               "paper meas(ms)", "paper err"});
  CsvWriter csv({"n", "p_eng", "sim_ms", "model_ms", "error_pct"});
  const double paper_err[3][3] = {{2.92, 3.03, 2.80},
                                  {1.03, 1.66, 1.48},
                                  {2.57, 0.05, 0.56}};

  std::vector<double> errors;
  for (int ki = 0; ki < 3; ++ki) {
    for (int ni = 0; ni < 3; ++ni) {
      const std::size_t n = 128u << ni;
      accel::HeteroSvdConfig cfg;
      cfg.rows = cfg.cols = n;
      cfg.p_eng = pengs[ki];
      cfg.p_task = 1;
      cfg.iterations = 1;
      cfg.pl_frequency_hz = 208.3e6;
      const double sim =
          accel::HeteroSvdAccelerator(cfg).estimate(1).task_seconds * 1e3;
      const double mod = model.evaluate(cfg, 1).t_task * 1e3;
      const double err = relative_error(mod, sim);
      errors.push_back(err);
      table.add_row({cat(n, "x", n), cat(pengs[ki]), fixed(sim, 3),
                     fixed(mod, 3), pct(err), fixed(paper_meas[ki][ni], 3),
                     fixed(paper_err[ki][ni], 2) + "%"});
      csv.add_row({cat(n), cat(pengs[ki]), fixed(sim, 4), fixed(mod, 4),
                   fixed(err * 100, 2)});
    }
  }
  table.print();
  std::printf("\nmax error %s, mean error %s (paper: max 3.03%%, mean 1.78%%)\n",
              pct(max_value(errors)).c_str(), pct(mean(errors)).c_str());
  bench::write_csv(csv, "table4_model");
  return 0;
}
