// E7 -- Fig. 4: naive vs AIE-centric (relocated-output) memory placement.
// For each strategy we report the per-sweep DMA count and the extra tile
// memory consumed by DMA shadow copies -- the "twice the memory" cost of
// Fig. 4(a) -- for one block pair of an m x 2k problem.
#include "accel/dataflow.hpp"
#include "accel/placement.hpp"
#include "bench_util.hpp"

using namespace hsvd;

namespace {

// Idealized one-band placement, first orth-layer at row 1 (the paper's
// convention), used for strategy-only comparisons.
accel::TaskPlacement ideal_task(int k) {
  accel::TaskPlacement task;
  const int layers = 2 * k - 1;
  task.orth.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    auto& row = task.orth[static_cast<std::size_t>(l)];
    row.resize(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e) row[static_cast<std::size_t>(e)] = {1 + l, e};
  }
  task.band_first_layer = {0};
  return task;
}

}  // namespace

int main() {
  bench::print_header("Naive vs AIE-centric dataflow: DMA and shadow memory",
                      "Fig. 4");

  const std::size_t m = 128;  // column length
  Table table({"k", "strategy", "DMA/sweep", "neighbour/sweep",
               "shadow KB/sweep", "shadow vs working set"});
  CsvWriter csv({"k", "strategy", "dma", "neighbour", "shadow_bytes"});

  for (int k : {2, 4, 8}) {
    const auto task = ideal_task(k);
    const versal::ArrayGeometry geo(2 * k, k);
    const auto schedule =
        jacobi::make_schedule(jacobi::OrderingKind::kShiftingRing, 2 * k, 1);
    for (auto strategy :
         {accel::MemoryStrategy::kNaive, accel::MemoryStrategy::kRelocated}) {
      const auto plan = accel::build_dataflow(schedule, task, geo, strategy);
      const auto shadow = plan.dma_shadow_bytes(m);
      const double working_set =
          static_cast<double>(2 * k) * m * sizeof(float);
      const char* name =
          strategy == accel::MemoryStrategy::kNaive ? "naive" : "relocated";
      table.add_row({cat(k), name, cat(plan.total_dma()),
                     cat(plan.total_neighbour()),
                     fixed(shadow / 1024.0, 1),
                     times(shadow / working_set, 2)});
      csv.add_row({cat(k), name, cat(plan.total_dma()),
                   cat(plan.total_neighbour()), cat(shadow)});
    }
  }
  table.print();
  std::printf("\nRelocating each AIE's output into the next row's memory\n"
              "converts almost every transfer into a neighbour access and\n"
              "eliminates the DMA shadow copies (Fig. 4(b)).\n");
  bench::write_csv(csv, "fig4_dataflow");
  return 0;
}
