// E4 -- Table V: performance model accuracy across application scenarios.
// The DSE flow picks the configuration for each (size, batch) scenario;
// the model's single-iteration system time is validated against the
// simulator (our stand-in for the on-board measurement).
//
// Note: the paper's Table V lists its board's chosen (Freq, P_eng,
// P_task); our placement engine packs tasks differently at some points,
// so the DSE may select a different P_task. Both configurations are
// printed; the validated claim is model-vs-measurement error.
#include <vector>

#include "accel/accelerator.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "dse/explorer.hpp"
#include "perfmodel/perf_model.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Performance model accuracy across scenarios",
                      "Table V");

  struct PaperRow {
    std::size_t n;
    int batch;
    double freq_mhz;
    int p_eng;
    int p_task;
    double meas_ms;
    double model_ms;
    double err_pct;
  };
  const PaperRow paper[] = {
      {128, 1, 450, 8, 1, 0.357, 0.384, 7.52},
      {256, 1, 420, 8, 1, 1.202, 1.120, 6.82},
      {512, 1, 350, 8, 1, 7.815, 7.510, 3.90},
      {1024, 1, 310, 8, 1, 58.885, 58.255, 1.02},
      {128, 100, 330, 4, 9, 6.099, 6.412, 5.12},
      {256, 100, 310, 4, 9, 27.836, 26.623, 4.36},
      {512, 100, 310, 4, 7, 238.002, 224.301, 5.76},
      {1024, 100, 310, 8, 1, 5872.181, 5878.970, 0.12},
  };

  dse::DesignSpaceExplorer explorer;
  perf::PerformanceModel model;
  Table table({"Matrix", "Batch", "Cfg (f,Pe,Pt)", "Sim (ms)", "Model (ms)",
               "Error", "paper cfg", "paper meas", "paper err"});
  CsvWriter csv({"n", "batch", "freq_mhz", "p_eng", "p_task", "sim_ms",
                 "model_ms", "error_pct"});

  std::vector<double> errors;
  for (const auto& row : paper) {
    dse::DseRequest req;
    req.rows = req.cols = row.n;
    req.batch = row.batch;
    req.iterations = 1;
    req.objective =
        row.batch == 1 ? dse::Objective::kLatency : dse::Objective::kThroughput;
    auto point = explorer.optimize(req);

    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = row.n;
    cfg.p_eng = point.p_eng;
    cfg.p_task = point.p_task;
    cfg.iterations = 1;
    cfg.pl_frequency_hz = point.frequency_hz;

    // Simulate one wave and scale to the full batch (waves are identical).
    const int wave = std::min(row.batch, cfg.p_task);
    auto run = accel::HeteroSvdAccelerator(cfg).estimate(wave);
    const double waves =
        std::ceil(static_cast<double>(row.batch) / cfg.p_task);
    const double sim_ms = run.batch_seconds * waves * 1e3;
    const double model_ms = model.evaluate(cfg, row.batch).t_sys * 1e3;
    const double err = relative_error(model_ms, sim_ms);
    errors.push_back(err);

    table.add_row(
        {cat(row.n, "x", row.n), cat(row.batch),
         cat(fixed(point.frequency_hz / 1e6, 0), ",", point.p_eng, ",",
             point.p_task),
         fixed(sim_ms, 3), fixed(model_ms, 3), pct(err),
         cat(fixed(row.freq_mhz, 0), ",", row.p_eng, ",", row.p_task),
         fixed(row.meas_ms, 3), fixed(row.err_pct, 2) + "%"});
    csv.add_row({cat(row.n), cat(row.batch),
                 fixed(point.frequency_hz / 1e6, 1), cat(point.p_eng),
                 cat(point.p_task), fixed(sim_ms, 3), fixed(model_ms, 3),
                 fixed(err * 100, 2)});
  }
  table.print();
  std::printf("\nmax error %s, mean error %s (paper: max 7.52%%, mean 4.33%%)\n",
              pct(max_value(errors)).c_str(), pct(mean(errors)).c_str());
  bench::write_csv(csv, "table5_scenarios");
  return 0;
}
