// E9 -- Ablation of the algorithm-hardware co-design (section III-B):
// end-to-end single-iteration latency, DMA traffic, and shadow-memory
// cost for the four combinations of {ring, shifting ring} x {naive,
// relocated outputs}. The paper publishes the DMA *count* reduction
// (Fig. 3) but no system-level ablation; this bench adds it. Findings:
// the co-design cuts DMA traffic by ~k x and eliminates the per-tile
// shadow copies that cap the supported column length, while the latency
// effect at the PLIO-bound design points is small -- the wins are
// bandwidth headroom and memory, not raw latency.
#include "accel/accelerator.hpp"
#include "bench_util.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Co-design ablation: ordering x memory strategy",
                      "section III-B (Figs. 3/4), system level");

  Table table({"Matrix", "ordering", "outputs", "latency (ms)", "DMA moves",
               "DMA bytes (KB)", "vs co-designed"});
  CsvWriter csv({"n", "ordering", "outputs", "latency_ms", "dma_moves",
                 "dma_bytes"});

  for (std::size_t n : {128u, 256u}) {
    double codesigned_ms = 0.0;
    for (auto ordering : {jacobi::OrderingKind::kShiftingRing,
                          jacobi::OrderingKind::kRing}) {
      for (bool relocated : {true, false}) {
        accel::HeteroSvdConfig cfg;
        cfg.rows = cfg.cols = n;
        cfg.p_eng = 8;
        cfg.p_task = 1;
        cfg.iterations = 1;
        cfg.pl_frequency_hz = 208.3e6;
        cfg.ordering = ordering;
        cfg.relocated_outputs = relocated;
        accel::HeteroSvdAccelerator acc(cfg);
        auto run = acc.estimate(1);
        const double ms = run.task_seconds * 1e3;
        if (ordering == jacobi::OrderingKind::kShiftingRing && relocated) {
          codesigned_ms = ms;
        }
        table.add_row({cat(n, "x", n), to_string(ordering),
                       relocated ? "relocated" : "naive", fixed(ms, 3),
                       cat(run.stats.dma_transfers),
                       fixed(run.stats.dma_bytes / 1024.0, 0),
                       times(ms / codesigned_ms)});
        csv.add_row({cat(n), to_string(ordering),
                     relocated ? "relocated" : "naive", fixed(ms, 3),
                     cat(run.stats.dma_transfers),
                     cat(run.stats.dma_bytes)});
      }
    }
  }
  table.print();
  std::printf(
      "\nThe co-design's measured wins are DMA traffic (~k x lower) and the\n"
      "removal of DMA shadow copies from the 32 KB tile memories (which cap\n"
      "the supported column length); at PLIO-bound design points the latency\n"
      "delta itself is small. Neither element helps alone (see fig3 bench).\n");
  bench::write_csv(csv, "ablation_codesign");
  return 0;
}
