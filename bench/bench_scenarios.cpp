// Modeled cost of the workload-scenario front-ends (DESIGN.md section
// 16) against the direct dense path, over the generated case grid from
// tests/case_matrix.hpp.
//
// Every number here is closed-form: the fabric term is the analytic
// performance model (eq. (14)) at the fixed 208.3 MHz PL clock, and the
// host terms are flop counts over a fixed 25 GF/s host rate. Nothing is
// measured, so the CSV is byte-stable and sits under the golden-file
// regression (tests/golden/bench_scenarios.csv). CI additionally checks
// the headline invariant on the artifact: above aspect ratio 8 the
// tall-skinny QR pre-reduction beats padding the tall matrix onto the
// fabric directly.
#include <cstddef>
#include <string>

#include "bench_util.hpp"
#include "case_matrix.hpp"
#include "perfmodel/perf_model.hpp"

using namespace hsvd;

namespace {

// Fixed host rate for the QR / sketch / assembly stages. A deliberately
// conservative sustained-GEMM figure: the conclusion below (QR wins
// above ratio 8) only gets stronger on a faster host.
constexpr double kHostFlopsPerS = 25e9;

accel::HeteroSvdConfig fabric_config(std::size_t rows, std::size_t cols) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.p_eng = cols >= 16 ? 8 : 4;
  cfg.p_task = 1;
  cfg.iterations = bench::converged_sweeps(cols);
  cfg.pl_frequency_hz = 208.3e6;
  return cfg;
}

double fabric_ms(const perf::PerformanceModel& model, std::size_t rows,
                 std::size_t cols) {
  return model.evaluate(fabric_config(rows, cols), 1).t_task * 1e3;
}

double host_ms(double flops) { return flops / kHostFlopsPerS * 1e3; }

// Householder QR of an m x n panel: 2mn^2 - (2/3)n^3 flops.
double qr_flops(double m, double n) {
  return 2.0 * m * n * n - 2.0 / 3.0 * n * n * n;
}

}  // namespace

int main() {
  bench::print_header(
      "Workload scenarios: modeled front-end cost vs the direct dense path",
      "section 16 scenario analysis");

  perf::PerformanceModel model;
  Table table({"Case", "Scenario", "k", "Host (ms)", "Fabric (ms)",
               "Total (ms)", "Direct (ms)", "Speedup"});
  CsvWriter csv({"name", "scenario", "rows", "cols", "k", "host_ms",
                 "fabric_ms", "total_ms", "direct_ms", "speedup"});

  const auto emit = [&](const std::string& name, const std::string& scenario,
                        std::size_t rows, std::size_t cols, std::size_t k,
                        double host, double fabric, double direct) {
    const double total = host + fabric;
    table.add_row({name, scenario, cat(k), fixed(host, 4), fixed(fabric, 4),
                   fixed(total, 4), fixed(direct, 4),
                   fixed(direct / total, 2) + "x"});
    csv.add_row({name, scenario, cat(rows), cat(cols), cat(k), fixed(host, 4),
                 fixed(fabric, 4), fixed(total, 4), fixed(direct, 4),
                 fixed(direct / total, 4)});
  };

  // Tall-skinny: host QR + n x n fabric core + host U = Q * U_R (2mn^2)
  // against running the m x n panel on the fabric directly.
  testing::CaseAxes axes;
  axes.cols = {64, 128, 256};
  axes.ratios = {2, 8, 32};
  axes.conditions = {1e2};
  axes.decays = {testing::Decay::kGeometric};
  for (const testing::CaseSpec& spec : testing::case_matrix(axes, 0)) {
    const double m = static_cast<double>(spec.rows());
    const double n = static_cast<double>(spec.cols);
    const double host = host_ms(qr_flops(m, n) + 2.0 * m * n * n);
    const double fabric = fabric_ms(model, spec.cols, spec.cols);
    const double direct = fabric_ms(model, spec.rows(), spec.cols);
    emit(spec.name(), "tall-skinny", spec.rows(), spec.cols, 0, host, fabric,
         direct);
  }

  // Truncated top-k: Gaussian sketch (2mnl), q = 2 power iterations
  // (4mnl each, both products), projection (2mnl), and assembly (2mlk)
  // on the host, plus the n x l core on the fabric, against the full
  // tall-skinny front-end (the cheapest way to the complete spectrum).
  for (const std::size_t k : {std::size_t{8}, std::size_t{32}}) {
    testing::CaseSpec spec;
    spec.cols = 256;
    spec.ratio = 8;
    const std::size_t l = std::min(spec.cols, k + 8);
    const double m = static_cast<double>(spec.rows());
    const double n = static_cast<double>(spec.cols);
    const double ld = static_cast<double>(l);
    const double host =
        host_ms(2.0 * m * n * ld + 2.0 * 4.0 * m * n * ld + 2.0 * m * n * ld +
                2.0 * m * ld * static_cast<double>(k));
    const double fabric = fabric_ms(model, spec.cols, l);
    const double full = host_ms(qr_flops(m, n) + 2.0 * m * n * n) +
                        fabric_ms(model, spec.cols, spec.cols);
    emit(spec.name(), "truncated", spec.rows(), spec.cols, k, host, fabric,
         full);
  }

  table.print();
  std::printf(
      "\n(speedup column: direct dense path over the scenario front-end;\n"
      " truncated rows compare against the full tall-skinny pipeline)\n");
  bench::write_csv(csv, "bench_scenarios");
  return 0;
}
