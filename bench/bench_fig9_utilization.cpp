// E8 -- Fig. 9: throughput and core/memory utilization vs design size,
// GPU [11] vs HeteroSVD. Reproduces the paper's crossover mechanism: the
// GPU's utilization grows with matrix size while HeteroSVD's PL memory
// limits task parallelism, cutting its relative throughput at 512+.
#include "accel/accelerator.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_util.hpp"
#include "dse/explorer.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Throughput and utilization vs design size", "Fig. 9");

  baselines::GpuWcycleModel gpu;
  dse::DesignSpaceExplorer explorer;

  Table table({"Matrix", "GPU thr", "HSVD thr", "thr ratio", "GPU core%",
               "HSVD core%", "GPU mem%", "HSVD mem%"});
  CsvWriter csv({"n", "gpu_thr", "hsvd_thr", "gpu_core_util", "hsvd_core_util",
                 "gpu_mem_util", "hsvd_mem_util"});

  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    dse::DseRequest req;
    req.rows = req.cols = n;
    req.batch = 100;
    req.iterations = bench::converged_sweeps(n);
    req.objective = dse::Objective::kThroughput;
    auto point = explorer.optimize(req);

    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = n;
    cfg.p_eng = point.p_eng;
    cfg.p_task = point.p_task;
    cfg.iterations = bench::converged_sweeps(n);
    cfg.pl_frequency_hz = point.frequency_hz;
    auto run = accel::HeteroSvdAccelerator(cfg).estimate(cfg.p_task);
    // Core utilization now comes from the per-tile cycle tallies the
    // observability subsystem accumulates during the run (identical to
    // the legacy scalar for fault-free runs, but auditable per tile).
    const double hsvd_core = run.utilization.core_utilization();

    table.add_row({cat(n, "x", n), fixed(gpu.throughput_tasks_per_s(n), 2),
                   fixed(run.throughput_tasks_per_s, 2),
                   times(run.throughput_tasks_per_s /
                         gpu.throughput_tasks_per_s(n)),
                   pct(gpu.core_utilization(n), 0),
                   pct(hsvd_core, 0),
                   pct(gpu.memory_utilization(n), 0),
                   pct(run.memory_utilization, 0)});
    csv.add_row({cat(n), fixed(gpu.throughput_tasks_per_s(n), 3),
                 fixed(run.throughput_tasks_per_s, 3),
                 fixed(gpu.core_utilization(n), 3),
                 fixed(hsvd_core, 3),
                 fixed(gpu.memory_utilization(n), 3),
                 fixed(run.memory_utilization, 3)});
  }
  table.print();
  std::printf("\nShape check: HeteroSVD leads at 128/256; the GPU overtakes at\n"
              "512+ as its utilization rises while HeteroSVD's URAM-bound\n"
              "P_task collapses (paper section V-B).\n");
  bench::write_csv(csv, "fig9_utilization");
  return 0;
}
