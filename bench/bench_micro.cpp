// Micro-benchmarks (google-benchmark) for the library's hot paths:
// rotation math, kernels, ordering generation, dataflow classification,
// placement, the analytic model, and a full small accelerator run.
#include <benchmark/benchmark.h>

#include "accel/accelerator.hpp"
#include "accel/dataflow.hpp"
#include "accel/kernels.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "jacobi/ordering.hpp"
#include "linalg/generators.hpp"
#include "perfmodel/perf_model.hpp"

namespace {

using namespace hsvd;

void BM_ComputeRotation(benchmark::State& state) {
  Rng rng(1);
  double aii = rng.uniform(0.5, 2.0), ajj = rng.uniform(0.5, 2.0);
  double aij = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jacobi::compute_rotation(aii, ajj, aij));
  }
}
BENCHMARK(BM_ComputeRotation);

void BM_OrthKernel(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  auto a = linalg::random_gaussian(m, 2, rng).cast<float>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::orth_kernel(a.col(0), a.col(1)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(m));
}
BENCHMARK(BM_OrthKernel)->Arg(128)->Arg(512)->Arg(1024);

void BM_MakeSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jacobi::make_schedule(jacobi::OrderingKind::kShiftingRing, n));
  }
}
BENCHMARK(BM_MakeSchedule)->Arg(8)->Arg(16)->Arg(22);

void BM_CountSweepDma(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::count_sweep_dma(
        jacobi::OrderingKind::kShiftingRing, k,
        accel::MemoryStrategy::kRelocated));
  }
}
BENCHMARK(BM_CountSweepDma)->Arg(4)->Arg(8)->Arg(11);

void BM_Placement(benchmark::State& state) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 256;
  cfg.p_eng = static_cast<int>(state.range(0));
  cfg.p_task = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel::try_place(cfg));
  }
}
BENCHMARK(BM_Placement)->Arg(2)->Arg(8);

void BM_PerfModel(benchmark::State& state) {
  perf::PerformanceModel model;
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 512;
  cfg.p_eng = 8;
  cfg.iterations = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.evaluate(cfg, 100));
  }
}
BENCHMARK(BM_PerfModel);

void BM_DseOptimize(benchmark::State& state) {
  dse::DesignSpaceExplorer explorer;
  dse::DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 100;
  req.objective = dse::Objective::kThroughput;
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.optimize(req));
  }
}
BENCHMARK(BM_DseOptimize);

void BM_AcceleratorFunctional(benchmark::State& state) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 6;
  Rng rng(3);
  std::vector<linalg::MatrixF> batch = {
      linalg::random_gaussian(32, 16, rng).cast<float>()};
  for (auto _ : state) {
    accel::HeteroSvdAccelerator acc(cfg);
    benchmark::DoNotOptimize(acc.run(batch));
  }
}
BENCHMARK(BM_AcceleratorFunctional)->Unit(benchmark::kMillisecond);

void BM_AcceleratorTimedLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  cfg.iterations = 1;
  for (auto _ : state) {
    accel::HeteroSvdAccelerator acc(cfg);
    benchmark::DoNotOptimize(acc.estimate(1));
  }
}
BENCHMARK(BM_AcceleratorTimedLarge)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
