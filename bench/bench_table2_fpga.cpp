// E1 -- Table II: latency and resource comparison between HeteroSVD and
// the FPGA BCV-Jacobi baseline [6], six iterations per matrix.
//
// Protocol (paper section V-B): FPGA at its maximum task parallelism and
// 200 MHz; HeteroSVD in its latency configuration (P_eng = 8, P_task = 1,
// which is exactly Table II's 128 AIEs), PL frequency from the
// achievable-frequency model.
#include "accel/accelerator.hpp"
#include "baselines/fpga_model.hpp"
#include "bench_util.hpp"
#include "perfmodel/resource_model.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Latency & resources: HeteroSVD vs FPGA [6]",
                      "Table II");

  const double paper_fpga[] = {0.0014, 0.0113, 0.0829, 0.6119};
  const double paper_hsvd[] = {0.0011, 0.0057, 0.0435, 0.3415};

  baselines::FpgaBcvModel fpga;
  Table table({"Matrix", "FPGA lat(s)", "HSVD lat(s)", "HSVD LUT", "HSVD URAM",
               "HSVD AIE", "Speedup", "paper HSVD(s)", "paper speedup"});
  CsvWriter csv({"n", "fpga_s", "hsvd_s", "speedup", "paper_hsvd_s",
                 "paper_speedup"});

  int row = 0;
  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    auto cfg = bench::latency_config(n, 6, bench::achievable_frequency(n, 1));
    accel::HeteroSvdAccelerator acc(cfg);
    auto run = acc.estimate(1);
    const double hsvd_s = run.task_seconds;
    const double fpga_s = fpga.latency_seconds(n, 6);
    const double speedup = fpga_s / hsvd_s;
    table.add_row({cat(n, "x", n), fixed(fpga_s, 4), fixed(hsvd_s, 4),
                   cat(run.resources.lut / 1000, "K"),
                   cat(run.resources.uram), cat(run.resources.aie_total()),
                   times(speedup), fixed(paper_hsvd[row], 4),
                   times(paper_fpga[row] / paper_hsvd[row])});
    csv.add_row({cat(n), sci(fpga_s), sci(hsvd_s), fixed(speedup, 3),
                 sci(paper_hsvd[row]), fixed(paper_fpga[row] / paper_hsvd[row], 3)});
    ++row;
  }
  table.print();
  std::printf("\nFPGA baseline resources (fixed, Table II): LUT 212K (30.6%%), "
              "BRAM 519.5 (31.4%%), DSP 1602 (44.5%%)\n");
  bench::write_csv(csv, "table2_fpga");
  return 0;
}
