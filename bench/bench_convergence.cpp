// Extension bench: convergence behaviour of the orderings.
//
// The co-design claim rests on the shifting ring ordering being
// numerically equivalent to the classical orderings -- it must not trade
// convergence speed for dataflow locality. This bench measures
// sweeps-to-convergence (eq. (6) at 1e-6) and CPU wall time for every
// ordering plus the block variant and the BCV baseline, across sizes.
#include "baselines/cpu_reference.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Sweeps to convergence across orderings",
                      "(extension; supports the section III-B equivalence claim)");

  Table table({"Matrix", "algorithm", "sweeps", "converged", "residual",
               "cpu (ms)"});
  CsvWriter csv({"n", "algorithm", "sweeps", "residual", "cpu_ms"});

  for (std::size_t n : {16u, 32u, 64u}) {
    Rng rng(900 + n);
    auto a = linalg::random_gaussian(2 * n, n, rng).cast<float>();

    std::vector<baselines::CpuRunResult> runs;
    runs.push_back(baselines::run_hestenes(a, jacobi::OrderingKind::kRing));
    runs.push_back(
        baselines::run_hestenes(a, jacobi::OrderingKind::kRoundRobin));
    runs.push_back(
        baselines::run_hestenes(a, jacobi::OrderingKind::kShiftingRing));
    runs.push_back(baselines::run_block(a, static_cast<int>(n) / 4));
    runs.push_back(baselines::run_bcv(a));

    for (const auto& r : runs) {
      table.add_row({cat(2 * n, "x", n), r.algorithm, cat(r.sweeps),
                     r.converged ? "yes" : "no",
                     sci(r.max_offdiag_coherence, 1),
                     fixed(r.wall_seconds * 1e3, 2)});
      csv.add_row({cat(n), r.algorithm, cat(r.sweeps),
                   sci(r.max_offdiag_coherence, 2),
                   fixed(r.wall_seconds * 1e3, 3)});
    }
  }
  table.print();
  std::printf("\nAll orderings converge in a comparable number of sweeps --\n"
              "the shifting ring buys its dataflow locality for free, which\n"
              "is what makes the co-design an optimization rather than a\n"
              "numerical trade-off.\n");
  bench::write_csv(csv, "convergence_orderings");
  return 0;
}
