// E5 -- Table VI: how the micro-architecture parameters trade latency,
// throughput, and power. 256x256 matrices, PL at 208.3 MHz, six
// iterations per matrix, (P_eng, P_task) sweep.
//
// Note: at P_eng = 4 our placement fits at most 6 parallel tasks (the
// paper packs 9); we evaluate the closest feasible point and print the
// paper's row alongside.
//
// The trade-off surface this table tabulates is the same one the
// SLO-aware router (backend/router.hpp, DESIGN.md section 14) consults
// live: its AIE estimates come from the identical DSE/perf/power models
// evaluated here, so `hsvd route --sweep 256` reproduces these
// latency/throughput/power trade-offs as a dispatch decision -- the
// low-P_task points win the latency SLO, the high-P_task points the
// throughput SLO -- rather than as a static benchmark table.
#include "accel/accelerator.hpp"
#include "bench_util.hpp"
#include "perfmodel/power_model.hpp"

using namespace hsvd;

int main() {
  bench::print_header("Micro-architecture trade-offs at 256x256, 208.3 MHz",
                      "Table VI");

  struct PaperRow {
    int p_eng;
    int p_task;
    int aie;
    int uram;
    double latency_ms;
    double throughput;
    double power_w;
  };
  const PaperRow paper[] = {
      {2, 26, 293, 416, 35.689, 707.501, 44.16},
      {4, 9, 357, 144, 19.303, 508.436, 34.63},
      {6, 4, 366, 120, 13.117, 306.876, 30.79},
      {8, 2, 322, 32, 9.247, 219.257, 26.06},
  };

  perf::PowerModel power;
  Table table({"P_eng", "P_task", "AIE", "URAM", "Lat (ms)", "Thr (t/s)",
               "Power (W)", "paper lat/thr/W"});
  CsvWriter csv({"p_eng", "p_task", "aie", "uram", "latency_ms",
                 "throughput", "power_w"});

  for (const auto& row : paper) {
    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = 256;
    cfg.p_eng = row.p_eng;
    cfg.iterations = 6;
    cfg.pl_frequency_hz = 208.3e6;
    // Use the paper's P_task when our placement fits it, otherwise the
    // largest feasible value.
    cfg.p_task = row.p_task;
    while (cfg.p_task > 1 && !accel::try_place(cfg).has_value()) --cfg.p_task;

    accel::HeteroSvdAccelerator acc(cfg);
    auto run = acc.estimate(cfg.p_task);  // one steady-state wave
    const double watts =
        power.system_watts(run.resources, cfg.pl_frequency_hz);
    table.add_row({cat(cfg.p_eng), cat(cfg.p_task),
                   cat(run.resources.aie_total()), cat(run.resources.uram),
                   fixed(run.task_seconds * 1e3, 3),
                   fixed(run.throughput_tasks_per_s, 1), fixed(watts, 2),
                   cat(fixed(row.latency_ms, 1), "/", fixed(row.throughput, 0),
                       "/", fixed(row.power_w, 1), " @Pt=", row.p_task)});
    csv.add_row({cat(cfg.p_eng), cat(cfg.p_task),
                 cat(run.resources.aie_total()), cat(run.resources.uram),
                 fixed(run.task_seconds * 1e3, 3),
                 fixed(run.throughput_tasks_per_s, 2), fixed(watts, 2)});
  }
  table.print();
  std::printf("\nTrend check: higher P_eng => lower latency; higher P_task =>"
              " higher throughput and power (paper section V-C).\n");
  bench::write_csv(csv, "table6_tradeoff");
  return 0;
}
