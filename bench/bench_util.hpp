// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's published values and (b) the values
// this reproduction measures, side by side, and writes a CSV next to the
// binary so plots can be regenerated. EXPERIMENTS.md records the deltas.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/config.hpp"
#include "common/csv.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "dse/frequency_model.hpp"

namespace hsvd::bench {

// The Table II / Table IV hardware protocol: latency-oriented single-task
// configuration (P_eng = 8 matches Table II's 128 AIEs exactly).
inline accel::HeteroSvdConfig latency_config(std::size_t n, int iterations,
                                             double frequency_hz) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  cfg.iterations = iterations;
  cfg.pl_frequency_hz = frequency_hz;
  return cfg;
}

inline double achievable_frequency(std::size_t n, int p_task) {
  return dse::FrequencyModel{}.max_frequency_hz(n, p_task);
}

// Sweeps needed to converge at 1e-6 as a function of matrix size. Block
// Jacobi needs more sweeps on larger matrices; these counts match the
// per-iteration vs converged-latency ratios implied by the paper's
// Tables III and V (about 6.4 / 10.8 / 13.8 / 13.5 for 128..1024).
inline int converged_sweeps(std::size_t n) {
  const double sweeps = 7.0 + 3.5 * std::log2(static_cast<double>(n) / 128.0);
  return static_cast<int>(std::min(14.0, std::max(7.0, std::round(sweeps))));
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s; paper values shown for reference)\n\n",
              title.c_str(), paper_ref.c_str());
}

// Writes the bench CSV or dies: a bench whose artifact silently failed
// to land would let downstream plots regenerate from stale data.
inline void write_csv(const hsvd::CsvWriter& csv, const std::string& name) {
  const std::string path = name + ".csv";
  if (!csv.write_file(path)) {
    std::fprintf(stderr, "FATAL: cannot write %s: bench output lost\n",
                 path.c_str());
    std::exit(1);
  }
  std::printf("\n[csv written to %s]\n", path.c_str());
}

}  // namespace hsvd::bench
