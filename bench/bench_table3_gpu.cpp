// E2 -- Table III: latency, throughput, and energy efficiency of
// HeteroSVD vs the RTX 3090 W-cycle SVD [11].
//
// Protocol: both sides iterate to convergence at 1e-6 (the sweep count
// grows with matrix size; see bench_util.hpp); the HeteroSVD
// configuration comes from the DSE flow -- latency objective for the
// latency column, throughput objective (batch processing) for the
// throughput and energy-efficiency columns. Batch throughput is measured
// over one full wave of P_task tasks (steady state).
#include "accel/accelerator.hpp"
#include "baselines/gpu_model.hpp"
#include "bench_util.hpp"
#include "dse/explorer.hpp"
#include "perfmodel/power_model.hpp"

using namespace hsvd;

int main() {
  bench::print_header(
      "Latency / throughput / energy efficiency: HeteroSVD vs GPU [11]",
      "Table III");

  const double paper_lat_speedup[] = {7.22, 3.30, 1.15, 0.86};
  const double paper_thr_speedup[] = {1.77, 1.10, 0.89, 0.36};
  const double paper_ee_gain[] = {13.18, 7.76, 6.50, 4.36};

  baselines::GpuWcycleModel gpu;
  dse::DesignSpaceExplorer explorer;
  perf::PowerModel power;

  Table table({"Matrix", "GPU lat(s)", "HSVD lat(s)", "GPU thr", "HSVD thr",
               "GPU EE", "HSVD EE", "Lat spd", "Thr spd", "EE gain",
               "paper(L/T/EE)"});
  CsvWriter csv({"n", "gpu_lat", "hsvd_lat", "gpu_thr", "hsvd_thr", "gpu_ee",
                 "hsvd_ee", "lat_speedup", "thr_speedup", "ee_gain"});

  int row = 0;
  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    // Latency column: DSE latency objective, single matrix.
    const int sweeps = bench::converged_sweeps(n);
    dse::DseRequest lat_req;
    lat_req.rows = lat_req.cols = n;
    lat_req.batch = 1;
    lat_req.iterations = sweeps;
    lat_req.objective = dse::Objective::kLatency;
    auto lat_point = explorer.optimize(lat_req);
    accel::HeteroSvdConfig lat_cfg;
    lat_cfg.rows = lat_cfg.cols = n;
    lat_cfg.p_eng = lat_point.p_eng;
    lat_cfg.p_task = lat_point.p_task;
    lat_cfg.iterations = sweeps;
    lat_cfg.pl_frequency_hz = lat_point.frequency_hz;
    const double hsvd_lat =
        accel::HeteroSvdAccelerator(lat_cfg).estimate(1).task_seconds;

    // Throughput column: DSE throughput objective, one steady-state wave.
    dse::DseRequest thr_req = lat_req;
    thr_req.batch = 100;
    thr_req.objective = dse::Objective::kThroughput;
    auto thr_point = explorer.optimize(thr_req);
    accel::HeteroSvdConfig thr_cfg = lat_cfg;
    thr_cfg.p_eng = thr_point.p_eng;
    thr_cfg.p_task = thr_point.p_task;
    thr_cfg.pl_frequency_hz = thr_point.frequency_hz;
    auto wave = accel::HeteroSvdAccelerator(thr_cfg).estimate(thr_cfg.p_task);
    const double hsvd_thr = wave.throughput_tasks_per_s;
    const double hsvd_watts =
        perf::PowerModel{}.system_watts(wave.resources, thr_cfg.pl_frequency_hz);
    const double hsvd_ee = hsvd_thr / hsvd_watts;

    const double gpu_lat = gpu.latency_seconds(n);
    const double gpu_thr = gpu.throughput_tasks_per_s(n);
    const double gpu_ee = gpu.energy_efficiency(n);

    table.add_row(
        {cat(n, "x", n), fixed(gpu_lat, 4), fixed(hsvd_lat, 4),
         fixed(gpu_thr, 2), fixed(hsvd_thr, 2), fixed(gpu_ee, 3),
         fixed(hsvd_ee, 3), times(gpu_lat / hsvd_lat),
         times(hsvd_thr / gpu_thr), times(hsvd_ee / gpu_ee),
         cat(times(paper_lat_speedup[row]), "/", times(paper_thr_speedup[row]),
             "/", times(paper_ee_gain[row]))});
    csv.add_row({cat(n), sci(gpu_lat), sci(hsvd_lat), fixed(gpu_thr, 2),
                 fixed(hsvd_thr, 2), fixed(gpu_ee, 4), fixed(hsvd_ee, 4),
                 fixed(gpu_lat / hsvd_lat, 2), fixed(hsvd_thr / gpu_thr, 2),
                 fixed(hsvd_ee / gpu_ee, 2)});
    ++row;
  }
  table.print();
  std::printf("\nGPU board power: 270 W; HeteroSVD system power < 50 W "
              "(power model, see EXPERIMENTS.md).\n");
  bench::write_csv(csv, "table3_gpu");
  return 0;
}
