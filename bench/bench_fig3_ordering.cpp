// E6 -- Fig. 3: DMA transmissions per sweep for the traditional ring
// ordering versus the shifting ring ordering + AIE-centric dataflow,
// for an m x 2k matrix on a (2k-1) x k AIE sub-array.
//
// The paper's closed forms: traditional = 2k(k-1), co-designed = 2(k-1);
// both are reproduced exactly by the dataflow analyzer.
#include "accel/dataflow.hpp"
#include "bench_util.hpp"

using namespace hsvd;

int main() {
  bench::print_header("DMA transmissions per sweep: ring vs shifting ring",
                      "Fig. 3");

  Table table({"k (P_eng)", "ring+naive", "2k(k-1)", "shifting+relocated",
               "2(k-1)", "reduction"});
  CsvWriter csv({"k", "ring_naive", "shifting_relocated", "round_robin",
                 "ring_relocated"});

  for (int k = 2; k <= 11; ++k) {
    const int ring = accel::count_sweep_dma(jacobi::OrderingKind::kRing, k,
                                            accel::MemoryStrategy::kNaive);
    const int shifting = accel::count_sweep_dma(
        jacobi::OrderingKind::kShiftingRing, k,
        accel::MemoryStrategy::kRelocated);
    const int rr = accel::count_sweep_dma(jacobi::OrderingKind::kRoundRobin, k,
                                          accel::MemoryStrategy::kRelocated);
    const int ring_reloc = accel::count_sweep_dma(
        jacobi::OrderingKind::kRing, k, accel::MemoryStrategy::kRelocated);
    table.add_row({cat(k), cat(ring), cat(2 * k * (k - 1)), cat(shifting),
                   cat(2 * (k - 1)), times(double(ring) / shifting, 1)});
    csv.add_row({cat(k), cat(ring), cat(shifting), cat(rr), cat(ring_reloc)});
  }
  table.print();
  std::printf("\nBoth closed forms hold exactly; the reduction factor is k,\n"
              "growing with engine parallelism (the co-design's headline).\n");
  bench::write_csv(csv, "fig3_ordering");
  return 0;
}
