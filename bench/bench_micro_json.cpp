// Machine-readable micro-benchmark emitter.
//
// Writes BENCH_micro.json (path overridable via argv[1]) with the hot-path
// kernel costs (ns/op), the Hestenes sweep rate, and the 16-task batch
// wall-clock at 1 thread vs all hardware threads -- the perf trajectory
// future PRs compare against. Timers are hand-rolled steady_clock loops so
// the numbers do not depend on the google-benchmark harness.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "heterosvd.hpp"
#include "jacobi/hestenes.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"

namespace {

using namespace hsvd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Runs fn repeatedly until ~40 ms have elapsed (minimum 16 iterations)
// and returns the best-of-3 mean ns per call.
template <typename Fn>
double time_ns(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    // Warm-up + calibration pass.
    fn();
    std::size_t iters = 16;
    for (;;) {
      const auto t0 = Clock::now();
      for (std::size_t i = 0; i < iters; ++i) fn();
      const double elapsed = seconds_since(t0);
      if (elapsed >= 0.04) {
        best = std::min(best, elapsed * 1e9 / static_cast<double>(iters));
        break;
      }
      iters *= 4;
    }
  }
  return best;
}

linalg::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

struct JsonWriter {
  std::string out = "{\n";
  bool first_in_scope = true;
  void comma() {
    if (!first_in_scope) out += ",\n";
    first_in_scope = false;
  }
  void number(const std::string& key, double v) {
    comma();
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6g", key.c_str(), v);
    out += buf;
  }
  // Values are emitter-controlled identifiers / annotations, never user
  // input, so no escaping is needed.
  void string(const std::string& key, const std::string& v) {
    comma();
    out += "  \"" + key + "\": \"" + v + "\"";
  }
  std::string finish() { return out + "\n}\n"; }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_micro.json";
  volatile float sinkf = 0.0f;

  // ---- kernel ns/op -------------------------------------------------------
  constexpr std::size_t kN = 512;
  const auto xm = random_matrix(kN, 1, 11);
  const auto ym = random_matrix(kN, 1, 12);
  auto xw = xm;
  auto yw = ym;
  const std::span<const float> cx = xm.col(0);
  const std::span<const float> cy = ym.col(0);

  JsonWriter json;
  // Which SIMD target the fp32 hot-path kernels dispatched to: the
  // headline *_n512_ns numbers below are measured through this target.
  json.string("simd_kind", simd::active().name);
  json.number("simd_lane_width", simd::active().lane_width);
  const auto time_kernels = [&](const std::string& suffix) {
    json.number("dot_n512" + suffix,
                time_ns([&] { sinkf = sinkf + linalg::dot(cx, cy); }));
    json.number("dot3_n512" + suffix, time_ns([&] {
                  const auto g = linalg::dot3(cx, cy);
                  sinkf = sinkf + g.aii + g.ajj + g.aij;
                }));
    json.number("apply_rotation_n512" + suffix, time_ns([&] {
                  linalg::apply_rotation(xw.col(0), yw.col(0), 0.8f, 0.6f);
                  sinkf = sinkf + xw.col(0)[0];
                }));
  };
  time_kernels("_ns");
  // The same kernels pinned to the scalar target: the dispatch gain is
  // the ratio of the two, measured in one process on one host.
  {
    const simd::Kernels* prev =
        simd::set_active_for_testing(&simd::scalar_kernels());
    time_kernels("_scalar_ns");
    simd::set_active_for_testing(prev);
  }

  // ---- Hestenes sweep rate ------------------------------------------------
  const auto a = random_matrix(128, 64, 13);
  jacobi::HestenesOptions hopts;
  hopts.fixed_sweeps = 4;
  hopts.accumulate_v = false;
  const double hestenes_ns =
      time_ns([&] { sinkf = sinkf + jacobi::hestenes_svd(a, hopts).sigma[0]; });
  json.number("hestenes_128x64_sweeps_per_s",
              4.0 / (hestenes_ns * 1e-9));

  // ---- 16-task batch wall-clock: 1 thread vs all cores --------------------
  std::vector<linalg::MatrixF> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(random_matrix(48, 24, 100 + i));
  SvdOptions opts;
  accel::HeteroSvdConfig cfg;
  cfg.p_eng = 2;
  cfg.p_task = 4;  // matches the NoC port count: parallel chains engage
  cfg.iterations = 8;
  opts.config = cfg;

  const auto time_batch = [&](int threads) {
    opts.threads = threads;
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      const auto r = svd_batch(batch, opts);
      best = std::min(best, seconds_since(t0));
      sinkf = sinkf + r.results.front().sigma.front();
    }
    return best;
  };
  const int hw = common::ThreadPool::hardware_threads();
  const double t1 = time_batch(1);
  json.number("batch16_threads", 1);
  json.number("batch16_wall_s_1thread", t1);
  json.number("batch16_hw_threads", hw);
  if (hw > 1) {
    const double tn = time_batch(hw);
    json.number("batch16_wall_s_hw_threads", tn);
    json.number("batch16_speedup", t1 / tn);
  } else {
    // A single hardware thread cannot demonstrate parallel speedup;
    // re-timing the identical serial path would just report measurement
    // noise as a "slowdown". Annotate the skip instead of faking a number.
    json.string("batch16_speedup",
                "skipped: single hardware thread, parallel path not engaged");
  }

  // ---- observability snapshot of the 16-task batch ------------------------
  // One extra (untimed) run with the metrics registry attached: simulated
  // work volumes and kernel/DMA cycle quantiles, so perf regressions in
  // future PRs show up as shifted work counts and not just wall-clock.
  {
    obs::ObsContext obs_ctx;
    opts.threads = hw;
    opts.observer = &obs_ctx;
    const auto r = svd_batch(batch, opts);
    sinkf = sinkf + r.results.front().sigma.front();
    const obs::MetricsSnapshot snap = obs_ctx.metrics().snapshot();
    const auto counter = [&](const char* name) -> double {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0.0
                                       : static_cast<double>(it->second);
    };
    json.number("obs_kernel_invocations", counter("sim.kernel.invocations"));
    json.number("obs_dma_bytes", counter("sim.dma.bytes"));
    json.number("obs_stream_bytes", counter("sim.stream.bytes"));
    const auto quantile = [&](const char* name, double q) {
      const auto it = snap.histograms.find(name);
      return it == snap.histograms.end() ? 0.0 : it->second.quantile(q);
    };
    json.number("obs_kernel_cycles_p50", quantile("sim.kernel.cycles", 0.5));
    json.number("obs_kernel_cycles_p99", quantile("sim.kernel.cycles", 0.99));
    json.number("obs_dma_cycles_p50", quantile("sim.dma.cycles", 0.5));
    json.number("obs_dma_cycles_p99", quantile("sim.dma.cycles", 0.99));
    opts.observer = nullptr;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string text = json.finish();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("%s", text.c_str());
  std::printf("wrote %s (sink %.3f)\n", path.c_str(),
              static_cast<double>(sinkf));
  return 0;
}
