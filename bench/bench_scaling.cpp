// E-scale -- strong and weak scaling of the multi-array sharding engine
// (DESIGN.md section 11; no paper counterpart: the paper fixes one
// VCK190 array).
//
// Strong scaling holds the matrix size fixed and spreads the block
// tournament ring over S in {1, 2, 4, 8} arrays; weak scaling grows the
// matrix with the shard count (n = 512 * S, so the per-shard block count
// stays constant). Every point reports the analytic sharded model
// (shard::evaluate_sharded); sizes the cycle-approximate simulator
// covers in bench time (n <= 1024) also report the simulated latency so
// the model error is visible. The interesting output is the crossover:
// for small n the inter-shard ring edge (AIE->PL->NoC/DDR->PL->AIE per
// crossing block) costs more than the per-round PLIO streaming it
// saves, so S > 1 is slower; once the round streaming term -- the
// single-array PLIO bound -- grows past the edge cost, sharding wins.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "accel/sharded.hpp"
#include "bench_util.hpp"
#include "perfmodel/perf_model.hpp"
#include "shard/model.hpp"

using namespace hsvd;

namespace {

constexpr int kShards[] = {1, 2, 4, 8};

accel::HeteroSvdConfig scaling_config(std::size_t n) {
  accel::HeteroSvdConfig cfg = bench::latency_config(
      n, bench::converged_sweeps(n), bench::achievable_frequency(n, 1));
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Multi-array strong/weak scaling", "DESIGN.md section 11");

  Table table({"mode", "n", "S", "source", "task(ms)", "edge/sweep(ms)",
               "moves", "speedup"});
  CsvWriter csv({"mode", "n", "shards", "source", "task_ms", "iter_ms",
                 "edge_ms_per_sweep", "hop_ms", "moves_per_sweep",
                 "speedup_vs_s1"});

  perf::PerformanceModel model;
  // (mode, n, source) -> S = 1 task seconds, for the speedup column.
  std::map<std::string, double> base;

  const auto emit = [&](const std::string& mode, std::size_t n, int s,
                        const std::string& source, double task_s,
                        double iter_s, const shard::ShardedBreakdown& sb) {
    // Strong rows compare against S = 1 at the same n; weak rows share
    // one base (S = 1 at the smallest n), so their column is the classic
    // weak-scaling efficiency t(1, n0) / t(S, n0 * S).
    const std::string key = mode == "strong"
                                ? mode + ":" + cat(n) + ":" + source
                                : mode + ":" + source;
    if (s == 1) base[key] = task_s;
    const double speedup = base.count(key) ? base[key] / task_s : 1.0;
    table.add_row({mode, cat(n), cat(s), source, fixed(task_s * 1e3, 3),
                   fixed(sb.edge_seconds_per_sweep * 1e3, 3),
                   cat(sb.moves_per_sweep), fixed(speedup, 2)});
    csv.add_row({mode, cat(n), cat(s), source, fixed(task_s * 1e3, 4),
                 fixed(iter_s * 1e3, 4),
                 fixed(sb.edge_seconds_per_sweep * 1e3, 4),
                 fixed(sb.hop_seconds * 1e3, 4), cat(sb.moves_per_sweep),
                 fixed(speedup, 3)});
  };

  const auto run_point = [&](const std::string& mode, std::size_t n, int s,
                             bool simulate) {
    const accel::HeteroSvdConfig cfg = scaling_config(n);
    const perf::LatencyBreakdown single = model.evaluate(cfg, 1);
    const shard::ShardedBreakdown sb =
        shard::evaluate_sharded(cfg, single, s, 1);
    emit(mode, n, s, "model", sb.t_task, sb.t_iter, sb);
    if (simulate) {
      accel::ShardedAccelerator acc(cfg, s);
      const auto run = acc.estimate(1);
      emit(mode, n, s, "sim", run.task_seconds,
           (run.task_seconds - sb.t_ddr - sb.t_norm_stage) /
               std::max(cfg.iterations, 1),
           sb);
    }
  };

  // Strong scaling: n fixed, S in {1, 2, 4, 8}. The simulator covers
  // n <= 1024; 2048 and 4096 are model-only (the same closed forms the
  // Table IV bench validates to a few percent at simulator sizes).
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    for (int s : kShards) run_point("strong", n, s, n <= 1024);
  }
  // Weak scaling: the per-shard share of the ring stays constant
  // (n = 512 * S, so each shard owns ~p/S = 32 block-pair sites).
  for (int s : kShards) {
    run_point("weak", static_cast<std::size_t>(512) * s, s, false);
  }

  table.print();

  // Crossover summary: the smallest S > 1 the model says beats S = 1.
  std::printf("\ncrossover (model): ");
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const accel::HeteroSvdConfig cfg = scaling_config(n);
    const perf::LatencyBreakdown single = model.evaluate(cfg, 1);
    const double t1 = shard::evaluate_sharded(cfg, single, 1, 1).t_task;
    int best = 0;
    for (int s : {2, 4, 8}) {
      if (shard::evaluate_sharded(cfg, single, s, 1).t_task < t1) {
        best = s;
        break;
      }
    }
    std::printf("n=%zu:%s ", n, best ? cat("S=", best).c_str() : "none");
  }
  std::printf("\n");
  bench::write_csv(csv, "escale_scaling");
  return 0;
}
