// Quickstart: decompose one matrix with the high-level API.
//
//   build/examples/quickstart [n]
//
// Generates a random n x n matrix (default 32), runs the DSE-configured
// HeteroSVD accelerator on the simulated Versal fabric, and verifies the
// factors.
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;

  hsvd::Rng rng(2026);
  hsvd::linalg::MatrixD ad = hsvd::linalg::random_gaussian(n, n, rng);
  hsvd::linalg::MatrixF a = ad.cast<float>();

  std::printf("HeteroSVD quickstart: %zux%zu random matrix\n", n, n);
  hsvd::Svd result = hsvd::svd(a);

  std::printf("converged after %d sweeps (rate %.2e)\n", result.iterations,
              result.convergence_rate);
  std::printf("largest singular values:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, n); ++i)
    std::printf(" %.4f", result.sigma[i]);
  std::printf("\n");

  // Verify against the double-precision math.
  std::vector<double> sigma(result.sigma.begin(), result.sigma.end());
  const double orth_u =
      hsvd::linalg::orthogonality_error(result.u.cast<double>());
  const double orth_v =
      hsvd::linalg::orthogonality_error(result.v.cast<double>());
  const double rec = hsvd::linalg::reconstruction_error(
      ad, result.u.cast<double>(), sigma, result.v.cast<double>());
  std::printf("||U^T U - I|| = %.2e, ||V^T V - I|| = %.2e, "
              "||A - U S V^T||/||A|| = %.2e\n",
              orth_u, orth_v, rec);
  std::printf("simulated accelerator latency: %.3f ms\n",
              result.accelerator_seconds * 1e3);

  const bool ok = orth_u < 1e-3 && rec < 1e-4;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
