// MIMO beamforming via batched SVD (the paper's wireless-communication
// motivation, refs [1]-[3]).
//
// A base station estimates a batch of MIMO channel matrices H (one per
// subcarrier / user). SVD-based precoding sends each data stream along a
// right singular vector; the received SNR per stream is sigma_i^2. This
// example decomposes the whole batch on the accelerator, derives the
// water-filling power allocation, and reports the resulting capacity
// against an equal-power baseline -- plus the accelerator's simulated
// batch throughput (the metric Table III optimizes).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"

namespace {

// Water-filling over parallel channels with gains g_i and total power P:
// p_i = max(mu - 1/g_i, 0) with sum p_i = P.
std::vector<double> water_fill(const std::vector<double>& gains, double total) {
  std::vector<double> inv;
  inv.reserve(gains.size());
  for (double g : gains) inv.push_back(1.0 / g);
  std::sort(inv.begin(), inv.end());
  double mu = 0.0;
  std::size_t active = inv.size();
  for (; active >= 1; --active) {
    double sum_inv = 0.0;
    for (std::size_t i = 0; i < active; ++i) sum_inv += inv[i];
    mu = (total + sum_inv) / static_cast<double>(active);
    if (mu > inv[active - 1]) break;  // all `active` channels above water
  }
  std::vector<double> power(gains.size());
  for (std::size_t i = 0; i < gains.size(); ++i)
    power[i] = std::max(mu - 1.0 / gains[i], 0.0);
  return power;
}

double capacity(const std::vector<double>& gains,
                const std::vector<double>& power) {
  double c = 0.0;
  for (std::size_t i = 0; i < gains.size(); ++i)
    c += std::log2(1.0 + gains[i] * power[i]);
  return c;
}

}  // namespace

int main() {
  constexpr std::size_t kAntennas = 16;   // 16x16 MIMO
  constexpr int kSubcarriers = 48;        // one channel matrix each
  constexpr double kTotalPower = 8.0;     // per subcarrier, normalized

  hsvd::Rng rng(7);
  std::vector<hsvd::linalg::MatrixF> channels;
  channels.reserve(kSubcarriers);
  for (int s = 0; s < kSubcarriers; ++s) {
    // Rayleigh-fading i.i.d. channel (real-valued model).
    channels.push_back(
        hsvd::linalg::random_gaussian(kAntennas, kAntennas, rng).cast<float>());
  }

  std::printf("MIMO beamforming: %d channels of %zux%zu\n", kSubcarriers,
              kAntennas, kAntennas);
  hsvd::BatchSvd batch = hsvd::svd_batch(channels);
  std::printf("DSE picked P_eng=%d P_task=%d @ %.0f MHz; simulated "
              "throughput %.1f channels/s\n",
              batch.config.p_eng, batch.config.p_task,
              batch.config.pl_frequency_hz / 1e6,
              batch.throughput_tasks_per_s);

  double cap_wf = 0.0;
  double cap_eq = 0.0;
  for (const auto& svd : batch.results) {
    std::vector<double> gains;
    for (float s : svd.sigma) {
      if (s > 1e-3f) gains.push_back(static_cast<double>(s) * s);
    }
    const auto power = water_fill(gains, kTotalPower);
    cap_wf += capacity(gains, power);
    std::vector<double> equal(gains.size(),
                              kTotalPower / static_cast<double>(gains.size()));
    cap_eq += capacity(gains, equal);
  }
  cap_wf /= kSubcarriers;
  cap_eq /= kSubcarriers;
  std::printf("capacity per subcarrier: water-filling %.2f bit/s/Hz vs "
              "equal power %.2f bit/s/Hz (+%.1f%%)\n",
              cap_wf, cap_eq, 100.0 * (cap_wf - cap_eq) / cap_eq);

  const bool ok = cap_wf >= cap_eq && batch.results.size() == kSubcarriers;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
