// Execution-trace export: run a small configuration with the trace
// recorder attached and emit a Chrome trace-event JSON
// (chrome://tracing or https://ui.perfetto.dev) showing per-resource
// activity -- kernels per core, DMA transfers, stream packets.
//
//   build/examples/trace_explorer [n] [p_eng] [out.json]
#include <cstdio>
#include <cstdlib>

#include "accel/accelerator.hpp"
#include "versal/trace.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const int p_eng = argc > 2 ? std::atoi(argv[2]) : 4;
  const char* out = argc > 3 ? argv[3] : "heterosvd_trace.json";

  hsvd::accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = p_eng;
  cfg.p_task = 1;
  cfg.iterations = 1;
  hsvd::accel::HeteroSvdAccelerator acc(cfg);

  hsvd::versal::TraceRecorder trace;
  acc.attach_trace(&trace);
  auto run = acc.estimate(1);

  std::printf("traced %zux%zu, P_eng=%d: %zu events over %.3f ms\n", n, n,
              p_eng, trace.events().size(), run.task_seconds * 1e3);
  std::printf("busy time: kernels %.3f ms, dma %.3f ms, streams %.3f ms\n",
              trace.busy_seconds(hsvd::versal::TraceKind::kKernel) * 1e3,
              trace.busy_seconds(hsvd::versal::TraceKind::kDma) * 1e3,
              trace.busy_seconds(hsvd::versal::TraceKind::kStream) * 1e3);

  if (!trace.write_chrome_json(out)) {
    std::printf("FAILED to write %s\n", out);
    return 1;
  }
  std::printf("wrote %s (open in chrome://tracing or Perfetto)\nOK\n", out);
  return 0;
}
