// Floorplan and ordering visualizer: a textual rendition of the paper's
// Figs. 3 and 5.
//
//   build/examples/floorplan_viewer [n] [p_eng] [p_task]
//
// Prints the AIE-array floorplan of the chosen configuration and the
// shifting-ring schedule with its per-transition move classification
// (versus the traditional ring under the naive memory strategy).
#include <cstdio>
#include <cstdlib>

#include "accel/placement.hpp"
#include "accel/report.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const int p_eng = argc > 2 ? std::atoi(argv[2]) : 8;
  const int p_task = argc > 3 ? std::atoi(argv[3]) : 2;

  hsvd::accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = p_eng;
  cfg.p_task = p_task;
  const auto placement = hsvd::accel::place(cfg);
  const hsvd::versal::ArrayGeometry geo(cfg.device.aie_rows,
                                        cfg.device.aie_cols);
  std::printf("%s\n",
              hsvd::accel::render_floorplan(placement, geo).c_str());

  std::printf("%s\n",
              hsvd::accel::render_schedule(hsvd::jacobi::OrderingKind::kShiftingRing,
                                           3)
                  .c_str());
  std::printf("%s",
              hsvd::accel::render_schedule(
                  hsvd::jacobi::OrderingKind::kRing, 3,
                  hsvd::accel::MemoryStrategy::kNaive)
                  .c_str());
  return 0;
}
