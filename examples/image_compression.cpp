// Low-rank image compression via SVD (the paper's data-compression
// motivation).
//
// A synthetic "photograph" (smooth gradients + structured features +
// film grain) is decomposed on the accelerator; we sweep the truncation
// rank and report compression ratio, captured energy, and PSNR, plus the
// rank needed for 99% energy.
#include <cmath>
#include <cstdio>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "heterosvd.hpp"
#include "linalg/svd_utils.hpp"

int main() {
  constexpr std::size_t kSize = 96;

  // Synthetic image: low-rank structure (gradients, stripes, a bright
  // blob) plus a little full-rank grain.
  hsvd::Rng rng(5);
  hsvd::linalg::MatrixF image(kSize, kSize);
  for (std::size_t y = 0; y < kSize; ++y) {
    for (std::size_t x = 0; x < kSize; ++x) {
      const double fy = static_cast<double>(y) / kSize;
      const double fx = static_cast<double>(x) / kSize;
      double v = 0.55 + 0.25 * fy - 0.15 * fx;          // lighting gradient
      v += 0.12 * std::sin(14.0 * fx) * std::cos(3.0 * fy);  // texture
      const double dx = fx - 0.6, dy = fy - 0.35;
      v += 0.3 * std::exp(-(dx * dx + dy * dy) / 0.02);  // bright blob
      v += 0.02 * rng.gaussian();                        // grain
      image(y, x) = static_cast<float>(v);
    }
  }

  std::printf("image compression: %zux%zu synthetic photo\n", kSize, kSize);
  hsvd::Svd svd = hsvd::svd(image);

  hsvd::Table table({"rank", "storage", "energy", "PSNR (dB)"});
  for (std::size_t rank : {2u, 4u, 8u, 16u, 32u}) {
    auto approx = hsvd::linalg::low_rank_approx(svd.u, svd.sigma, svd.v, rank);
    const double stored =
        static_cast<double>(rank) * (2 * kSize + 1);  // u, v, sigma
    const double full = static_cast<double>(kSize) * kSize;
    table.add_row({hsvd::cat(rank), hsvd::pct(stored / full, 1),
                   hsvd::pct(hsvd::linalg::captured_energy(svd.sigma, rank), 2),
                   hsvd::fixed(hsvd::linalg::psnr_db(image, approx), 1)});
  }
  table.print();

  const std::size_t r99 = hsvd::linalg::rank_for_energy(svd.sigma, 0.99);
  std::printf("rank for 99%% energy: %zu of %zu\n", r99, kSize);

  auto approx8 = hsvd::linalg::low_rank_approx(svd.u, svd.sigma, svd.v, 8);
  const bool ok = hsvd::linalg::psnr_db(image, approx8) > 20.0 && r99 < kSize;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
