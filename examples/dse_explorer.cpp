// Design-space exploration walkthrough (paper section IV).
//
//   build/examples/dse_explorer [n] [batch]
//
// Enumerates the (P_eng, P_task, Freq) space for the given problem,
// prints the top design points for both objectives with their resources
// and modeled power, and shows the stage-1 P_task frontier per P_eng.
#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "common/table.hpp"
#include "dse/explorer.hpp"

using namespace hsvd;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const int batch = argc > 2 ? std::atoi(argv[2]) : 100;

  dse::DesignSpaceExplorer explorer;
  std::printf("DSE for %zux%zu matrices, batch %d (VCK190 budgets: 400 AIE, "
              "156 PLIO, 967 BRAM, 463 URAM)\n\n",
              n, n, batch);

  // Stage 1: the feasibility frontier.
  Table frontier({"P_eng", "max P_task", "limited by"});
  for (int p_eng = 1; p_eng <= 11; ++p_eng) {
    dse::DseRequest req;
    req.rows = req.cols = n;
    req.batch = batch;
    if (n < 2 * static_cast<std::size_t>(p_eng)) continue;
    auto max_tasks = explorer.max_task_parallelism(req, p_eng);
    if (!max_tasks.has_value()) {
      frontier.add_row({cat(p_eng), "-", "does not fit at all"});
      continue;
    }
    // Diagnose the binding constraint by probing one more task.
    dse::DseRequest probe = req;
    const char* reason = "AIE area / array width";
    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = n;
    cfg.p_eng = p_eng;
    cfg.p_task = *max_tasks + 1;
    if (cfg.p_task <= 26 && accel::try_place(cfg).has_value()) {
      reason = "PL memory (URAM)";
    } else if (*max_tasks == 26) {
      reason = "architectural max";
    }
    frontier.add_row({cat(p_eng), cat(*max_tasks), reason});
    (void)probe;
  }
  std::printf("stage 1 -- task-parallelism frontier:\n");
  frontier.print();

  // Stage 2: ranked design points per objective.
  for (auto objective : {dse::Objective::kLatency, dse::Objective::kThroughput}) {
    dse::DseRequest req;
    req.rows = req.cols = n;
    req.batch = batch;
    req.objective = objective;
    auto points = explorer.enumerate(req);
    std::printf("\nstage 2 -- top design points by %s:\n",
                objective == dse::Objective::kLatency ? "latency" : "throughput");
    Table table({"rank", "P_eng", "P_task", "Freq(MHz)", "latency(ms)",
                 "thr(t/s)", "AIE", "URAM", "power(W)", "EE(t/s/W)"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, points.size()); ++i) {
      const auto& p = points[i];
      table.add_row({cat(i + 1), cat(p.p_eng), cat(p.p_task),
                     fixed(p.frequency_hz / 1e6, 0),
                     fixed(p.latency_seconds * 1e3, 3),
                     fixed(p.throughput_tasks_per_s, 1),
                     cat(p.resources.aie_total()), cat(p.resources.uram),
                     fixed(p.power_watts, 1), fixed(p.energy_efficiency(), 3)});
    }
    table.print();
  }
  return 0;
}
