// Latent-factor recommendation via truncated SVD (the paper's
// recommendation-system motivation, refs [4]-[5]).
//
// A synthetic ratings matrix is generated from ground-truth user/item
// latent factors plus noise, with most entries masked (unobserved).
// The accelerator decomposes the (mean-filled) matrix; the rank-r
// truncation reconstructs the missing ratings. We report RMSE on the
// held-out entries against the noisy-baseline and print top-k
// recommendations for one user.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"

int main() {
  constexpr std::size_t kUsers = 96;
  constexpr std::size_t kItems = 48;
  constexpr std::size_t kRank = 6;     // true latent dimensionality
  constexpr double kObserved = 0.35;   // fraction of ratings observed
  constexpr std::size_t kTruncate = 8; // rank kept by the recommender
  constexpr int kTopK = 5;

  hsvd::Rng rng(11);
  // Ground truth R = P Q^T scaled into a 1..5-ish range, plus noise.
  auto p = hsvd::linalg::random_gaussian(kUsers, kRank, rng);
  auto q = hsvd::linalg::random_gaussian(kItems, kRank, rng);
  hsvd::linalg::MatrixD truth(kUsers, kItems);
  for (std::size_t u = 0; u < kUsers; ++u)
    for (std::size_t i = 0; i < kItems; ++i) {
      double s = 0;
      for (std::size_t t = 0; t < kRank; ++t) s += p(u, t) * q(i, t);
      truth(u, i) = 3.0 + 0.8 * s;
    }

  // Observed matrix: noisy ratings where observed, user-mean elsewhere.
  std::vector<std::vector<bool>> seen(kUsers, std::vector<bool>(kItems));
  hsvd::linalg::MatrixD observed = truth;
  for (std::size_t u = 0; u < kUsers; ++u)
    for (std::size_t i = 0; i < kItems; ++i) {
      seen[u][i] = rng.uniform() < kObserved;
      if (seen[u][i]) observed(u, i) += 0.25 * rng.gaussian();
    }
  for (std::size_t u = 0; u < kUsers; ++u) {
    double mean = 0;
    int cnt = 0;
    for (std::size_t i = 0; i < kItems; ++i)
      if (seen[u][i]) {
        mean += observed(u, i);
        ++cnt;
      }
    mean = cnt > 0 ? mean / cnt : 3.0;
    for (std::size_t i = 0; i < kItems; ++i)
      if (!seen[u][i]) observed(u, i) = mean;
  }

  std::printf("recommender: %zu users x %zu items, %.0f%% observed\n", kUsers,
              kItems, kObserved * 100);
  hsvd::Svd svd = hsvd::svd(observed.cast<float>());

  // Rank-kTruncate reconstruction.
  auto predict = [&](std::size_t u, std::size_t i) {
    double s = 0;
    for (std::size_t t = 0; t < kTruncate; ++t)
      s += static_cast<double>(svd.u(u, t)) * svd.sigma[t] * svd.v(i, t);
    return s;
  };

  double se_svd = 0, se_base = 0;
  int held_out = 0;
  for (std::size_t u = 0; u < kUsers; ++u)
    for (std::size_t i = 0; i < kItems; ++i) {
      if (seen[u][i]) continue;
      const double err = predict(u, i) - truth(u, i);
      const double base_err = observed(u, i) - truth(u, i);  // mean-fill
      se_svd += err * err;
      se_base += base_err * base_err;
      ++held_out;
    }
  const double rmse_svd = std::sqrt(se_svd / held_out);
  const double rmse_base = std::sqrt(se_base / held_out);
  std::printf("held-out RMSE: truncated-SVD %.3f vs mean-fill %.3f "
              "(%.0f%% better)\n",
              rmse_svd, rmse_base, 100.0 * (1.0 - rmse_svd / rmse_base));

  // Top-k unseen items for user 0.
  std::vector<std::pair<double, std::size_t>> scored;
  for (std::size_t i = 0; i < kItems; ++i)
    if (!seen[0][i]) scored.push_back({predict(0, i), i});
  std::sort(scored.rbegin(), scored.rend());
  std::printf("top-%d items for user 0:", kTopK);
  for (int t = 0; t < kTopK && t < static_cast<int>(scored.size()); ++t)
    std::printf(" item%zu(%.2f)", scored[static_cast<std::size_t>(t)].second,
                scored[static_cast<std::size_t>(t)].first);
  std::printf("\n");

  const bool ok = rmse_svd < rmse_base;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
