// Observability export CLI: runs one batch on the simulated accelerator
// with the full observability stack attached and writes the two export
// artifacts -- <prefix>.trace.json (Chrome trace-event timeline, load it
// in Perfetto or chrome://tracing) and <prefix>.metrics.json (metrics
// registry snapshot). Also prints the per-tile utilization heat grid and
// the metrics snapshot as text so a terminal run is useful on its own.
//
//   trace_export [--rows N] [--cols N] [--p-eng N] [--p-task N]
//                [--iterations N] [--batch N] [--seed S]
//                [--inject KIND|none] [--out PREFIX]
//
// --inject (default stream-drop) fires one fault of the named kind so
// the timeline shows the inject/detect/recover instants; "none" runs
// fault-free.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/report.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "versal/faults.hpp"

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic test matrix, entries in [-1, 1] (same generator family
// as the fault campaign's, so runs are reproducible from the seed).
hsvd::linalg::MatrixF make_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  hsvd::linalg::MatrixF m(rows, cols);
  std::uint64_t state = mix64(seed ^ 0x77ace);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      state = mix64(state);
      m(r, c) = static_cast<float>(static_cast<double>(state >> 11) /
                                       static_cast<double>(1ull << 53) *
                                       2.0 -
                                   1.0);
    }
  }
  return m;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "trace_export: bad value for " << flag << ": " << text
              << "\n";
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

// Maps the CLI spelling back to a FaultKind via versal::to_string, so
// the accepted names are exactly the ones the campaign CSV prints.
std::optional<hsvd::versal::FaultKind> parse_kind(const std::string& name) {
  using hsvd::versal::FaultKind;
  for (FaultKind kind :
       {FaultKind::kTileHang, FaultKind::kMemoryBitFlip, FaultKind::kStreamDrop,
        FaultKind::kStreamStall, FaultKind::kDmaDrop, FaultKind::kDmaStall,
        FaultKind::kPlioDegrade}) {
    if (name == hsvd::versal::to_string(kind)) return kind;
  }
  return std::nullopt;
}

// Picks an injection target out of the accelerator's placement: tile
// faults hit a layer-0 orth tile of slot 0, DMA faults an inter-band DMA
// source, PLIO degradation task slot 0.
hsvd::versal::FaultSpec make_spec(hsvd::versal::FaultKind kind,
                                  const hsvd::accel::HeteroSvdAccelerator& acc) {
  using hsvd::versal::FaultKind;
  hsvd::versal::FaultSpec spec;
  spec.kind = kind;
  spec.after_op = 1;
  const auto& task = acc.placement().tasks.front();
  spec.tile = task.orth.front().front();
  if (kind == FaultKind::kTileHang) {
    spec.tile = task.orth.back().front();
  } else if (kind == FaultKind::kDmaDrop || kind == FaultKind::kDmaStall) {
    for (const auto& tr : acc.dataflow(0).transitions) {
      for (const auto& mv : tr.moves) {
        if (mv.is_dma) {
          spec.tile = mv.src;
          return spec;
        }
      }
    }
  } else if (kind == FaultKind::kPlioDegrade) {
    spec.slot = 0;
    spec.tile = hsvd::versal::TileCoord{-1, -1};
    spec.bandwidth_scale = 0.5;
  }
  if (kind == FaultKind::kStreamStall || kind == FaultKind::kDmaStall) {
    spec.stall_seconds = 2e-6;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  hsvd::accel::HeteroSvdConfig config;
  config.rows = 24;
  config.cols = 16;
  config.p_eng = 4;
  config.p_task = 2;
  config.iterations = 3;
  int batch = 4;
  std::uint64_t seed = 1;
  std::string inject = "stream-drop";
  std::string prefix = "heterosvd";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--rows" && has_value) {
      config.rows = static_cast<std::size_t>(parse_u64(argv[++i], "--rows"));
    } else if (arg == "--cols" && has_value) {
      config.cols = static_cast<std::size_t>(parse_u64(argv[++i], "--cols"));
    } else if (arg == "--p-eng" && has_value) {
      config.p_eng = static_cast<int>(parse_u64(argv[++i], "--p-eng"));
    } else if (arg == "--p-task" && has_value) {
      config.p_task = static_cast<int>(parse_u64(argv[++i], "--p-task"));
    } else if (arg == "--iterations" && has_value) {
      config.iterations = static_cast<int>(parse_u64(argv[++i], "--iterations"));
    } else if (arg == "--batch" && has_value) {
      batch = static_cast<int>(parse_u64(argv[++i], "--batch"));
    } else if (arg == "--seed" && has_value) {
      seed = parse_u64(argv[++i], "--seed");
    } else if (arg == "--inject" && has_value) {
      inject = argv[++i];
    } else if (arg == "--out" && has_value) {
      prefix = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: trace_export [--rows N] [--cols N] [--p-eng N] "
                   "[--p-task N] [--iterations N] [--batch N] [--seed S] "
                   "[--inject KIND|none] [--out PREFIX]\n";
      return 0;
    } else {
      std::cerr << "trace_export: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (batch < 1) {
    std::cerr << "trace_export: --batch must be >= 1\n";
    return 2;
  }

  std::vector<hsvd::linalg::MatrixF> matrices;
  matrices.reserve(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    matrices.push_back(make_matrix(config.rows, config.cols,
                                   mix64(seed) + static_cast<std::uint64_t>(i)));
  }

  hsvd::obs::ObsContext obs;
  obs.enable_tracing();

  hsvd::accel::HeteroSvdAccelerator acc(config);
  hsvd::versal::FaultPlan plan;
  std::optional<hsvd::versal::FaultInjector> injector;
  if (inject != "none") {
    const auto kind = parse_kind(inject);
    if (!kind.has_value()) {
      std::cerr << "trace_export: unknown fault kind " << inject
                << " (try tile-hang, memory-bit-flip, stream-drop, "
                   "stream-stall, dma-drop, dma-stall, plio-degrade, none)\n";
      return 2;
    }
    plan.seed = seed;
    plan.faults.push_back(make_spec(*kind, acc));
    injector.emplace(plan);
    acc.attach_faults(&*injector);
  }
  acc.attach_observer(&obs);
  hsvd::obs::ScopedPoolObservation observe(&obs);

  const hsvd::accel::RunResult run = acc.run(matrices);

  const std::string trace_path = prefix + ".trace.json";
  const std::string metrics_path = prefix + ".metrics.json";
  if (!obs.tracer()->write_chrome_json(trace_path)) {
    std::cerr << "trace_export: cannot write " << trace_path << "\n";
    return 2;
  }
  const hsvd::obs::MetricsSnapshot snapshot = obs.metrics().snapshot();
  if (!snapshot.write_json(metrics_path)) {
    std::cerr << "trace_export: cannot write " << metrics_path << "\n";
    return 2;
  }

  std::cout << hsvd::accel::render_utilization(run.utilization) << "\n"
            << snapshot.to_text();
  std::cout << "batch of " << batch << ": " << run.failed_tasks
            << " failed tasks, " << run.recovery_runs << " recovery runs, "
            << obs.tracer()->event_count() << " trace events\n"
            << "wrote " << trace_path << " and " << metrics_path << "\n";
  return 0;
}
