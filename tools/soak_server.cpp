// soak_server -- chaos soak driver for the serving layer.
//
// Pumps a stream of randomized requests through an SvdServer whose
// fabric is fault-injected, then prints a survival report: every
// request must reach a terminal status (ok / not-converged / shed /
// expired / circuit-open / failed), and -- with --verify -- every
// chaos-free request that succeeded must match a reference
// decomposition bit for bit, proving the resilience machinery (and the
// QoS layer's coalescing and result cache) never perturbs healthy
// work. Exits nonzero when any checked property is violated, so CI can
// gate on it.
//
//   soak_server [--requests N] [--seed S] [--chaos P] [--queue N]
//               [--workers N] [--deadline-ms D] [--retries N]
//               [--burst] [--verify] [--metrics file.json]
//               [--tenant SPEC]... [--bursty-tenant NAME]
//               [--bursty-offer N] [--fairness-tol F]
//               [--priority-latency P] [--priority-batch P]
//               [--dup P] [--dup-pool N] [--cache N]
//               [--coalesce N] [--coalesce-window-ms W]
//               [--qos-csv file.csv] [--silent-rate P]
//               [--attest off|sample:p|always] [--backend SPEC]
//               [--scenario-rate P]
//
// --chaos P       fraction of requests carrying an injected fault plan
//                 (default 0.3; each chaotic request gets its own
//                 seeded FaultInjector, so the run replays exactly).
//
// Silent-corruption scenario (the verified-compute soak):
//
// --silent-rate P fraction of requests carrying a kSilentError plan: a
//                 finite, plausible-looking exponent flip applied to
//                 the finished factors that no dataflow detection point
//                 sees. Only result attestation can catch it, so the
//                 attestation policy defaults to "always" whenever P >
//                 0; the run prints a per-backend breakout of checked /
//                 caught / escalated / escaped corruptions and any
//                 escape (a fired corruption whose result still passed
//                 the primary check) is a violation.
// --attest SPEC   explicit attestation policy (off | sample:p |
//                 always) for every request, overriding the default.
// --backend SPEC  route every request through the backend router
//                 ("auto", "auto:latency:0.005", or a pin like "cpu"),
//                 exercising the health-aware routing path: verified
//                 failures feed each backend's error budget, and
//                 quarantined backends stop winning routes until a
//                 half-open probe verifies clean.
//
// Workload-scenario traffic (DESIGN.md section 16):
//
// --scenario-rate P fraction of requests tagged as scenario traffic,
//                 alternating deterministically between a tall-skinny
//                 payload (aspect ratio 8, engaging the QR
//                 pre-reduction under scenario "auto") and a truncated
//                 top-k query on the standard payload. Scenario
//                 requests dispatch solo and cache under
//                 scenario-qualified keys; they are kept chaos-free so
//                 the --verify gate covers them, replaying each
//                 success against a reference carrying the same
//                 scenario options.
// --burst         submit everything at once instead of keeping a
//                 sliding window of queue-capacity requests in flight
//                 (maximizes load-shedding instead of minimizing it).
// --deadline-ms   per-request budget on the host monotonic clock
//                 (0 = none); expiry is cancelled cooperatively.
// --fault-retries in-run masked-tile recovery rounds (default 0 here,
//                 unlike the library's 2: surfacing faults to the
//                 serving layer is the point of the soak -- raise it to
//                 watch the accelerator absorb faults itself instead).
//
// Multi-tenant QoS scenario (active once at least one --tenant is
// given; see serve/qos.hpp):
//
// --tenant SPEC        name[:weight[:rate[:burst]]], repeatable.
// --bursty-tenant NAME requests are offered round-robin, one slot per
//                      tenant per cycle -- except NAME, which gets
//                      --bursty-offer slots (default 4): an abusive
//                      client offering a multiple of everyone else.
//                      Give it a tight quota and the excess is shed at
//                      admission without touching the other tenants.
// --fairness-tol F     enables the fairness gate: among the background
//                      (non-bursty) tenants, each one's share of
//                      completed requests must stay within F of its
//                      configured weight share. Meaningful under
//                      overload (use --burst plus --deadline-ms so the
//                      served share is set by the scheduler, not by
//                      everything eventually finishing).
// --priority-latency P / --priority-batch P
//                      fraction of requests submitted in the latency /
//                      batch class (the rest are normal). Latency work
//                      preempts running batch work at sweep barriers.
// --dup P / --dup-pool N
//                      fraction of requests drawing their matrix from a
//                      small pool of N repeated payloads (duplicate
//                      traffic for the result cache).
// --cache N            enable the digest-keyed result cache, N entries.
// --coalesce N         shape-bucketed micro-batching, up to N requests
//                      per svd_batch dispatch; --coalesce-window-ms
//                      bounds the admission-age spread inside a batch.
// --qos-csv PATH       per-tenant CSV: offered/admitted/completed
//                      counts, per-status breakdown, client-observed
//                      p50/p99 latency, shed rate, completed share,
//                      and the global batch-fill ratio.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "backend/router.hpp"
#include "common/csv.hpp"
#include "obs/obs.hpp"
#include "serve/qos.hpp"
#include "serve/server.hpp"
#include "verify/policy.hpp"
#include "versal/faults.hpp"

namespace {

using namespace hsvd;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_roll(std::uint64_t x) {
  return static_cast<double>(x >> 11) / static_cast<double>(1ull << 53);
}

// Deterministic request matrix: entries in [-1, 1].
linalg::MatrixF make_matrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  linalg::MatrixF m(rows, cols);
  std::uint64_t state = mix64(seed ^ 0x50a3ull);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      state = mix64(state);
      m(r, c) = static_cast<float>(static_cast<double>(state >> 11) /
                                       static_cast<double>(1ull << 53) * 2.0 -
                                   1.0);
    }
  }
  return m;
}

// Fault surfaces of the pinned soak configuration, harvested once from
// a probe placement so every chaos plan targets a real resource.
struct FaultSurfaces {
  std::vector<versal::TileCoord> orth_tiles;   // any kernel-running tile
  std::vector<versal::TileCoord> entry_tiles;  // layer-0 packet entries
  std::vector<versal::TileCoord> dma_sources;
  int slots = 1;
};

FaultSurfaces harvest_surfaces(const accel::HeteroSvdConfig& config) {
  accel::HeteroSvdAccelerator probe(config);
  FaultSurfaces s;
  const auto& tasks = probe.placement().tasks;
  s.slots = static_cast<int>(tasks.size());
  for (std::size_t slot = 0; slot < tasks.size(); ++slot) {
    for (const auto& layer : tasks[slot].orth) {
      for (const auto& tile : layer) s.orth_tiles.push_back(tile);
    }
    for (const auto& tile : tasks[slot].orth.front()) {
      s.entry_tiles.push_back(tile);
    }
    for (const auto& tr : probe.dataflow(slot).transitions) {
      for (const auto& mv : tr.moves) {
        if (mv.is_dma) s.dma_sources.push_back(mv.src);
      }
    }
  }
  return s;
}

versal::FaultPlan make_chaos_plan(const FaultSurfaces& s, std::uint64_t salt) {
  using versal::FaultKind;
  static constexpr FaultKind kKinds[] = {
      FaultKind::kTileHang,   FaultKind::kMemoryBitFlip,
      FaultKind::kStreamDrop, FaultKind::kStreamStall,
      FaultKind::kDmaDrop,    FaultKind::kDmaStall,
      FaultKind::kPlioDegrade};
  versal::FaultSpec spec;
  spec.kind = kKinds[mix64(salt ^ 0x1d) % (sizeof(kKinds) / sizeof(kKinds[0]))];
  spec.after_op = mix64(salt ^ 0xad) % 4;
  switch (spec.kind) {
    case FaultKind::kTileHang:
      spec.tile = s.orth_tiles[mix64(salt ^ 0xe9) % s.orth_tiles.size()];
      break;
    case FaultKind::kMemoryBitFlip:
    case FaultKind::kStreamDrop:
    case FaultKind::kStreamStall:
      spec.tile = s.entry_tiles[mix64(salt ^ 0x3c) % s.entry_tiles.size()];
      break;
    case FaultKind::kDmaDrop:
    case FaultKind::kDmaStall:
      spec.tile = s.dma_sources.empty()
                      ? s.entry_tiles[mix64(salt ^ 0x3c) % s.entry_tiles.size()]
                      : s.dma_sources[mix64(salt ^ 0x77) % s.dma_sources.size()];
      break;
    case FaultKind::kPlioDegrade:
      spec.slot = static_cast<int>(mix64(salt ^ 0x5107) %
                                   static_cast<std::uint64_t>(s.slots));
      spec.tile = versal::TileCoord{-1, -1};
      spec.bandwidth_scale = 0.25 + 0.5 * (mix64(salt ^ 0xbb) % 3) / 2.0;
      break;
  }
  if (spec.kind == FaultKind::kStreamStall ||
      spec.kind == FaultKind::kDmaStall) {
    spec.stall_seconds = 1e-6 * (1 + mix64(salt ^ 0xd1) % 5);
  }
  versal::FaultPlan plan;
  plan.seed = salt;
  plan.faults.push_back(spec);
  return plan;
}

// Silent-corruption plan: one kSilentError spec armed for the first
// result presentation. Injector-carrying requests run solo (never
// coalesced), so the request's factors are always presented as task
// slot 0 and the corruption fires exactly once.
versal::FaultPlan make_silent_plan(std::uint64_t salt) {
  versal::FaultSpec spec;
  spec.kind = versal::FaultKind::kSilentError;
  spec.slot = 0;
  spec.tile = versal::TileCoord{0, 0};
  spec.after_op = 0;
  versal::FaultPlan plan;
  plan.seed = salt;
  plan.faults.push_back(spec);
  return plan;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "soak_server: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

bool same_matrix(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string fmt(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::uint64_t seed = 1;
  double chaos = 0.3;
  std::size_t queue = 32;
  int workers = 4;
  double deadline_ms = 0.0;
  int retries = 3;
  int fault_retries = 0;
  bool burst = false;
  bool verify = false;
  std::string metrics_path;
  // Multi-tenant QoS scenario.
  std::vector<serve::TenantConfig> tenants;
  std::string bursty_tenant;
  std::size_t bursty_offer = 4;
  double fairness_tol = -1.0;  // < 0 disables the gate
  double priority_latency = 0.0;
  double priority_batch = 0.0;
  double dup_fraction = 0.0;
  std::size_t dup_pool = 8;
  std::size_t cache_capacity = 0;
  std::size_t coalesce = 1;
  double coalesce_window_ms = 10.0;
  std::string qos_csv_path;
  // Verified-compute scenario.
  double silent_rate = 0.0;
  // Workload-scenario traffic.
  double scenario_rate = 0.0;
  std::string attest_spec;
  backend::BackendSpec backend_spec;
  bool backend_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--requests" && has_value) {
      requests = parse_u64(argv[++i], "--requests");
    } else if (arg == "--seed" && has_value) {
      seed = parse_u64(argv[++i], "--seed");
    } else if (arg == "--chaos" && has_value) {
      chaos = std::atof(argv[++i]);
    } else if (arg == "--queue" && has_value) {
      queue = parse_u64(argv[++i], "--queue");
    } else if (arg == "--workers" && has_value) {
      workers = static_cast<int>(parse_u64(argv[++i], "--workers"));
    } else if (arg == "--deadline-ms" && has_value) {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--retries" && has_value) {
      retries = static_cast<int>(parse_u64(argv[++i], "--retries"));
    } else if (arg == "--fault-retries" && has_value) {
      fault_retries = static_cast<int>(parse_u64(argv[++i], "--fault-retries"));
    } else if (arg == "--burst") {
      burst = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--metrics" && has_value) {
      metrics_path = argv[++i];
    } else if (arg == "--tenant" && has_value) {
      try {
        tenants.push_back(serve::parse_tenant_spec(argv[++i]));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "soak_server: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--bursty-tenant" && has_value) {
      bursty_tenant = argv[++i];
    } else if (arg == "--bursty-offer" && has_value) {
      bursty_offer = parse_u64(argv[++i], "--bursty-offer");
    } else if (arg == "--fairness-tol" && has_value) {
      fairness_tol = std::atof(argv[++i]);
    } else if (arg == "--priority-latency" && has_value) {
      priority_latency = std::atof(argv[++i]);
    } else if (arg == "--priority-batch" && has_value) {
      priority_batch = std::atof(argv[++i]);
    } else if (arg == "--dup" && has_value) {
      dup_fraction = std::atof(argv[++i]);
    } else if (arg == "--dup-pool" && has_value) {
      dup_pool = parse_u64(argv[++i], "--dup-pool");
    } else if (arg == "--cache" && has_value) {
      cache_capacity = parse_u64(argv[++i], "--cache");
    } else if (arg == "--coalesce" && has_value) {
      coalesce = parse_u64(argv[++i], "--coalesce");
    } else if (arg == "--coalesce-window-ms" && has_value) {
      coalesce_window_ms = std::atof(argv[++i]);
    } else if (arg == "--qos-csv" && has_value) {
      qos_csv_path = argv[++i];
    } else if (arg == "--silent-rate" && has_value) {
      silent_rate = std::atof(argv[++i]);
    } else if (arg == "--scenario-rate" && has_value) {
      scenario_rate = std::atof(argv[++i]);
    } else if (arg == "--attest" && has_value) {
      attest_spec = argv[++i];
    } else if (arg == "--backend" && has_value) {
      try {
        backend_spec = backend::parse_backend_spec(argv[++i]);
        backend_set = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "soak_server: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: soak_server [--requests N] [--seed S] [--chaos P] "
          "[--queue N] [--workers N] [--deadline-ms D] [--retries N] "
          "[--fault-retries N] [--burst] [--verify] [--metrics file.json] "
          "[--tenant SPEC]... [--bursty-tenant NAME] [--bursty-offer N] "
          "[--fairness-tol F] [--priority-latency P] [--priority-batch P] "
          "[--dup P] [--dup-pool N] [--cache N] [--coalesce N] "
          "[--coalesce-window-ms W] [--qos-csv file.csv] "
          "[--silent-rate P] [--attest off|sample:p|always] "
          "[--backend SPEC] [--scenario-rate P]\n");
      return 0;
    } else {
      std::fprintf(stderr, "soak_server: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  // Attestation policy: explicit --attest wins; otherwise silent
  // corruption forces "always" (nothing else can catch it).
  verify::VerifyPolicy attest;
  try {
    if (!attest_spec.empty()) {
      attest = verify::parse_verify_policy(attest_spec);
    } else if (silent_rate > 0.0) {
      attest = verify::parse_verify_policy("always");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak_server: %s\n", e.what());
    return 2;
  }

  const bool qos_mode = !tenants.empty();
  std::size_t bursty_index = tenants.size();  // sentinel: none
  if (qos_mode && !bursty_tenant.empty()) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      if (tenants[t].name == bursty_tenant) bursty_index = t;
    }
    if (bursty_index == tenants.size()) {
      std::fprintf(stderr, "soak_server: --bursty-tenant %s is not a --tenant\n",
                   bursty_tenant.c_str());
      return 2;
    }
  }

  // Offer schedule: one slot per tenant per cycle, except the bursty
  // tenant, which offers `bursty_offer` slots -- a client hammering the
  // service beyond its quota.
  std::vector<std::size_t> offer_schedule;
  if (qos_mode) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const std::size_t slots = (t == bursty_index) ? bursty_offer : 1;
      for (std::size_t k = 0; k < slots; ++k) offer_schedule.push_back(t);
    }
  }

  // Pinned micro-architecture: small enough for a fast soak, two bands
  // and two task slots so every fault surface (inter-band DMA, slot
  // isolation) exists.
  accel::HeteroSvdConfig config;
  config.rows = 24;
  config.cols = 16;
  config.p_eng = 4;
  config.p_task = 2;
  config.iterations = 3;

  const FaultSurfaces surfaces = harvest_surfaces(config);

  // Truncation rank for scenario-tagged top-k queries: well inside the
  // pinned 16-column spectrum so the sketch subspace converges at the
  // soak's iteration budget.
  constexpr std::size_t kScenarioTopK = 4;

  obs::ObsContext observer;
  serve::ServerOptions options;
  options.queue_capacity = queue;
  options.workers = workers;
  options.svd.config = config;
  options.svd.want_v = false;
  options.svd.threads = 1;  // parallelism comes from the server workers
  options.svd.fault_retries = fault_retries;
  options.retry.max_attempts = retries < 1 ? 1 : retries;
  options.retry.seed = seed;
  options.retry.initial_backoff_seconds = 1e-4;
  options.retry.max_backoff_seconds = 1e-2;
  options.default_deadline_seconds = deadline_ms / 1e3;
  options.observer = &observer;
  options.svd.verify = attest;
  // Per-request runs share the soak's registry so the attestation
  // (verify.*) and health-ledger (route.health.*) counters land in the
  // exported --metrics JSON alongside the serve.* counters.
  options.svd.observer = &observer;
  if (qos_mode) {
    options.qos.tenants = tenants;
    options.qos.coalesce_max_batch = coalesce < 1 ? 1 : coalesce;
    options.qos.coalesce_window_seconds = coalesce_window_ms / 1e3;
    options.qos.cache_enabled = cache_capacity > 0;
    options.qos.cache_capacity = cache_capacity > 0 ? cache_capacity : 64;
  }

  // Injectors must outlive the server (requests reference them raw).
  std::vector<std::unique_ptr<versal::FaultInjector>> injectors;
  injectors.reserve(requests);

  std::vector<bool> chaotic(requests, false);
  std::vector<bool> silent(requests, false);
  // 0 = plain, 1 = tall-skinny payload, 2 = truncated top-k query.
  std::vector<char> scenario_kind(requests, 0);
  std::vector<versal::FaultInjector*> request_injector(requests, nullptr);
  std::vector<serve::Response> responses(requests);
  std::vector<char> terminal(requests, 0);
  std::vector<std::uint64_t> matrix_seed(requests, 0);
  std::vector<std::size_t> request_tenant(requests, 0);
  std::vector<serve::Priority> request_priority(requests,
                                                serve::Priority::kNormal);

  int exit_violations = 0;
  {
    serve::SvdServer server(options);
    std::deque<std::pair<std::size_t, std::future<serve::Response>>> window;
    const auto drain_one = [&]() {
      auto [index, future] = std::move(window.front());
      window.pop_front();
      responses[index] = future.get();
      terminal[index] = 1;
    };
    for (std::size_t i = 0; i < requests; ++i) {
      serve::Request request;
      // Duplicate traffic draws from a small payload pool so the result
      // cache has something to hit; everything else gets a unique seed.
      std::uint64_t mseed = seed + i;
      const double dup_roll = unit_roll(mix64(seed ^ (0xd0b1 + i)));
      if (dup_fraction > 0.0 && dup_pool > 0 && dup_roll < dup_fraction) {
        mseed = seed + 0xca11ull + mix64(seed ^ (0xca11 + i)) % dup_pool;
      }
      matrix_seed[i] = mseed;
      request.matrix = make_matrix(config.rows, config.cols, mseed);
      const double roll =
          static_cast<double>(mix64(seed ^ (0xc0 + i)) >> 11) /
          static_cast<double>(1ull << 53);
      const double silent_roll = unit_roll(mix64(seed ^ (0x511e47 + i)));
      if (silent_rate > 0.0 && silent_roll < silent_rate) {
        // Silent corruption is its own chaos class: excluded from the
        // bit-identity verify gate (its factors are corrupted on
        // purpose) and scored against the attestation ladder instead.
        silent[i] = true;
        chaotic[i] = true;
        injectors.push_back(std::make_unique<versal::FaultInjector>(
            make_silent_plan(mix64(seed ^ (0xde4d + i)))));
        request.fault_injector = injectors.back().get();
        request_injector[i] = injectors.back().get();
      } else if (roll < chaos) {
        chaotic[i] = true;
        injectors.push_back(std::make_unique<versal::FaultInjector>(
            make_chaos_plan(surfaces, mix64(seed ^ (0x5107 + i)))));
        request.fault_injector = injectors.back().get();
      } else if (scenario_rate > 0.0 &&
                 unit_roll(mix64(seed ^ (0x5ce9 + i))) < scenario_rate) {
        // Scenario traffic is kept chaos-free: it exercises the
        // front-end dispatch, solo scheduling, and scenario-qualified
        // cache keys, and the --verify gate below holds it to
        // bit-identical replays.
        if (mix64(seed ^ (0x7a11 + i)) & 1) {
          // Tall-skinny payload at the auto-engagement ratio: the
          // pinned config re-derives rows/cols per call, so the 8x
          // aspect only changes the host QR front-end, not the fabric.
          scenario_kind[i] = 1;
          request.matrix = make_matrix(config.cols * 8, config.cols, mseed);
          request.scenario = "auto";
        } else {
          scenario_kind[i] = 2;
          request.top_k = kScenarioTopK;
        }
      }
      if (backend_set) {
        request.backend = backend_spec.backend;
        request.slo = backend_spec.slo;
      }
      if (qos_mode) {
        const std::size_t tenant_idx =
            offer_schedule[i % offer_schedule.size()];
        request_tenant[i] = tenant_idx;
        request.tenant = tenants[tenant_idx].name;
        const double prio_roll = unit_roll(mix64(seed ^ (0x9910 + i)));
        if (prio_roll < priority_latency) {
          request.priority = serve::Priority::kLatency;
        } else if (prio_roll > 1.0 - priority_batch) {
          request.priority = serve::Priority::kBatch;
        }
        request_priority[i] = request.priority;
      }
      if (!burst) {
        while (window.size() >= queue) drain_one();
      }
      window.emplace_back(i, server.submit(std::move(request)));
    }
    while (!window.empty()) drain_one();
    server.shutdown();

    const serve::ServerStats stats = server.stats();
    int counts[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& response : responses) {
      ++counts[static_cast<int>(response.status)];
    }
    std::printf("soak report: %zu requests, %d workers, queue %zu, chaos "
                "%.0f%%\n",
                requests, workers, queue, chaos * 100.0);
    std::printf(
        "  ok %d  not-converged %d  shed %d  expired %d  circuit-open %d  "
        "failed %d\n",
        counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]);
    std::printf("  retries %llu; breaker: %llu trips (state %s); peak queue "
                "%zu\n",
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.breaker_trips),
                serve::to_string(stats.breaker_state), stats.peak_queue_depth);
    if (qos_mode) {
      const double fill =
          stats.batch_dispatches > 0
              ? static_cast<double>(stats.batch_tasks) /
                    static_cast<double>(stats.batch_dispatches)
              : 0.0;
      std::printf("  qos: quota-shed %llu  preemptions %llu  cache %llu/%llu "
                  "hit/miss  batch fill %.2f (%llu dispatches)\n",
                  static_cast<unsigned long long>(stats.quota_shed),
                  static_cast<unsigned long long>(stats.preemptions),
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses),
                  fill,
                  static_cast<unsigned long long>(stats.batch_dispatches));
    }
    if (scenario_rate > 0.0) {
      int tall = 0;
      int tall_ok = 0;
      int trunc = 0;
      int trunc_ok = 0;
      for (std::size_t i = 0; i < requests; ++i) {
        const bool ok = responses[i].status == serve::ServeStatus::kOk;
        if (scenario_kind[i] == 1) {
          ++tall;
          tall_ok += ok ? 1 : 0;
        } else if (scenario_kind[i] == 2) {
          ++trunc;
          trunc_ok += ok ? 1 : 0;
        }
      }
      std::printf(
          "  scenarios: tall-skinny %d (%d ok)  truncated top-%zu %d (%d "
          "ok)\n",
          tall, tall_ok, kScenarioTopK, trunc, trunc_ok);
    }

    int violations = 0;
    for (std::size_t i = 0; i < requests; ++i) {
      if (!terminal[i]) {
        std::fprintf(stderr, "VIOLATION: request %zu never became terminal\n",
                     i);
        ++violations;
      }
    }

    // Per-tenant breakout: sheds split by cause (quota vs queue), plus
    // deadline expiry and breaker rejections, so an overload run shows
    // *why* each tenant lost work.
    std::vector<std::vector<double>> latencies(tenants.size());
    std::vector<std::uint64_t> completed(tenants.size(), 0);
    std::vector<std::uint64_t> completed_normal(tenants.size(), 0);
    if (qos_mode) {
      for (std::size_t i = 0; i < requests; ++i) {
        const serve::Response& r = responses[i];
        if (r.status == serve::ServeStatus::kOk ||
            r.status == serve::ServeStatus::kNotConverged) {
          ++completed[request_tenant[i]];
          if (request_priority[i] == serve::Priority::kNormal) {
            ++completed_normal[request_tenant[i]];
          }
          latencies[request_tenant[i]].push_back(r.queue_seconds +
                                                 r.service_seconds);
        }
      }
      std::printf("  per-tenant:\n");
      std::printf(
          "    %-10s %8s %8s %10s %10s %8s %8s %8s %9s %7s %7s\n", "tenant",
          "offered", "ok", "not-conv", "shed-quota", "shed-q", "expired",
          "breaker", "failed", "preempt", "cached");
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        const serve::TenantStats& ts = stats.tenants.at(tenants[t].name);
        std::printf(
            "    %-10s %8llu %8llu %10llu %10llu %8llu %8llu %8llu %9llu "
            "%7llu %7llu\n",
            tenants[t].name.c_str(),
            static_cast<unsigned long long>(ts.submitted),
            static_cast<unsigned long long>(ts.ok),
            static_cast<unsigned long long>(ts.not_converged),
            static_cast<unsigned long long>(ts.shed_quota),
            static_cast<unsigned long long>(ts.shed_queue),
            static_cast<unsigned long long>(ts.expired),
            static_cast<unsigned long long>(ts.circuit_open),
            static_cast<unsigned long long>(ts.failed),
            static_cast<unsigned long long>(ts.preemptions),
            static_cast<unsigned long long>(ts.cache_hits));
      }

      // Fairness gate: among the background tenants, completed share
      // must track configured weight share within the tolerance.
      // Measured on normal-class completions only: fair-share is a
      // within-class guarantee, and the latency/batch classes trade it
      // for dispatch-order priority by design.
      if (fairness_tol >= 0.0) {
        double weight_sum = 0.0;
        std::uint64_t completed_sum = 0;
        for (std::size_t t = 0; t < tenants.size(); ++t) {
          if (t == bursty_index) continue;
          weight_sum += tenants[t].weight;
          completed_sum += completed_normal[t];
        }
        if (completed_sum == 0 || weight_sum <= 0.0) {
          std::fprintf(stderr,
                       "VIOLATION: fairness gate has no completed background "
                       "requests to measure\n");
          ++violations;
        } else {
          for (std::size_t t = 0; t < tenants.size(); ++t) {
            if (t == bursty_index) continue;
            const double share = static_cast<double>(completed_normal[t]) /
                                 static_cast<double>(completed_sum);
            const double target = tenants[t].weight / weight_sum;
            std::printf(
                "  fairness: %-10s normal-class completed share %.3f "
                "(target %.3f)\n",
                tenants[t].name.c_str(), share, target);
            if (share < target - fairness_tol ||
                share > target + fairness_tol) {
              std::fprintf(stderr,
                           "VIOLATION: tenant %s normal-class completed share "
                           "%.3f is outside %.3f +/- %.3f\n",
                           tenants[t].name.c_str(), share, target,
                           fairness_tol);
              ++violations;
            }
          }
        }
      }
    }

    if (attest.enabled()) {
      // Verified-compute breakout: per serving backend, how many
      // results were checked, how many escalated past the primary
      // execution, and -- for requests whose silent corruption actually
      // fired -- whether the attestation ladder caught it (the primary
      // check failed) or the corrupted factors escaped (passed the
      // primary check, or were never checked). Escapes are violations:
      // the whole point of the verify layer is that a fired silent
      // corruption never reaches the caller unflagged.
      struct BackendScore {
        int checked = 0;
        int escalated = 0;
        int caught = 0;
        int escaped = 0;
        int silent_fired = 0;
      };
      std::map<std::string, BackendScore> scores;
      int total_escapes = 0;
      int total_fired = 0;
      for (std::size_t i = 0; i < requests; ++i) {
        const serve::Response& r = responses[i];
        const verify::VerifyReport& rep = r.result.verify_report;
        BackendScore& sc =
            scores[r.backend.empty() ? std::string("classic") : r.backend];
        if (rep.checked) ++sc.checked;
        if (rep.escalated()) ++sc.escalated;
        const bool fired = silent[i] && request_injector[i] != nullptr &&
                           request_injector[i]->event_count() > 0;
        if (!fired) continue;
        ++sc.silent_fired;
        ++total_fired;
        const bool caught =
            rep.checked &&
            !(rep.verified && rep.rung == verify::VerifyRung::kPrimary);
        if (caught) {
          ++sc.caught;
        } else {
          ++sc.escaped;
          ++total_escapes;
          std::fprintf(stderr,
                       "VIOLATION: request %zu: silent corruption fired but "
                       "the result escaped attestation (backend %s)\n",
                       i, r.backend.empty() ? "classic" : r.backend.c_str());
          ++violations;
        }
      }
      std::printf("  attestation (%s): %d silent corruptions fired, %d "
                  "escaped\n",
                  verify::to_string(attest).c_str(), total_fired,
                  total_escapes);
      std::printf("    %-12s %8s %10s %8s %8s %8s\n", "backend", "checked",
                  "escalated", "silent", "caught", "escaped");
      for (const auto& [name, sc] : scores) {
        std::printf("    %-12s %8d %10d %8d %8d %8d\n", name.c_str(),
                    sc.checked, sc.escalated, sc.silent_fired, sc.caught,
                    sc.escaped);
      }
    }

    if (verify) {
      // Every chaos-free success must match a fresh, injector-free
      // reference decomposition bit for bit -- including results that
      // were served from the cache or from a coalesced svd_batch.
      SvdOptions reference_options;
      reference_options.config = config;
      reference_options.want_v = false;
      reference_options.threads = 1;
      std::size_t checked = 0;
      for (std::size_t i = 0; i < requests; ++i) {
        if (chaotic[i] || responses[i].status != serve::ServeStatus::kOk) {
          continue;
        }
        // Routed requests are compared against the backend that served
        // them: a pin replays that exact execution path (and bypasses
        // health admission), so quarantine-driven re-routing during the
        // soak cannot fake a divergence.
        SvdOptions per_request = reference_options;
        if (backend_set && !responses[i].backend.empty()) {
          per_request.backend = responses[i].backend;
        }
        // Scenario-tagged requests replay with the same scenario
        // intent: the tall payload re-derives its shape from the
        // recorded seed, and a top-k query pins the same rank --
        // otherwise the reference factors would not even share the
        // served result's dimensions.
        if (scenario_kind[i] == 2) per_request.top_k = kScenarioTopK;
        const linalg::MatrixF reference_matrix =
            scenario_kind[i] == 1
                ? make_matrix(config.cols * 8, config.cols, matrix_seed[i])
                : make_matrix(config.rows, config.cols, matrix_seed[i]);
        const Svd reference = svd(reference_matrix, per_request);
        ++checked;
        if (!same_matrix(responses[i].result.u, reference.u) ||
            responses[i].result.sigma != reference.sigma ||
            responses[i].result.iterations != reference.iterations) {
          std::fprintf(stderr,
                       "VIOLATION: request %zu diverged from the chaos-free "
                       "reference\n",
                       i);
          ++violations;
        }
      }
      std::printf("  verify: %zu clean successes checked against chaos-free "
                  "references\n",
                  checked);
    }

    if (qos_mode && !qos_csv_path.empty()) {
      const double fill_ratio =
          stats.batch_dispatches > 0
              ? static_cast<double>(stats.batch_tasks) /
                    static_cast<double>(stats.batch_dispatches)
              : 0.0;
      std::uint64_t completed_total = 0;
      for (std::uint64_t c : completed) completed_total += c;
      CsvWriter csv({"tenant", "weight", "offered", "admitted", "completed",
                     "ok", "not_converged", "shed_quota", "shed_queue",
                     "expired", "circuit_open", "failed", "preemptions",
                     "cache_hits", "coalesced", "p50_ms", "p99_ms",
                     "shed_rate", "completed_share", "batch_fill_ratio"});
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        const serve::TenantStats& ts = stats.tenants.at(tenants[t].name);
        std::vector<double> sorted = latencies[t];
        std::sort(sorted.begin(), sorted.end());
        const double shed_rate =
            ts.submitted > 0
                ? static_cast<double>(ts.shed_quota + ts.shed_queue) /
                      static_cast<double>(ts.submitted)
                : 0.0;
        const double share =
            completed_total > 0 ? static_cast<double>(completed[t]) /
                                      static_cast<double>(completed_total)
                                : 0.0;
        csv.add_row({tenants[t].name, fmt(tenants[t].weight),
                     std::to_string(ts.submitted), std::to_string(ts.admitted),
                     std::to_string(completed[t]), std::to_string(ts.ok),
                     std::to_string(ts.not_converged),
                     std::to_string(ts.shed_quota),
                     std::to_string(ts.shed_queue), std::to_string(ts.expired),
                     std::to_string(ts.circuit_open),
                     std::to_string(ts.failed), std::to_string(ts.preemptions),
                     std::to_string(ts.cache_hits),
                     std::to_string(ts.coalesced),
                     fmt(quantile_sorted(sorted, 0.50) * 1e3),
                     fmt(quantile_sorted(sorted, 0.99) * 1e3), fmt(shed_rate),
                     fmt(share), fmt(fill_ratio)});
      }
      if (csv.write_file(qos_csv_path)) {
        std::printf("  wrote %s\n", qos_csv_path.c_str());
      } else {
        std::fprintf(stderr, "soak_server: cannot write %s\n",
                     qos_csv_path.c_str());
        return 2;
      }
    }

    if (!metrics_path.empty()) {
      if (observer.metrics().snapshot().write_json(metrics_path)) {
        std::printf("  wrote %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "soak_server: cannot write %s\n",
                     metrics_path.c_str());
        return 2;
      }
    }

    exit_violations = violations;
  }
  if (exit_violations > 0) {
    std::fprintf(stderr, "FAIL: %d violations\n", exit_violations);
    return 1;
  }
  std::printf("PASS: every request reached a terminal status\n");
  return 0;
}
