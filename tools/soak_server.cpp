// soak_server -- chaos soak driver for the serving layer.
//
// Pumps a stream of randomized requests through an SvdServer whose
// fabric is fault-injected, then prints a survival report: every
// request must reach a terminal status (ok / not-converged / shed /
// expired / circuit-open / failed), and -- with --verify -- every
// chaos-free request that succeeded must match a reference
// decomposition bit for bit, proving the resilience machinery never
// perturbs healthy work. Exits nonzero when either property is
// violated, so CI can gate on it.
//
//   soak_server [--requests N] [--seed S] [--chaos P] [--queue N]
//               [--workers N] [--deadline-ms D] [--retries N]
//               [--burst] [--verify] [--metrics file.json]
//
// --chaos P       fraction of requests carrying an injected fault plan
//                 (default 0.3; each chaotic request gets its own
//                 seeded FaultInjector, so the run replays exactly).
// --burst         submit everything at once instead of keeping a
//                 sliding window of queue-capacity requests in flight
//                 (maximizes load-shedding instead of minimizing it).
// --deadline-ms   per-request budget on the host monotonic clock
//                 (0 = none); expiry is cancelled cooperatively.
// --fault-retries in-run masked-tile recovery rounds (default 0 here,
//                 unlike the library's 2: surfacing faults to the
//                 serving layer is the point of the soak -- raise it to
//                 watch the accelerator absorb faults itself instead).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "versal/faults.hpp"

namespace {

using namespace hsvd;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic request matrix: entries in [-1, 1].
linalg::MatrixF make_matrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  linalg::MatrixF m(rows, cols);
  std::uint64_t state = mix64(seed ^ 0x50a3ull);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      state = mix64(state);
      m(r, c) = static_cast<float>(static_cast<double>(state >> 11) /
                                       static_cast<double>(1ull << 53) * 2.0 -
                                   1.0);
    }
  }
  return m;
}

// Fault surfaces of the pinned soak configuration, harvested once from
// a probe placement so every chaos plan targets a real resource.
struct FaultSurfaces {
  std::vector<versal::TileCoord> orth_tiles;   // any kernel-running tile
  std::vector<versal::TileCoord> entry_tiles;  // layer-0 packet entries
  std::vector<versal::TileCoord> dma_sources;
  int slots = 1;
};

FaultSurfaces harvest_surfaces(const accel::HeteroSvdConfig& config) {
  accel::HeteroSvdAccelerator probe(config);
  FaultSurfaces s;
  const auto& tasks = probe.placement().tasks;
  s.slots = static_cast<int>(tasks.size());
  for (std::size_t slot = 0; slot < tasks.size(); ++slot) {
    for (const auto& layer : tasks[slot].orth) {
      for (const auto& tile : layer) s.orth_tiles.push_back(tile);
    }
    for (const auto& tile : tasks[slot].orth.front()) {
      s.entry_tiles.push_back(tile);
    }
    for (const auto& tr : probe.dataflow(slot).transitions) {
      for (const auto& mv : tr.moves) {
        if (mv.is_dma) s.dma_sources.push_back(mv.src);
      }
    }
  }
  return s;
}

versal::FaultPlan make_chaos_plan(const FaultSurfaces& s, std::uint64_t salt) {
  using versal::FaultKind;
  static constexpr FaultKind kKinds[] = {
      FaultKind::kTileHang,   FaultKind::kMemoryBitFlip,
      FaultKind::kStreamDrop, FaultKind::kStreamStall,
      FaultKind::kDmaDrop,    FaultKind::kDmaStall,
      FaultKind::kPlioDegrade};
  versal::FaultSpec spec;
  spec.kind = kKinds[mix64(salt ^ 0x1d) % (sizeof(kKinds) / sizeof(kKinds[0]))];
  spec.after_op = mix64(salt ^ 0xad) % 4;
  switch (spec.kind) {
    case FaultKind::kTileHang:
      spec.tile = s.orth_tiles[mix64(salt ^ 0xe9) % s.orth_tiles.size()];
      break;
    case FaultKind::kMemoryBitFlip:
    case FaultKind::kStreamDrop:
    case FaultKind::kStreamStall:
      spec.tile = s.entry_tiles[mix64(salt ^ 0x3c) % s.entry_tiles.size()];
      break;
    case FaultKind::kDmaDrop:
    case FaultKind::kDmaStall:
      spec.tile = s.dma_sources.empty()
                      ? s.entry_tiles[mix64(salt ^ 0x3c) % s.entry_tiles.size()]
                      : s.dma_sources[mix64(salt ^ 0x77) % s.dma_sources.size()];
      break;
    case FaultKind::kPlioDegrade:
      spec.slot = static_cast<int>(mix64(salt ^ 0x5107) %
                                   static_cast<std::uint64_t>(s.slots));
      spec.tile = versal::TileCoord{-1, -1};
      spec.bandwidth_scale = 0.25 + 0.5 * (mix64(salt ^ 0xbb) % 3) / 2.0;
      break;
  }
  if (spec.kind == FaultKind::kStreamStall ||
      spec.kind == FaultKind::kDmaStall) {
    spec.stall_seconds = 1e-6 * (1 + mix64(salt ^ 0xd1) % 5);
  }
  versal::FaultPlan plan;
  plan.seed = salt;
  plan.faults.push_back(spec);
  return plan;
}

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "soak_server: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

bool same_matrix(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t requests = 200;
  std::uint64_t seed = 1;
  double chaos = 0.3;
  std::size_t queue = 32;
  int workers = 4;
  double deadline_ms = 0.0;
  int retries = 3;
  int fault_retries = 0;
  bool burst = false;
  bool verify = false;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--requests" && has_value) {
      requests = parse_u64(argv[++i], "--requests");
    } else if (arg == "--seed" && has_value) {
      seed = parse_u64(argv[++i], "--seed");
    } else if (arg == "--chaos" && has_value) {
      chaos = std::atof(argv[++i]);
    } else if (arg == "--queue" && has_value) {
      queue = parse_u64(argv[++i], "--queue");
    } else if (arg == "--workers" && has_value) {
      workers = static_cast<int>(parse_u64(argv[++i], "--workers"));
    } else if (arg == "--deadline-ms" && has_value) {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg == "--retries" && has_value) {
      retries = static_cast<int>(parse_u64(argv[++i], "--retries"));
    } else if (arg == "--fault-retries" && has_value) {
      fault_retries = static_cast<int>(parse_u64(argv[++i], "--fault-retries"));
    } else if (arg == "--burst") {
      burst = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--metrics" && has_value) {
      metrics_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: soak_server [--requests N] [--seed S] [--chaos P] "
          "[--queue N] [--workers N] [--deadline-ms D] [--retries N] "
          "[--fault-retries N] [--burst] [--verify] "
          "[--metrics file.json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "soak_server: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  // Pinned micro-architecture: small enough for a fast soak, two bands
  // and two task slots so every fault surface (inter-band DMA, slot
  // isolation) exists.
  accel::HeteroSvdConfig config;
  config.rows = 24;
  config.cols = 16;
  config.p_eng = 4;
  config.p_task = 2;
  config.iterations = 3;

  const FaultSurfaces surfaces = harvest_surfaces(config);

  obs::ObsContext observer;
  serve::ServerOptions options;
  options.queue_capacity = queue;
  options.workers = workers;
  options.svd.config = config;
  options.svd.want_v = false;
  options.svd.threads = 1;  // parallelism comes from the server workers
  options.svd.fault_retries = fault_retries;
  options.retry.max_attempts = retries < 1 ? 1 : retries;
  options.retry.seed = seed;
  options.retry.initial_backoff_seconds = 1e-4;
  options.retry.max_backoff_seconds = 1e-2;
  options.default_deadline_seconds = deadline_ms / 1e3;
  options.observer = &observer;

  // Injectors must outlive the server (requests reference them raw).
  std::vector<std::unique_ptr<versal::FaultInjector>> injectors;
  injectors.reserve(requests);

  std::vector<bool> chaotic(requests, false);
  std::vector<serve::Response> responses(requests);
  std::vector<char> terminal(requests, 0);

  {
    serve::SvdServer server(options);
    std::deque<std::pair<std::size_t, std::future<serve::Response>>> window;
    const auto drain_one = [&]() {
      auto [index, future] = std::move(window.front());
      window.pop_front();
      responses[index] = future.get();
      terminal[index] = 1;
    };
    for (std::size_t i = 0; i < requests; ++i) {
      serve::Request request;
      request.matrix = make_matrix(config.rows, config.cols, seed + i);
      const double roll =
          static_cast<double>(mix64(seed ^ (0xc0 + i)) >> 11) /
          static_cast<double>(1ull << 53);
      if (roll < chaos) {
        chaotic[i] = true;
        injectors.push_back(std::make_unique<versal::FaultInjector>(
            make_chaos_plan(surfaces, mix64(seed ^ (0x5107 + i)))));
        request.fault_injector = injectors.back().get();
      }
      if (!burst) {
        while (window.size() >= queue) drain_one();
      }
      window.emplace_back(i, server.submit(std::move(request)));
    }
    while (!window.empty()) drain_one();
    server.shutdown();

    const serve::ServerStats stats = server.stats();
    int counts[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& response : responses) {
      ++counts[static_cast<int>(response.status)];
    }
    std::printf("soak report: %zu requests, %d workers, queue %zu, chaos "
                "%.0f%%\n",
                requests, workers, queue, chaos * 100.0);
    std::printf(
        "  ok %d  not-converged %d  shed %d  expired %d  circuit-open %d  "
        "failed %d\n",
        counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]);
    std::printf("  retries %llu; breaker: %llu trips (state %s); peak queue "
                "%zu\n",
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.breaker_trips),
                serve::to_string(stats.breaker_state), stats.peak_queue_depth);

    int violations = 0;
    for (std::size_t i = 0; i < requests; ++i) {
      if (!terminal[i]) {
        std::fprintf(stderr, "VIOLATION: request %zu never became terminal\n",
                     i);
        ++violations;
      }
    }

    if (verify) {
      // Every chaos-free success must match a fresh, injector-free
      // reference decomposition bit for bit.
      SvdOptions reference_options;
      reference_options.config = config;
      reference_options.want_v = false;
      reference_options.threads = 1;
      std::size_t checked = 0;
      for (std::size_t i = 0; i < requests; ++i) {
        if (chaotic[i] || responses[i].status != serve::ServeStatus::kOk) {
          continue;
        }
        const Svd reference = svd(
            make_matrix(config.rows, config.cols, seed + i), reference_options);
        ++checked;
        if (!same_matrix(responses[i].result.u, reference.u) ||
            responses[i].result.sigma != reference.sigma ||
            responses[i].result.iterations != reference.iterations) {
          std::fprintf(stderr,
                       "VIOLATION: request %zu diverged from the chaos-free "
                       "reference\n",
                       i);
          ++violations;
        }
      }
      std::printf("  verify: %zu clean successes checked against chaos-free "
                  "references\n",
                  checked);
    }

    if (!metrics_path.empty()) {
      if (observer.metrics().snapshot().write_json(metrics_path)) {
        std::printf("  wrote %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "soak_server: cannot write %s\n",
                     metrics_path.c_str());
        return 2;
      }
    }

    if (violations > 0) {
      std::fprintf(stderr, "FAIL: %d violations\n", violations);
      return 1;
    }
  }
  std::printf("PASS: every request reached a terminal status\n");
  return 0;
}
