// Fault-injection campaign runner: sweeps every fault kind over seeded
// trials and emits a CSV scoring detection, recovery, and healthy-task
// isolation. Silent-error trials (finite, plausible corruptions that no
// dataflow detection point sees) are scored against the result
// attestation layer instead: the verify_caught/silent_escape columns
// count corruptions the verifier failed vs passed. Exits nonzero when
// any trial misses a corruption or perturbs a healthy task, so CI can
// gate on it.
//
// Every trial also reports its detection latency (simulated AIE cycles
// from injection to detection) in the CSV; --trace dumps the Chrome
// trace-event timeline of the first trial whose fault was noticed.
//
// Long sweeps can checkpoint per trial: --checkpoint (or its alias
// --resume) names a versioned file that records every completed trial;
// rerunning with the same options skips the recorded work and the final
// CSV is identical to an uninterrupted run. --max-trials bounds how
// many new trials one invocation executes (0 = all), so a sweep can be
// spread over several runs.
//
//   fault_campaign [--trials N] [--batch N] [--seed S] [--out file.csv]
//                  [--trace timeline.trace.json] [--checkpoint file.ckpt]
//                  [--resume file.ckpt] [--max-trials N]
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "accel/campaign.hpp"

namespace {

std::uint64_t parse_u64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "fault_campaign: bad value for " << flag << ": " << text
              << "\n";
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  hsvd::accel::CampaignOptions options;
  std::string out_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trials" && has_value) {
      options.trials_per_kind =
          static_cast<int>(parse_u64(argv[++i], "--trials"));
    } else if (arg == "--batch" && has_value) {
      options.batch = static_cast<int>(parse_u64(argv[++i], "--batch"));
    } else if (arg == "--seed" && has_value) {
      options.seed = parse_u64(argv[++i], "--seed");
    } else if (arg == "--out" && has_value) {
      out_path = argv[++i];
    } else if (arg == "--trace" && has_value) {
      trace_path = argv[++i];
      options.capture_failure_trace = true;
    } else if ((arg == "--checkpoint" || arg == "--resume") && has_value) {
      options.checkpoint_path = argv[++i];
    } else if (arg == "--max-trials" && has_value) {
      options.max_new_trials =
          static_cast<int>(parse_u64(argv[++i], "--max-trials"));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fault_campaign [--trials N] [--batch N] "
                   "[--seed S] [--out file.csv] "
                   "[--trace timeline.trace.json] [--checkpoint file.ckpt] "
                   "[--resume file.ckpt] [--max-trials N]\n";
      return 0;
    } else {
      std::cerr << "fault_campaign: unknown argument " << arg << "\n";
      return 2;
    }
  }

  const auto outcomes = hsvd::accel::run_campaign(options);
  const std::size_t kinds = options.kinds.empty() ? 8 : options.kinds.size();
  const std::size_t planned =
      kinds * static_cast<std::size_t>(options.trials_per_kind);
  if (outcomes.size() < planned) {
    std::cerr << "fault_campaign: partial sweep (" << outcomes.size() << "/"
              << planned << " trials); rerun with the same --checkpoint to "
                            "resume\n";
  }
  const std::string csv = hsvd::accel::campaign_csv(outcomes);
  if (out_path.empty()) {
    std::cout << csv;
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "fault_campaign: cannot write " << out_path << "\n";
      return 2;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::cout << "wrote " << out_path << " (" << outcomes.size()
              << " trials)\n";
  }

  if (!trace_path.empty()) {
    const auto traced = std::find_if(
        outcomes.begin(), outcomes.end(),
        [](const hsvd::accel::CampaignOutcome& out) {
          return !out.trace_json.empty();
        });
    if (traced == outcomes.end()) {
      std::cerr << "fault_campaign: no trial noticed its fault; nothing to "
                   "trace\n";
    } else {
      std::FILE* f = std::fopen(trace_path.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(traced->trace_json.data(), 1, traced->trace_json.size(),
                      f) != traced->trace_json.size()) {
        std::cerr << "fault_campaign: cannot write " << trace_path << "\n";
        if (f != nullptr) std::fclose(f);
        return 2;
      }
      std::fclose(f);
      std::cout << "wrote " << trace_path << " ("
                << hsvd::versal::to_string(traced->kind) << " trial, seed "
                << traced->plan_seed << ")\n";
    }
  }

  int missed = 0;
  int disturbed = 0;
  int caught = 0;
  int escaped = 0;
  for (const auto& out : outcomes) {
    if (!out.detected) ++missed;
    if (!out.healthy_bit_identical) ++disturbed;
    caught += out.verify_caught;
    escaped += out.silent_escapes;
  }
  std::cerr << outcomes.size() << " trials, " << missed
            << " undetected corruptions, " << disturbed
            << " disturbed healthy tasks, " << caught
            << " silent errors caught by attestation, " << escaped
            << " escaped\n";
  return hsvd::accel::campaign_clean(outcomes) ? 0 : 1;
}
