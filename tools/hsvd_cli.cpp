// hsvd -- command-line front end for the HeteroSVD library.
//
//   hsvd gen <rows> <cols> <out.{mtx|bin}> [condition]
//       Generate a random test matrix (optionally with a geometric
//       spectrum of the given condition number).
//   hsvd svd [--scenario auto|off|tall-skinny|truncated] [--top-k K]
//            <in.{mtx|bin}> [out_prefix]
//       Decompose a matrix on the simulated accelerator; writes
//       <prefix>_u.mtx, <prefix>_sigma.txt, <prefix>_v.mtx.
//       --scenario selects the workload front-end (DESIGN.md section
//       16): "auto" (default) engages the Householder-QR pre-reduction
//       above the aspect-ratio threshold and the randomized sketch
//       when --top-k asks for one; "off" forces the classic dense
//       path. A truncated run prints the a-posteriori error bound.
//   hsvd update [--out prefix] <in.{mtx|bin}> <u1> <v1> [<u2> <v2> ...]
//       Decompose, then stream rank-1 updates A <- A + u v^T through
//       the Brand core; each (u, v) pair is an m x 1 / n x 1 matrix
//       file. Drift is verifier-checked and a broken bound triggers a
//       full re-decomposition (counted in the summary line). Writes
//       the final factors like `hsvd svd`.
//   hsvd batch [--verify off|sample:p|always] <in1> [in2 ...]
//       Decompose same-shape matrices as one batch and print a
//       per-task status table plus a per-status summary. --verify
//       turns on result attestation: the table gains per-task verify
//       columns (pass/escape, relative residual, escalation rung) and
//       the command exits nonzero when any task escapes unverified
//       under --verify always. Exits nonzero when any task ends
//       SvdStatus::kFailed.
//   hsvd dse <n> [batch] [latency|throughput]
//       Run the design space exploration and print the best points.
//   hsvd estimate <n> <p_eng> <p_task> [freq_mhz] [iterations]
//       Simulated latency + analytic model for one configuration.
//   hsvd serve [--tenant SPEC]... [--priority P] [--cache N]
//              [--coalesce N] [--coalesce-window-ms W] [--workers N]
//              [--deadline-ms D] [--backend SPEC]
//              [--verify off|sample:p|always]
//              [--scenario NAME] [--top-k K] <in1> [in2 ...]
//       Push the matrices through an in-process serving instance with
//       the multi-tenant QoS layer: requests are assigned to the
//       configured tenants round-robin (SPEC is
//       name[:weight[:rate[:burst]]]), coalesced into shape-bucketed
//       micro-batches, and answered from the digest-keyed result cache
//       when --cache is on. --backend routes every request through the
//       backend router ("auto", "auto:latency:0.005", or a pin like
//       "cpu"). --verify turns on result attestation with per-request
//       verify columns; under "always" the command exits nonzero when
//       any request escapes unverified. --scenario/--top-k tag every
//       request with workload-scenario intent: tagged requests
//       dispatch solo (never coalesced) and the result cache keys by
//       scenario + top_k. Prints a per-request and a per-tenant table;
//       exits nonzero when any request ends kFailed.
//   hsvd route [--sweep n1,n2,...] [--slo latency|throughput|energy]
//              [--batch B] [--csv route_table.csv]
//       Score every registered backend for each (square) shape under
//       each SLO and print the route table the cost-model router
//       dispatches from. The default sweep (64..4096) reproduces the
//       paper's crossover: the AIE array wins small-n latency, the GPU
//       W-cycle model wins large-n throughput, and shapes too large to
//       place fall through to the host/model backends. --csv exports
//       the full per-backend scoring (CI asserts the crossover on it).
//
// The global --threads N option (before the subcommand) sets the host
// worker-thread count for svd/dse; 0 (default) resolves via HSVD_THREADS
// or the hardware concurrency. Results are thread-count invariant.
// --shards S partitions each decomposition across S simulated AIE
// arrays (svd/batch) and co-explores shard counts up to S in dse;
// factors are bit-identical to the single-array path for every S.
// Combinations whose worker demand exceeds the machine's hardware
// threads are rejected up front with an InputError.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>

#include "accel/accelerator.hpp"
#include "backend/router.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/matrix_io.hpp"
#include "perfmodel/perf_model.hpp"
#include "scenarios/update.hpp"
#include "serve/qos.hpp"
#include "serve/server.hpp"
#include "verify/policy.hpp"

namespace {

using namespace hsvd;

// Host worker threads (--threads N, before the subcommand). 0 = auto via
// HSVD_THREADS / hardware concurrency; results are identical either way.
int g_threads = 0;

// Simulated AIE arrays per decomposition (--shards S, before the
// subcommand). 1 = the paper's single-array engine.
int g_shards = 1;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

linalg::MatrixF load_any(const std::string& path) {
  return ends_with(path, ".bin") ? linalg::load_binary(path)
                                 : linalg::load_matrix_market(path);
}

void save_any(const linalg::MatrixF& m, const std::string& path) {
  if (ends_with(path, ".bin")) {
    linalg::save_binary(m, path);
  } else {
    linalg::save_matrix_market(m, path);
  }
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: hsvd gen <rows> <cols> <out> [condition]\n");
    return 2;
  }
  const auto rows = std::strtoul(argv[1], nullptr, 10);
  const auto cols = std::strtoul(argv[2], nullptr, 10);
  const std::string out = argv[3];
  Rng rng(42);
  linalg::MatrixD m =
      argc > 4 ? linalg::matrix_with_spectrum(
                     rows, cols,
                     linalg::geometric_spectrum(cols, std::atof(argv[4])), rng)
               : linalg::random_gaussian(rows, cols, rng);
  save_any(m.cast<float>(), out);
  std::printf("wrote %zux%zu matrix to %s\n", static_cast<std::size_t>(rows),
              static_cast<std::size_t>(cols), out.c_str());
  return 0;
}

// Shared factor output for svd/update: <prefix>_u.mtx,
// <prefix>_sigma.txt, and <prefix>_v.mtx when V is present.
void write_factors(const Svd& r, const std::string& prefix) {
  linalg::save_matrix_market(r.u, prefix + "_u.mtx");
  if (!r.v.empty()) linalg::save_matrix_market(r.v, prefix + "_v.mtx");
  std::ofstream sig(prefix + "_sigma.txt");
  for (float s : r.sigma) sig << s << "\n";
  std::printf("wrote %s_u.mtx, %s_sigma.txt%s\n", prefix.c_str(),
              prefix.c_str(),
              r.v.empty() ? "" : (", " + prefix + "_v.mtx").c_str());
}

int cmd_svd(int argc, char** argv) {
  std::string scenario_spec;
  std::size_t top_k = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--scenario" && has_value) {
      scenario_spec = argv[++i];
    } else if (arg == "--top-k" && has_value) {
      top_k = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hsvd svd: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: hsvd svd [--scenario auto|off|tall-skinny|truncated] "
                 "[--top-k K] <in> [out_prefix]\n");
    return 2;
  }
  const linalg::MatrixF a = load_any(positional[0]);
  const std::string prefix = positional.size() > 1 ? positional[1] : "hsvd_out";
  std::printf("decomposing %zux%zu...\n", a.rows(), a.cols());
  SvdOptions opts;
  opts.threads = g_threads;
  opts.shards = g_shards;
  if (!scenario_spec.empty()) {
    opts.scenario = scenarios::parse_scenario(scenario_spec);
  }
  opts.top_k = top_k;
  Svd r = svd(a, opts);
  std::printf("converged in %d sweeps (rate %.2e); simulated accelerator "
              "latency %.3f ms\n",
              r.iterations, r.convergence_rate, r.accelerator_seconds * 1e3);
  if (!r.scenario.empty()) {
    std::printf("scenario %s engaged", r.scenario.c_str());
    if (r.scenario_top_k > 0) {
      std::printf(" (top-%zu, a-posteriori bound %.3e)", r.scenario_top_k,
                  r.scenario_bound);
    }
    std::printf("\n");
  }
  if (r.status == SvdStatus::kNotConverged) {
    std::printf("warning: precision target not reached (%s)\n",
                r.message.c_str());
  }
  write_factors(r, prefix);
  return 0;
}

// One column vector for the update subcommand: an m x 1 matrix file.
std::vector<float> load_column(const std::string& path, std::size_t rows,
                               const char* role) {
  const linalg::MatrixF m = load_any(path);
  if (m.cols() != 1 || m.rows() != rows) {
    throw InputError(cat("hsvd update: ", role, " vector ", path, " must be ",
                         rows, "x1, got ", m.rows(), "x", m.cols()));
  }
  const auto data = m.data();
  return std::vector<float>(data.begin(), data.end());
}

int cmd_update(int argc, char** argv) {
  std::string prefix = "hsvd_update";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--out" && has_value) {
      prefix = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hsvd update: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 3 || (positional.size() - 1) % 2 != 0) {
    std::fprintf(stderr,
                 "usage: hsvd update [--out prefix] <in> <u1> <v1> "
                 "[<u2> <v2> ...]\n"
                 "each (u, v) pair applies the rank-1 update A <- A + u v^T "
                 "through the streaming scenario core\n");
    return 2;
  }
  const linalg::MatrixF a = load_any(positional[0]);
  std::printf("decomposing %zux%zu, then applying %zu rank-1 update(s)...\n",
              a.rows(), a.cols(), (positional.size() - 1) / 2);
  SvdOptions opts;
  opts.threads = g_threads;
  opts.shards = g_shards;
  scenarios::StreamingSvd stream(a, opts);
  for (std::size_t p = 1; p + 1 < positional.size(); p += 2) {
    const std::vector<float> u = load_column(positional[p], a.rows(), "u");
    const std::vector<float> v = load_column(positional[p + 1], a.cols(), "v");
    stream.apply(u, v);
  }
  const Svd& r = stream.current();
  std::printf("applied %d update(s): %d re-decomposition(s), last drift "
              "residual %s\n",
              stream.updates(), stream.redecompositions(),
              stream.last_residual() >= 0.0 ? sci(stream.last_residual()).c_str()
                                            : "unchecked");
  write_factors(r, prefix);
  return 0;
}

const char* status_name(SvdStatus status) {
  switch (status) {
    case SvdStatus::kOk: return "ok";
    case SvdStatus::kNotConverged: return "not-converged";
    case SvdStatus::kFailed: return "failed";
  }
  return "unknown";
}

// Per-request attestation columns sourced from Svd::verify_report.
std::string verify_status_cell(const verify::VerifyReport& rep) {
  if (!rep.checked) return "-";
  return rep.verified ? "pass" : "escape";
}

std::string verify_residual_cell(const verify::VerifyReport& rep) {
  const double r = rep.final_residual();
  return rep.checked && r >= 0.0 ? sci(r) : "-";
}

std::string verify_rung_cell(const verify::VerifyReport& rep) {
  return rep.checked ? verify::to_string(rep.rung) : "-";
}

// Counts results the attestation ladder could not verify. Under
// --verify always that is the hard failure the command must surface:
// every request was selected, so any unverified result is an escape.
template <typename Results, typename GetReport>
int count_verify_escapes(const Results& results, GetReport get_report) {
  int escapes = 0;
  for (const auto& r : results) {
    const verify::VerifyReport& rep = get_report(r);
    if (rep.checked && !rep.verified) ++escapes;
  }
  return escapes;
}

int cmd_batch(int argc, char** argv) {
  verify::VerifyPolicy vpolicy;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--verify" && has_value) {
      vpolicy = verify::parse_verify_policy(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hsvd batch: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: hsvd batch [--verify off|sample:p|always] "
                 "<in1> [in2 ...]\n");
    return 2;
  }
  std::vector<linalg::MatrixF> batch;
  batch.reserve(files.size());
  for (const std::string& f : files) batch.push_back(load_any(f));
  std::printf("decomposing %zu matrices of %zux%zu...\n", batch.size(),
              batch.front().rows(), batch.front().cols());
  SvdOptions opts;
  opts.threads = g_threads;
  opts.shards = g_shards;
  opts.verify = vpolicy;
  const BatchSvd out = svd_batch(batch, opts);

  Table table({"task", "status", "sweeps", "recoveries", "verify", "residual",
               "rung", "note"});
  int counts[3] = {0, 0, 0};
  for (std::size_t i = 0; i < out.results.size(); ++i) {
    const Svd& r = out.results[i];
    ++counts[static_cast<int>(r.status)];
    table.add_row({cat(i), status_name(r.status), cat(r.iterations),
                   cat(r.recovery_attempts), verify_status_cell(r.verify_report),
                   verify_residual_cell(r.verify_report),
                   verify_rung_cell(r.verify_report), r.message});
  }
  table.print();
  std::printf("%zu tasks: %d ok, %d not-converged, %d failed "
              "(simulated makespan %.3f ms, %.1f tasks/s)\n",
              out.results.size(), counts[0], counts[1], counts[2],
              out.batch_seconds * 1e3, out.throughput_tasks_per_s);
  if (out.failed_tasks > 0) {
    std::fprintf(stderr, "error: %d of %zu tasks failed\n", out.failed_tasks,
                 out.results.size());
    return 1;
  }
  if (vpolicy.mode == verify::VerifyMode::kAlways) {
    const int escapes = count_verify_escapes(
        out.results, [](const Svd& r) -> const verify::VerifyReport& {
          return r.verify_report;
        });
    if (escapes > 0) {
      std::fprintf(stderr,
                   "error: %d of %zu tasks escaped unverified under "
                   "--verify always\n",
                   escapes, out.results.size());
      return 1;
    }
  }
  return 0;
}

int cmd_dse(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: hsvd dse <n> [batch] [latency|throughput]\n");
    return 2;
  }
  dse::DseRequest req;
  req.rows = req.cols = std::strtoul(argv[1], nullptr, 10);
  req.batch = argc > 2 ? std::atoi(argv[2]) : 1;
  req.objective = (argc > 3 && std::strcmp(argv[3], "throughput") == 0)
                      ? dse::Objective::kThroughput
                      : dse::Objective::kLatency;
  req.threads = g_threads;
  req.max_shards = g_shards;
  dse::DesignSpaceExplorer explorer;
  auto points = explorer.enumerate(req);
  if (points.empty()) {
    std::fprintf(stderr, "no feasible design point\n");
    return 1;
  }
  auto front = dse::pareto_front(points);
  Table table({"P_eng", "P_task", "S", "MHz", "latency(ms)", "thr(t/s)",
               "power(W)", "pareto"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, points.size()); ++i) {
    const auto& p = points[i];
    bool on_front = false;
    for (const auto& f : front) {
      on_front |= f.p_eng == p.p_eng && f.p_task == p.p_task &&
                  f.shards == p.shards;
    }
    table.add_row({cat(p.p_eng), cat(p.p_task), cat(p.shards),
                   fixed(p.frequency_hz / 1e6, 0),
                   fixed(p.latency_seconds * 1e3, 3),
                   fixed(p.throughput_tasks_per_s, 1),
                   fixed(p.power_watts, 1), on_front ? "*" : ""});
  }
  table.print();
  std::printf("(%zu feasible points, %zu on the Pareto front)\n", points.size(),
              front.size());
  return 0;
}

int cmd_estimate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: hsvd estimate <n> <p_eng> <p_task> [freq_mhz] "
                 "[iterations]\n");
    return 2;
  }
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = std::strtoul(argv[1], nullptr, 10);
  cfg.p_eng = std::atoi(argv[2]);
  cfg.p_task = std::atoi(argv[3]);
  cfg.pl_frequency_hz = argc > 4 ? std::atof(argv[4]) * 1e6 : 208.3e6;
  cfg.iterations = argc > 5 ? std::atoi(argv[5]) : 6;
  accel::HeteroSvdAccelerator acc(cfg);
  auto run = acc.estimate(cfg.p_task);
  perf::PerformanceModel model;
  auto lb = model.evaluate(cfg, cfg.p_task);
  std::printf("simulated: task %.3f ms, wave %.3f ms, throughput %.2f t/s\n",
              run.task_seconds * 1e3, run.batch_seconds * 1e3,
              run.throughput_tasks_per_s);
  std::printf("model:     task %.3f ms (iter %.3f ms, ddr %.3f ms, norm %.3f "
              "ms)\n",
              lb.t_task * 1e3, lb.t_iter * 1e3, lb.t_ddr * 1e3,
              lb.t_norm_stage * 1e3);
  std::printf("resources: %d AIE (%d orth, %d norm, %d mem), %d PLIO, %d "
              "URAM\n",
              run.resources.aie_total(), run.resources.aie_orth,
              run.resources.aie_norm, run.resources.aie_mem,
              run.resources.plio, run.resources.uram);
  return 0;
}

// One row of the route table: every backend scored for (n, slo).
void route_rows(backend::Router& router, std::size_t n,
                const backend::Slo& slo, const SvdOptions& opts, Table& table,
                CsvWriter& csv) {
  const backend::RouteDecision decision = router.route(n, n, slo, opts);
  for (const auto& c : decision.candidates) {
    const bool winner = decision.backend == c.backend->name();
    const bool modeled = c.backend->capabilities().modeled_time;
    std::string note = c.estimate.note;
    if (c.estimate.modeled_extrapolated) {
      note = note.empty() ? "clamped outside anchors"
                          : note + "; clamped outside anchors";
    }
    table.add_row(
        {cat(n), backend::to_string(slo.kind), c.backend->name(),
         winner ? "*" : "",
         c.estimate.feasible ? sci(c.estimate.latency_seconds) : "-",
         c.estimate.feasible ? fixed(c.estimate.throughput_tasks_per_s, 2)
                             : "-",
         c.estimate.feasible && c.estimate.energy_per_task_joules > 0.0
             ? sci(c.estimate.energy_per_task_joules)
             : "-",
         modeled ? "model" : "measured", note});
    csv.add_row({cat(n), backend::to_string(slo.kind), c.backend->name(),
                 winner ? "1" : "0", c.estimate.feasible ? "1" : "0",
                 sci(c.estimate.latency_seconds, 6),
                 sci(c.estimate.throughput_tasks_per_s, 6),
                 sci(c.estimate.energy_per_task_joules, 6),
                 c.estimate.modeled_extrapolated ? "1" : "0",
                 modeled ? "model" : "measured", note});
  }
}

int cmd_route(int argc, char** argv) {
  std::vector<std::size_t> sizes;
  std::vector<backend::SloKind> kinds;
  int batch = 16;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--sweep" && has_value) {
      std::string spec = argv[++i];
      for (std::size_t pos = 0; pos < spec.size();) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end = comma == std::string::npos ? spec.size() : comma;
        sizes.push_back(std::strtoul(spec.substr(pos, end - pos).c_str(),
                                     nullptr, 10));
        pos = end + 1;
      }
    } else if (arg == "--slo" && has_value) {
      kinds.push_back(backend::parse_slo_kind(argv[++i]));
    } else if (arg == "--batch" && has_value) {
      batch = std::atoi(argv[++i]);
    } else if (arg == "--csv" && has_value) {
      csv_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hsvd route: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      sizes.push_back(std::strtoul(arg.c_str(), nullptr, 10));
    }
  }
  if (sizes.empty()) sizes = {64, 128, 256, 512, 1024, 2048, 4096};
  if (kinds.empty()) {
    kinds = {backend::SloKind::kLatency, backend::SloKind::kThroughput,
             backend::SloKind::kEnergy};
  }

  SvdOptions opts;
  opts.threads = g_threads;
  backend::Router& router = backend::Router::shared();
  Table table({"n", "slo", "backend", "winner", "latency(s)", "thr(t/s)",
               "J/task", "time", "note"});
  CsvWriter csv({"n", "slo", "backend", "winner", "feasible",
                 "latency_seconds", "throughput_tasks_per_s",
                 "energy_per_task_joules", "extrapolated", "time_source",
                 "note"});
  for (std::size_t n : sizes) {
    if (n < 1) {
      std::fprintf(stderr, "hsvd route: invalid size in sweep\n");
      return 2;
    }
    for (backend::SloKind kind : kinds) {
      backend::Slo slo;
      slo.kind = kind;
      slo.batch = batch;
      route_rows(router, n, slo, opts, table, csv);
    }
  }
  table.print();
  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "hsvd route: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_serve(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<serve::TenantConfig> tenants;
  serve::Priority priority = serve::Priority::kNormal;
  std::size_t cache = 0;
  std::size_t coalesce = 1;
  double window_ms = 10.0;
  int workers = 2;
  double deadline_ms = 0.0;
  backend::BackendSpec backend_spec;
  bool backend_set = false;
  verify::VerifyPolicy vpolicy;
  std::string scenario_spec;
  std::size_t top_k = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--tenant" && has_value) {
      tenants.push_back(serve::parse_tenant_spec(argv[++i]));
    } else if (arg == "--priority" && has_value) {
      priority = serve::parse_priority(argv[++i]);
    } else if (arg == "--backend" && has_value) {
      backend_spec = backend::parse_backend_spec(argv[++i]);
      backend_set = true;
    } else if (arg == "--verify" && has_value) {
      vpolicy = verify::parse_verify_policy(argv[++i]);
    } else if (arg == "--scenario" && has_value) {
      scenario_spec = argv[++i];
    } else if (arg == "--top-k" && has_value) {
      top_k = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--cache" && has_value) {
      cache = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--coalesce" && has_value) {
      coalesce = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--coalesce-window-ms" && has_value) {
      window_ms = std::atof(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && has_value) {
      deadline_ms = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hsvd serve: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: hsvd serve [--tenant SPEC]... [--priority "
                 "latency|normal|batch] [--cache N] [--coalesce N] "
                 "[--coalesce-window-ms W] [--workers N] [--deadline-ms D] "
                 "[--backend SPEC] [--verify off|sample:p|always] "
                 "[--scenario NAME] [--top-k K] <in1> [in2 ...]\n");
    return 2;
  }

  std::vector<linalg::MatrixF> matrices;
  matrices.reserve(files.size());
  for (const std::string& f : files) matrices.push_back(load_any(f));

  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = files.size();
  options.default_deadline_seconds = deadline_ms / 1e3;
  options.svd.threads = g_threads;
  options.svd.shards = g_shards;
  options.svd.verify = vpolicy;
  options.qos.tenants = tenants.empty()
                            ? std::vector<serve::TenantConfig>{{"default"}}
                            : tenants;
  options.qos.coalesce_max_batch = coalesce < 1 ? 1 : coalesce;
  options.qos.coalesce_window_seconds = window_ms / 1e3;
  options.qos.cache_enabled = cache > 0;
  options.qos.cache_capacity = cache > 0 ? cache : 64;

  serve::SvdServer server(options);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    serve::Request request;
    request.matrix = matrices[i];
    request.tenant = options.qos.tenants[i % options.qos.tenants.size()].name;
    request.priority = priority;
    if (backend_set) {
      request.backend = backend_spec.backend;
      request.slo = backend_spec.slo;
    }
    // Scenario intent rides on every request: the server parses the
    // name at dispatch (unknown names fail that request, not the
    // whole command) and keys the result cache by scenario + top_k.
    request.scenario = scenario_spec;
    request.top_k = top_k;
    futures.push_back(server.submit(std::move(request)));
  }

  Table table({"file", "tenant", "status", "backend", "sweeps", "attempts",
               "batch", "cached", "verify", "residual", "rung", "note"});
  int failed = 0;
  int escapes = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const serve::Response r = futures[i].get();
    if (r.status == serve::ServeStatus::kFailed) ++failed;
    const verify::VerifyReport& rep = r.result.verify_report;
    if (rep.checked && !rep.verified) ++escapes;
    table.add_row({files[i], r.tenant, serve::to_string(r.status),
                   r.backend.empty() ? "-" : r.backend, cat(r.result.iterations),
                   cat(r.attempts), cat(r.batch_size), r.cache_hit ? "*" : "",
                   verify_status_cell(rep), verify_residual_cell(rep),
                   verify_rung_cell(rep), r.message});
  }
  table.print();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  Table tenant_table({"tenant", "submitted", "ok", "shed", "expired",
                      "failed", "cache-hits", "coalesced"});
  for (const auto& [name, ts] : stats.tenants) {
    tenant_table.add_row({name, cat(ts.submitted), cat(ts.ok),
                          cat(ts.shed_quota + ts.shed_queue), cat(ts.expired),
                          cat(ts.failed), cat(ts.cache_hits),
                          cat(ts.coalesced)});
  }
  tenant_table.print();
  std::printf("%zu requests: %llu batch dispatches (fill %.2f), cache "
              "%llu/%llu hit/miss\n",
              files.size(),
              static_cast<unsigned long long>(stats.batch_dispatches),
              stats.batch_dispatches > 0
                  ? static_cast<double>(stats.batch_tasks) /
                        static_cast<double>(stats.batch_dispatches)
                  : 0.0,
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));
  if (failed > 0) {
    std::fprintf(stderr, "error: %d of %zu requests failed\n", failed,
                 files.size());
    return 1;
  }
  if (vpolicy.mode == verify::VerifyMode::kAlways && escapes > 0) {
    std::fprintf(stderr,
                 "error: %d of %zu requests escaped unverified under "
                 "--verify always\n",
                 escapes, files.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global options come before the subcommand: hsvd [--threads N] <cmd> ...
  int arg0 = 1;
  while (arg0 < argc && std::strncmp(argv[arg0], "--", 2) == 0) {
    if (std::strcmp(argv[arg0], "--threads") == 0 && arg0 + 1 < argc) {
      g_threads = std::atoi(argv[arg0 + 1]);
      arg0 += 2;
    } else if (std::strcmp(argv[arg0], "--shards") == 0 && arg0 + 1 < argc) {
      g_shards = std::atoi(argv[arg0 + 1]);
      arg0 += 2;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[arg0]);
      return 2;
    }
  }
  argv += arg0 - 1;
  argc -= arg0 - 1;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: hsvd [--threads N] [--shards S] "
                 "<gen|svd|batch|dse|estimate|serve|route|update> ...\n"
                 "run a subcommand without arguments for its usage\n");
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    // Reject oversubscribed --threads/--shards combinations before any
    // work starts (typed InputError, exit 1 via the handler below).
    validate_host_budget(g_threads, g_shards);
    if (cmd == "gen") return cmd_gen(argc - 1, argv + 1);
    if (cmd == "svd") return cmd_svd(argc - 1, argv + 1);
    if (cmd == "batch") return cmd_batch(argc - 1, argv + 1);
    if (cmd == "dse") return cmd_dse(argc - 1, argv + 1);
    if (cmd == "estimate") return cmd_estimate(argc - 1, argv + 1);
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "route") return cmd_route(argc - 1, argv + 1);
    if (cmd == "update") return cmd_update(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return 2;
}
