#include "accel/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>

#include "accel/accelerator.hpp"
#include "common/checkpoint.hpp"
#include "common/csv.hpp"
#include "common/format.hpp"
#include "heterosvd.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "verify/verifier.hpp"

namespace hsvd::accel {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic well-conditioned test matrix: entries in [-1, 1].
linalg::MatrixF make_matrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  linalg::MatrixF m(rows, cols);
  std::uint64_t state = mix64(seed ^ 0xc0ffee);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      state = mix64(state);
      m(r, c) = static_cast<float>(static_cast<double>(state >> 11) /
                                       static_cast<double>(1ull << 53) *
                                       2.0 -
                                   1.0);
    }
  }
  return m;
}

bool same_matrix(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

// Picks the injection target for `kind` out of the canonical placement:
// stream/store/hang faults hit layer-0 orth tiles (the packet-switched
// entry points), DMA faults hit an inter-band DMA source, PLIO
// degradation hits a task slot.
versal::FaultSpec make_spec(versal::FaultKind kind,
                            const HeteroSvdAccelerator& acc,
                            std::uint64_t salt) {
  versal::FaultSpec spec;
  spec.kind = kind;
  spec.after_op = mix64(salt ^ 0xad) % 4;
  const auto& tasks = acc.placement().tasks;
  const std::size_t slot = mix64(salt ^ 0x5107) % tasks.size();
  switch (kind) {
    case versal::FaultKind::kTileHang: {
      // Any orth tile: every layer runs kernels each block pair.
      const auto& task = tasks[slot];
      const auto& layer =
          task.orth[mix64(salt ^ 0x1a) % task.orth.size()];
      spec.tile = layer[mix64(salt ^ 0xe9) % layer.size()];
      break;
    }
    case versal::FaultKind::kMemoryBitFlip:
    case versal::FaultKind::kStreamDrop:
    case versal::FaultKind::kStreamStall: {
      const auto& layer0 = tasks[slot].orth.front();
      spec.tile = layer0[mix64(salt ^ 0x3c) % layer0.size()];
      break;
    }
    case versal::FaultKind::kDmaDrop:
    case versal::FaultKind::kDmaStall: {
      // Collect DMA sources from the slot's dataflow; fall back to a
      // layer-0 tile (the fault then simply never fires) when the
      // placement is single-band and has no inter-band DMA.
      std::vector<versal::TileCoord> sources;
      for (const auto& tr : acc.dataflow(slot).transitions) {
        for (const auto& mv : tr.moves) {
          if (mv.is_dma) sources.push_back(mv.src);
        }
      }
      if (sources.empty()) {
        spec.tile = tasks[slot].orth.front().front();
      } else {
        spec.tile = sources[mix64(salt ^ 0x77) % sources.size()];
      }
      break;
    }
    case versal::FaultKind::kPlioDegrade: {
      spec.slot = static_cast<int>(slot);
      spec.tile = versal::TileCoord{-1, -1};
      spec.bandwidth_scale = 0.25 + 0.5 * (mix64(salt ^ 0xbb) % 3) / 2.0;
      break;
    }
    case versal::FaultKind::kSilentError: {
      // Fires at result collection (corrupt_result), keyed by task
      // slot. The campaign presents each task's factors exactly once,
      // so the corruption must arm on the first presentation.
      spec.slot = static_cast<int>(slot);
      spec.tile = versal::TileCoord{0, spec.slot};
      spec.after_op = 0;
      break;
    }
  }
  if (kind == versal::FaultKind::kStreamStall ||
      kind == versal::FaultKind::kDmaStall) {
    spec.stall_seconds = 1e-6 * (1 + mix64(salt ^ 0xd1) % 5);
  }
  return spec;
}

// Simulated cycles from the first "inject:*" instant to the first
// "detect:*" instant on the tracer's fault track, or -1 when either end
// is missing. The instants carry simulated seconds, so the difference
// times the AIE clock is the hardware-visible detection latency.
double detection_latency_cycles(const obs::Tracer& tracer,
                                double aie_clock_hz) {
  double first_inject = -1.0;
  double first_detect = -1.0;
  for (const auto& ev : tracer.instants()) {
    if (ev.domain != obs::Domain::kSim || ev.track != "faults") continue;
    if (ev.name.rfind("inject:", 0) == 0) {
      if (first_inject < 0.0 || ev.at_s < first_inject) first_inject = ev.at_s;
    } else if (ev.name.rfind("detect:", 0) == 0) {
      if (first_detect < 0.0 || ev.at_s < first_detect) first_detect = ev.at_s;
    }
  }
  if (first_inject < 0.0 || first_detect < 0.0) return -1.0;
  return std::max(0.0, first_detect - first_inject) * aie_clock_hz;
}

// Shortest decimal that round-trips the exact double, so a checkpointed
// trial renders the identical CSV cell on resume.
std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// One checkpoint payload per trial: tab-joined escaped fields (the
// checkpoint layer escapes the whole payload again for the file).
// trace_json is intentionally not serialized.
std::string serialize_outcome(const CampaignOutcome& out) {
  using common::CheckpointFile;
  const std::string fields[] = {
      cat(static_cast<int>(out.kind)), cat(out.plan_seed),
      cat(out.target.row),             cat(out.target.col),
      cat(out.after_op),               cat(out.events_fired),
      cat(out.failed_tasks),           cat(out.recovery_runs),
      cat(out.masked_tiles),           out.detected ? "1" : "0",
      out.healthy_bit_identical ? "1" : "0",
      cat(out.verify_caught),          cat(out.silent_escapes),
      g17(out.batch_seconds),          g17(out.detection_latency_cycles),
      out.note};
  std::string payload;
  for (const auto& field : fields) {
    if (!payload.empty()) payload += '\t';
    payload += CheckpointFile::escape(field);
  }
  return payload;
}

std::optional<CampaignOutcome> deserialize_outcome(const std::string& payload) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t tab = payload.find('\t', start);
    fields.push_back(common::CheckpointFile::unescape(
        payload.substr(start, tab == std::string::npos ? tab : tab - start)));
    if (tab == std::string::npos) break;
    start = tab + 1;
  }
  if (fields.size() != 16) return std::nullopt;
  CampaignOutcome out;
  out.kind = static_cast<versal::FaultKind>(std::atoi(fields[0].c_str()));
  out.plan_seed = std::strtoull(fields[1].c_str(), nullptr, 10);
  out.target.row = std::atoi(fields[2].c_str());
  out.target.col = std::atoi(fields[3].c_str());
  out.after_op = std::strtoull(fields[4].c_str(), nullptr, 10);
  out.events_fired = std::atoi(fields[5].c_str());
  out.failed_tasks = std::atoi(fields[6].c_str());
  out.recovery_runs = std::atoi(fields[7].c_str());
  out.masked_tiles = std::atoi(fields[8].c_str());
  out.detected = fields[9] == "1";
  out.healthy_bit_identical = fields[10] == "1";
  out.verify_caught = std::atoi(fields[11].c_str());
  out.silent_escapes = std::atoi(fields[12].c_str());
  out.batch_seconds = std::strtod(fields[13].c_str(), nullptr);
  out.detection_latency_cycles = std::strtod(fields[14].c_str(), nullptr);
  out.note = fields[15];
  return out;
}

}  // namespace

std::string campaign_checkpoint_tag(const CampaignOptions& options) {
  // Digest every option that changes what a trial computes. The fault
  // plan derives from (seed, kind index, trial), the matrices from
  // (seed, config shape), so those plus the trial plan pin the sweep.
  std::uint64_t h = 0x6861636bull;  // arbitrary non-zero start
  const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  // Serialization format version: bumped when serialize_outcome gains
  // fields, so a checkpoint written by an older layout is rewritten
  // instead of colliding key-by-key with the new one.
  fold(2);
  const auto& c = options.config;
  fold(c.rows);
  fold(c.cols);
  fold(static_cast<std::uint64_t>(c.iterations));
  fold(c.precision.has_value()
           ? std::bit_cast<std::uint64_t>(*c.precision)
           : 0ull);
  fold(static_cast<std::uint64_t>(c.p_eng));
  fold(static_cast<std::uint64_t>(c.p_task));
  fold(std::bit_cast<std::uint64_t>(c.pl_frequency_hz));
  fold(static_cast<std::uint64_t>(c.fault_retries));
  fold(static_cast<std::uint64_t>(c.ordering));
  fold(c.relocated_outputs ? 1 : 0);
  fold(static_cast<std::uint64_t>(options.batch));
  fold(static_cast<std::uint64_t>(options.trials_per_kind));
  fold(options.seed);
  fold(options.kinds.size());
  for (const auto kind : options.kinds) {
    fold(static_cast<std::uint64_t>(kind));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return cat("campaign-", buf);
}

std::vector<CampaignOutcome> run_campaign(const CampaignOptions& options) {
  options.config.validate();
  HSVD_REQUIRE(options.batch >= 1, "campaign batch must be non-empty");
  HSVD_REQUIRE(options.trials_per_kind >= 1, "need at least one trial");
  HSVD_REQUIRE(options.max_new_trials >= 0,
               "max_new_trials must be nonnegative (0 = unlimited)");

  std::unique_ptr<common::CheckpointFile> checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint = std::make_unique<common::CheckpointFile>(
        options.checkpoint_path, campaign_checkpoint_tag(options));
  }

  std::vector<versal::FaultKind> kinds = options.kinds;
  if (kinds.empty()) {
    kinds = {versal::FaultKind::kTileHang,      versal::FaultKind::kMemoryBitFlip,
             versal::FaultKind::kStreamDrop,    versal::FaultKind::kStreamStall,
             versal::FaultKind::kDmaDrop,       versal::FaultKind::kDmaStall,
             versal::FaultKind::kPlioDegrade,   versal::FaultKind::kSilentError};
  }

  std::vector<linalg::MatrixF> batch;
  batch.reserve(static_cast<std::size_t>(options.batch));
  for (int i = 0; i < options.batch; ++i) {
    batch.push_back(make_matrix(options.config.rows, options.config.cols,
                                mix64(options.seed) + static_cast<std::uint64_t>(i)));
  }

  // Fault-free reference for the bit-identity check. Lazy so a resume
  // that replays every trial from the checkpoint never runs the fabric.
  std::optional<RunResult> reference;
  const auto reference_run = [&]() -> const RunResult& {
    if (!reference.has_value()) {
      HeteroSvdAccelerator reference_acc(options.config);
      reference = reference_acc.run(batch);
    }
    return *reference;
  };

  std::vector<CampaignOutcome> outcomes;
  int executed = 0;
  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    for (int trial = 0; trial < options.trials_per_kind; ++trial) {
      const std::string key = cat("trial:", ki, ":", trial);
      if (checkpoint != nullptr) {
        if (const std::string* payload = checkpoint->find(key)) {
          if (auto cached = deserialize_outcome(*payload)) {
            outcomes.push_back(std::move(*cached));
            continue;
          }
        }
      }
      if (options.max_new_trials > 0 && executed >= options.max_new_trials) {
        // Interrupted sweep: the checkpoint holds everything completed;
        // the next run resumes from it and finishes the list.
        return outcomes;
      }
      const std::uint64_t salt =
          mix64(options.seed ^ (ki * 1000003ull + static_cast<std::uint64_t>(trial)));

      HeteroSvdAccelerator acc(options.config);
      versal::FaultPlan plan;
      plan.seed = salt;
      plan.faults.push_back(make_spec(kinds[ki], acc, salt));
      versal::FaultInjector injector(plan);
      acc.attach_faults(&injector);

      // A fresh tracer per trial times the injection-to-detection gap on
      // the fault track. Observation is guaranteed inert, so the traced
      // run still matches the untraced reference bit for bit.
      obs::ObsContext trial_obs;
      trial_obs.enable_tracing();
      acc.attach_observer(&trial_obs);

      RunResult run = acc.run(batch);

      // kSilentError bypasses every dataflow detection point by
      // construction: apply the armed corruption to the completed
      // factors (the same corrupt_result hook the facade drives) and
      // score the verify layer as the detector. The corrupted task is
      // the faulted one, so it is excluded from the healthy
      // bit-identity census below.
      std::vector<bool> corrupted(run.tasks.size(), false);
      int verify_caught = 0;
      int silent_escapes = 0;
      std::string silent_note;
      if (kinds[ki] == versal::FaultKind::kSilentError) {
        const double precision =
            options.config.precision.has_value()
                ? static_cast<double>(*options.config.precision)
                : 0.0;
        const verify::ResultVerifier verifier(precision);
        for (std::size_t t = 0; t < run.tasks.size(); ++t) {
          TaskResult& task = run.tasks[t];
          if (task.status != hsvd::SvdStatus::kOk || task.u.empty()) continue;
          if (!injector.corrupt_result(static_cast<int>(t), task.u.data(),
                                       task.sigma)) {
            continue;
          }
          corrupted[t] = true;
          Svd candidate;
          candidate.u = task.u;
          candidate.sigma = task.sigma;
          candidate.v = derive_v(batch[t], task.u, task.sigma, 1);
          candidate.status = hsvd::SvdStatus::kOk;
          const verify::VerifyOutcome verdict = verifier.check(batch[t],
                                                               candidate);
          if (verdict.passed) {
            ++silent_escapes;
          } else {
            ++verify_caught;
            if (silent_note.empty()) silent_note = verdict.note;
          }
        }
      }

      CampaignOutcome out;
      out.kind = kinds[ki];
      out.plan_seed = salt;
      out.target = plan.faults.front().tile;
      out.after_op = plan.faults.front().after_op;
      out.events_fired = static_cast<int>(injector.event_count());
      out.failed_tasks = run.failed_tasks;
      out.recovery_runs = run.recovery_runs;
      out.masked_tiles = static_cast<int>(acc.masked_tiles().size());
      out.batch_seconds = run.batch_seconds;
      out.verify_caught = verify_caught;
      out.silent_escapes = silent_escapes;
      const bool fault_noticed =
          run.failed_tasks > 0 || run.recovery_runs > 0;
      if (kinds[ki] == versal::FaultKind::kSilentError) {
        // The dataflow boundaries never see a silent error; detection
        // here means the attestation ladder failed the corrupted
        // factors (vacuously true when the corruption never fired).
        out.detected = silent_escapes == 0;
        if (out.note.empty()) out.note = silent_note;
      } else {
        out.detected = !versal::corrupts(kinds[ki]) ||
                       out.events_fired == 0 || fault_noticed;
      }
      out.detection_latency_cycles = detection_latency_cycles(
          *trial_obs.tracer(), options.config.device.aie_clock_hz);
      if (options.capture_failure_trace && fault_noticed &&
          std::none_of(outcomes.begin(), outcomes.end(),
                       [](const CampaignOutcome& o) {
                         return !o.trace_json.empty();
                       })) {
        out.trace_json = trial_obs.tracer()->to_chrome_json();
      }
      for (std::size_t t = 0; t < run.tasks.size(); ++t) {
        const auto& task = run.tasks[t];
        if (!task.message.empty() && out.note.empty()) out.note = task.message;
        // First-attempt successes must match the reference exactly;
        // retried tasks re-ran on a re-placed (possibly degraded)
        // floorplan and are checked for success, not bit identity.
        if (task.status == hsvd::SvdStatus::kOk &&
            task.recovery_attempts == 0 && !corrupted[t]) {
          if (!same_matrix(task.u, reference_run().tasks[t].u) ||
              task.sigma != reference_run().tasks[t].sigma ||
              task.iterations != reference_run().tasks[t].iterations) {
            out.healthy_bit_identical = false;
          }
        }
      }
      if (checkpoint != nullptr) {
        checkpoint->record(key, serialize_outcome(out));
      }
      ++executed;
      outcomes.push_back(std::move(out));
    }
  }
  return outcomes;
}

std::string campaign_csv(const std::vector<CampaignOutcome>& outcomes) {
  CsvWriter csv({"kind", "plan_seed", "target_row", "target_col", "after_op",
                 "events_fired", "failed_tasks", "recovery_runs",
                 "masked_tiles", "detected", "healthy_bit_identical",
                 "verify_caught", "silent_escape", "batch_seconds",
                 "detection_cycles", "note"});
  for (const auto& out : outcomes) {
    csv.add_row({versal::to_string(out.kind), cat(out.plan_seed),
                 cat(out.target.row), cat(out.target.col), cat(out.after_op),
                 cat(out.events_fired), cat(out.failed_tasks),
                 cat(out.recovery_runs), cat(out.masked_tiles),
                 out.detected ? "1" : "0",
                 out.healthy_bit_identical ? "1" : "0",
                 cat(out.verify_caught), cat(out.silent_escapes),
                 sci(out.batch_seconds, 6),
                 out.detection_latency_cycles < 0.0
                     ? std::string()
                     : fixed(out.detection_latency_cycles, 0),
                 out.note});
  }
  return csv.render();
}

bool campaign_clean(const std::vector<CampaignOutcome>& outcomes) {
  return std::all_of(outcomes.begin(), outcomes.end(),
                     [](const CampaignOutcome& out) {
                       return out.detected && out.healthy_bit_identical;
                     });
}

}  // namespace hsvd::accel
