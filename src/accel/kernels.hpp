// Functional AIE kernels: the arithmetic that runs on orth-AIEs and
// norm-AIEs. Shared by the accelerator's functional path; timing comes
// from perf::AieKernelModel so the simulator and the analytic model agree
// on per-kernel cost by construction.
#pragma once

#include <span>
#include <vector>

#include "jacobi/rotation.hpp"

namespace hsvd::accel {

struct OrthKernelResult {
  double coherence = 0.0;  // eq. (6) measure of the pair before rotation
  bool rotated = false;
};

// Orthogonalizes the column pair in place (lines 9-12 of Algorithm 1):
// fused Gram dot products (one traversal for aii/ajj/aij), rotation
// closed form, update.
OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right);

// Cached-norm variant: `aii` / `ajj` carry the squared column norms in
// and are updated in place from the rotation closed form, so only the
// off-diagonal dot touches the column data. This is the accelerator's
// per-task Gram cache (the host analogue of keeping the diagonal in the
// orth-AIE's registers across visits).
OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right,
                             float& aii, float& ajj);

struct NormKernelResult {
  float sigma = 0.0f;
};

// Normalizes one column in place (line 23 of Algorithm 1): sigma = ||b||,
// u = b / sigma. Zero columns keep sigma = 0 and are left untouched.
NormKernelResult norm_kernel(std::span<float> column);

}  // namespace hsvd::accel
