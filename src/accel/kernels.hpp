// Functional AIE kernels: the arithmetic that runs on orth-AIEs and
// norm-AIEs. Shared by the accelerator's functional path; timing comes
// from perf::AieKernelModel so the simulator and the analytic model agree
// on per-kernel cost by construction.
#pragma once

#include <span>
#include <vector>

#include "jacobi/rotation.hpp"

namespace hsvd::accel {

struct OrthKernelResult {
  double coherence = 0.0;  // eq. (6) measure of the pair before rotation
  bool rotated = false;
};

// Orthogonalizes the column pair in place (lines 9-12 of Algorithm 1):
// Gram dot products, rotation closed form, update.
OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right);

struct NormKernelResult {
  float sigma = 0.0f;
};

// Normalizes one column in place (line 23 of Algorithm 1): sigma = ||b||,
// u = b / sigma. Zero columns keep sigma = 0 and are left untouched.
NormKernelResult norm_kernel(std::span<float> column);

}  // namespace hsvd::accel
