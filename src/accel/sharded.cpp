#include "accel/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "jacobi/movement.hpp"
#include "linalg/ops.hpp"
#include "perfmodel/resource_model.hpp"
#include "shard/merge.hpp"

namespace hsvd::accel {

ShardedAccelerator::ShardedAccelerator(const HeteroSvdConfig& config,
                                       int shards) {
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  config.validate();
  arrays_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    arrays_.push_back(std::make_unique<HeteroSvdAccelerator>(config));
  }
  if (shards > 1) {
    link_ = std::make_unique<shard::InterShardLink>(
        shards, config.device, config.pl_frequency_hz);
    block_schedule_ = jacobi::block_ring_schedule(config.blocks());
  }
}

ShardedAccelerator::~ShardedAccelerator() = default;

HeteroSvdAccelerator& ShardedAccelerator::array(int s) {
  HSVD_REQUIRE(s >= 0 && s < shards(), "shard index out of range");
  return *arrays_[static_cast<std::size_t>(s)];
}

void ShardedAccelerator::attach_trace(versal::TraceRecorder* recorder) {
  arrays_.front()->attach_trace(recorder);
}

void ShardedAccelerator::attach_faults(versal::FaultInjector* faults) {
  arrays_.front()->attach_faults(faults);
}

void ShardedAccelerator::attach_observer(obs::ObsContext* observer) {
  obs_ = observer;
  arrays_.front()->attach_observer(observer);
}

void ShardedAccelerator::attach_cancellation(const common::CancelToken* cancel) {
  cancel_ = cancel;
  arrays_.front()->attach_cancellation(cancel);
}

bool ShardedAccelerator::fanout_parallel() const {
  const int threads =
      common::ThreadPool::resolve_threads(config().host_threads);
  return threads > 1 && shards() > 1 && !arrays_.front()->has_trace() &&
         (obs_ == nullptr || obs_->tracer() == nullptr);
}

TaskResult ShardedAccelerator::execute_task(double ready_at,
                                            const linalg::MatrixF* matrix,
                                            int task_id, int* fault_shard) {
  const HeteroSvdConfig& cfg = config();
  const bool functional = matrix != nullptr;
  const int k = cfg.p_eng;
  const int p = cfg.blocks();
  const int s_count = shards();
  const std::size_t m = cfg.rows;
  const double col_bytes = static_cast<double>(m) * sizeof(float);
  const double block_bytes = col_bytes * k;
  const double hls = arrays_.front()->hls_overhead_seconds();

  TaskResult result;
  result.start_seconds = ready_at;

  const std::size_t n_pad = cfg.padded_cols();
  linalg::MatrixF b;
  std::vector<float> colnorm;
  if (functional) {
    HSVD_REQUIRE(matrix->rows() == m && matrix->cols() == cfg.cols,
                 "matrix shape does not match the accelerator configuration");
    b = linalg::MatrixF(m, n_pad);
    b.assign_cols(0, *matrix);
    colnorm.resize(n_pad);
  }

  // Round-0 occupancy of the block ring defines each block's home shard:
  // that is where its DDR staging lands and where it sits again after
  // every sweep's wrap-around (so normalization also runs there).
  std::vector<int> block_shard(static_cast<std::size_t>(p), 0);
  const auto& round0 = block_schedule_.front();
  for (std::size_t j = 0; j < round0.size(); ++j) {
    const int s = jacobi::shard_of_slot(static_cast<int>(j), s_count);
    if (round0[j].left < p) block_shard[static_cast<std::size_t>(round0[j].left)] = s;
    if (round0[j].right < p) block_shard[static_cast<std::size_t>(round0[j].right)] = s;
  }

  // Stage every block from DDR through its home shard's NoC (eq. (12)
  // per shard: the S staging streams run concurrently, each serialized
  // on its own DDRMC port).
  std::vector<double> ready(static_cast<std::size_t>(p), 0.0);
  for (int blk = 0; blk < p; ++blk) {
    const int s = block_shard[static_cast<std::size_t>(blk)];
    ready[static_cast<std::size_t>(blk)] =
        arrays_[static_cast<std::size_t>(s)]->stage_from_ddr(0, ready_at,
                                                             block_bytes);
  }

  SystemModule master(cfg.precision.value_or(0.0));
  const int max_iters = cfg.precision.has_value() && functional
                            ? std::max(cfg.iterations, 30)
                            : cfg.iterations;
  const std::size_t round_count = block_schedule_.size();
  const bool parallel = fanout_parallel();

  // Per-shard pair lists of one round, rebuilt per round: (site j, bu, bv).
  struct SitePair {
    std::size_t site;
    int bu;
    int bv;
  };

  int iterations_run = 0;
  for (int iter = 0; iter < max_iters; ++iter) {
    master.begin_iteration();
    if (functional) {
      for (std::size_t gc = 0; gc < n_pad; ++gc) {
        auto col = b.col(gc);
        colnorm[gc] = linalg::dot<float>(col, col);
      }
    }
    // Per-shard convergence observers for this sweep; folded into the
    // master at the sweep barrier (the sweep max of the union is the max
    // of the per-shard maxima, so the merge is order-independent).
    std::vector<SystemModule> sysmods(static_cast<std::size_t>(s_count),
                                      SystemModule(cfg.precision.value_or(0.0)));
    for (auto& sm : sysmods) sm.begin_iteration();

    for (std::size_t r = 0; r < round_count; ++r) {
      const auto& row = block_schedule_[r];
      std::vector<std::vector<SitePair>> per_shard(
          static_cast<std::size_t>(s_count));
      for (std::size_t j = 0; j < row.size(); ++j) {
        const int bu = row[j].left;
        const int bv = row[j].right;
        if (bu >= p || bv >= p) continue;  // phantom bye pair (odd p)
        per_shard[static_cast<std::size_t>(
                      jacobi::shard_of_slot(static_cast<int>(j), s_count))]
            .push_back(SitePair{j, bu, bv});
      }
      // All pairs of a round depend only on the previous round's ready
      // times, so the shards run concurrently; within a shard the pairs
      // serialize on its PLIO channels in site order. Every write below
      // is shard-disjoint (its own array, its pairs' matrix columns, its
      // completion slots), so the fan-out is thread-count invariant.
      std::vector<HeteroSvdAccelerator::PairCompletion> completions(row.size());
      std::vector<std::optional<hsvd::FaultDetected>> faults(
          static_cast<std::size_t>(s_count));
      const auto run_shard = [&](std::size_t s) {
        try {
          for (const SitePair& sp : per_shard[s]) {
            const double launch =
                std::max(ready[static_cast<std::size_t>(sp.bu)],
                         ready[static_cast<std::size_t>(sp.bv)]) +
                hls;
            completions[sp.site] = arrays_[s]->execute_block_pair(
                0, task_id, sp.bu, sp.bv, launch, functional ? &b : nullptr,
                functional ? &colnorm : nullptr, sysmods[s]);
          }
        } catch (const hsvd::FaultDetected& e) {
          faults[s] = e;
        }
      };
      if (parallel) {
        common::ThreadPool::shared().parallel_for(
            static_cast<std::size_t>(s_count),
            common::ThreadPool::resolve_threads(cfg.host_threads), run_shard,
            "shard-round");
      } else {
        for (std::size_t s = 0; s < static_cast<std::size_t>(s_count); ++s) {
          run_shard(s);
        }
      }
      for (std::size_t s = 0; s < faults.size(); ++s) {
        if (faults[s].has_value()) {
          if (fault_shard != nullptr) *fault_shard = static_cast<int>(s);
          throw *faults[s];
        }
      }
      for (std::size_t s = 0; s < per_shard.size(); ++s) {
        for (const SitePair& sp : per_shard[s]) {
          ready[static_cast<std::size_t>(sp.bu)] = completions[sp.site].done_u;
          ready[static_cast<std::size_t>(sp.bv)] = completions[sp.site].done_v;
        }
      }
      // Ring rotation to the next round (wrap-around included: the final
      // rotation returns every block to its home site for the next sweep
      // -- and, after the last sweep, for normalization). Cross-shard
      // hops are charged on the coordinator in schedule order; intra-
      // shard moves stay inside the array's PL buffers for free.
      const std::size_t r_next = (r + 1) % round_count;
      for (const auto& mv :
           jacobi::sharded_moves_between(block_schedule_, r, r_next, s_count)) {
        if (mv.move.column >= p) continue;  // the phantom block never moves data
        if (!mv.crosses_shards()) continue;
        const std::size_t blk = static_cast<std::size_t>(mv.move.column);
        ready[blk] = link_->transfer(mv.from_shard, mv.to_shard, ready[blk],
                                     block_bytes);
        block_shard[blk] = mv.to_shard;
      }
    }
    ++iterations_run;
    if (functional) {
      for (const auto& sm : sysmods) master.merge_sweep(sm);
      master.end_iteration();
      if (master.should_terminate(cfg.precision.has_value())) break;
      if (cfg.precision.has_value() && master.stalled()) {
        result.watchdog_stalled = true;
        break;
      }
    }
  }

  // ---- Normalization stage, distributed over the home shards ----------
  std::vector<float> sigma;
  if (functional) sigma.resize(n_pad);
  std::vector<std::vector<int>> norm_blocks(static_cast<std::size_t>(s_count));
  for (int blk = 0; blk < p; ++blk) {
    norm_blocks[static_cast<std::size_t>(block_shard[static_cast<std::size_t>(blk)])]
        .push_back(blk);
  }
  std::vector<double> norm_done(static_cast<std::size_t>(s_count), 0.0);
  std::vector<std::optional<hsvd::FaultDetected>> norm_faults(
      static_cast<std::size_t>(s_count));
  const auto run_norm = [&](std::size_t s) {
    try {
      for (int blk : norm_blocks[s]) {
        const double done = arrays_[s]->execute_norm_block(
            0, blk, ready[static_cast<std::size_t>(blk)] + hls,
            functional ? &b : nullptr, functional ? &sigma : nullptr);
        norm_done[s] = std::max(norm_done[s], done);
      }
    } catch (const hsvd::FaultDetected& e) {
      norm_faults[s] = e;
    }
  };
  if (parallel) {
    common::ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(s_count),
        common::ThreadPool::resolve_threads(cfg.host_threads), run_norm,
        "shard-norm");
  } else {
    for (std::size_t s = 0; s < static_cast<std::size_t>(s_count); ++s) {
      run_norm(s);
    }
  }
  for (std::size_t s = 0; s < norm_faults.size(); ++s) {
    if (norm_faults[s].has_value()) {
      if (fault_shard != nullptr) *fault_shard = static_cast<int>(s);
      throw *norm_faults[s];
    }
  }
  result.end_seconds =
      *std::max_element(norm_done.begin(), norm_done.end());

  result.iterations = iterations_run;
  result.convergence_rate = master.convergence_rate();
  if (functional && cfg.precision.has_value()) {
    result.converged = master.should_terminate(true);
    if (!result.converged) result.status = hsvd::SvdStatus::kNotConverged;
    if (!result.converged) {
      result.message = result.watchdog_stalled
                           ? cat("convergence watchdog: coherence stalled at ",
                                 sci(master.convergence_rate()), " for ",
                                 SystemModule::stall_limit(), " sweeps")
                           : cat("sweep budget exhausted at coherence ",
                                 sci(master.convergence_rate()));
    }
  }
  if (functional) {
    std::vector<std::size_t> order(n_pad);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return sigma[x] > sigma[y];
                     });
    result.u = linalg::MatrixF(m, cfg.cols);
    result.sigma.resize(cfg.cols);
    for (std::size_t t = 0; t < cfg.cols; ++t) {
      result.sigma[t] = sigma[order[t]];
      auto src = b.col(order[t]);
      auto dst = result.u.col(t);
      for (std::size_t r = 0; r < m; ++r) dst[r] = src[r];
    }
  }
  return result;
}

RunResult ShardedAccelerator::execute_batch(
    int batch_size, const std::vector<linalg::MatrixF>* batch,
    std::vector<int>* fault_shards) {
  HSVD_REQUIRE(batch_size >= 1, "batch must contain at least one task");
  for (auto& a : arrays_) a->reset_timelines();
  link_->reset_time();

  const int base_id = next_task_id_;
  next_task_id_ += batch_size;

  RunResult run;
  run.tasks.resize(static_cast<std::size_t>(batch_size));
  if (fault_shards != nullptr) {
    fault_shards->assign(static_cast<std::size_t>(batch_size), -1);
  }

  // Sharded tasks share the inter-shard link's timelines, so the batch
  // runs as one sequential chain (the host parallelism lives inside each
  // task's per-round shard fan-out instead).
  double free_at = 0.0;
  for (int t = 0; t < batch_size; ++t) {
    if (cancel_ != nullptr && cancel_->expired()) {
      throw hsvd::DeadlineExceeded(
          cat(cancel_->cancelled() ? "cancelled" : "deadline expired",
              " before task ", t, " of the sharded batch"));
    }
    const linalg::MatrixF* matrix =
        batch != nullptr ? &(*batch)[static_cast<std::size_t>(t)] : nullptr;
    TaskResult task;
    int fault_shard = -1;
    try {
      task = execute_task(free_at, matrix, base_id + t, &fault_shard);
      free_at = task.end_seconds;
    } catch (const hsvd::FaultDetected& e) {
      task = TaskResult{};
      task.status = hsvd::SvdStatus::kFailed;
      task.message = e.what();
      if (e.has_tile()) {
        task.fault_tile = versal::TileCoord{e.tile_row(), e.tile_col()};
      }
      task.start_seconds = free_at;
      task.end_seconds = free_at;
      // The failed task left column buffers on every shard's tiles.
      for (auto& a : arrays_) a->purge_task_buffers(0, base_id + t);
      if (obs_ != nullptr) obs_->metrics().add("sim.fault.detected");
    }
    if (fault_shards != nullptr && task.status == hsvd::SvdStatus::kFailed) {
      // execute_task wrote the raising shard before throwing; -1 means
      // the failure predates any shard attribution.
      (*fault_shards)[static_cast<std::size_t>(t)] = fault_shard;
    }
    run.tasks[static_cast<std::size_t>(t)] = std::move(task);
  }
  for (const auto& task : run.tasks) {
    run.batch_seconds = std::max(run.batch_seconds, task.end_seconds);
  }
  run.task_seconds = run.tasks.front().latency_seconds();
  run.throughput_tasks_per_s = batch_size / run.batch_seconds;

  std::vector<versal::ArrayStats> stats;
  std::vector<versal::UtilizationReport> reports;
  for (const auto& a : arrays_) {
    stats.push_back(a->array_stats());
    reports.push_back(a->utilization(run.batch_seconds));
  }
  run.stats = shard::merge_stats(stats);
  run.utilization = shard::merge_utilization(reports);
  run.core_utilization = run.utilization.core_utilization();

  // Resource footprint: S identical arrays plus one egress + one ingress
  // link PLIO per shard. Memory utilization stays the per-device
  // fraction -- each array holds the same placement.
  const perf::ResourceUsage single =
      perf::estimate_resources(config(), arrays_.front()->placement());
  run.resources = single;
  const int s_count = shards();
  run.resources.aie_orth *= s_count;
  run.resources.aie_norm *= s_count;
  run.resources.aie_mem *= s_count;
  run.resources.uram *= s_count;
  run.resources.bram *= s_count;
  run.resources.lut *= static_cast<std::uint64_t>(s_count);
  run.resources.plio = single.plio * s_count + 2 * s_count;
  run.memory_utilization =
      static_cast<double>(single.uram) / config().device.total_uram;
  return run;
}

RunResult ShardedAccelerator::run(const std::vector<linalg::MatrixF>& batch) {
  if (shards() == 1) return arrays_.front()->run(batch);
  std::vector<int> fault_shards;
  RunResult result =
      execute_batch(static_cast<int>(batch.size()), &batch, &fault_shards);

  // Bounded recovery, like the single-array engine -- but a masked tile
  // is re-placed on the shard that raised the detection, with the same
  // shape (mask_tiles), so the block structure stays identical across
  // the arrays.
  int budget = config().fault_retries;
  double epoch = result.batch_seconds;
  int attempt = 0;
  while (budget-- > 0) {
    std::vector<std::size_t> failed;
    std::vector<std::vector<versal::TileCoord>> bad(
        static_cast<std::size_t>(shards()));
    for (std::size_t i = 0; i < result.tasks.size(); ++i) {
      if (result.tasks[i].status != hsvd::SvdStatus::kFailed) continue;
      failed.push_back(i);
      if (result.tasks[i].fault_tile.has_value() && fault_shards[i] >= 0) {
        bad[static_cast<std::size_t>(fault_shards[i])].push_back(
            *result.tasks[i].fault_tile);
      }
    }
    if (failed.empty()) break;
    if (cancel_ != nullptr && cancel_->expired()) {
      throw hsvd::DeadlineExceeded(
          cat(cancel_->cancelled() ? "cancelled" : "deadline expired",
              " before sharded recovery round ", attempt + 1));
    }
    bool masked_any = false;
    bool mask_failed = false;
    for (std::size_t s = 0; s < bad.size(); ++s) {
      if (bad[s].empty()) continue;
      std::sort(bad[s].begin(), bad[s].end());
      bad[s].erase(std::unique(bad[s].begin(), bad[s].end()), bad[s].end());
      if (arrays_[s]->mask_tiles(bad[s])) {
        masked_any = true;
      } else {
        mask_failed = true;
      }
    }
    if (!masked_any || mask_failed) break;
    ++attempt;
    ++result.recovery_runs;
    if (obs_ != nullptr) {
      obs_->metrics().add("sim.fault.recovery_rounds");
    }
    std::vector<linalg::MatrixF> sub;
    sub.reserve(failed.size());
    for (std::size_t i : failed) sub.push_back(batch[i]);
    std::vector<int> retry_fault_shards;
    RunResult retry = execute_batch(static_cast<int>(sub.size()), &sub,
                                    &retry_fault_shards);
    for (std::size_t j = 0; j < failed.size(); ++j) {
      TaskResult task = std::move(retry.tasks[j]);
      task.start_seconds += epoch;
      task.end_seconds += epoch;
      task.recovery_attempts = attempt;
      result.tasks[failed[j]] = std::move(task);
      fault_shards[failed[j]] = retry_fault_shards[j];
    }
    epoch += retry.batch_seconds;
    result.stats.neighbour_transfers += retry.stats.neighbour_transfers;
    result.stats.dma_transfers += retry.stats.dma_transfers;
    result.stats.dma_bytes += retry.stats.dma_bytes;
    result.stats.stream_packets += retry.stats.stream_packets;
    result.stats.stream_bytes += retry.stats.stream_bytes;
    result.stats.kernel_invocations += retry.stats.kernel_invocations;
  }

  result.failed_tasks = 0;
  for (const auto& task : result.tasks) {
    if (task.status == hsvd::SvdStatus::kFailed) ++result.failed_tasks;
  }
  if (result.failed_tasks > 0 || result.recovery_runs > 0) {
    double makespan = 0.0;
    int completed = 0;
    for (const auto& task : result.tasks) {
      if (task.status == hsvd::SvdStatus::kFailed) continue;
      makespan = std::max(makespan, task.end_seconds);
      ++completed;
    }
    result.batch_seconds = std::max(result.batch_seconds, makespan);
    result.throughput_tasks_per_s =
        result.batch_seconds > 0.0 ? completed / result.batch_seconds : 0.0;
  }
  return result;
}

RunResult ShardedAccelerator::estimate(int batch_size) {
  if (shards() == 1) return arrays_.front()->estimate(batch_size);
  HSVD_REQUIRE(config().iterations >= 1,
               "timing-only estimation needs a fixed iteration count");
  return execute_batch(batch_size, nullptr, nullptr);
}

}  // namespace hsvd::accel
