#include "accel/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "accel/kernels.hpp"
#include "accel/pipeline.hpp"
#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "jacobi/block.hpp"
#include "jacobi/convergence.hpp"
#include "jacobi/movement.hpp"
#include "linalg/ops.hpp"

namespace hsvd::accel {

namespace {

std::string column_key(int task_id, int global_col) {
  return cat("c", global_col, ".t", task_id);
}

// True when `key` ("c<col>.t<id>" or "c<col>.t<id>#dma") belongs to the
// given task id. Exact-match parse: ".t1" must not claim ".t12" keys.
bool key_belongs_to_task(const std::string& key, int task_id) {
  const std::size_t at = key.rfind(".t");
  if (at == std::string::npos) return false;
  std::string id = key.substr(at + 2);
  const std::size_t shadow = id.find('#');
  if (shadow != std::string::npos) id = id.substr(0, shadow);
  return id == std::to_string(task_id);
}

}  // namespace

HeteroSvdAccelerator::HeteroSvdAccelerator(const HeteroSvdConfig& config)
    : config_(config),
      noc_(config.device.ddr_ports, config.device.ddr_bytes_per_s,
           config.device.ddr_latency_s) {
  config_.validate();
  rebuild();
}

void HeteroSvdAccelerator::rebuild() {
  auto placed = try_place(config_, masked_);
  if (!placed.has_value()) {
    throw PlacementError(
        cat("configuration does not fit the healthy device: P_eng=",
            config_.p_eng, " P_task=", config_.p_task, " (",
            config_.orth_layers(), " orth-layers, ", masked_.size(),
            " masked tiles)"));
  }
  placement_ = std::move(*placed);

  const versal::ArrayGeometry geo(config_.device.aie_rows,
                                  config_.device.aie_cols);
  array_ = std::make_unique<versal::AieArraySim>(geo, config_.device);
  array_->attach_trace(trace_);
  array_->attach_faults(faults_);
  array_->attach_observer(obs_);

  schedule_ = jacobi::EngineSchedule{};
  slot_schedules_.clear();
  dataflows_.clear();
  channels_.clear();

  // The shifting ring ordering aligns its shifts with the physical parity
  // of the first orth row, which can differ between vertically stacked
  // task slots; every slot therefore owns its schedule and dataflow.
  // (All slots share the same pair coverage, only slot assignment moves.)
  const int pair_cols = config_.pair_width();
  for (const auto& task : placement_.tasks) {
    const int first_row = task.orth.front().front().row;
    auto schedule =
        jacobi::make_schedule(config_.ordering, pair_cols, first_row % 2);
    dataflows_.push_back(build_dataflow(schedule, task, geo,
                                        config_.relocated_outputs
                                            ? MemoryStrategy::kRelocated
                                            : MemoryStrategy::kNaive));
    if (schedule_.empty()) schedule_ = schedule;
    slot_schedules_.push_back(std::move(schedule));
  }
  block_rounds_ = jacobi::block_pair_rounds(config_.blocks());

  const double plio_rate_tx =
      std::min(plio_model_.plio_bits / 8.0 * config_.pl_frequency_hz,
               config_.device.plio_pl_to_aie_bytes_per_s);
  const double plio_rate_rx =
      std::min(plio_model_.plio_bits / 8.0 * config_.pl_frequency_hz,
               config_.device.plio_aie_to_pl_bytes_per_s);
  for (int t = 0; t < config_.p_task; ++t) {
    auto ch = std::make_unique<SlotChannels>(SlotChannels{
        {versal::Channel(cat("tx0.", t), plio_rate_tx),
         versal::Channel(cat("tx1.", t), plio_rate_tx)},
        {versal::Channel(cat("rx0.", t), plio_rate_rx),
         versal::Channel(cat("rx1.", t), plio_rate_rx)},
        versal::Channel(cat("ntx.", t), plio_rate_tx),
        versal::Channel(cat("nrx.", t), plio_rate_rx),
        nullptr,
        nullptr});
    // The dynamic-forwarding rule of section III-C: dest_id e routes to
    // engine e of the slot's first orth-layer.
    versal::ForwardingTable forwarding;
    const auto& layer0 = placement_.tasks[static_cast<std::size_t>(t)].orth.front();
    for (std::size_t e = 0; e < layer0.size(); ++e) {
      forwarding.bind(static_cast<std::uint32_t>(e), layer0[e]);
    }
    ch->sender = std::make_unique<Sender>(ch->tx[0], ch->tx[1],
                                          std::move(forwarding), *array_);
    ch->receiver =
        std::make_unique<Receiver>(ch->rx[0], ch->rx[1], array_.get());
    // A degraded-link fault scales the slot's PLIO bandwidth for the
    // whole run (the paper's PLIOs are static physical routes).
    if (faults_ != nullptr) {
      const double scale = faults_->plio_scale(t);
      if (scale < 1.0) {
        ch->tx[0].degrade(scale);
        ch->tx[1].degrade(scale);
        ch->rx[0].degrade(scale);
        ch->rx[1].degrade(scale);
        ch->norm_tx.degrade(scale);
        ch->norm_rx.degrade(scale);
      }
    }
    channels_.push_back(std::move(ch));
  }

  // Loop-switching overhead of the HLS state machines (t_hls): a fixed
  // number of PL cycles charged at each block-pair launch.
  hls_overhead_s_ = 64.0 / config_.pl_frequency_hz;
}

void HeteroSvdAccelerator::attach_trace(versal::TraceRecorder* recorder) {
  trace_ = recorder;
  array_->attach_trace(recorder);
}

void HeteroSvdAccelerator::attach_observer(obs::ObsContext* observer) {
  obs_ = observer;
  array_->attach_observer(observer);
}

void HeteroSvdAccelerator::attach_cancellation(
    const common::CancelToken* cancel) {
  cancel_ = cancel;
}

void HeteroSvdAccelerator::attach_faults(versal::FaultInjector* faults) {
  faults_ = faults;
  array_->attach_faults(faults);
  if (faults_ != nullptr) {
    for (std::size_t t = 0; t < channels_.size(); ++t) {
      const double scale = faults_->plio_scale(static_cast<int>(t));
      if (scale < 1.0) {
        auto& ch = *channels_[t];
        ch.tx[0].degrade(scale);
        ch.tx[1].degrade(scale);
        ch.rx[0].degrade(scale);
        ch.rx[1].degrade(scale);
        ch.norm_tx.degrade(scale);
        ch.norm_rx.degrade(scale);
      }
    }
  }
}

const DataflowPlan& HeteroSvdAccelerator::dataflow(std::size_t task_slot) const {
  HSVD_REQUIRE(task_slot < dataflows_.size(), "task slot out of range");
  return dataflows_[task_slot];
}

void HeteroSvdAccelerator::purge_task_buffers(int slot, int task_id) {
  const auto& task = placement_.tasks[static_cast<std::size_t>(slot)];
  const auto drop = [task_id](const std::string& key) {
    return key_belongs_to_task(key, task_id);
  };
  for (const auto& layer : task.orth) {
    for (const auto& tile : layer) array_->memory(tile).erase_if(drop);
  }
  for (const auto& tile : task.mem) array_->memory(tile).erase_if(drop);
  for (const auto& tile : task.norm) array_->memory(tile).erase_if(drop);
}

double HeteroSvdAccelerator::stage_from_ddr(int slot, double when,
                                            double bytes) {
  const double done = noc_.transfer_for_slot(slot, when, bytes);
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.ddr.transfers");
    obs_->metrics().add("sim.ddr.bytes", static_cast<std::uint64_t>(bytes));
    if (obs::Tracer* tr = obs_->tracer()) {
      // Request latency: issue to completion, queueing included.
      tr->span(obs::Domain::kSim, cat("ddr.slot", slot), "stage", "ddr", when,
               done - when);
    }
  }
  return done;
}

void HeteroSvdAccelerator::reset_timelines() {
  array_->reset_time();
  for (auto& ch : channels_) {
    ch->tx[0].timeline().reset();
    ch->tx[1].timeline().reset();
    ch->rx[0].timeline().reset();
    ch->rx[1].timeline().reset();
    ch->norm_tx.timeline().reset();
    ch->norm_rx.timeline().reset();
  }
  noc_.reset_time();
}

HeteroSvdAccelerator::PairCompletion HeteroSvdAccelerator::execute_block_pair(
    int slot, int task_id, int bu, int bv, double launch, linalg::MatrixF* b,
    std::vector<float>* colnorm, SystemModule& system,
    const StagedPair* staged) {
  const bool functional = b != nullptr;
  // Staged mode (the pipeline's load stage): real payloads flow through
  // the fabric from the caller's snapshot -- so every transport-side
  // detection point (missing buffer, DMA shadow, Rx checksum) fires
  // exactly as in functional mode -- but the math is deferred to the
  // orthogonalize stage downstream.
  const bool payloads = functional || staged != nullptr;
  const int k = config_.p_eng;
  const std::size_t m = config_.rows;
  const int layers = config_.orth_layers();
  const auto& task = placement_.tasks[static_cast<std::size_t>(slot)];
  const auto& schedule = slot_schedules_[static_cast<std::size_t>(slot)];
  const auto& plan = dataflows_[static_cast<std::size_t>(slot)];
  auto& ch = *channels_[static_cast<std::size_t>(slot)];
  const double col_bytes = static_cast<double>(m) * sizeof(float);
  const double t_orth = kernels_.orth_seconds(m);

  // ---- Tx: both blocks of the pair over their own PLIOs ---------
  // Local column c (0..2k-1): block u columns then block v columns.
  std::vector<int> global(static_cast<std::size_t>(2 * k));
  for (int i = 0; i < k; ++i) {
    global[static_cast<std::size_t>(i)] = bu * k + i;
    global[static_cast<std::size_t>(k + i)] = bv * k + i;
  }
  const auto round0 = jacobi::slot_map(schedule, 0);
  std::vector<double> arrival(static_cast<std::size_t>(2 * k));
  // Checksums stamped on outgoing columns by the PL sender; the Rx
  // boundary recomputes them to catch in-fabric corruption.
  std::vector<std::uint64_t> sent_crc(static_cast<std::size_t>(2 * k), 0);
  for (int c = 0; c < 2 * k; ++c) {
    std::vector<float> payload;
    if (functional) {
      auto col = b->col(static_cast<std::size_t>(global[static_cast<std::size_t>(c)]));
      payload.assign(col.begin(), col.end());
      sent_crc[static_cast<std::size_t>(c)] =
          versal::buffer_checksum(payload);
    } else if (staged != nullptr) {
      payload = (*staged->cols)[static_cast<std::size_t>(c)];
      sent_crc[static_cast<std::size_t>(c)] =
          versal::buffer_checksum(payload);
    }
    arrival[static_cast<std::size_t>(c)] = ch.sender->send_column(
        c < k ? 0 : 1,
        static_cast<std::uint32_t>(round0[static_cast<std::size_t>(c)].slot),
        static_cast<std::uint32_t>(global[static_cast<std::size_t>(c)]),
        static_cast<std::uint32_t>(task_id), launch, std::move(payload),
        static_cast<std::uint64_t>(col_bytes));
  }

  // ---- Orthogonalization through the layer pipeline -------------
  for (int l = 0; l < layers; ++l) {
    const auto& row = schedule[static_cast<std::size_t>(l)];
    for (int e = 0; e < k; ++e) {
      const auto& pair = row[static_cast<std::size_t>(e)];
      const versal::TileCoord tile =
          task.orth[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)];
      const double in_ready =
          std::max(arrival[static_cast<std::size_t>(pair.left)],
                   arrival[static_cast<std::size_t>(pair.right)]);
      const double end = array_->run_kernel(tile, in_ready, t_orth);
      if (!std::isfinite(end)) {
        throw FaultDetected(cat("core ", versal::to_string(tile),
                                " hung during orthogonalization"),
                            tile.row, tile.col, in_ready);
      }
      if (staged != nullptr && staged->kernel_end != nullptr) {
        (*staged->kernel_end)[static_cast<std::size_t>(l * k + e)] = end;
      }
      if (payloads) {
        const int gl = global[static_cast<std::size_t>(pair.left)];
        const int gr = global[static_cast<std::size_t>(pair.right)];
        auto& mem = array_->memory(tile);
        if (!mem.contains(column_key(task_id, gl)) ||
            !mem.contains(column_key(task_id, gr))) {
          throw FaultDetected(
              cat("tile ", versal::to_string(tile),
                  " is missing an input column (payload lost in "
                  "transit)"),
              tile.row, tile.col, end);
        }
        if (functional) {
          const auto r = orth_kernel(
              b->col(static_cast<std::size_t>(gl)),
              b->col(static_cast<std::size_t>(gr)),
              (*colnorm)[static_cast<std::size_t>(gl)],
              (*colnorm)[static_cast<std::size_t>(gr)]);
          if (!std::isfinite(r.coherence)) {
            throw FaultDetected(
                cat("orth kernel on tile ", versal::to_string(tile),
                    " produced a non-finite coherence"),
                tile.row, tile.col, end);
          }
          system.observe_pair(r.coherence);
        }
      }
      arrival[static_cast<std::size_t>(pair.left)] = end;
      arrival[static_cast<std::size_t>(pair.right)] = end;
    }
    if (l + 1 < layers) {
      for (const auto& mv : plan.transitions[static_cast<std::size_t>(l)].moves) {
        const std::string key =
            column_key(task_id, global[static_cast<std::size_t>(mv.column)]);
        if (!mv.is_dma) {
          array_->neighbour_move(mv.src, mv.dst, key,
                                 static_cast<std::uint64_t>(col_bytes));
        } else {
          const double done = array_->dma_move(
              mv.src, mv.dst, key,
              arrival[static_cast<std::size_t>(mv.column)],
              static_cast<std::uint64_t>(col_bytes));
          arrival[static_cast<std::size_t>(mv.column)] = done;
          if (payloads) {
            // Resolve the DMA shadow: the consumer's copy becomes
            // the live buffer, the producer's original is released.
            auto& src_mem = array_->memory(mv.src);
            auto& dst_mem = array_->memory(mv.dst);
            if (!dst_mem.contains(key + "#dma")) {
              throw FaultDetected(
                  cat("DMA of ", key, " out of ",
                      versal::to_string(mv.src), " lost its payload"),
                  mv.src.row, mv.src.col, done);
            }
            std::vector<float> data = dst_mem.load(key + "#dma");
            dst_mem.erase(key + "#dma");
            src_mem.erase(key);
            dst_mem.store(key, std::move(data));
          }
        }
      }
    }
  }

  // ---- Rx: updated columns back into the PL buffers --------------
  const auto last = jacobi::slot_map(schedule, schedule.size() - 1);
  PairCompletion completion;
  for (int c = 0; c < 2 * k; ++c) {
    const double done = ch.receiver->receive_column(
        c < k ? 0 : 1, arrival[static_cast<std::size_t>(c)], col_bytes);
    if (payloads) {
      const versal::TileCoord tile =
          task.orth[schedule.size() - 1]
                   [static_cast<std::size_t>(last[static_cast<std::size_t>(c)].slot)];
      const std::string key =
          column_key(task_id, global[static_cast<std::size_t>(c)]);
      auto& mem = array_->memory(tile);
      if (!mem.contains(key)) {
        throw FaultDetected(cat("column ", key, " never reached tile ",
                                versal::to_string(tile), " for Rx"),
                            tile.row, tile.col, done);
      }
      // Rx boundary integrity check: the fabric only routed this
      // buffer, so its checksum must still match what the sender
      // stamped; a mismatch is an in-fabric SEU.
      if (versal::buffer_checksum(mem.load(key)) !=
          sent_crc[static_cast<std::size_t>(c)]) {
        throw FaultDetected(cat("checksum mismatch on ", key,
                                " at tile ", versal::to_string(tile),
                                " (corrupted in the fabric)"),
                            tile.row, tile.col, done);
      }
      mem.erase(key);
    }
    (c < k ? completion.done_u : completion.done_v) =
        std::max(c < k ? completion.done_u : completion.done_v, done);
  }
  return completion;
}

double HeteroSvdAccelerator::execute_norm_block(
    int slot, int blk, double ready, linalg::MatrixF* b,
    std::vector<float>* sigma, std::vector<double>* rx_done_out) {
  const bool functional = b != nullptr;
  const int k = config_.p_eng;
  const std::size_t m = config_.rows;
  const auto& task = placement_.tasks[static_cast<std::size_t>(slot)];
  auto& ch = *channels_[static_cast<std::size_t>(slot)];
  const double col_bytes = static_cast<double>(m) * sizeof(float);
  const double block_bytes = col_bytes * k;
  const double t_norm = kernels_.norm_seconds(m);

  const double tx_done = ch.norm_tx.transfer(ready, block_bytes);
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.plio.bytes",
                        static_cast<std::uint64_t>(block_bytes));
    if (obs::Tracer* tr = obs_->tracer()) {
      const double dur = ch.norm_tx.transfer_duration(block_bytes);
      tr->span(obs::Domain::kSim, cat("plio.ntx.", slot), cat("blk", blk),
               "plio", tx_done - dur, dur);
    }
  }
  double blk_done = 0.0;
  for (int i = 0; i < k; ++i) {
    const versal::TileCoord tile = task.norm[static_cast<std::size_t>(i)];
    const double end = array_->run_kernel(tile, tx_done, t_norm);
    if (!std::isfinite(end)) {
      throw FaultDetected(cat("core ", versal::to_string(tile),
                              " hung during normalization"),
                          tile.row, tile.col, tx_done);
    }
    const double rx_done =
        ch.norm_rx.transfer(end, col_bytes + sizeof(float));
    if (obs_ != nullptr) {
      obs_->metrics().add(
          "sim.plio.bytes",
          static_cast<std::uint64_t>(col_bytes + sizeof(float)));
      if (obs::Tracer* tr = obs_->tracer()) {
        const double dur =
            ch.norm_rx.transfer_duration(col_bytes + sizeof(float));
        tr->span(obs::Domain::kSim, cat("plio.nrx.", slot),
                 cat("blk", blk, ".e", i), "plio", rx_done - dur, dur);
      }
    }
    blk_done = std::max(blk_done, rx_done);
    if (rx_done_out != nullptr) {
      (*rx_done_out)[static_cast<std::size_t>(i)] = rx_done;
    }
    if (functional) {
      const std::size_t gc = static_cast<std::size_t>(blk * k + i);
      (*sigma)[gc] = norm_kernel(b->col(gc)).sigma;
      if (!std::isfinite((*sigma)[gc])) {
        throw FaultDetected(cat("norm kernel on tile ",
                                versal::to_string(tile),
                                " produced a non-finite singular value"),
                            tile.row, tile.col, rx_done);
      }
    }
  }
  return blk_done;
}

bool HeteroSvdAccelerator::pipeline_enabled() const {
  // Structural requirements for any mode: a trace recorder or an obs
  // tracer needs the sequential path's event order (same rule as the
  // parallel slot chains), so either forces the pipeline off.
  if (trace_ != nullptr) return false;
  if (obs_ != nullptr && obs_->tracer() != nullptr) return false;
  switch (config_.pipeline) {
    case PipelineMode::kOff:
      return false;
    case PipelineMode::kOn:
      return true;
    case PipelineMode::kAuto:
      break;
  }
  const char* env = std::getenv("HSVD_PIPELINE");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0) return false;
    if (std::strcmp(env, "on") == 0) return true;
  }
  // kAuto stays sequential under a fault injector -- a *failed* task's
  // partial-op stats could otherwise include a few run-ahead fabric ops
  // -- and on single-core hosts where stage threads cannot overlap.
  return faults_ == nullptr && common::ThreadPool::hardware_threads() > 1;
}

void HeteroSvdAccelerator::finish_task(TaskResult& result, int slot,
                                       int task_id, double task_end,
                                       int iterations_run,
                                       const SystemModule& system,
                                       linalg::MatrixF* b,
                                       std::vector<float>* sigma) {
  const bool functional = b != nullptr;
  const std::size_t m = config_.rows;
  const std::size_t n_pad = config_.padded_cols();
  result.end_seconds = task_end;
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.tasks.completed");
    if (obs::Tracer* tr = obs_->tracer()) {
      tr->span(obs::Domain::kSim, cat("slot", slot), cat("task", task_id),
               "task", result.start_seconds,
               result.end_seconds - result.start_seconds);
    }
  }
  result.iterations = iterations_run;
  result.convergence_rate = system.convergence_rate();
  if (functional && config_.precision.has_value()) {
    result.converged = system.should_terminate(true);
    if (!result.converged) result.status = hsvd::SvdStatus::kNotConverged;
    if (!result.converged) {
      result.message = result.watchdog_stalled
                           ? cat("convergence watchdog: coherence stalled at ",
                                 sci(system.convergence_rate()), " for ",
                                 SystemModule::stall_limit(), " sweeps")
                           : cat("sweep budget exhausted at coherence ",
                                 sci(system.convergence_rate()));
    }
  }
  if (functional) {
    // Sort factors by descending singular value (done on the PS side in
    // the paper's system; negligible next to the accelerator time). The
    // zero-padded columns have sigma = 0, sort last, and are truncated.
    std::vector<std::size_t> order(n_pad);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return (*sigma)[x] > (*sigma)[y];
    });
    result.u = linalg::MatrixF(m, config_.cols);
    result.sigma.resize(config_.cols);
    for (std::size_t t = 0; t < config_.cols; ++t) {
      result.sigma[t] = (*sigma)[order[t]];
      auto src = b->col(order[t]);
      auto dst = result.u.col(t);
      for (std::size_t r = 0; r < m; ++r) dst[r] = src[r];
    }
  }
}

TaskResult HeteroSvdAccelerator::execute_task(int slot, double ready,
                                              const linalg::MatrixF* matrix,
                                              int task_id) {
  const bool functional = matrix != nullptr;
  // Streaming stage pipeline (accel/pipeline.cpp): overlaps consecutive
  // tournament rounds within a sweep. Functional mode only -- the
  // timing-only path has no math to overlap with the fabric simulation.
  if (functional && pipeline_enabled()) {
    return TaskPipeline::run(*this, slot, ready, *matrix, task_id);
  }
  const int k = config_.p_eng;
  const int p = config_.blocks();
  const std::size_t m = config_.rows;

  const double col_bytes = static_cast<double>(m) * sizeof(float);
  const double block_bytes = col_bytes * k;

  TaskResult result;
  result.start_seconds = ready;

  const std::size_t n_pad = config_.padded_cols();
  linalg::MatrixF b;
  // Incremental Gram-norm cache for the orth kernels: one entry per
  // padded column, refreshed at each iteration start and updated by the
  // rotation closed form in between, so each pair visit costs a single
  // O(rows) dot.
  std::vector<float> colnorm;
  if (functional) {
    HSVD_REQUIRE(matrix->rows() == m && matrix->cols() == config_.cols,
                 "matrix shape does not match the accelerator configuration");
    // Zero-pad to a whole number of blocks; zero columns are fixed points
    // of the Jacobi rotations and drop out after normalization.
    b = linalg::MatrixF(m, n_pad);
    b.assign_cols(0, *matrix);
    colnorm.resize(n_pad);
  }

  // Stage DDR -> PL URAM buffers, one block at a time (eq. (12)), via
  // the NoC DDRMC port wired to this task slot.
  DataArrangement arrangement(
      [this, slot](double when, double bytes) {
        return stage_from_ddr(slot, when, bytes);
      },
      p, block_bytes);
  arrangement.stage_from_ddr(ready);

  SystemModule system(config_.precision.value_or(0.0));
  const int max_iters =
      config_.precision.has_value() && functional
          ? std::max(config_.iterations, 30)
          : config_.iterations;

  int iterations_run = 0;
  for (int iter = 0; iter < max_iters; ++iter) {
    // Sweep-barrier cancellation point, mirroring the pipelined path's
    // stage-boundary poll: a deadline or a preemption cancel lands
    // between sweeps, where no rotation is in flight, and the purge
    // leaves the fabric as if the task never ran. The task boundary in
    // execute_batch already covered iter 0 an instant ago.
    if (iter > 0 && cancel_ != nullptr && cancel_->expired()) {
      purge_task_buffers(slot, task_id);
      throw hsvd::DeadlineExceeded(
          cat(cancel_->cancelled() ? "cancelled" : "deadline expired",
              " at sweep barrier ", iter, " of task ", task_id));
    }
    system.begin_iteration();
    if (functional) {
      for (std::size_t gc = 0; gc < n_pad; ++gc) {
        auto col = b.col(gc);
        colnorm[gc] = linalg::dot<float>(col, col);
      }
    }
    for (const auto& round : block_rounds_) {
      for (const auto& [bu, bv] : round) {
        const double launch = std::max(arrangement.block_ready(bu),
                                       arrangement.block_ready(bv)) +
                              hls_overhead_s_;
        const PairCompletion done = execute_block_pair(
            slot, task_id, bu, bv, launch, functional ? &b : nullptr,
            functional ? &colnorm : nullptr, system);
        arrangement.set_block_ready(bu, done.done_u);
        arrangement.set_block_ready(bv, done.done_v);
      }
    }
    ++iterations_run;
    if (functional) {
      system.end_iteration();
      if (system.should_terminate(config_.precision.has_value())) break;
      // Convergence watchdog: a sweep stream whose off-diagonal coherence
      // has stopped decreasing will not reach the target; stop burning
      // sweeps and surface kNotConverged instead.
      if (config_.precision.has_value() && system.stalled()) {
        result.watchdog_stalled = true;
        break;
      }
    }
  }

  // ---- Normalization stage (lines 19-25 of Algorithm 1) ----------------
  double task_end = 0.0;
  std::vector<float> sigma;
  if (functional) sigma.resize(n_pad);
  for (int blk = 0; blk < p; ++blk) {
    const double blk_done = execute_norm_block(
        slot, blk, arrangement.block_ready(blk) + hls_overhead_s_,
        functional ? &b : nullptr, functional ? &sigma : nullptr);
    task_end = std::max(task_end, blk_done);
  }

  finish_task(result, slot, task_id, task_end, iterations_run, system,
              functional ? &b : nullptr, functional ? &sigma : nullptr);
  return result;
}

RunResult HeteroSvdAccelerator::execute_batch(
    int batch_size, const std::vector<linalg::MatrixF>* batch) {
  HSVD_REQUIRE(batch_size >= 1, "batch must contain at least one task");
  reset_timelines();

  // Task ids are assigned up front (batch order) so the id sequence is
  // identical whether the slot chains below run sequentially or on
  // concurrent host threads.
  const int base_id = next_task_id_;
  next_task_id_ += batch_size;

  RunResult run;
  run.tasks.resize(static_cast<std::size_t>(batch_size));

  // Per-task fault isolation: a detected fault fails only its own task.
  // The failed task's stranded tile buffers are purged so the slot's
  // remaining chain starts clean, and the slot's clock carries on from
  // where the failure was detected would be optimistic -- we charge no
  // extra time (the failed task's own latency is already lost).
  const auto run_one = [&](int slot, double& slot_free, int t) {
    // Cooperative cancellation point: a slot chain checks its deadline
    // between tasks, never inside one, so an expired token aborts with
    // every tile memory and timeline in a consistent state. The throw
    // propagates out of parallel_for (which finishes in-flight indices
    // first) and surfaces as hsvd::DeadlineExceeded from run().
    if (cancel_ != nullptr && cancel_->expired()) {
      throw hsvd::DeadlineExceeded(
          cat(cancel_->cancelled() ? "cancelled" : "deadline expired",
              " before task ", t, " on slot ", slot));
    }
    const linalg::MatrixF* matrix =
        batch != nullptr ? &(*batch)[static_cast<std::size_t>(t)] : nullptr;
    TaskResult task;
    try {
      task = execute_task(slot, slot_free, matrix, base_id + t);
      slot_free = task.end_seconds;
    } catch (const hsvd::FaultDetected& e) {
      task = TaskResult{};
      task.status = hsvd::SvdStatus::kFailed;
      task.message = e.what();
      if (e.has_tile()) {
        task.fault_tile = versal::TileCoord{e.tile_row(), e.tile_col()};
      }
      task.start_seconds = slot_free;
      task.end_seconds = slot_free;
      purge_task_buffers(slot, base_id + t);
      if (obs_ != nullptr) {
        obs_->metrics().add("sim.fault.detected");
        if (obs::Tracer* tr = obs_->tracer()) {
          // Stamp the detection on the simulated timeline when the
          // detection point supplied its simulated time.
          const double at = e.sim_seconds() >= 0 ? e.sim_seconds() : slot_free;
          tr->instant(obs::Domain::kSim, "faults", cat("detect:", e.what()),
                      "fault", at);
        }
      }
    }
    run.tasks[static_cast<std::size_t>(t)] = std::move(task);
  };

  // Task-level host parallelism: tasks are round-robined over the
  // P_task hardware slots exactly as before, but each slot's chain of
  // tasks is independent of every other slot's -- a slot owns its PLIO
  // channels, its placement tiles (and thus its tile memories, core /
  // stream / DMA timelines), and, when P_task <= NoC ports, its DDRMC
  // port. Running the chains concurrently therefore reproduces the
  // sequential results and simulated timings bit for bit; only the
  // simulation's wall-clock changes. (Fault triggers are counted per
  // tile, so injected outcomes are thread-count invariant too.) Slots
  // sharing a DDR port (P_task > ports) or an attached trace recorder
  // would interleave on shared state, so those cases keep the
  // sequential path.
  const int chains = std::min(config_.p_task, batch_size);
  const int threads = common::ThreadPool::resolve_threads(config_.host_threads);
  const bool parallel_chains = threads > 1 && chains > 1 &&
                               config_.p_task <= noc_.ports() &&
                               array_->trace() == nullptr &&
                               (obs_ == nullptr || obs_->tracer() == nullptr);
  const auto run_chain = [&](std::size_t slot_index) {
    const int slot = static_cast<int>(slot_index);
    double slot_free = 0.0;
    for (int t = slot; t < batch_size; t += config_.p_task) {
      run_one(slot, slot_free, t);
    }
  };
  if (parallel_chains) {
    common::ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(chains), threads, run_chain, "batch-chain");
  } else {
    // Sequential path: keep the legacy batch-order interleaving. When
    // slots share a DDRMC port (P_task > NoC ports) the port serializes
    // transfers in issue order, so chain-by-chain execution would change
    // the simulated queueing (and batch_seconds) relative to the
    // round-robin wave order. With a tracer attached, each task's host
    // wall-clock lands as a host-domain span (the parallel path gets the
    // equivalent spans from the pool observer instead).
    obs::Tracer* host_trace =
        obs_ != nullptr ? obs_->tracer() : nullptr;
    std::vector<double> slot_free(static_cast<std::size_t>(chains), 0.0);
    for (int t = 0; t < batch_size; ++t) {
      const int slot = t % config_.p_task;
      const double host_start =
          host_trace != nullptr ? host_trace->host_now() : 0.0;
      run_one(slot, slot_free[static_cast<std::size_t>(slot)], t);
      if (host_trace != nullptr) {
        host_trace->span(obs::Domain::kHost, cat("chain-", slot),
                         cat("task", t), "pool", host_start,
                         host_trace->host_now() - host_start);
      }
    }
  }
  for (const auto& task : run.tasks) {
    run.batch_seconds = std::max(run.batch_seconds, task.end_seconds);
  }
  run.task_seconds = run.tasks.front().latency_seconds();
  run.throughput_tasks_per_s = batch_size / run.batch_seconds;
  run.stats = array_->stats();
  run.resources = perf::estimate_resources(config_, placement_);
  run.core_utilization = array_->core_utilization(run.batch_seconds);
  run.utilization = array_->utilization(run.batch_seconds);
  run.memory_utilization =
      static_cast<double>(run.resources.uram) / config_.device.total_uram;
  return run;
}

bool HeteroSvdAccelerator::mask_tiles(
    const std::vector<versal::TileCoord>& bad) {
  std::vector<versal::TileCoord> saved = masked_;
  masked_.insert(masked_.end(), bad.begin(), bad.end());
  std::sort(masked_.begin(), masked_.end());
  masked_.erase(std::unique(masked_.begin(), masked_.end()), masked_.end());
  if (try_place(config_, masked_).has_value()) {
    rebuild();
    return true;
  }
  masked_ = std::move(saved);
  return false;
}

bool HeteroSvdAccelerator::mask_and_replace(
    const std::vector<versal::TileCoord>& bad) {
  masked_.insert(masked_.end(), bad.begin(), bad.end());
  std::sort(masked_.begin(), masked_.end());
  masked_.erase(std::unique(masked_.begin(), masked_.end()), masked_.end());
  // Try the current shape on the healthy array first; when it no longer
  // fits, degrade task parallelism, then engine parallelism. (Degrading
  // P_eng shrinks the per-task footprint quadratically -- (2k-1) layers
  // of k engines -- so some configuration fits unless the masked set has
  // consumed essentially the whole array.)
  HeteroSvdConfig candidate = config_;
  const int original_p_task = config_.p_task;
  while (true) {
    if (try_place(candidate, masked_).has_value()) {
      config_ = candidate;
      rebuild();
      return true;
    }
    if (candidate.p_task > 1) {
      --candidate.p_task;
      continue;
    }
    if (candidate.p_eng > 1) {
      --candidate.p_eng;
      candidate.p_task = original_p_task;
      continue;
    }
    return false;
  }
}

RunResult HeteroSvdAccelerator::run(const std::vector<linalg::MatrixF>& batch) {
  RunResult result = execute_batch(static_cast<int>(batch.size()), &batch);
  // Bounded recovery: mask the tiles the detection points blamed,
  // re-place the design on the healthy array, and re-run only the failed
  // tasks. Healthy results are never touched, so they stay bit-identical
  // to a fault-free run.
  int budget = config_.fault_retries;
  double epoch = result.batch_seconds;
  int attempt = 0;
  while (budget-- > 0) {
    std::vector<std::size_t> failed;
    std::vector<versal::TileCoord> bad;
    for (std::size_t i = 0; i < result.tasks.size(); ++i) {
      if (result.tasks[i].status != hsvd::SvdStatus::kFailed) continue;
      failed.push_back(i);
      if (result.tasks[i].fault_tile.has_value()) {
        bad.push_back(*result.tasks[i].fault_tile);
      }
    }
    if (failed.empty()) break;
    if (cancel_ != nullptr && cancel_->expired()) {
      throw hsvd::DeadlineExceeded(
          cat(cancel_->cancelled() ? "cancelled" : "deadline expired",
              " before recovery round ", attempt + 1));
    }
    std::sort(bad.begin(), bad.end());
    bad.erase(std::unique(bad.begin(), bad.end()), bad.end());
    if (bad.empty()) break;  // nothing to mask: the fault is not tile-bound
    if (!mask_and_replace(bad)) break;  // healthy array cannot host any shape
    ++attempt;
    ++result.recovery_runs;
    if (obs_ != nullptr) {
      obs_->metrics().add("sim.fault.recovery_rounds");
      obs_->metrics().add("sim.fault.masked_tiles", bad.size());
      if (obs::Tracer* tr = obs_->tracer()) {
        for (const auto& tile : bad) {
          tr->instant(obs::Domain::kSim, "faults",
                      cat("recover:mask ", versal::to_string(tile)), "fault",
                      epoch);
        }
      }
    }
    std::vector<linalg::MatrixF> sub;
    sub.reserve(failed.size());
    for (std::size_t i : failed) sub.push_back(batch[i]);
    RunResult retry = execute_batch(static_cast<int>(sub.size()), &sub);
    for (std::size_t j = 0; j < failed.size(); ++j) {
      TaskResult task = std::move(retry.tasks[j]);
      // Recovery happens after the initial batch on the repaired
      // floorplan: append the re-run to the simulated timeline.
      task.start_seconds += epoch;
      task.end_seconds += epoch;
      task.recovery_attempts = attempt;
      result.tasks[failed[j]] = std::move(task);
    }
    epoch += retry.batch_seconds;
    result.stats.neighbour_transfers += retry.stats.neighbour_transfers;
    result.stats.dma_transfers += retry.stats.dma_transfers;
    result.stats.dma_bytes += retry.stats.dma_bytes;
    result.stats.stream_packets += retry.stats.stream_packets;
    result.stats.stream_bytes += retry.stats.stream_bytes;
    result.stats.kernel_invocations += retry.stats.kernel_invocations;
  }

  result.failed_tasks = 0;
  for (const auto& task : result.tasks) {
    if (task.status == hsvd::SvdStatus::kFailed) ++result.failed_tasks;
  }
  if (result.failed_tasks > 0 || result.recovery_runs > 0) {
    // Re-derive the aggregates over the merged task set; a fault-free
    // run never reaches this path, keeping its numbers bit-identical to
    // the pre-recovery code.
    double makespan = 0.0;
    int completed = 0;
    for (const auto& task : result.tasks) {
      if (task.status == hsvd::SvdStatus::kFailed) continue;
      makespan = std::max(makespan, task.end_seconds);
      ++completed;
    }
    result.batch_seconds = std::max(result.batch_seconds, makespan);
    result.throughput_tasks_per_s =
        result.batch_seconds > 0.0 ? completed / result.batch_seconds : 0.0;
  }
  return result;
}

RunResult HeteroSvdAccelerator::estimate(int batch_size) {
  HSVD_REQUIRE(config_.iterations >= 1,
               "timing-only estimation needs a fixed iteration count");
  return execute_batch(batch_size, nullptr);
}

}  // namespace hsvd::accel
