#include "accel/dataflow.hpp"

#include "common/assert.hpp"

namespace hsvd::accel {

int LayerTransition::dma_count() const {
  int n = 0;
  for (const auto& m : moves) n += m.is_dma ? 1 : 0;
  return n;
}

int DataflowPlan::total_dma() const {
  int n = 0;
  for (const auto& t : transitions) n += t.dma_count();
  return n;
}

int DataflowPlan::total_neighbour() const {
  int n = 0;
  for (const auto& t : transitions)
    n += static_cast<int>(t.moves.size()) - t.dma_count();
  return n;
}

std::uint64_t DataflowPlan::dma_shadow_bytes(std::size_t column_rows) const {
  return static_cast<std::uint64_t>(total_dma()) * column_rows * sizeof(float);
}

namespace {

bool transfer_is_neighbour(const versal::ArrayGeometry& geo,
                           const versal::TileCoord& src,
                           const versal::TileCoord& dst,
                           MemoryStrategy strategy) {
  if (strategy == MemoryStrategy::kRelocated) {
    return geo.neighbour_transfer_possible(src, dst);
  }
  // Naive: the result sits in the producer's own memory module; the
  // consumer's core must be able to reach that exact module.
  return geo.core_can_access_memory(dst, src);
}

}  // namespace

DataflowPlan build_dataflow(const jacobi::EngineSchedule& schedule,
                            const TaskPlacement& task,
                            const versal::ArrayGeometry& geometry,
                            MemoryStrategy strategy) {
  const std::size_t layers = schedule.size();
  HSVD_REQUIRE(task.orth.size() == layers,
               "placement layer count must match the schedule");
  DataflowPlan plan;
  plan.transitions.reserve(layers - 1);
  for (std::size_t r = 0; r + 1 < layers; ++r) {
    LayerTransition tr;
    tr.layer = static_cast<int>(r);
    const auto from = jacobi::slot_map(schedule, r);
    const auto to = jacobi::slot_map(schedule, r + 1);
    for (std::size_t col = 0; col < from.size(); ++col) {
      ClassifiedMove m;
      m.column = static_cast<int>(col);
      m.src = task.orth[r][static_cast<std::size_t>(from[col].slot)];
      m.dst = task.orth[r + 1][static_cast<std::size_t>(to[col].slot)];
      m.dst_side = to[col].side;
      m.is_dma = !transfer_is_neighbour(geometry, m.src, m.dst, strategy);
      tr.moves.push_back(m);
    }
    plan.transitions.push_back(std::move(tr));
  }
  return plan;
}

int count_sweep_dma(jacobi::OrderingKind kind, int k, MemoryStrategy strategy) {
  HSVD_REQUIRE(k >= 1, "engine count must be positive");
  const int layers = 2 * k - 1;
  // Idealized single-band array, one row per layer starting at row 1 (the
  // paper's placement convention: row 0 is a boundary mem row).
  const int first_row = 1;
  const auto schedule = jacobi::make_schedule(kind, 2 * k, first_row % 2);
  const versal::ArrayGeometry geo(layers + 1, k);
  TaskPlacement task;
  task.orth.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    auto& row = task.orth[static_cast<std::size_t>(l)];
    row.resize(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e)
      row[static_cast<std::size_t>(e)] = {first_row + l, e};
  }
  task.band_first_layer = {0};
  return build_dataflow(schedule, task, geo, strategy).total_dma();
}

}  // namespace hsvd::accel
