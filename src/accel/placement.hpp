// AIE placement (paper section III-C).
//
// One task's orthogonalization needs (2k-1) orth-layers of k orth-AIEs
// (k = P_eng). Layers are placed row-wise into "bands" of k consecutive
// AIE columns; the array's boundary rows cannot host orth-layers (an
// orth-layer's output lives in the *next* row's memory -- the AIE-centric
// dataflow -- so the last row has no successor, and the first row of a
// continuation band holds the DMA shadow of the previous band's output).
// Bands therefore offer rows 1 .. R-2 for orth-layers; when a task needs
// more layers it continues in the next k columns at the cost of DMA
// between bands, with mem-AIEs at the crossing (bottom of the source
// band, top of the destination band). norm-AIEs go into idle tiles after
// the last orth-layer. Small tasks (one band, few layers) stack
// vertically so large P_task fits the array width.
#pragma once

#include <optional>
#include <vector>

#include "accel/config.hpp"
#include "versal/geometry.hpp"

namespace hsvd::accel {

enum class TileRole { kOrth, kNorm, kMem, kIdle };

struct TaskPlacement {
  // orth[layer][engine] -> physical tile.
  std::vector<std::vector<versal::TileCoord>> orth;
  // One norm-AIE per engine column.
  std::vector<versal::TileCoord> norm;
  // mem-AIEs serving band crossings (DMA shadows and staging).
  std::vector<versal::TileCoord> mem;
  // First layer index of each band (band 0 starts at layer 0).
  std::vector<int> band_first_layer;
};

struct PlacementResult {
  std::vector<TaskPlacement> tasks;
  int num_orth = 0;
  int num_norm = 0;
  int num_mem = 0;
  int num_plio = 0;  // 4 orth + 2 norm PLIOs per task (section III-C)
  int bands_per_task = 1;

  int total_aie() const { return num_orth + num_norm + num_mem; }
};

// Attempts to place `config.p_task` tasks on the device's AIE array.
// Returns nullopt when the configuration does not fit (AIE area or PLIO
// budget exceeded).
std::optional<PlacementResult> try_place(const HeteroSvdConfig& config);

// Fault-aware placement: as try_place, but no returned tile is ever one
// of `masked` (tiles diagnosed faulty). The layout keeps the band
// structure intact and searches vertical/horizontal offsets of the whole
// floorplan until it clears the masked set; returns nullopt when the
// healthy part of the array no longer fits the configuration (callers
// degrade P_task / P_eng and retry).
std::optional<PlacementResult> try_place(
    const HeteroSvdConfig& config,
    const std::vector<versal::TileCoord>& masked);

// Every physical tile a placement assigns (orth + norm + mem), for
// overlap checks and fault-campaign reporting.
std::vector<versal::TileCoord> used_tiles(const PlacementResult& placement);

// As try_place but throws hsvd::PlacementError (IS-A std::invalid_argument)
// with a diagnostic when the configuration does not fit.
PlacementResult place(const HeteroSvdConfig& config);

}  // namespace hsvd::accel
