#include "accel/report.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/format.hpp"

namespace hsvd::accel {

std::string render_floorplan(const PlacementResult& placement,
                             const versal::ArrayGeometry& geometry) {
  std::vector<std::string> grid(static_cast<std::size_t>(geometry.rows()),
                                std::string(static_cast<std::size_t>(geometry.cols()), '.'));
  auto put = [&](const versal::TileCoord& t, char ch) {
    grid[static_cast<std::size_t>(t.row)][static_cast<std::size_t>(t.col)] = ch;
  };
  const char* slot_chars = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (std::size_t slot = 0; slot < placement.tasks.size(); ++slot) {
    const auto& task = placement.tasks[slot];
    const char ch = slot_chars[slot % 36];
    for (const auto& layer : task.orth)
      for (const auto& t : layer) put(t, ch);
    for (const auto& t : task.norm) put(t, 'N');
    for (const auto& t : task.mem) put(t, 'M');
  }
  std::ostringstream os;
  os << "AIE array " << geometry.rows() << "x" << geometry.cols() << " -- "
     << placement.num_orth << " orth, " << placement.num_norm << " norm, "
     << placement.num_mem << " mem, "
     << geometry.tile_count() - placement.total_aie() << " idle\n";
  for (const auto& row : grid) os << row << "\n";
  return os.str();
}

std::string render_utilization(const versal::UtilizationReport& report) {
  std::ostringstream os;
  os << "AIE utilization " << report.rows << "x" << report.cols << " -- "
     << pct(report.core_utilization(), 1) << " core busy over "
     << sci(report.makespan_seconds) << " s; "
     << report.total_neighbour_bytes() << " B neighbour, "
     << report.total_dma_bytes() << " B dma, "
     << report.total_stream_bytes() << " B stream\n";
  const double makespan = report.makespan_cycles();
  for (int row = 0; row < report.rows; ++row) {
    for (int col = 0; col < report.cols; ++col) {
      const auto& t = report.at(row, col);
      char ch = '.';
      if (t.stalled_cycles > 0) {
        ch = '!';
      } else if (t.kernel_invocations > 0) {
        const double f = t.busy_fraction(makespan);
        if (f >= 1.0) {
          ch = '*';
        } else {
          const int decile = std::clamp(static_cast<int>(f * 10.0), 0, 9);
          ch = static_cast<char>('0' + decile);
        }
      }
      os << ch;
    }
    os << "\n";
  }
  return os.str();
}

std::string render_schedule(jacobi::OrderingKind kind, int k,
                            MemoryStrategy strategy) {
  HSVD_REQUIRE(k >= 1, "engine count must be positive");
  const int layers = 2 * k - 1;
  const auto schedule = jacobi::make_schedule(kind, 2 * k, 1);
  // Idealized placement at rows 1.. (the paper's convention).
  const versal::ArrayGeometry geo(layers + 1, k);
  TaskPlacement task;
  task.orth.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    auto& row = task.orth[static_cast<std::size_t>(l)];
    row.resize(static_cast<std::size_t>(k));
    for (int e = 0; e < k; ++e) row[static_cast<std::size_t>(e)] = {1 + l, e};
  }
  task.band_first_layer = {0};
  const auto plan = build_dataflow(schedule, task, geo, strategy);

  std::ostringstream os;
  os << to_string(kind) << " ordering, k=" << k << " ("
     << (strategy == MemoryStrategy::kRelocated ? "relocated" : "naive")
     << " outputs)\n";
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    os << "row-" << r + 1 << ":";
    for (const auto& pair : schedule[r]) {
      os << " (" << pair.left + 1 << "," << pair.right + 1 << ")";
    }
    os << "\n";
    if (r + 1 < schedule.size()) {
      const auto& tr = plan.transitions[r];
      int dma = tr.dma_count();
      os << "        moves: " << static_cast<int>(tr.moves.size()) - dma
         << " neighbour, " << dma << " DMA";
      if (dma > 0) {
        os << " [cols";
        for (const auto& mv : tr.moves)
          if (mv.is_dma) os << " " << mv.column + 1;
        os << "]";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace hsvd::accel
