#include "accel/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "accel/kernels.hpp"
#include "common/format.hpp"
#include "common/spsc_queue.hpp"
#include "linalg/ops.hpp"

namespace hsvd::accel {

namespace {

// Per-queue bound. 2 is deliberate: 1 would serialize adjacent stages
// (the producer blocks until the consumer finishes the previous item),
// while anything larger only grows the run-ahead window -- the fabric
// simulation may lead the math by at most (queues * depth + in-flight)
// items, which bounds both the snapshot memory held in flight and how
// many extra fabric ops can land before an aborting error surfaces.
constexpr std::size_t kStageDepth = 2;

// One unit of work flowing down the stage chain: a block pair of one
// tournament round, or one block of the final normalization.
struct Item {
  enum class Kind { kPair, kNorm };
  Kind kind = Kind::kPair;
  std::uint64_t seq = 0;  // submission order; ties error reports to items

  // kPair ---------------------------------------------------------------
  int bu = 0;
  int bv = 0;
  std::vector<int> global;               // local column c -> global column
  std::vector<std::vector<float>> cols;  // column snapshots, local order
  std::vector<double> kernel_end;        // [layer * k + engine] sim times
  double coherence = 0.0;                // max over the item's pairs

  // kNorm ---------------------------------------------------------------
  int blk = 0;
  std::vector<double> rx_done;  // per-engine Rx completion times
};

// Progress monitor linking the store stage back to the load stage: store
// publishes per-block write epochs (how many pairs have written their
// columns back) and the total stored-item count; load waits on them. One
// mutex serves both uses -- contention is one lock per item per side.
class Progress {
 public:
  explicit Progress(int blocks)
      : block_writes_(static_cast<std::size_t>(blocks), 0) {}

  void item_stored(const Item& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (item.kind == Item::Kind::kPair) {
      ++block_writes_[static_cast<std::size_t>(item.bu)];
      ++block_writes_[static_cast<std::size_t>(item.bv)];
    }
    stored_ = item.seq + 1;
    cv_.notify_all();
  }

  // Blocks until every planned predecessor of blocks bu and bv has been
  // stored (wu / wv planned write counts). False when the chain aborted.
  bool wait_blocks(int bu, std::uint64_t wu, int bv, std::uint64_t wv) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return aborted_ ||
             (block_writes_[static_cast<std::size_t>(bu)] >= wu &&
              block_writes_[static_cast<std::size_t>(bv)] >= wv);
    });
    return !aborted_;
  }

  // Blocks until `count` items have been stored (the sweep barrier).
  // False when the chain aborted.
  bool wait_stored(std::uint64_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return aborted_ || stored_ >= count; });
    return !aborted_;
  }

  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::uint64_t> block_writes_;
  std::uint64_t stored_ = 0;
  bool aborted_ = false;
};

// First-error-in-sequential-order collector. Stages throw independently,
// but the error the caller sees must be the one the sequential path
// would have hit first: the lowest item seq wins, and within one item
// the earlier stage (lower rank) wins.
class ErrorSlot {
 public:
  void record(std::uint64_t seq, int rank, std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_ == nullptr || seq < seq_ || (seq == seq_ && rank < rank_)) {
      error_ = std::move(error);
      seq_ = seq;
      rank_ = rank;
    }
  }

  bool set() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return error_ != nullptr;
  }

  [[noreturn]] void rethrow() const {
    std::unique_lock<std::mutex> lock(mutex_);
    HSVD_REQUIRE(error_ != nullptr, "ErrorSlot::rethrow without an error");
    std::exception_ptr error = error_;
    lock.unlock();
    std::rethrow_exception(error);
  }

 private:
  mutable std::mutex mutex_;
  std::exception_ptr error_;
  std::uint64_t seq_ = 0;
  int rank_ = 0;
};

struct Chain {
  explicit Chain(int blocks)
      : progress(blocks),
        q_orth(kStageDepth),
        q_acc(kStageDepth),
        q_norm(kStageDepth),
        q_store(kStageDepth) {}

  Progress progress;
  common::SpscQueue<Item> q_orth;   // load -> orthogonalize
  common::SpscQueue<Item> q_acc;    // orthogonalize -> accumulate
  common::SpscQueue<Item> q_norm;   // accumulate -> normalize
  common::SpscQueue<Item> q_store;  // normalize -> store
  ErrorSlot error;
  std::atomic<bool> aborted{false};

  // Teardown signal: every queue wakes its blocked producer/consumer and
  // drains without blocking, and every epoch/barrier waiter wakes, so no
  // stage can deadlock on the way out.
  void abort() {
    aborted.store(true, std::memory_order_release);
    q_orth.close();
    q_acc.close();
    q_norm.close();
    q_store.close();
    progress.abort();
  }
};

// Stage-thread skeleton: drain the inbound queue to end-of-stream,
// discard (but keep draining) once the chain aborted, capture a throwing
// item's error and turn it into an abort. On exit the stage closes its
// outbound queue, so the caller's close of the head queue cascades
// end-of-stream down the whole chain and every join below terminates.
// `out == nullptr` marks the terminal stage.
template <typename Fn>
std::thread spawn_stage(Chain& chain, common::SpscQueue<Item>& in,
                        common::SpscQueue<Item>* out, int rank, Fn fn) {
  return std::thread([&chain, &in, out, rank, fn = std::move(fn)]() mutable {
    while (std::optional<Item> item = in.pop()) {
      if (chain.aborted.load(std::memory_order_acquire)) continue;
      try {
        fn(*item);
      } catch (...) {
        chain.error.record(item->seq, rank, std::current_exception());
        chain.abort();
        continue;
      }
      if (out != nullptr) out->push(std::move(*item));
    }
    if (out != nullptr) out->close();
  });
}

}  // namespace

TaskResult TaskPipeline::run(HeteroSvdAccelerator& accel, int slot,
                             double ready, const linalg::MatrixF& matrix,
                             int task_id) {
  const HeteroSvdConfig& cfg = accel.config_;
  const int k = cfg.p_eng;
  const int p = cfg.blocks();
  const std::size_t m = cfg.rows;
  const int layers = cfg.orth_layers();
  const auto& task = accel.placement_.tasks[static_cast<std::size_t>(slot)];
  const auto& schedule =
      accel.slot_schedules_[static_cast<std::size_t>(slot)];
  const double col_bytes = static_cast<double>(m) * sizeof(float);
  const double block_bytes = col_bytes * k;

  TaskResult result;
  result.start_seconds = ready;

  const std::size_t n_pad = cfg.padded_cols();
  HSVD_REQUIRE(matrix.rows() == m && matrix.cols() == cfg.cols,
               "matrix shape does not match the accelerator configuration");
  linalg::MatrixF b(m, n_pad);
  b.assign_cols(0, matrix);
  // Gram-norm cache, exactly as in the sequential path. Owned by the
  // orthogonalize stage while a sweep is in flight (items pass through
  // it in submission order, so updates land in sequential order) and by
  // the load thread at sweep barriers (refresh).
  std::vector<float> colnorm(n_pad);
  std::vector<float> sigma(n_pad);

  DataArrangement arrangement(
      [&accel, slot](double when, double bytes) {
        return accel.stage_from_ddr(slot, when, bytes);
      },
      p, block_bytes);
  arrangement.stage_from_ddr(ready);

  SystemModule system(cfg.precision.value_or(0.0));
  const int max_iters = cfg.precision.has_value()
                            ? std::max(cfg.iterations, 30)
                            : cfg.iterations;

  Chain chain(p);
  if (accel.obs_ != nullptr) accel.obs_->metrics().add("accel.pipeline.tasks");

  // ---- Stage bodies ----------------------------------------------------
  // orthogonalize: the pair math of execute_block_pair, on the item's
  // column snapshots. Items arrive in submission order, so the colnorm
  // reads/updates interleave exactly as in the sequential sweep.
  auto orthogonalize = [&](Item& item) {
    if (item.kind != Item::Kind::kPair) return;
    double coherence = 0.0;
    for (int l = 0; l < layers; ++l) {
      const auto& row = schedule[static_cast<std::size_t>(l)];
      for (int e = 0; e < k; ++e) {
        const auto& pair = row[static_cast<std::size_t>(e)];
        const versal::TileCoord tile =
            task.orth[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)];
        const int gl = item.global[static_cast<std::size_t>(pair.left)];
        const int gr = item.global[static_cast<std::size_t>(pair.right)];
        auto& left = item.cols[static_cast<std::size_t>(pair.left)];
        auto& right = item.cols[static_cast<std::size_t>(pair.right)];
        const auto r =
            orth_kernel(std::span<float>(left), std::span<float>(right),
                        colnorm[static_cast<std::size_t>(gl)],
                        colnorm[static_cast<std::size_t>(gr)]);
        if (!std::isfinite(r.coherence)) {
          throw FaultDetected(
              cat("orth kernel on tile ", versal::to_string(tile),
                  " produced a non-finite coherence"),
              tile.row, tile.col,
              item.kernel_end[static_cast<std::size_t>(l * k + e)]);
        }
        coherence = std::max(coherence, r.coherence);
      }
    }
    item.coherence = coherence;
  };

  // accumulate: fold each pair item's coherence into the SystemModule.
  // The tracker keeps a sweep maximum, so observing the per-item maxima
  // reaches the same convergence state as observing every pair.
  auto accumulate = [&](Item& item) {
    if (item.kind == Item::Kind::kPair) system.observe_pair(item.coherence);
  };

  // normalize: the norm-kernel math of execute_norm_block. Norm items
  // are only submitted after the final sweep barrier, so every pair
  // store has landed in b before this stage touches it.
  auto normalize = [&](Item& item) {
    if (item.kind != Item::Kind::kNorm) return;
    for (int i = 0; i < k; ++i) {
      const versal::TileCoord tile = task.norm[static_cast<std::size_t>(i)];
      const std::size_t gc = static_cast<std::size_t>(item.blk * k + i);
      sigma[gc] = norm_kernel(b.col(gc)).sigma;
      if (!std::isfinite(sigma[gc])) {
        throw FaultDetected(cat("norm kernel on tile ",
                                versal::to_string(tile),
                                " produced a non-finite singular value"),
                            tile.row, tile.col,
                            item.rx_done[static_cast<std::size_t>(i)]);
      }
    }
  };

  // store: write the rotated snapshot back into b and publish the block
  // epochs the load stage waits on.
  auto store = [&](Item& item) {
    if (item.kind == Item::Kind::kPair) {
      for (std::size_t c = 0; c < item.cols.size(); ++c) {
        auto dst = b.col(static_cast<std::size_t>(item.global[c]));
        const auto& src = item.cols[c];
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    if (accel.obs_ != nullptr) {
      accel.obs_->metrics().add("accel.pipeline.items");
    }
    chain.progress.item_stored(item);
  };

  std::vector<std::thread> threads;
  threads.push_back(spawn_stage(chain, chain.q_orth, &chain.q_acc, 1,
                                orthogonalize));
  threads.push_back(spawn_stage(chain, chain.q_acc, &chain.q_norm, 2,
                                accumulate));
  threads.push_back(spawn_stage(chain, chain.q_norm, &chain.q_store, 3,
                                normalize));
  threads.push_back(spawn_stage(chain, chain.q_store, nullptr, 4, store));

  // ---- Load stage (this thread) ----------------------------------------
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> planned(static_cast<std::size_t>(p), 0);
  int iterations_run = 0;
  bool aborted = false;

  // Stage-boundary cancellation poll: an expired token aborts the chain
  // with the same DeadlineExceeded the slot-chain boundaries throw; the
  // teardown below drains and joins first, and purges the task's tile
  // buffers so the abort leaves the fabric as if the task never ran.
  const auto deadline_ok = [&]() {
    if (accel.cancel_ == nullptr || !accel.cancel_->expired()) return true;
    chain.error.record(
        seq, 0,
        std::make_exception_ptr(hsvd::DeadlineExceeded(
            cat(accel.cancel_->cancelled() ? "cancelled" : "deadline expired",
                " draining pipeline of task ", task_id, " on slot ", slot))));
    chain.abort();
    return false;
  };

  const auto record_load_error = [&]() {
    chain.error.record(seq, 0, std::current_exception());
    chain.abort();
  };

  for (int iter = 0; iter < max_iters && !aborted; ++iter) {
    system.begin_iteration();
    // Sweep-start norm refresh: all stores of the previous sweep have
    // landed (barrier below), so b is quiescent here.
    for (std::size_t gc = 0; gc < n_pad; ++gc) {
      auto col = b.col(gc);
      colnorm[gc] = linalg::dot<float>(col, col);
    }
    for (const auto& round : accel.block_rounds_) {
      for (const auto& [bu, bv] : round) {
        if (!deadline_ok() ||
            !chain.progress.wait_blocks(
                bu, planned[static_cast<std::size_t>(bu)], bv,
                planned[static_cast<std::size_t>(bv)])) {
          aborted = true;
          break;
        }
        Item item;
        item.kind = Item::Kind::kPair;
        item.seq = seq;
        item.bu = bu;
        item.bv = bv;
        item.global.resize(static_cast<std::size_t>(2 * k));
        item.cols.resize(static_cast<std::size_t>(2 * k));
        for (int i = 0; i < k; ++i) {
          item.global[static_cast<std::size_t>(i)] = bu * k + i;
          item.global[static_cast<std::size_t>(k + i)] = bv * k + i;
        }
        for (int c = 0; c < 2 * k; ++c) {
          auto col = b.col(static_cast<std::size_t>(
              item.global[static_cast<std::size_t>(c)]));
          item.cols[static_cast<std::size_t>(c)].assign(col.begin(),
                                                        col.end());
        }
        item.kernel_end.assign(static_cast<std::size_t>(layers * k), 0.0);
        const double launch = std::max(arrangement.block_ready(bu),
                                       arrangement.block_ready(bv)) +
                              accel.hls_overhead_s_;
        StagedPair staged;
        staged.cols = &item.cols;
        staged.kernel_end = &item.kernel_end;
        HeteroSvdAccelerator::PairCompletion done;
        try {
          done = accel.execute_block_pair(slot, task_id, bu, bv, launch,
                                          nullptr, nullptr, system, &staged);
        } catch (...) {
          record_load_error();
          aborted = true;
          break;
        }
        arrangement.set_block_ready(bu, done.done_u);
        arrangement.set_block_ready(bv, done.done_v);
        ++planned[static_cast<std::size_t>(bu)];
        ++planned[static_cast<std::size_t>(bv)];
        ++seq;
        if (!chain.q_orth.push(std::move(item))) {
          aborted = true;  // queue closed by a concurrent abort
          break;
        }
      }
      if (aborted) break;
    }
    if (aborted) break;
    // Sweep barrier: every item of this sweep stored. The convergence
    // bookkeeping below then reads SystemModule state with all of the
    // sweep's observations folded in (accumulate ran before store).
    if (!chain.progress.wait_stored(seq)) {
      aborted = true;
      break;
    }
    ++iterations_run;
    system.end_iteration();
    if (system.should_terminate(cfg.precision.has_value())) break;
    if (cfg.precision.has_value() && system.stalled()) {
      result.watchdog_stalled = true;
      break;
    }
  }

  // ---- Normalization (lines 19-25 of Algorithm 1) ----------------------
  double task_end = 0.0;
  for (int blk = 0; blk < p && !aborted; ++blk) {
    if (!deadline_ok()) {
      aborted = true;
      break;
    }
    Item item;
    item.kind = Item::Kind::kNorm;
    item.seq = seq;
    item.blk = blk;
    item.rx_done.assign(static_cast<std::size_t>(k), 0.0);
    double blk_done = 0.0;
    try {
      blk_done = accel.execute_norm_block(
          slot, blk, arrangement.block_ready(blk) + accel.hls_overhead_s_,
          nullptr, nullptr, &item.rx_done);
    } catch (...) {
      record_load_error();
      aborted = true;
      break;
    }
    task_end = std::max(task_end, blk_done);
    ++seq;
    if (!chain.q_orth.push(std::move(item))) {
      aborted = true;
      break;
    }
  }
  if (!aborted && !chain.progress.wait_stored(seq)) aborted = true;

  // ---- Teardown --------------------------------------------------------
  // Close the head queue: each stage drains to end-of-stream and exits,
  // abort or not, so the joins below can never deadlock.
  chain.q_orth.close();
  for (auto& t : threads) t.join();
  if (chain.error.set()) {
    try {
      chain.error.rethrow();
    } catch (const hsvd::DeadlineExceeded&) {
      // A mid-task cancellation strands whole items in the fabric's tile
      // memories; release them so the slot's next task starts clean. (A
      // FaultDetected escape is purged by the batch engine instead,
      // exactly as on the sequential path.)
      accel.purge_task_buffers(slot, task_id);
      throw;
    }
  }
  HSVD_REQUIRE(!aborted, "pipeline aborted without a recorded error");

  accel.finish_task(result, slot, task_id, task_end, iterations_run, system,
                    &b, &sigma);
  return result;
}

}  // namespace hsvd::accel
