// HeteroSVD accelerator configuration: the micro-architecture parameters
// of Table I plus the problem description.
//
// First-order parameters: engine parallelism P_eng (AIEs per task column),
// task parallelism P_task (independent matrices in flight), PL frequency.
// Everything else (orth/norm/mem AIE counts, PLIOs, URAM) is derived by
// the placement engine and the resource model.
#pragma once

#include <optional>

#include "common/assert.hpp"
#include "jacobi/ordering.hpp"
#include "versal/resources.hpp"

namespace hsvd::accel {

// Streaming-stage execution of a task's sweep (accel/pipeline.cpp):
// consecutive tournament rounds overlap -- the fabric simulation of one
// block pair runs while earlier pairs are still in the math stages --
// connected by bounded SPSC queues. Results, simulated timings and
// simulator stats are bit-identical to the sequential slot-chain path
// (DESIGN.md section 12).
enum class PipelineMode {
  // Pipeline when it preserves semantics *exactly* and host parallelism
  // exists: functional mode, no trace recorder / obs tracer, no fault
  // injector (an injected fault would surface identically, but the
  // partial-op stats of the *failed* task could include a few run-ahead
  // fabric ops), more than one hardware thread. The HSVD_PIPELINE
  // environment variable ("on" / "off") overrides the heuristics.
  kAuto,
  // Never pipeline (the seed's sequential execution, always available).
  kOff,
  // Pipeline whenever structurally possible (functional mode without a
  // trace recorder or obs tracer), even under a fault injector or on a
  // single-core host. Used by the differential tests to pin kOn == kOff.
  kOn,
};

struct HeteroSvdConfig {
  // Problem.
  std::size_t rows = 128;        // m
  std::size_t cols = 128;        // n
  int iterations = 6;            // ITER when fixed; see precision below
  std::optional<double> precision;  // when set, iterate until eq. (6) holds

  // First-order micro-architecture parameters (Table I).
  int p_eng = 8;                 // n_eng in [1, 11]
  int p_task = 1;                // k_task in [1, 26]
  double pl_frequency_hz = 208.3e6;

  // Host worker threads for executing independent task slots in parallel
  // (simulation wall-clock only; simulated timing is unaffected).
  // 0 = auto: the HSVD_THREADS environment variable, else all hardware
  // cores. 1 forces the sequential path.
  int host_threads = 0;

  // Bounded recovery: after a detected hardware fault with tile
  // attribution, run() masks the faulty tiles, re-places the design on
  // the healthy array (degrading P_task, then P_eng, when the original
  // shape no longer fits) and re-runs only the failed tasks -- at most
  // this many times. 0 disables recovery: failed tasks keep
  // SvdStatus::kFailed and the rest of the batch still completes.
  int fault_retries = 2;

  // Streaming stage pipeline for the per-task sweep loop (see
  // PipelineMode above). Host wall-clock only; simulated results and
  // timings are identical either way.
  PipelineMode pipeline = PipelineMode::kAuto;

  // Algorithm choice; the co-designed default.
  jacobi::OrderingKind ordering = jacobi::OrderingKind::kShiftingRing;
  // Output-memory strategy (Fig. 4); naive is the ablation baseline where
  // each AIE keeps its results in its own memory.
  bool relocated_outputs = true;

  // Target device.
  versal::DeviceResources device = versal::vck190();

  // Derived quantities -------------------------------------------------
  int block_cols() const { return p_eng; }
  // Columns after zero-padding to a multiple of P_eng (zero columns are
  // invariant under Jacobi rotations, so padding is numerically free).
  std::size_t padded_cols() const {
    const std::size_t k = static_cast<std::size_t>(p_eng);
    return (cols + k - 1) / k * k;
  }
  int blocks() const { return static_cast<int>(padded_cols()) / p_eng; }
  // Columns processed together in one block pair (2k in the paper).
  int pair_width() const { return 2 * p_eng; }
  // Orth-layers required by the shifting ring ordering: 2k - 1.
  int orth_layers() const { return pair_width() - 1; }
  // Block pairs per sweep ("num" in eqs. (11)-(12)).
  int block_pairs() const {
    const int p = blocks();
    return p * (p - 1) / 2;
  }

  void validate() const {
    HSVD_REQUIRE(rows >= cols, "matrix must be tall or square (rows >= cols)");
    HSVD_REQUIRE(cols >= 2, "need at least two columns");
    HSVD_REQUIRE(p_eng >= 1 && p_eng <= 11, "P_eng out of the paper's range [1, 11]");
    HSVD_REQUIRE(p_task >= 1 && p_task <= 26,
                 "P_task out of the paper's range [1, 26]");
    HSVD_REQUIRE(blocks() >= 2,
                 "need at least two blocks (cols >= 2 * P_eng); the block "
                 "pair is the accelerator's unit of work");
    HSVD_REQUIRE(pl_frequency_hz > 0, "PL frequency must be positive");
    HSVD_REQUIRE(host_threads >= 0, "host_threads must be nonnegative");
    HSVD_REQUIRE(fault_retries >= 0, "fault_retries must be nonnegative");
    HSVD_REQUIRE(iterations >= 1 || precision.has_value(),
                 "need a sweep budget or a precision target");
  }
};

}  // namespace hsvd::accel
