#include "accel/pl_modules.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace hsvd::accel {

DataArrangement::DataArrangement(DdrTransfer ddr_transfer, int blocks,
                                 double block_bytes)
    : ddr_(std::move(ddr_transfer)), block_bytes_(block_bytes),
      ready_(static_cast<std::size_t>(blocks), 0.0) {
  HSVD_REQUIRE(blocks >= 1, "need at least one block");
  HSVD_REQUIRE(block_bytes > 0, "block size must be positive");
}

DataArrangement::DataArrangement(versal::Channel& ddr, int blocks,
                                 double block_bytes)
    : DataArrangement(
          [&ddr](double ready, double bytes) { return ddr.transfer(ready, bytes); },
          blocks, block_bytes) {}

void DataArrangement::stage_from_ddr(double ready) {
  for (double& t : ready_) t = ddr_(ready, block_bytes_);
}

double DataArrangement::block_ready(int block) const {
  HSVD_REQUIRE(block >= 0 && block < static_cast<int>(ready_.size()),
               "block index out of range");
  return ready_[static_cast<std::size_t>(block)];
}

void DataArrangement::set_block_ready(int block, double when) {
  HSVD_REQUIRE(block >= 0 && block < static_cast<int>(ready_.size()),
               "block index out of range");
  ready_[static_cast<std::size_t>(block)] = when;
}

double DataArrangement::all_blocks_ready() const {
  double worst = 0.0;
  for (double t : ready_) worst = std::max(worst, t);
  return worst;
}

Sender::Sender(versal::Channel& tx0, versal::Channel& tx1,
               versal::ForwardingTable forwarding, versal::AieArraySim& array)
    : tx0_(tx0), tx1_(tx1), forwarding_(std::move(forwarding)), array_(array) {}

double Sender::send_column(int which_block_channel, std::uint32_t dest_id,
                           std::uint32_t column, std::uint32_t task,
                           double ready, std::vector<float> payload,
                           std::uint64_t payload_bytes_hint) {
  HSVD_REQUIRE(which_block_channel == 0 || which_block_channel == 1,
               "a block pair uses exactly two Tx PLIOs");
  versal::Channel& tx = which_block_channel == 0 ? tx0_ : tx1_;
  const double bytes = payload.empty()
                           ? static_cast<double>(payload_bytes_hint)
                           : static_cast<double>(payload.size() * sizeof(float));
  const double at_plio = tx.transfer(ready, bytes);
  if (obs::ObsContext* obs = array_.observer()) {
    obs->metrics().add("sim.plio.bytes", static_cast<std::uint64_t>(bytes));
    if (obs::Tracer* tr = obs->tracer()) {
      const double dur = tx.transfer_duration(bytes);
      tr->span(obs::Domain::kSim, cat("plio.", tx.timeline().name()),
               cat("c", column, ".t", task), "plio", at_plio - dur, dur);
    }
  }
  versal::Packet packet;
  packet.header = {dest_id, column, task};
  packet.payload = std::move(payload);
  const versal::TileCoord dst = forwarding_.route(dest_id);
  return array_.stream_packet(dst, packet, at_plio, !packet.payload.empty(),
                              payload_bytes_hint);
}

Receiver::Receiver(versal::Channel& rx0, versal::Channel& rx1,
                   const versal::AieArraySim* array)
    : rx0_(rx0), rx1_(rx1), array_(array) {}

double Receiver::receive_column(int which_block_channel, double ready,
                                double column_bytes) {
  HSVD_REQUIRE(which_block_channel == 0 || which_block_channel == 1,
               "a block pair uses exactly two Rx PLIOs");
  versal::Channel& rx = which_block_channel == 0 ? rx0_ : rx1_;
  const double done = rx.transfer(ready, column_bytes);
  if (array_ != nullptr) {
    if (obs::ObsContext* obs = array_->observer()) {
      obs->metrics().add("sim.plio.bytes",
                         static_cast<std::uint64_t>(column_bytes));
      if (obs::Tracer* tr = obs->tracer()) {
        const double dur = rx.transfer_duration(column_bytes);
        tr->span(obs::Domain::kSim, cat("plio.", rx.timeline().name()), "col",
                 "plio", done - dur, dur);
      }
    }
  }
  return done;
}

}  // namespace hsvd::accel
