#include "accel/placement.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/format.hpp"

namespace hsvd::accel {

namespace {

// Places one task whose top-left engine column starts at `col0` and whose
// first usable row is `row0` (vertical stacking slot). Returns false if
// the footprint leaves the array.
bool place_task(const HeteroSvdConfig& config, const versal::ArrayGeometry& geo,
                int col0, int row0, int rows_per_band, TaskPlacement& out) {
  const int k = config.p_eng;
  const int layers = config.orth_layers();
  const int nbands = (layers + rows_per_band - 1) / rows_per_band;

  out.orth.assign(static_cast<std::size_t>(layers), {});
  out.band_first_layer.clear();

  for (int band = 0; band < nbands; ++band) {
    const int band_col0 = col0 + band * k;
    const int first_layer = band * rows_per_band;
    const int layers_here = std::min(rows_per_band, layers - first_layer);
    out.band_first_layer.push_back(first_layer);

    // A continuation band's top row holds the DMA shadow of the previous
    // band's output; the source band's bottom row stages that output.
    // Single-band tasks need no boundary mem row, which lets small tasks
    // stack vertically.
    if (band > 0) {
      for (int e = 0; e < k; ++e)
        out.mem.push_back({row0, band_col0 + e});
    }
    const int orth_row0 = nbands == 1 ? row0 : row0 + 1;
    for (int l = 0; l < layers_here; ++l) {
      auto& layer_tiles = out.orth[static_cast<std::size_t>(first_layer + l)];
      layer_tiles.resize(static_cast<std::size_t>(k));
      for (int e = 0; e < k; ++e) {
        const versal::TileCoord t{orth_row0 + l, band_col0 + e};
        if (!geo.contains(t)) return false;
        layer_tiles[static_cast<std::size_t>(e)] = t;
      }
    }
    if (band + 1 < nbands) {
      // Bottom mem-layer staging the crossing to the next band.
      for (int e = 0; e < k; ++e) {
        const versal::TileCoord t{orth_row0 + layers_here, band_col0 + e};
        if (!geo.contains(t)) return false;
        out.mem.push_back(t);
      }
    }
  }

  // norm-AIEs in the idle tiles right below the last band's last layer.
  const int last_band_col0 = col0 + (nbands - 1) * k;
  const int layers_in_last = layers - (nbands - 1) * rows_per_band;
  const int norm_row = (nbands == 1 ? row0 : row0 + 1) + layers_in_last;
  out.norm.clear();
  for (int e = 0; e < k; ++e) {
    const versal::TileCoord t{norm_row, last_band_col0 + e};
    if (!geo.contains(t)) return false;
    out.norm.push_back(t);
  }
  return true;
}

// One full-floorplan attempt with the task grid shifted by
// (row_shift, col_shift) tiles. Shift (0, 0) is the canonical layout.
std::optional<PlacementResult> attempt_place(const HeteroSvdConfig& config,
                                             const versal::ArrayGeometry& geo,
                                             int row_shift, int col_shift) {
  const int k = config.p_eng;
  const int layers = config.orth_layers();
  const int rows_per_band = geo.rows() - 2;
  if (rows_per_band < 1) return std::nullopt;
  const int nbands = (layers + rows_per_band - 1) / rows_per_band;

  // Footprint of one task: nbands * k columns wide. Multi-band tasks use
  // a boundary mem row above the orth rows plus a norm row below; single-
  // band tasks skip the boundary row, letting small tasks stack
  // vertically within the 8 array rows.
  const int task_height = nbands == 1
                              ? layers + 1
                              : 1 + std::min(layers, rows_per_band) + 1;
  const int stack =
      nbands == 1 ? std::max(1, (geo.rows() - row_shift) / task_height) : 1;
  const int task_width = nbands * k;

  PlacementResult result;
  result.bands_per_task = nbands;
  for (int t = 0; t < config.p_task; ++t) {
    const int strip = t / stack;
    const int slot = t % stack;
    const int col0 = col_shift + strip * task_width;
    const int row0 = row_shift + slot * task_height;
    if (col0 + task_width > geo.cols()) return std::nullopt;
    if (row0 + task_height > geo.rows()) return std::nullopt;
    TaskPlacement task;
    if (!place_task(config, geo, col0, row0, rows_per_band, task)) {
      return std::nullopt;
    }
    result.tasks.push_back(std::move(task));
  }

  for (const auto& task : result.tasks) {
    for (const auto& layer : task.orth)
      result.num_orth += static_cast<int>(layer.size());
    result.num_norm += static_cast<int>(task.norm.size());
    result.num_mem += static_cast<int>(task.mem.size());
  }
  result.num_plio = 6 * config.p_task;  // 4 orth + 2 norm per task

  if (result.total_aie() > config.device.total_aie) return std::nullopt;
  if (result.num_plio > config.device.total_plio) return std::nullopt;
  return result;
}

}  // namespace

std::vector<versal::TileCoord> used_tiles(const PlacementResult& placement) {
  std::vector<versal::TileCoord> tiles;
  for (const auto& task : placement.tasks) {
    for (const auto& layer : task.orth)
      tiles.insert(tiles.end(), layer.begin(), layer.end());
    tiles.insert(tiles.end(), task.norm.begin(), task.norm.end());
    tiles.insert(tiles.end(), task.mem.begin(), task.mem.end());
  }
  return tiles;
}

std::optional<PlacementResult> try_place(const HeteroSvdConfig& config) {
  config.validate();
  const versal::ArrayGeometry geo(config.device.aie_rows, config.device.aie_cols);
  return attempt_place(config, geo, 0, 0);
}

std::optional<PlacementResult> try_place(
    const HeteroSvdConfig& config,
    const std::vector<versal::TileCoord>& masked) {
  if (masked.empty()) return try_place(config);
  config.validate();
  const versal::ArrayGeometry geo(config.device.aie_rows, config.device.aie_cols);
  const std::set<versal::TileCoord> bad(masked.begin(), masked.end());
  // Search floorplan offsets nearest the canonical layout first: column
  // shifts move whole task strips sideways (the array is much wider than
  // tall), row shifts handle faults in the top rows.
  for (int row_shift = 0; row_shift < geo.rows(); ++row_shift) {
    for (int col_shift = 0; col_shift < geo.cols(); ++col_shift) {
      auto result = attempt_place(config, geo, row_shift, col_shift);
      if (!result.has_value()) {
        // Wider column shifts only push the layout further off the right
        // edge; move on to the next row shift.
        break;
      }
      const auto tiles = used_tiles(*result);
      const bool clean = std::none_of(
          tiles.begin(), tiles.end(),
          [&bad](const versal::TileCoord& t) { return bad.count(t) > 0; });
      if (clean) return result;
    }
  }
  return std::nullopt;
}

PlacementResult place(const HeteroSvdConfig& config) {
  auto result = try_place(config);
  if (!result.has_value()) {
    throw PlacementError(
        cat("configuration does not fit the device: P_eng=", config.p_eng,
            " P_task=", config.p_task, " (", config.orth_layers(),
            " orth-layers)"));
  }
  return std::move(*result);
}

}  // namespace hsvd::accel
