#include "accel/kernels.hpp"

#include <cmath>

#include "linalg/ops.hpp"

namespace hsvd::accel {

OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right) {
  const auto gram = linalg::dot3<float>(left, right);
  OrthKernelResult out;
  out.coherence = jacobi::pair_coherence(gram.aii, gram.ajj, gram.aij);
  const auto rot = jacobi::compute_rotation(gram.aii, gram.ajj, gram.aij);
  if (!rot.identity) {
    linalg::apply_rotation(left, right, rot.c, rot.s);
    out.rotated = true;
  }
  return out;
}

OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right,
                             float& aii, float& ajj) {
  const float aij = linalg::dot<float>(left, right);
  OrthKernelResult out;
  out.coherence = jacobi::pair_coherence(aii, ajj, aij);
  const auto rot = jacobi::compute_rotation(aii, ajj, aij);
  if (!rot.identity) {
    linalg::apply_rotation(left, right, rot.c, rot.s);
    linalg::rotated_norms(aii, ajj, aij, rot.c, rot.s, aii, ajj);
    // Cancellation noise from a dominant pair can leave a tracked norm
    // negative; refresh from the column (see hestenes.cpp).
    if (!(aii > 0.0f)) aii = linalg::dot<float>(left, left);
    if (!(ajj > 0.0f)) ajj = linalg::dot<float>(right, right);
    out.rotated = true;
  }
  return out;
}

NormKernelResult norm_kernel(std::span<float> column) {
  NormKernelResult out;
  out.sigma = linalg::norm2<float>(column);
  if (out.sigma > 0.0f) {
    const float inv = 1.0f / out.sigma;
    for (float& v : column) v *= inv;
  }
  return out;
}

}  // namespace hsvd::accel
