#include "accel/kernels.hpp"

#include <cmath>

#include "linalg/ops.hpp"

namespace hsvd::accel {

OrthKernelResult orth_kernel(std::span<float> left, std::span<float> right) {
  const float aij = linalg::dot<float>(left, right);
  const float aii = linalg::dot<float>(left, left);
  const float ajj = linalg::dot<float>(right, right);
  OrthKernelResult out;
  out.coherence = jacobi::pair_coherence(aii, ajj, aij);
  const auto rot = jacobi::compute_rotation(aii, ajj, aij);
  if (!rot.identity) {
    linalg::apply_rotation(left, right, rot.c, rot.s);
    out.rotated = true;
  }
  return out;
}

NormKernelResult norm_kernel(std::span<float> column) {
  NormKernelResult out;
  out.sigma = linalg::norm2<float>(column);
  if (out.sigma > 0.0f) {
    const float inv = 1.0f / out.sigma;
    for (float& v : column) v *= inv;
  }
  return out;
}

}  // namespace hsvd::accel
