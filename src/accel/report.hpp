// Human-readable configuration reports.
//
// render_floorplan() draws the AIE array occupancy of a placement as an
// ASCII grid -- one character per tile -- the fastest way to see how a
// configuration tiles the 8x50 array (and the visual counterpart of the
// paper's Fig. 5):
//   digits 0-9, a-z : orth-AIE of task slot (mod 36)
//   N               : norm-AIE
//   M               : mem-AIE
//   .               : idle tile
// render_schedule() prints an ordering's rounds with per-transition move
// classification, a textual Fig. 3.
// render_utilization() is the measured companion of render_floorplan():
// the same grid, but each tile shows its busy decile from a run's
// per-tile counters (the heat-map view of Fig. 9).
#pragma once

#include <string>

#include "accel/dataflow.hpp"
#include "accel/placement.hpp"
#include "jacobi/ordering.hpp"
#include "versal/utilization.hpp"

namespace hsvd::accel {

std::string render_floorplan(const PlacementResult& placement,
                             const versal::ArrayGeometry& geometry);

// Heat grid of a run's per-tile core utilization:
//   .      : tile never ran a kernel
//   0-9    : busy decile of the makespan (9 = >= 90% busy)
//   *      : busy the entire makespan
//   !      : tile accumulated fault-stall time
// A summary line with the aggregate core utilization and per-link byte
// totals precedes the grid.
std::string render_utilization(const versal::UtilizationReport& report);

// Renders the (2k-1) x k schedule of `kind` with the move classification
// between consecutive rounds (N = neighbour, D = DMA).
std::string render_schedule(jacobi::OrderingKind kind, int k,
                            MemoryStrategy strategy = MemoryStrategy::kRelocated);

}  // namespace hsvd::accel
