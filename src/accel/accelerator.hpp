// The HeteroSVD accelerator: functional + cycle-approximate execution of
// Algorithm 1 on the simulated Versal fabric.
//
// One instance owns an AIE array simulator, a placement, per-task PLIO
// channels and the classified dataflow. run() executes a batch of
// matrices functionally (real arithmetic flows through the simulated
// tiles, so routing bugs corrupt results and are caught by tests);
// estimate() executes the identical control/timing path without payloads
// for large problem sizes (the paper fixes the iteration count in its
// comparisons, so timing is data-independent).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "accel/dataflow.hpp"
#include "accel/placement.hpp"
#include "accel/pl_modules.hpp"
#include "linalg/matrix.hpp"
#include "perfmodel/aie_timing.hpp"
#include "perfmodel/resource_model.hpp"
#include "versal/array.hpp"
#include "versal/noc.hpp"

namespace hsvd::accel {

struct TaskResult {
  linalg::MatrixF u;          // rows x cols (empty in timing-only mode)
  std::vector<float> sigma;   // descending  (empty in timing-only mode)
  int iterations = 0;
  double convergence_rate = 0.0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  // Per-task robustness outcome. kFailed tasks have empty factors and a
  // diagnostic in `message`; `fault_tile` names the AIE tile the
  // detection point blamed (input to re-placement). `converged` is the
  // SystemModule decision in precision mode (always true in
  // fixed-iteration mode, which has no target). `recovery_attempts` is 0
  // for first-try results and n > 0 when the task succeeded on the nth
  // re-placed retry.
  hsvd::SvdStatus status = hsvd::SvdStatus::kOk;
  std::string message;
  std::optional<versal::TileCoord> fault_tile;
  bool converged = true;
  bool watchdog_stalled = false;
  int recovery_attempts = 0;
  bool ok() const { return status != hsvd::SvdStatus::kFailed; }
  double latency_seconds() const { return end_seconds - start_seconds; }
};

struct RunResult {
  std::vector<TaskResult> tasks;
  double batch_seconds = 0.0;      // makespan over the whole batch (t_sys)
  double task_seconds = 0.0;       // latency of the first task (t_task)
  double throughput_tasks_per_s = 0.0;
  versal::ArrayStats stats;
  perf::ResourceUsage resources;
  double core_utilization = 0.0;   // busy fraction of active AIE cores
  double memory_utilization = 0.0; // URAM usage fraction of the device
  int failed_tasks = 0;            // tasks still kFailed after recovery
  int recovery_runs = 0;           // re-placement + re-run rounds consumed
  // Per-tile busy/stall/idle tallies and link-byte counters for the
  // initial batch execution (recovery re-runs rebuild the array and are
  // not merged). utilization.core_utilization() equals core_utilization
  // for fault-free runs.
  versal::UtilizationReport utilization;
};

// Staged execution input for execute_block_pair (the streaming pipeline's
// load stage): the pair's column payloads come from a snapshot instead of
// the live matrix, every fabric-side op and detection point (Tx
// checksums, missing-buffer checks, Rx integrity, tile-memory traffic)
// runs exactly as in functional mode, and the math is skipped -- it runs
// downstream in the orthogonalize stage on the same snapshot.
struct StagedPair {
  // 2k column snapshots in local pair order (block u's k columns, then
  // block v's). Never null in staged mode.
  const std::vector<std::vector<float>>* cols = nullptr;
  // Out (optional): simulated completion time of each orth kernel,
  // indexed [layer * k + engine]. The math stage stamps these times on
  // its FaultDetected throws so diagnostics match the sequential path.
  std::vector<double>* kernel_end = nullptr;
};

class TaskPipeline;

class HeteroSvdAccelerator {
 public:
  explicit HeteroSvdAccelerator(const HeteroSvdConfig& config);

  // Functional batch execution with per-task fault isolation. Every
  // matrix must be rows x cols. A task whose execution trips a detection
  // point (checksum mismatch, lost buffer, hung core, non-finite output)
  // is recorded as SvdStatus::kFailed without disturbing the other
  // tasks; when the detection attributes a tile and
  // config().fault_retries allows, the accelerator masks the tile,
  // re-places the design on the healthy array (degrading P_task then
  // P_eng as needed) and re-runs only the failed tasks.
  RunResult run(const std::vector<linalg::MatrixF>& batch);

  // Timing-only execution of `batch_size` tasks.
  RunResult estimate(int batch_size);

  const HeteroSvdConfig& config() const { return config_; }
  // Attach an execution trace recorder (kernels/DMA/streams land in it;
  // export with TraceRecorder::write_chrome_json). Not owned.
  void attach_trace(versal::TraceRecorder* recorder);
  // Attach a fault injector (not owned; nullptr detaches). PLIO
  // degradation faults are applied to the task slots' channels
  // immediately; tile-level faults fire from inside the array simulator.
  void attach_faults(versal::FaultInjector* faults);
  // Attach an observability context (not owned; nullptr detaches).
  // Metrics are recorded unconditionally once attached; when the
  // context's tracer is enabled the batch engine additionally records
  // task/PLIO/DDR spans and fault detect/recover instants, and falls
  // back to sequential slot chains (like attach_trace) so the event
  // order stays reproducible. Observation never changes results or the
  // simulated timeline.
  void attach_observer(obs::ObsContext* observer);
  obs::ObsContext* observer() const { return obs_; }
  // Attach a cooperative cancellation token (not owned; nullptr
  // detaches). The batch engine polls it at slot-chain boundaries --
  // before each task of a chain and before each recovery round -- and
  // aborts the run by throwing hsvd::DeadlineExceeded once it expires.
  // Work is never interrupted mid-task, so cancellation leaves the
  // simulator in a consistent state.
  void attach_cancellation(const common::CancelToken* cancel);
  const PlacementResult& placement() const { return placement_; }
  const DataflowPlan& dataflow(std::size_t task_slot) const;
  const perf::AieKernelModel& kernel_model() const { return kernels_; }
  // Tiles diagnosed faulty so far; re-placement never uses them.
  const std::vector<versal::TileCoord>& masked_tiles() const { return masked_; }

  // ---- Pair-level engine API (DESIGN.md section 11) --------------------
  // execute_task() is built from these primitives; they are public so a
  // multi-array driver (ShardedAccelerator) can run the same block-pair
  // pipeline on several accelerator instances without duplicating the
  // timing or fault-detection logic. All of them assume reset_timelines()
  // has been called since the previous batch.

  // Completion times of one executed block pair: when each of its two
  // blocks is back in the PL URAM buffers.
  struct PairCompletion {
    double done_u = 0.0;
    double done_v = 0.0;
  };

  // Resets the array, PLIO channel and NoC timelines to simulated t = 0.
  void reset_timelines();

  // One DDR -> PL URAM staging transfer on the NoC port wired to `slot`.
  double stage_from_ddr(int slot, double when, double bytes);

  // Executes one block pair (bu, bv) of task `task_id` on hardware slot
  // `slot`, starting no earlier than `launch` (HLS loop-switch overhead
  // already included by the caller): Tx of both blocks over the slot's
  // two orth PLIOs, the (2k-1)-layer orthogonalization pipeline with its
  // inter-layer moves, and Rx back into the PL buffers. `b` and
  // `colnorm` are null in timing-only mode. Throws hsvd::FaultDetected
  // at the same detection points as execute_task(). `staged` (with b ==
  // nullptr) selects the pipeline's load-stage mode: payloads flow from
  // the snapshot and the math is deferred to a downstream stage.
  PairCompletion execute_block_pair(int slot, int task_id, int bu, int bv,
                                    double launch, linalg::MatrixF* b,
                                    std::vector<float>* colnorm,
                                    SystemModule& system,
                                    const StagedPair* staged = nullptr);

  // Executes the normalization of block `blk` (norm Tx at `ready`, k
  // norm kernels, per-column Rx); returns when the block's results are
  // back in the PL buffers. `b`/`sigma` are null in timing-only mode.
  // `rx_done_out` (optional, size >= k) receives each engine's Rx
  // completion time; the pipeline's normalize stage stamps these on its
  // FaultDetected throws.
  double execute_norm_block(int slot, int blk, double ready,
                            linalg::MatrixF* b, std::vector<float>* sigma,
                            std::vector<double>* rx_done_out = nullptr);

  // Releases every buffer a failed task left in its slot's tile
  // memories, so later tasks on the same tiles start clean.
  void purge_task_buffers(int slot, int task_id);

  // Adds `bad` to the masked set and re-places the *same* shape on the
  // healthy array -- unlike the internal recovery path this never
  // degrades P_task or P_eng, because a sharded run must keep the block
  // structure identical across all arrays. Returns false (and leaves the
  // accelerator untouched) when the shape no longer fits.
  bool mask_tiles(const std::vector<versal::TileCoord>& bad);

  versal::NocModel& noc() { return noc_; }
  // HLS loop-switching overhead charged at each block-pair launch.
  double hls_overhead_seconds() const { return hls_overhead_s_; }
  // Simulator counters / per-tile tallies of this array (a sharded run
  // merges them across arrays; see shard/merge.hpp).
  versal::ArrayStats array_stats() const { return array_->stats(); }
  double core_utilization(double makespan) const {
    return array_->core_utilization(makespan);
  }
  versal::UtilizationReport utilization(double makespan) const {
    return array_->utilization(makespan);
  }
  bool has_trace() const { return trace_ != nullptr; }

 private:
  // The streaming stage pipeline (accel/pipeline.cpp) executes a task by
  // driving the pair-level primitives above plus the private state below
  // (schedules, placement, arrangement wiring), so it is a friend rather
  // than a wider public surface.
  friend class TaskPipeline;

  // True when execute_task may run through the streaming stage pipeline:
  // config().pipeline (plus the HSVD_PIPELINE env override in kAuto) and
  // the structural requirements -- no trace recorder, no obs tracer.
  bool pipeline_enabled() const;

  // Shared tail of execute_task (both the sequential and the pipelined
  // path): close the task span, fold the convergence verdict into
  // `result`, sort the factors by descending sigma and truncate the
  // padding. `b`/`sigma` are null in timing-only mode.
  void finish_task(TaskResult& result, int slot, int task_id,
                   double task_end, int iterations_run,
                   const SystemModule& system, linalg::MatrixF* b,
                   std::vector<float>* sigma);

  // Executes one task on hardware slot `slot`, starting no earlier than
  // `ready`. `matrix` is null in timing-only mode. `task_id` tags the
  // task's column buffers in tile memories; ids are assigned up front by
  // execute_batch so slot chains can run on concurrent host threads.
  // Throws hsvd::FaultDetected when a detection point fires.
  TaskResult execute_task(int slot, double ready, const linalg::MatrixF* matrix,
                          int task_id);

  RunResult execute_batch(int batch_size,
                          const std::vector<linalg::MatrixF>* batch);

  // (Re)derives placement, schedules, dataflows, the array simulator and
  // the PLIO channels from config_ and masked_. Called by the
  // constructor and after every successful mask_and_replace().
  void rebuild();

  // Adds `bad` to the masked set and attempts to re-place. Degrades
  // config_.p_task down to 1, then config_.p_eng, when the healthy array
  // no longer fits the current shape. Returns false when no degraded
  // configuration fits (recovery impossible).
  bool mask_and_replace(const std::vector<versal::TileCoord>& bad);

  HeteroSvdConfig config_;
  PlacementResult placement_;
  perf::AieKernelModel kernels_;
  perf::PlioModel plio_model_;
  std::unique_ptr<versal::AieArraySim> array_;
  jacobi::EngineSchedule schedule_;                     // slot 0's schedule
  std::vector<jacobi::EngineSchedule> slot_schedules_;  // per task slot
  std::vector<DataflowPlan> dataflows_;                 // per task slot
  int next_task_id_ = 0;
  std::vector<std::vector<std::pair<int, int>>> block_rounds_;
  // Per task slot: 2 Tx + 2 Rx orth channels, 1 Tx + 1 Rx norm channel
  // (6 PLIOs, Table I), plus the PL modules of Fig. 2 wired to them.
  struct SlotChannels {
    versal::Channel tx[2];
    versal::Channel rx[2];
    versal::Channel norm_tx;
    versal::Channel norm_rx;
    std::unique_ptr<Sender> sender;
    std::unique_ptr<Receiver> receiver;
  };
  std::vector<std::unique_ptr<SlotChannels>> channels_;
  versal::NocModel noc_;
  // HLS loop-switching overhead applied at block-round boundaries.
  double hls_overhead_s_ = 0.0;
  versal::TraceRecorder* trace_ = nullptr;
  versal::FaultInjector* faults_ = nullptr;
  const common::CancelToken* cancel_ = nullptr;
  obs::ObsContext* obs_ = nullptr;
  std::vector<versal::TileCoord> masked_;
};

}  // namespace hsvd::accel
