// The HeteroSVD accelerator: functional + cycle-approximate execution of
// Algorithm 1 on the simulated Versal fabric.
//
// One instance owns an AIE array simulator, a placement, per-task PLIO
// channels and the classified dataflow. run() executes a batch of
// matrices functionally (real arithmetic flows through the simulated
// tiles, so routing bugs corrupt results and are caught by tests);
// estimate() executes the identical control/timing path without payloads
// for large problem sizes (the paper fixes the iteration count in its
// comparisons, so timing is data-independent).
#pragma once

#include <memory>
#include <vector>

#include "accel/config.hpp"
#include "accel/dataflow.hpp"
#include "accel/placement.hpp"
#include "accel/pl_modules.hpp"
#include "linalg/matrix.hpp"
#include "perfmodel/aie_timing.hpp"
#include "perfmodel/resource_model.hpp"
#include "versal/array.hpp"
#include "versal/noc.hpp"

namespace hsvd::accel {

struct TaskResult {
  linalg::MatrixF u;          // rows x cols (empty in timing-only mode)
  std::vector<float> sigma;   // descending  (empty in timing-only mode)
  int iterations = 0;
  double convergence_rate = 0.0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double latency_seconds() const { return end_seconds - start_seconds; }
};

struct RunResult {
  std::vector<TaskResult> tasks;
  double batch_seconds = 0.0;      // makespan over the whole batch (t_sys)
  double task_seconds = 0.0;       // latency of the first task (t_task)
  double throughput_tasks_per_s = 0.0;
  versal::ArrayStats stats;
  perf::ResourceUsage resources;
  double core_utilization = 0.0;   // busy fraction of active AIE cores
  double memory_utilization = 0.0; // URAM usage fraction of the device
};

class HeteroSvdAccelerator {
 public:
  explicit HeteroSvdAccelerator(const HeteroSvdConfig& config);

  // Functional batch execution. Every matrix must be rows x cols.
  RunResult run(const std::vector<linalg::MatrixF>& batch);

  // Timing-only execution of `batch_size` tasks.
  RunResult estimate(int batch_size);

  const HeteroSvdConfig& config() const { return config_; }
  // Attach an execution trace recorder (kernels/DMA/streams land in it;
  // export with TraceRecorder::write_chrome_json). Not owned.
  void attach_trace(versal::TraceRecorder* recorder) {
    array_->attach_trace(recorder);
  }
  const PlacementResult& placement() const { return placement_; }
  const DataflowPlan& dataflow(std::size_t task_slot) const;
  const perf::AieKernelModel& kernel_model() const { return kernels_; }

 private:
  struct TaskContext;

  // Executes one task on hardware slot `slot`, starting no earlier than
  // `ready`. `matrix` is null in timing-only mode. `task_id` tags the
  // task's column buffers in tile memories; ids are assigned up front by
  // execute_batch so slot chains can run on concurrent host threads.
  TaskResult execute_task(int slot, double ready, const linalg::MatrixF* matrix,
                          int task_id);

  RunResult execute_batch(int batch_size,
                          const std::vector<linalg::MatrixF>* batch);

  HeteroSvdConfig config_;
  PlacementResult placement_;
  perf::AieKernelModel kernels_;
  perf::PlioModel plio_model_;
  std::unique_ptr<versal::AieArraySim> array_;
  jacobi::EngineSchedule schedule_;                     // slot 0's schedule
  std::vector<jacobi::EngineSchedule> slot_schedules_;  // per task slot
  std::vector<DataflowPlan> dataflows_;                 // per task slot
  int next_task_id_ = 0;
  std::vector<std::vector<std::pair<int, int>>> block_rounds_;
  // Per task slot: 2 Tx + 2 Rx orth channels, 1 Tx + 1 Rx norm channel
  // (6 PLIOs, Table I), plus the PL modules of Fig. 2 wired to them.
  struct SlotChannels {
    versal::Channel tx[2];
    versal::Channel rx[2];
    versal::Channel norm_tx;
    versal::Channel norm_rx;
    std::unique_ptr<Sender> sender;
    std::unique_ptr<Receiver> receiver;
  };
  std::vector<std::unique_ptr<SlotChannels>> channels_;
  versal::NocModel noc_;
  // HLS loop-switching overhead applied at block-round boundaries.
  double hls_overhead_s_ = 0.0;
};

}  // namespace hsvd::accel
