// PL-side modules of the HeteroSVD system (paper Fig. 2).
//
// The PL fabric hosts four cooperating state machines per task slot:
//   DataArrangement -- stages blocks from DDR into URAM ping-pong
//                      buffers and serves them in round-robin block-pair
//                      order; tracks when each block's latest version is
//                      available again after Rx.
//   Sender          -- packs columns into header-routed packets and
//                      pushes them through the two orth Tx PLIOs; the
//                      dynamic-forwarding table maps a packet's dest_id
//                      to the physical layer-0 tile (section III-C).
//   Receiver        -- drains the two orth Rx PLIOs, reassembles blocks,
//                      and reports per-block completion times.
//   SystemModule    -- accumulates the convergence rate (eq. (6)) and
//                      decides when to leave the orthogonalization stage.
//
// All four are timing-aware (they own their Channel timelines) and
// payload-optional, mirroring the accelerator's two execution modes.
#pragma once

#include <functional>
#include <vector>

#include "jacobi/convergence.hpp"
#include "versal/array.hpp"
#include "versal/packet.hpp"
#include "versal/timeline.hpp"

namespace hsvd::accel {

class DataArrangement {
 public:
  // `ddr_transfer(ready, bytes) -> done` performs one DDR read through
  // whatever port the caller wired (NoC DDRMC port in the accelerator,
  // a plain Channel in unit tests). `blocks` is the block count p.
  using DdrTransfer = std::function<double(double, double)>;
  DataArrangement(DdrTransfer ddr_transfer, int blocks, double block_bytes);
  DataArrangement(versal::Channel& ddr, int blocks, double block_bytes);

  // Stages all p blocks starting no earlier than `ready` (eq. (12)).
  void stage_from_ddr(double ready);

  double block_ready(int block) const;
  void set_block_ready(int block, double when);

  // Latest time at which every block is back in the URAM buffers.
  double all_blocks_ready() const;

 private:
  DdrTransfer ddr_;
  double block_bytes_;
  std::vector<double> ready_;
};

class Sender {
 public:
  // `tx0`/`tx1` carry the two blocks of a pair; `forwarding` must route
  // every engine-slot dest_id used by the schedule.
  Sender(versal::Channel& tx0, versal::Channel& tx1,
         versal::ForwardingTable forwarding, versal::AieArraySim& array);

  // Sends one column: packetizes, serializes on the block's Tx PLIO, then
  // forwards through the packet switch to the tile bound to `dest_id`.
  // Returns the arrival time at the tile's memory.
  double send_column(int which_block_channel, std::uint32_t dest_id,
                     std::uint32_t column, std::uint32_t task,
                     double ready, std::vector<float> payload,
                     std::uint64_t payload_bytes_hint);

  const versal::ForwardingTable& forwarding() const { return forwarding_; }

 private:
  versal::Channel& tx0_;
  versal::Channel& tx1_;
  versal::ForwardingTable forwarding_;
  versal::AieArraySim& array_;
};

class Receiver {
 public:
  // `array` (optional) supplies the observability context the Rx PLIO
  // transfers report to; the receiver itself never touches the fabric.
  Receiver(versal::Channel& rx0, versal::Channel& rx1,
           const versal::AieArraySim* array = nullptr);

  // Receives one column of a block over the block's Rx PLIO; returns the
  // completion time at the PL buffers.
  double receive_column(int which_block_channel, double ready,
                        double column_bytes);

 private:
  versal::Channel& rx0_;
  versal::Channel& rx1_;
  const versal::AieArraySim* array_;
};

class SystemModule {
 public:
  explicit SystemModule(double precision) : tracker_(precision) {}

  void begin_iteration() { tracker_.begin_sweep(); }
  void observe_pair(double coherence) { tracker_.observe(coherence); }
  // The convergence decision of Algorithm 1 line 2 / lines 15-16.
  bool should_terminate(bool precision_mode) const {
    return precision_mode && tracker_.converged();
  }
  double convergence_rate() const { return tracker_.sweep_rate(); }

  // Convergence watchdog: closes one sweep and updates the stall counter.
  // A sweep "stalls" when its off-diagonal coherence fails to drop
  // meaningfully below the previous sweep's -- the signature of a
  // corrupted iteration (or a matrix that cannot reach the precision
  // target at this datatype). Jacobi sweeps are not strictly monotone,
  // so only `stall_limit()` *consecutive* stalled sweeps trip the
  // watchdog; one improving sweep resets the counter.
  void end_iteration() {
    const double rate = tracker_.sweep_rate();
    if (have_last_ && rate >= last_rate_ * kStallShrink) {
      ++stalled_sweeps_;
    } else {
      stalled_sweeps_ = 0;
    }
    last_rate_ = rate;
    have_last_ = true;
  }
  int stalled_sweeps() const { return stalled_sweeps_; }
  static constexpr int stall_limit() { return 5; }
  bool stalled() const { return stalled_sweeps_ >= stall_limit(); }

  // Folds another module's open sweep into this one (sharded execution:
  // each shard observes its own pairs; the sweep maximum of the union is
  // the max of the per-shard maxima, so the merge is order-independent
  // and the merged convergence decision matches a single-array run).
  void merge_sweep(const SystemModule& other) {
    tracker_.merge(other.tracker_);
  }

 private:
  // A sweep must shrink the coherence by at least this factor to count
  // as progress.
  static constexpr double kStallShrink = 0.999;
  jacobi::ConvergenceTracker tracker_;
  double last_rate_ = 0.0;
  bool have_last_ = false;
  int stalled_sweeps_ = 0;
};

}  // namespace hsvd::accel
