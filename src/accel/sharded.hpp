// Multi-array sharded execution of one SVD (DESIGN.md section 11).
//
// A ShardedAccelerator partitions a single decomposition across S
// simulated AIE arrays. The unit of distribution is the block-level
// tournament ring: the pair sites of jacobi::block_ring_schedule are
// assigned to shards cyclically (site j -> shard j % S), so each block
// round's q = p/2 pairs spread over the S arrays and run concurrently.
// A block that stays on one shard between rounds keeps living in that
// array's PL URAM buffers for free; a block whose next site lives on
// another shard crosses the shard::InterShardLink -- out over the
// source array's AIE->PL PLIO, across the NoC/DDR fabric, and in over
// the destination's PL->AIE PLIO -- and its ready time carries that
// edge cost.
//
// Determinism and bit-identity. Pairs within a block round are disjoint
// (tournament rounds), so their rotations commute: the factors of a
// sharded run are bit-identical to the single-array path for every S,
// and S = 1 delegates to the inner HeteroSvdAccelerator outright (the
// whole RunResult, timings included, is bit-identical to a plain run).
// The host fan-out over shards touches only disjoint state per shard
// (its own array/channels/NoC, its pair's matrix columns, a per-shard
// SystemModule merged at the sweep barrier), so results are identical
// for any host thread count; cross-shard edge transfers are charged on
// the coordinator in schedule order, never concurrently.
//
// Faults. The fault injector is attached to shard 0 only (fault
// scenarios stay comparable with the single-array engine); detection
// points on any shard still fire. Recovery masks the blamed tile on the
// shard that raised it via mask_tiles -- a same-shape re-placement, so
// the block structure stays identical across arrays -- and re-runs the
// failed tasks.
#pragma once

#include <memory>
#include <vector>

#include "accel/accelerator.hpp"
#include "shard/topology.hpp"

namespace hsvd::accel {

class ShardedAccelerator {
 public:
  // Builds S identically configured single-array accelerators plus the
  // inter-shard link. shards must be >= 1; every array must fit the
  // device (throws PlacementError otherwise, like the inner engine).
  ShardedAccelerator(const HeteroSvdConfig& config, int shards);
  ~ShardedAccelerator();

  // Functional batch execution with per-task fault isolation and
  // bounded masked-tile recovery; the same contract as
  // HeteroSvdAccelerator::run. Tasks of a sharded batch run
  // sequentially (they share the inter-shard link's timelines).
  RunResult run(const std::vector<linalg::MatrixF>& batch);

  // Timing-only execution of `batch_size` tasks.
  RunResult estimate(int batch_size);

  int shards() const { return static_cast<int>(arrays_.size()); }
  const HeteroSvdConfig& config() const { return arrays_.front()->config(); }
  HeteroSvdAccelerator& array(int s);
  // The priced AIE->PL->NoC->PL->AIE edge (null when S == 1: a single
  // array has no inter-shard traffic).
  const shard::InterShardLink* link() const { return link_.get(); }

  // Attachment points mirror the single-array engine. Trace, faults and
  // observer go to shard 0 (S = 1: the only array); with a trace
  // recorder or an enabled tracer attached the per-round shard fan-out
  // runs sequentially so event order stays reproducible.
  void attach_trace(versal::TraceRecorder* recorder);
  void attach_faults(versal::FaultInjector* faults);
  void attach_observer(obs::ObsContext* observer);
  void attach_cancellation(const common::CancelToken* cancel);

 private:
  // One sharded task: staging on each block's home shard, the sharded
  // sweep loop, inter-shard edge charges between rounds, and the
  // distributed normalization stage. Throws hsvd::FaultDetected (and
  // records the raising shard in *fault_shard) like execute_task.
  TaskResult execute_task(double ready, const linalg::MatrixF* matrix,
                          int task_id, int* fault_shard);

  RunResult execute_batch(int batch_size,
                          const std::vector<linalg::MatrixF>* batch,
                          std::vector<int>* fault_shards);

  bool fanout_parallel() const;

  std::vector<std::unique_ptr<HeteroSvdAccelerator>> arrays_;
  std::unique_ptr<shard::InterShardLink> link_;
  // Padded block tournament (phantom bye block id == config().blocks()
  // when the count is odd); pair site j of every round maps to shard
  // j % S.
  jacobi::EngineSchedule block_schedule_;
  int next_task_id_ = 0;
  const common::CancelToken* cancel_ = nullptr;
  obs::ObsContext* obs_ = nullptr;
};

}  // namespace hsvd::accel
