// Fault-injection campaign: sweeps fault kinds x seeds over a batch run
// and scores detection, recovery, and healthy-result isolation.
//
// Each trial builds a fresh accelerator, injects exactly one FaultSpec
// (kind fixed, target and trigger ordinal derived from the trial seed),
// runs the batch through the full detect/retry/re-place policy, and
// compares every task that never faulted against a fault-free reference
// run bit for bit. The whole campaign is deterministic: the same
// CampaignOptions yield the same CSV no matter the host thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "versal/faults.hpp"

namespace hsvd::accel {

struct CampaignOptions {
  // Micro-architecture + shape under test. The default exercises every
  // fault surface: two bands (so inter-band DMA exists) and two task
  // slots (so isolation is observable).
  HeteroSvdConfig config = [] {
    HeteroSvdConfig c;
    c.rows = 24;
    c.cols = 16;
    c.p_eng = 4;
    c.p_task = 2;
    c.iterations = 3;
    return c;
  }();
  int batch = 4;             // tasks per trial
  int trials_per_kind = 3;   // derived seeds per fault kind
  std::uint64_t seed = 1;    // campaign master seed
  // Fault kinds to sweep; empty = all kinds.
  std::vector<versal::FaultKind> kinds;
  // When true, the first trial whose fault was actually noticed (a task
  // failed or recovery ran) keeps its full Chrome-trace JSON in
  // CampaignOutcome::trace_json so the CLI can dump the timeline.
  bool capture_failure_trace = false;
  // Checkpoint/resume for long sweeps. When non-empty, every completed
  // trial is appended to this file (flushed per trial), and a rerun with
  // the same options loads it and skips the finished trials -- the
  // resumed sweep produces the same outcome list (and CSV) as an
  // uninterrupted one. The file is tagged with a digest of the options;
  // a checkpoint written under different options is ignored and
  // rewritten, never silently reused. trace_json is NOT checkpointed: a
  // trial replayed from the checkpoint has an empty trace.
  std::string checkpoint_path;
  // Stop after this many newly *executed* trials (checkpointed trials
  // do not count); 0 = no limit. Models an interrupted sweep in tests:
  // the truncated outcome list is returned, and the checkpoint holds
  // everything completed so far for the next run to resume from.
  int max_new_trials = 0;
};

struct CampaignOutcome {
  versal::FaultKind kind = versal::FaultKind::kStreamDrop;
  std::uint64_t plan_seed = 0;
  versal::TileCoord target{0, 0};  // injected tile (row -1 for PLIO)
  std::uint64_t after_op = 0;
  int events_fired = 0;      // injections that actually triggered
  int failed_tasks = 0;      // tasks still kFailed after recovery
  int recovery_runs = 0;     // re-placement rounds consumed
  int masked_tiles = 0;      // tiles quarantined by recovery
  // Detection verdict: vacuously true for non-corrupting kinds and for
  // trials whose fault never triggered; otherwise true iff the run
  // noticed (some task failed at least once). kSilentError flows past
  // every dataflow detection point by construction, so its verdict is
  // the verify layer's: detected iff no fired corruption escaped
  // attestation (silent_escapes == 0).
  bool detected = true;
  // kSilentError scoring (0 for every other kind): fired corruptions
  // the result attestation failed (caught) vs passed (escaped).
  int verify_caught = 0;
  int silent_escapes = 0;
  // True iff every task that completed on its first attempt matches the
  // fault-free reference bit for bit (U, sigma, iterations).
  bool healthy_bit_identical = true;
  double batch_seconds = 0.0;
  // Simulated AIE cycles between the first injection instant and the
  // first detection instant on the trial's fault timeline; -1 when the
  // trial had no (injection, detection) pair to measure.
  double detection_latency_cycles = -1.0;
  std::string note;          // first failure diagnostic, if any
  // Chrome-trace JSON of the trial (only the first noticed-fault trial,
  // and only when CampaignOptions::capture_failure_trace is set).
  std::string trace_json;
};

// Runs the sweep; outcomes are ordered (kind, trial).
std::vector<CampaignOutcome> run_campaign(const CampaignOptions& options);

// Digest of the options a campaign checkpoint's records depend on (the
// header tag of CampaignOptions::checkpoint_path files).
std::string campaign_checkpoint_tag(const CampaignOptions& options);

// Renders outcomes as RFC-4180 CSV (header + one row per trial).
std::string campaign_csv(const std::vector<CampaignOutcome>& outcomes);

// True when every outcome detected its corruption and isolated the
// healthy tasks -- the campaign's pass criterion.
bool campaign_clean(const std::vector<CampaignOutcome>& outcomes);

}  // namespace hsvd::accel
