// AIE-centric dataflow construction and classification (paper section
// III-B, Figs. 3 and 4).
//
// Between consecutive orth-layers every column of the block pair travels
// from the tile that processed it to the tile that processes it next.
// Whether that transfer is a cheap neighbour access or an expensive DMA
// depends on three things this module combines:
//   1. the ordering (which slot the column moves to),
//   2. the memory strategy (naive: outputs stay in the producer's memory;
//      relocated: outputs are written into the next row's memory),
//   3. the physical placement (row parity mirroring; band crossings).
#pragma once

#include <vector>

#include "accel/placement.hpp"
#include "jacobi/movement.hpp"
#include "jacobi/ordering.hpp"
#include "versal/geometry.hpp"

namespace hsvd::accel {

enum class MemoryStrategy {
  kNaive,      // Fig. 4(a): output in own memory; consumer must reach it
  kRelocated   // Fig. 4(b): output deposited into a memory the consumer
               // can read (the co-designed default)
};

struct ClassifiedMove {
  int column = 0;                 // logical column within the block pair
  versal::TileCoord src;
  versal::TileCoord dst;
  jacobi::Side dst_side = jacobi::Side::kLeft;
  bool is_dma = false;
};

// Moves for the transition from layer `layer` to layer `layer + 1`.
// All 2k columns move (a column that keeps its slot still descends one
// row to the next layer's tile).
struct LayerTransition {
  int layer = 0;
  std::vector<ClassifiedMove> moves;
  int dma_count() const;
};

struct DataflowPlan {
  std::vector<LayerTransition> transitions;  // size = layers - 1
  int total_dma() const;
  int total_neighbour() const;
  // Extra tile-memory bytes needed for DMA shadow copies, given the
  // column length in floats (the "twice the memory" cost of Fig. 4(a)).
  std::uint64_t dma_shadow_bytes(std::size_t column_rows) const;
};

// Builds the classified dataflow for one task placement.
DataflowPlan build_dataflow(const jacobi::EngineSchedule& schedule,
                            const TaskPlacement& task,
                            const versal::ArrayGeometry& geometry,
                            MemoryStrategy strategy);

// Analysis helper for Fig. 3: places the full (2k-1) x k ordering on an
// idealized array tall enough to avoid banding, and returns the DMA count
// of one sweep. `k` is the engine count (matrix has 2k columns).
int count_sweep_dma(jacobi::OrderingKind kind, int k,
                    MemoryStrategy strategy = MemoryStrategy::kRelocated);

}  // namespace hsvd::accel
