// Streaming stage pipeline for one accelerator task (DESIGN.md §12).
//
// execute_task's sequential loop walks the tournament rounds of a sweep
// one block pair at a time: stage the payloads through the simulated
// fabric, run the pair math, write the columns back, move on. The
// pipeline splits that walk into five stages connected by bounded SPSC
// queues (common/spsc_queue.hpp):
//
//   load          -- (caller thread) per-pair block-dependency wait,
//                    column snapshot, and *all* fabric-simulation ops in
//                    exact sequential order (Tx, kernels+moves, Rx, with
//                    every transport detection point live)
//   orthogonalize -- the (2k-1)-layer rotation math on the snapshot
//   accumulate    -- folds each pair's coherence into the SystemModule
//   normalize     -- the norm-kernel math of the final normalization
//   store         -- writes the columns back and publishes block epochs
//
// Consecutive tournament rounds overlap: while round r's pairs are still
// in the math stages, round r+1's fabric simulation is already running.
// Because the fabric state is touched by exactly one stage (load, on the
// caller thread, in sequential op order) and the math runs in item order
// with block dependencies enforced by epochs, results, simulated timings
// and simulator stats are bit-identical to the sequential path.
#pragma once

#include "accel/accelerator.hpp"

namespace hsvd::accel {

class TaskPipeline {
 public:
  // Pipelined equivalent of HeteroSvdAccelerator::execute_task in
  // functional mode. Throws exactly what the sequential path throws
  // (hsvd::FaultDetected from the detection points, DeadlineExceeded on
  // cancellation) after joining every stage thread, so teardown never
  // leaks a running stage.
  static TaskResult run(HeteroSvdAccelerator& accel, int slot, double ready,
                        const linalg::MatrixF& matrix, int task_id);
};

}  // namespace hsvd::accel
