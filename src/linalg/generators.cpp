#include "linalg/generators.hpp"

#include <cmath>

#include "linalg/ops.hpp"

namespace hsvd::linalg {

MatrixD random_gaussian(std::size_t rows, std::size_t cols, Rng& rng) {
  MatrixD m(rows, cols);
  for (double& v : m.data()) v = rng.gaussian();
  return m;
}

MatrixD random_uniform(std::size_t rows, std::size_t cols, Rng& rng, double lo,
                       double hi) {
  MatrixD m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(lo, hi);
  return m;
}

namespace {

// In-place modified Gram-Schmidt QR; returns Q (rows x cols), diag(R) signs
// are used by the caller for Haar correction. MGS is numerically adequate
// here because callers re-orthogonalize once.
MatrixD gram_schmidt_q(const MatrixD& a, std::vector<double>& rdiag) {
  MatrixD q = a;
  const std::size_t n = a.cols();
  rdiag.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    auto qj = q.col(j);
    for (int pass = 0; pass < 2; ++pass) {  // re-orthogonalize for stability
      for (std::size_t k = 0; k < j; ++k) {
        auto qk = q.col(k);
        const double r = dot<double>(qk, qj);
        for (std::size_t i = 0; i < qj.size(); ++i) qj[i] -= r * qk[i];
      }
    }
    const double nrm = norm2<double>(qj);
    rdiag[j] = nrm;
    HSVD_ASSERT(nrm > 1e-12, "rank-deficient matrix in gram_schmidt_q");
    for (double& v : qj) v /= nrm;
  }
  return q;
}

}  // namespace

MatrixD random_orthogonal(std::size_t n, Rng& rng) {
  MatrixD g = random_gaussian(n, n, rng);
  std::vector<double> rdiag;
  MatrixD q = gram_schmidt_q(g, rdiag);
  // Sign correction: multiply each column by sign of the corresponding R
  // diagonal entry of the *Gaussian* factorization. With MGS rdiag is
  // always positive, so instead randomize signs directly to avoid bias.
  for (std::size_t j = 0; j < n; ++j) {
    if (rng.uniform() < 0.5) scale_col(q, j, -1.0);
  }
  return q;
}

MatrixD matrix_with_spectrum(std::size_t rows, std::size_t cols,
                             const std::vector<double>& sigma, Rng& rng) {
  const std::size_t k = std::min(rows, cols);
  HSVD_REQUIRE(sigma.size() <= k, "spectrum longer than min(rows, cols)");
  MatrixD u = random_orthogonal(rows, rng);
  MatrixD v = random_orthogonal(cols, rng);
  // A = U(:, :k) * diag(sigma padded with 0) * V(:, :k)^T
  MatrixD a(rows, cols);
  for (std::size_t t = 0; t < sigma.size(); ++t) {
    const double s = sigma[t];
    auto ut = u.col(t);
    auto vt = v.col(t);
    for (std::size_t j = 0; j < cols; ++j) {
      const double svj = s * vt[j];
      auto aj = a.col(j);
      for (std::size_t i = 0; i < rows; ++i) aj[i] += ut[i] * svj;
    }
  }
  return a;
}

std::vector<double> geometric_spectrum(std::size_t count, double condition) {
  HSVD_REQUIRE(count >= 1, "empty spectrum");
  HSVD_REQUIRE(condition >= 1.0, "condition number must be >= 1");
  std::vector<double> s(count);
  if (count == 1) {
    s[0] = 1.0;
    return s;
  }
  const double ratio = std::pow(1.0 / condition,
                                1.0 / static_cast<double>(count - 1));
  double v = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    s[i] = v;
    v *= ratio;
  }
  return s;
}

}  // namespace hsvd::linalg
