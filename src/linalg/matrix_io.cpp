#include "linalg/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/format.hpp"

namespace hsvd::linalg {

namespace {

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(cat("matrix I/O: ", what, " (", path, ")"));
}

}  // namespace

void save_matrix_market(const MatrixF& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) io_fail("cannot open for writing", path);
  out << "%%MatrixMarket matrix array real general\n";
  out << m.rows() << " " << m.cols() << "\n";
  out.precision(9);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) out << m(r, c) << "\n";
  }
  if (!out) io_fail("write failed", path);
}

MatrixF load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_fail("cannot open for reading", path);
  std::string line;
  if (!std::getline(in, line)) io_fail("empty file", path);
  if (line.rfind("%%MatrixMarket", 0) != 0) io_fail("missing header", path);
  if (line.find("array") == std::string::npos ||
      line.find("real") == std::string::npos) {
    io_fail("only 'array real' MatrixMarket files are supported", path);
  }
  // Skip comment lines.
  do {
    if (!std::getline(in, line)) io_fail("missing size line", path);
  } while (!line.empty() && line[0] == '%');
  std::istringstream dims(line);
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(dims >> rows >> cols) || rows == 0 || cols == 0) {
    io_fail("bad dimensions", path);
  }
  MatrixF m(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      double v;
      if (!(in >> v)) io_fail("truncated body", path);
      m(r, c) = static_cast<float>(v);
    }
  }
  return m;
}

void save_binary(const MatrixF& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail("cannot open for writing", path);
  const char magic[4] = {'H', 'S', 'V', 'D'};
  const std::uint64_t rows = m.rows();
  const std::uint64_t cols = m.cols();
  out.write(magic, 4);
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.data().size() * sizeof(float)));
  if (!out) io_fail("write failed", path);
}

MatrixF load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail("cannot open for reading", path);
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || std::memcmp(magic, "HSVD", 4) != 0) io_fail("bad magic", path);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || rows == 0 || cols == 0 || rows > (1u << 24) || cols > (1u << 24)) {
    io_fail("bad dimensions", path);
  }
  MatrixF m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.data().size() * sizeof(float)));
  if (!in) io_fail("truncated body", path);
  return m;
}

}  // namespace hsvd::linalg
