// Utilities on top of an SVD: truncation, low-rank reconstruction, and
// approximation-quality metrics (used by the compression/denoising
// examples and their tests).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

// Rank-r reconstruction sum_{t<r} sigma_t u_t v_t^T. Requires descending
// sigma and matching factor shapes; r is clamped to sigma.size().
MatrixF low_rank_approx(const MatrixF& u, const std::vector<float>& sigma,
                        const MatrixF& v, std::size_t rank);

// Energy captured by the leading r singular values:
// sum_{t<r} sigma_t^2 / sum_t sigma_t^2 (1.0 for full rank).
double captured_energy(const std::vector<float>& sigma, std::size_t rank);

// Smallest rank whose captured energy reaches `fraction` (0 < f <= 1).
std::size_t rank_for_energy(const std::vector<float>& sigma, double fraction);

// Peak signal-to-noise ratio in dB between a reference and an
// approximation, with the reference's value range as the peak.
double psnr_db(const MatrixF& reference, const MatrixF& approx);

}  // namespace hsvd::linalg
