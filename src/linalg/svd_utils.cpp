#include "linalg/svd_utils.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hsvd::linalg {

MatrixF low_rank_approx(const MatrixF& u, const std::vector<float>& sigma,
                        const MatrixF& v, std::size_t rank) {
  HSVD_REQUIRE(sigma.size() <= u.cols() && sigma.size() <= v.cols(),
               "spectrum longer than factors");
  rank = std::min(rank, sigma.size());
  MatrixF out(u.rows(), v.rows());
  for (std::size_t t = 0; t < rank; ++t) {
    const float s = sigma[t];
    auto ut = u.col(t);
    auto vt = v.col(t);
    for (std::size_t j = 0; j < v.rows(); ++j) {
      const float svj = s * vt[j];
      auto oj = out.col(j);
      for (std::size_t i = 0; i < u.rows(); ++i) oj[i] += ut[i] * svj;
    }
  }
  return out;
}

double captured_energy(const std::vector<float>& sigma, std::size_t rank) {
  HSVD_REQUIRE(!sigma.empty(), "empty spectrum");
  rank = std::min(rank, sigma.size());
  double head = 0.0;
  double total = 0.0;
  for (std::size_t t = 0; t < sigma.size(); ++t) {
    const double s2 = static_cast<double>(sigma[t]) * sigma[t];
    total += s2;
    if (t < rank) head += s2;
  }
  if (total == 0.0) return 1.0;  // zero matrix: any rank captures it
  return head / total;
}

std::size_t rank_for_energy(const std::vector<float>& sigma, double fraction) {
  HSVD_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "energy fraction must be in (0, 1]");
  for (std::size_t r = 1; r <= sigma.size(); ++r) {
    if (captured_energy(sigma, r) >= fraction) return r;
  }
  return sigma.size();
}

double psnr_db(const MatrixF& reference, const MatrixF& approx) {
  HSVD_REQUIRE(reference.rows() == approx.rows() &&
                   reference.cols() == approx.cols(),
               "psnr shapes must match");
  HSVD_REQUIRE(!reference.empty(), "psnr of empty matrix");
  double mse = 0.0;
  float lo = reference.data()[0];
  float hi = lo;
  for (std::size_t i = 0; i < reference.data().size(); ++i) {
    const double d = static_cast<double>(reference.data()[i]) -
                     static_cast<double>(approx.data()[i]);
    mse += d * d;
    lo = std::min(lo, reference.data()[i]);
    hi = std::max(hi, reference.data()[i]);
  }
  mse /= static_cast<double>(reference.data().size());
  const double peak = static_cast<double>(hi) - lo;
  if (mse == 0.0) return 99.0;  // conventional cap for an exact match
  HSVD_REQUIRE(peak > 0.0, "constant reference has no dynamic range");
  return 10.0 * std::log10(peak * peak / mse);
}

}  // namespace hsvd::linalg
