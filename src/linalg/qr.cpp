#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "linalg/ops.hpp"

namespace hsvd::linalg {

QrResult householder_qr(const MatrixD& a) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "householder_qr expects rows >= cols");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  MatrixD work = a;                       // becomes R in its upper triangle
  std::vector<std::vector<double>> vs;    // Householder vectors
  vs.reserve(n);

  for (std::size_t j = 0; j < n; ++j) {
    // Build the reflector for column j below the diagonal.
    std::vector<double> v(m - j);
    double norm = 0.0;
    for (std::size_t i = j; i < m; ++i) {
      v[i - j] = work(i, j);
      norm += v[i - j] * v[i - j];
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      const double alpha = v[0] >= 0.0 ? -norm : norm;
      v[0] -= alpha;
      double vnorm2 = 0.0;
      for (double x : v) vnorm2 += x * x;
      if (vnorm2 > 0.0) {
        // Apply (I - 2 v v^T / v^T v) to the trailing columns.
        for (std::size_t c = j; c < n; ++c) {
          double dotv = 0.0;
          for (std::size_t i = j; i < m; ++i) dotv += v[i - j] * work(i, c);
          const double scale = 2.0 * dotv / vnorm2;
          for (std::size_t i = j; i < m; ++i) work(i, c) -= scale * v[i - j];
        }
      }
    }
    vs.push_back(std::move(v));
  }

  QrResult out;
  out.r = MatrixD(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) out.r(i, j) = work(i, j);

  // Q = H_0 H_1 ... H_{n-1} applied to the first n identity columns.
  out.q = MatrixD(m, n);
  for (std::size_t j = 0; j < n; ++j) out.q(j, j) = 1.0;
  for (std::size_t j = n; j-- > 0;) {
    const auto& v = vs[j];
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 == 0.0) continue;
    for (std::size_t c = 0; c < n; ++c) {
      double dotv = 0.0;
      for (std::size_t i = j; i < m; ++i) dotv += v[i - j] * out.q(i, c);
      const double scale = 2.0 * dotv / vnorm2;
      for (std::size_t i = j; i < m; ++i) out.q(i, c) -= scale * v[i - j];
    }
  }

  // Normalize signs so diag(R) >= 0 (unique factorization).
  for (std::size_t j = 0; j < n; ++j) {
    if (out.r(j, j) < 0.0) {
      for (std::size_t c = j; c < n; ++c) out.r(j, c) = -out.r(j, c);
      scale_col(out.q, j, -1.0);
    }
  }
  return out;
}

}  // namespace hsvd::linalg
