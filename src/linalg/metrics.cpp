#include "linalg/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/ops.hpp"

namespace hsvd::linalg {

double orthogonality_error(const MatrixD& q) {
  const std::size_t n = q.cols();
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double g = dot<double>(q.col(i), q.col(j));
      const double target = (i == j) ? 1.0 : 0.0;
      const double d = g - target;
      err += (i == j) ? d * d : 2.0 * d * d;
    }
  }
  return std::sqrt(err);
}

double reconstruction_error(const MatrixD& a, const MatrixD& u,
                            const std::vector<double>& sigma,
                            const MatrixD& v) {
  HSVD_REQUIRE(u.rows() == a.rows() && v.rows() == a.cols(),
               "factor shapes inconsistent with A");
  HSVD_REQUIRE(sigma.size() <= u.cols() && sigma.size() <= v.cols(),
               "spectrum longer than factors");
  const double denom = frobenius_norm(a);
  HSVD_REQUIRE(denom > 0.0, "reconstruction error of zero matrix");
  double err = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    auto aj = a.col(j);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      double rec = 0.0;
      for (std::size_t t = 0; t < sigma.size(); ++t)
        rec += u(i, t) * sigma[t] * v(j, t);
      const double d = aj[i] - rec;
      err += d * d;
    }
  }
  return std::sqrt(err) / denom;
}

double spectrum_distance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = i < a.size() ? a[i] : 0.0;
    const double y = i < b.size() ? b[i] : 0.0;
    const double scale = std::max({std::fabs(x), std::fabs(y), 1e-12});
    worst = std::max(worst, std::fabs(x - y) / scale);
  }
  return worst;
}

double max_pair_coherence(const MatrixD& b) {
  const std::size_t n = b.cols();
  std::vector<double> nrm(n);
  for (std::size_t j = 0; j < n; ++j) nrm[j] = dot<double>(b.col(j), b.col(j));
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double denom = std::sqrt(nrm[i] * nrm[j]);
      if (denom < 1e-300) continue;  // zero column: orthogonal by convention
      const double g = std::fabs(dot<double>(b.col(i), b.col(j)));
      worst = std::max(worst, g / denom);
    }
  }
  return worst;
}

}  // namespace hsvd::linalg
