#include "linalg/reference_svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.hpp"

namespace hsvd::linalg {

SvdResult reference_svd(const MatrixD& a, const ReferenceSvdOptions& opts) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "reference_svd expects rows >= cols");
  HSVD_REQUIRE(a.cols() >= 1, "empty matrix");
  const std::size_t n = a.cols();

  MatrixD b = a;                       // becomes B = A V
  MatrixD v = MatrixD::identity(n);    // accumulates the rotations

  int sweep = 0;
  for (; sweep < opts.max_sweeps; ++sweep) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        auto bi = b.col(i);
        auto bj = b.col(j);
        const double aij = dot<double>(bi, bj);
        const double aii = dot<double>(bi, bi);
        const double ajj = dot<double>(bj, bj);
        const double denom = std::sqrt(aii * ajj);
        if (denom < 1e-300) continue;
        const double coherence = std::fabs(aij) / denom;
        worst = std::max(worst, coherence);
        if (coherence < opts.tolerance) continue;
        // Two-sided-safe rotation computation (eqs. (4)-(5)).
        const double tau = (ajj - aii) / (2.0 * aij);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        apply_rotation<double>(bi, bj, c, s);
        apply_rotation<double>(v.col(i), v.col(j), c, s);
      }
    }
    if (worst < opts.tolerance) break;
  }

  // Normalization (eq. (7)), then sort by descending singular value.
  std::vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) sigma[j] = norm2<double>(b.col(j));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.sweeps = sweep;
  out.sigma.resize(n);
  out.u = MatrixD(a.rows(), n);
  out.v = MatrixD(n, n);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t src = order[t];
    out.sigma[t] = sigma[src];
    auto bcol = b.col(src);
    auto ucol = out.u.col(t);
    const double inv = sigma[src] > 1e-300 ? 1.0 / sigma[src] : 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) ucol[i] = bcol[i] * inv;
    auto vsrc = v.col(src);
    auto vdst = out.v.col(t);
    for (std::size_t i = 0; i < n; ++i) vdst[i] = vsrc[i];
  }
  return out;
}

}  // namespace hsvd::linalg
