// Matrix file I/O.
//
// Two formats:
//  - MatrixMarket "array real general" text (interoperable with SciPy,
//    Julia, MATLAB): human-readable, column-major body.
//  - A raw little-endian binary ("HSVD" magic, dims, float payload) for
//    large matrices fed to the CLI tool.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

// MatrixMarket array format. Throws std::runtime_error on I/O failure
// or malformed content.
void save_matrix_market(const MatrixF& m, const std::string& path);
MatrixF load_matrix_market(const std::string& path);

// Raw binary format: "HSVD" magic, uint64 rows, uint64 cols, fp32 body
// (column-major).
void save_binary(const MatrixF& m, const std::string& path);
MatrixF load_binary(const std::string& path);

}  // namespace hsvd::linalg
