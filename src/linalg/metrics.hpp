// Accuracy metrics for judging an SVD result against its input, used by
// every functional test (library, accelerator, examples).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

// || Q^T Q - I ||_F  -- 0 for a perfectly orthonormal column set.
double orthogonality_error(const MatrixD& q);

// || A - U diag(sigma) V^T ||_F / || A ||_F.
double reconstruction_error(const MatrixD& a, const MatrixD& u,
                            const std::vector<double>& sigma, const MatrixD& v);

// Max relative difference between two descending spectra (pads with zero).
double spectrum_distance(const std::vector<double>& a,
                         const std::vector<double>& b);

// Off-diagonal mass of B^T B relative to column norms: the convergence
// measure of eq. (6), maximized over all column pairs.
double max_pair_coherence(const MatrixD& b);

}  // namespace hsvd::linalg
