// Test-matrix generators.
//
// The paper evaluates on dense random matrices (128..1024 square). For
// tests we additionally need matrices with a *known* spectrum, which we
// build as U * diag(sigma) * V^T from random orthogonal factors.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::linalg {

// I.I.D. standard-normal entries.
MatrixD random_gaussian(std::size_t rows, std::size_t cols, Rng& rng);

// Uniform entries in [lo, hi).
MatrixD random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                       double lo = -1.0, double hi = 1.0);

// A random orthogonal matrix (Haar-ish: QR of a Gaussian matrix with sign
// correction so the distribution is not biased by the QR convention).
MatrixD random_orthogonal(std::size_t n, Rng& rng);

// rows x cols matrix whose singular values are exactly `sigma`
// (sigma.size() <= min(rows, cols); remaining singular values are zero).
MatrixD matrix_with_spectrum(std::size_t rows, std::size_t cols,
                             const std::vector<double>& sigma, Rng& rng);

// Geometrically-spaced spectrum from 1 down to 1/condition.
std::vector<double> geometric_spectrum(std::size_t count, double condition);

}  // namespace hsvd::linalg
