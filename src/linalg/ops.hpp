// Basic dense operations on Matrix<T>: products, transpose, norms, and the
// vector kernels the Jacobi rotations are built from.
//
// The column kernels (dot, dot3, apply_rotation) are the host's hot path:
// they mirror the paper's 8-lane fp32 vector units (Table IV) with 8
// independent accumulator lanes. The lane split changes the summation
// tree relative to a strict left-to-right reduction, so values can
// differ from a scalar loop in the last ulp; all consumers tolerate that
// (and tests pin it down).
//
// The fp32 instantiations route through hsvd::simd::active() -- genuine
// AVX2 intrinsics when the build and the CPU support them, the portable
// scalar 8-lane model otherwise. Every dispatch target is bit-identical
// to the scalar model by contract (common/simd.hpp), so results never
// depend on which path ran. Other element types (double, complex) keep
// the generic 8-lane template below.
#pragma once

#include <cmath>
#include <span>
#include <type_traits>

#include "common/simd.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::linalg {

inline constexpr std::size_t kDotLanes = 8;

template <typename T>
T dot(std::span<const T> a, std::span<const T> b) {
  HSVD_REQUIRE(a.size() == b.size(), "dot: length mismatch");
  const std::size_t n = a.size();
  if constexpr (std::is_same_v<T, float>) {
    return simd::active().dot(a.data(), b.data(), n);
  }
  const T* pa = a.data();
  const T* pb = b.data();
  T lane[kDotLanes] = {};
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (std::size_t l = 0; l < kDotLanes; ++l) {
      lane[l] += pa[i + l] * pb[i + l];
    }
  }
  T s{};
  const T* qa = pa + i;
  const T* qb = pb + i;
  for (const T* end = pa + n; qa != end; ++qa, ++qb) s += *qa * *qb;
  // Pairwise lane reduction: (0+1)+(2+3) ... matches the AIE kernel's
  // adder tree and keeps the result independent of vector width.
  for (std::size_t step = 1; step < kDotLanes; step *= 2) {
    for (std::size_t l = 0; l + step < kDotLanes; l += 2 * step) {
      lane[l] += lane[l + step];
    }
  }
  return lane[0] + s;
}

// The three Gram entries of a column pair from one fused traversal:
//   aii = x.x, ajj = y.y, aij = x.y.
// One pass instead of three is what cuts the Hestenes per-pair memory
// traffic; the rotation closed form (eqs. (3)-(5)) needs all three.
template <typename T>
struct DotTriple {
  T aii{};
  T ajj{};
  T aij{};
};

template <typename T>
DotTriple<T> dot3(std::span<const T> x, std::span<const T> y) {
  HSVD_REQUIRE(x.size() == y.size(), "dot3: length mismatch");
  const std::size_t n = x.size();
  if constexpr (std::is_same_v<T, float>) {
    const simd::Dot3f g = simd::active().dot3(x.data(), y.data(), n);
    return DotTriple<T>{g.aii, g.ajj, g.aij};
  }
  T lxx[kDotLanes] = {};
  T lyy[kDotLanes] = {};
  T lxy[kDotLanes] = {};
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (std::size_t l = 0; l < kDotLanes; ++l) {
      const T xi = x[i + l];
      const T yi = y[i + l];
      lxx[l] += xi * xi;
      lyy[l] += yi * yi;
      lxy[l] += xi * yi;
    }
  }
  T sxx{}, syy{}, sxy{};
  for (; i < n; ++i) {
    const T xi = x[i];
    const T yi = y[i];
    sxx += xi * xi;
    syy += yi * yi;
    sxy += xi * yi;
  }
  for (std::size_t step = 1; step < kDotLanes; step *= 2) {
    for (std::size_t l = 0; l + step < kDotLanes; l += 2 * step) {
      lxx[l] += lxx[l + step];
      lyy[l] += lyy[l + step];
      lxy[l] += lxy[l + step];
    }
  }
  DotTriple<T> out;
  out.aii = lxx[0] + sxx;
  out.ajj = lyy[0] + syy;
  out.aij = lxy[0] + sxy;
  return out;
}

template <typename T>
T norm2(std::span<const T> a) {
  return std::sqrt(dot(a, a));
}

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  HSVD_REQUIRE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T bkj = b(k, j);
      if (bkj == T{}) continue;
      auto ak = a.col(k);
      auto cj = c.col(j);
      for (std::size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
  return c;
}

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

template <typename T>
T frobenius_norm(const Matrix<T>& a) {
  T s{};
  for (T v : a.data()) s += v * v;
  return std::sqrt(s);
}

// Scales column c of m in place.
template <typename T>
void scale_col(Matrix<T>& m, std::size_t c, T factor) {
  for (T& v : m.col(c)) v *= factor;
}

// Applies a plane rotation to two equal-length columns in place:
//   [x, y] <- [c*x - s*y, s*x + c*y].
// This is the sign convention under which the closed form of the paper's
// eqs. (4)-(5) orthogonalizes the pair (t solves t^2 + 2*tau*t - 1 = 0).
// Fused: both columns are read and written in one 8-lane pass (each
// element is touched exactly once), instead of a rotate-x pass followed
// by a rotate-y pass. Per-element arithmetic is unchanged, so this is
// bit-identical to the scalar reference loop.
template <typename T>
void apply_rotation(std::span<T> x, std::span<T> y, T c, T s) {
  HSVD_REQUIRE(x.size() == y.size(), "rotation: length mismatch");
  const std::size_t n = x.size();
  if constexpr (std::is_same_v<T, float>) {
    simd::active().apply_rotation(x.data(), y.data(), n, c, s);
    return;
  }
  std::size_t i = 0;
  for (; i + kDotLanes <= n; i += kDotLanes) {
    for (std::size_t l = 0; l < kDotLanes; ++l) {
      const T xi = x[i + l];
      const T yi = y[i + l];
      x[i + l] = c * xi - s * yi;
      y[i + l] = s * xi + c * yi;
    }
  }
  for (; i < n; ++i) {
    const T xi = x[i];
    const T yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

// Closed-form update of the squared column norms after apply_rotation
// with parameters (c, s): given the pre-rotation Gram entries, the new
// diagonal entries are
//   ||x'||^2 = c^2 aii - 2cs aij + s^2 ajj
//   ||y'||^2 = s^2 aii + 2cs aij + c^2 ajj.
// This is what lets the Hestenes sweep maintain per-column norms
// incrementally (one O(rows) dot per pair for aij) instead of re-deriving
// aii/ajj by two more dots at every visit.
template <typename T>
void rotated_norms(T aii, T ajj, T aij, T c, T s, T& aii_out, T& ajj_out) {
  const T cc = c * c;
  const T ss = s * s;
  const T cs2 = T{2} * c * s * aij;
  aii_out = cc * aii - cs2 + ss * ajj;
  ajj_out = ss * aii + cs2 + cc * ajj;
}

}  // namespace hsvd::linalg
