// Basic dense operations on Matrix<T>: products, transpose, norms, and the
// vector kernels the Jacobi rotations are built from. These are reference
// implementations -- clarity over speed; the throughput-critical path in
// the accelerator has its own kernels.
#pragma once

#include <cmath>
#include <span>

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

template <typename T>
T dot(std::span<const T> a, std::span<const T> b) {
  HSVD_REQUIRE(a.size() == b.size(), "dot: length mismatch");
  T s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

template <typename T>
T norm2(std::span<const T> a) {
  return std::sqrt(dot(a, a));
}

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  HSVD_REQUIRE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T bkj = b(k, j);
      if (bkj == T{}) continue;
      auto ak = a.col(k);
      auto cj = c.col(j);
      for (std::size_t i = 0; i < a.rows(); ++i) cj[i] += ak[i] * bkj;
    }
  }
  return c;
}

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

template <typename T>
T frobenius_norm(const Matrix<T>& a) {
  T s{};
  for (T v : a.data()) s += v * v;
  return std::sqrt(s);
}

// Scales column c of m in place.
template <typename T>
void scale_col(Matrix<T>& m, std::size_t c, T factor) {
  for (T& v : m.col(c)) v *= factor;
}

// Applies a plane rotation to two equal-length columns in place:
//   [x, y] <- [c*x - s*y, s*x + c*y].
// This is the sign convention under which the closed form of the paper's
// eqs. (4)-(5) orthogonalizes the pair (t solves t^2 + 2*tau*t - 1 = 0).
template <typename T>
void apply_rotation(std::span<T> x, std::span<T> y, T c, T s) {
  HSVD_REQUIRE(x.size() == y.size(), "rotation: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const T xi = x[i];
    const T yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

}  // namespace hsvd::linalg
