// Householder QR factorization (double precision).
//
// Used by the generators to build genuinely orthogonal factors and
// available standalone: A (m x n, m >= n) = Q (m x n, orthonormal
// columns) * R (n x n, upper triangular, nonnegative diagonal).
#pragma once

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

struct QrResult {
  MatrixD q;  // m x n, orthonormal columns
  MatrixD r;  // n x n, upper triangular, diag >= 0
};

QrResult householder_qr(const MatrixD& a);

}  // namespace hsvd::linalg
