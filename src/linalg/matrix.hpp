// Dense column-major matrix.
//
// Hestenes-Jacobi SVD is a column-pair algorithm: every kernel in this
// library reads and writes whole columns. Column-major storage makes a
// column a contiguous std::span, which is what the simulated AIE kernels
// (and the real ones in the paper) operate on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace hsvd::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    HSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    HSVD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[c * rows_ + r];
  }

  std::span<T> col(std::size_t c) {
    HSVD_ASSERT(c < cols_, "column index out of range");
    return {data_.data() + c * rows_, rows_};
  }
  std::span<const T> col(std::size_t c) const {
    HSVD_ASSERT(c < cols_, "column index out of range");
    return {data_.data() + c * rows_, rows_};
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  // Copies columns [first, first+count) into a new rows() x count matrix.
  Matrix slice_cols(std::size_t first, std::size_t count) const {
    HSVD_REQUIRE(first + count <= cols_, "column slice out of range");
    Matrix out(rows_, count);
    for (std::size_t c = 0; c < count; ++c) {
      auto src = col(first + c);
      auto dst = out.col(c);
      for (std::size_t r = 0; r < rows_; ++r) dst[r] = src[r];
    }
    return out;
  }

  // Writes `block` over columns [first, first+block.cols()).
  void assign_cols(std::size_t first, const Matrix& block) {
    HSVD_REQUIRE(block.rows() == rows_, "row mismatch in assign_cols");
    HSVD_REQUIRE(first + block.cols() <= cols_, "column range out of bounds");
    for (std::size_t c = 0; c < block.cols(); ++c) {
      auto src = block.col(c);
      auto dst = col(first + c);
      for (std::size_t r = 0; r < rows_; ++r) dst[r] = src[r];
    }
  }

  template <typename U>
  Matrix<U> cast() const {
    Matrix<U> out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
      out.data()[i] = static_cast<U>(data_[i]);
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

}  // namespace hsvd::linalg
