// Double-precision reference SVD (serial one-sided Jacobi with cyclic
// sweeps). Ground truth for every other SVD path in the library.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hsvd::linalg {

struct SvdResult {
  MatrixD u;                  // rows x min(rows, cols), orthonormal columns
  std::vector<double> sigma;  // descending, >= 0
  MatrixD v;                  // cols x min(rows, cols), orthonormal columns
  int sweeps = 0;             // cyclic sweeps until convergence
};

struct ReferenceSvdOptions {
  double tolerance = 1e-12;  // eq. (6) threshold on pair coherence
  int max_sweeps = 60;
};

// Computes A = U diag(sigma) V^T. Requires rows >= cols (the accelerator
// paths have the same convention; callers transpose wide inputs).
SvdResult reference_svd(const MatrixD& a, const ReferenceSvdOptions& opts = {});

}  // namespace hsvd::linalg
