// AIE kernel timing model.
//
// The paper obtains per-kernel execution times from the AIE cycle
// simulator "in advance" (section IV-B) and feeds them to the analytic
// performance model. We play the same role with a vector-lane model of
// the AIE1 core: 8 fp32 MAC lanes at 1.25 GHz, plus fixed per-invocation
// overhead (kernel entry, lock acquire/release, scalar rotation math).
// Both the cycle-approximate simulator and the analytic model consume
// THIS model, mirroring the paper's methodology; the constants below are
// calibrated so absolute times land in the range of the paper's Table IV.
#pragma once

#include <algorithm>
#include <cstddef>

#include "versal/resources.hpp"

namespace hsvd::perf {

struct AieKernelModel {
  double clock_hz = 1.25e9;
  int vector_lanes = 8;  // fp32 MACs per cycle

  // Orthogonalization kernel: one fused pass for the three Gram dot
  // products (3 MACs/element) + one update pass (4 mul + 2 add per
  // element over two columns), plus scalar rotation math and lock/entry
  // overhead per invocation.
  double gram_passes = 3.0;
  double update_passes = 6.0;
  double orth_overhead_cycles = 450.0;

  // Normalization kernel per column: norm pass (1 MAC/elem) + scale pass.
  double norm_passes = 2.0;
  double norm_overhead_cycles = 320.0;

  double orth_seconds(std::size_t column_rows) const {
    const double mac_cycles =
        (gram_passes + update_passes) * static_cast<double>(column_rows) /
        vector_lanes;
    return (mac_cycles + orth_overhead_cycles) / clock_hz;
  }

  double norm_seconds(std::size_t column_rows) const {
    const double mac_cycles =
        norm_passes * static_cast<double>(column_rows) / vector_lanes;
    return (mac_cycles + norm_overhead_cycles) / clock_hz;
  }
};

// PL-side interface model: each PLIO moves `plio_bits` per PL cycle
// (eq. (8): t = databits / (bandwidth * frequency)), capped by the
// physical AIE-side bandwidth of section II-B.
struct PlioModel {
  double plio_bits = 128.0;  // effective payload bits per PL cycle

  double tx_seconds(double bytes, double pl_frequency_hz,
                    const versal::DeviceResources& dev) const {
    const double rate =
        std::min(plio_bits / 8.0 * pl_frequency_hz, dev.plio_pl_to_aie_bytes_per_s);
    return bytes / rate;
  }
  double rx_seconds(double bytes, double pl_frequency_hz,
                    const versal::DeviceResources& dev) const {
    const double rate =
        std::min(plio_bits / 8.0 * pl_frequency_hz, dev.plio_aie_to_pl_bytes_per_s);
    return bytes / rate;
  }
};

}  // namespace hsvd::perf
