#include "perfmodel/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "jacobi/block.hpp"

namespace hsvd::perf {

LatencyBreakdown PerformanceModel::evaluate(
    const accel::HeteroSvdConfig& config, int batch) const {
  config.validate();
  HSVD_REQUIRE(batch >= 1, "batch must be positive");

  const auto& dev = config.device;
  const double m = static_cast<double>(config.rows);
  const int k = config.p_eng;
  const int p = config.blocks();
  const int layers = config.orth_layers();

  LatencyBreakdown b;
  const double col_bytes = m * sizeof(float);
  const double blk_bytes = col_bytes * k;
  b.t_tx_col = plio_.tx_seconds(col_bytes, config.pl_frequency_hz, dev);
  b.t_tx_blk = plio_.tx_seconds(blk_bytes, config.pl_frequency_hz, dev);
  b.t_rx_blk = plio_.rx_seconds(blk_bytes, config.pl_frequency_hz, dev);
  b.t_orth = kernels_.orth_seconds(config.rows);
  b.t_norm_kernel = kernels_.norm_seconds(config.rows);

  // DMA cost of one column (setup + transfer) and the per-pair occupancy
  // of the busiest tile DMA engine: at a band crossing each crossing
  // tile pushes both of its columns through its own DMA (two serialized
  // transfers); otherwise the shifting ring leaves one residual DMA.
  const double t_dma_col =
      300.0 / dev.aie_clock_hz + col_bytes / (4.0 * dev.aie_clock_hz);
  const int rows_per_band = dev.aie_rows - 2;
  const int band_crossings = (layers + rows_per_band - 1) / rows_per_band - 1;
  const double t_dma_stage = (band_crossings > 0 ? 2.0 : 1.0) * t_dma_col;

  // eq. (9): if a layer's kernels (or its DMA engines) take longer than
  // feeding all P_eng engines, transmission stalls behind the AIEs.
  const double t_array_stage = std::max(b.t_orth, t_dma_stage);
  b.t_aie_wait =
      std::max(t_array_stage - static_cast<double>(k) * b.t_tx_col, 0.0);
  // eq. (10): the round-robin reuse dependency.
  b.t_algo = b.t_tx_blk + b.t_aie_wait;

  // One block pair's latency through the array: Tx, `layers` kernel
  // stages, DMA on the critical path, Rx. Each transition hides its
  // neighbour moves; the shifting ring's residual DMA adds one column
  // DMA per transition, and a band crossing (placement section III-C)
  // funnels both of a tile's columns through its DMA engine (two
  // serialized transfers).
  const int normal_transitions = layers - 1 - band_crossings;
  b.t_pipeline = b.t_tx_blk + layers * b.t_orth +
                 normal_transitions * t_dma_col +
                 band_crossings * 2.0 * t_dma_col + b.t_rx_blk;

  // One block round: q = p/2 pairs stream through the two Tx channels.
  // Each pair occupies its channel for t_tx_blk (+ AIE backpressure).
  const auto rounds = jacobi::block_pair_rounds(p);
  const double q = static_cast<double>(rounds.front().size());
  const double round_stream = q * (b.t_tx_blk + b.t_aie_wait);
  // eq. (11): if the round streams out faster than one pair's pipeline
  // latency, the next round waits on block reuse (data-wait).
  b.t_datawait = std::max(b.t_pipeline + b.t_algo - round_stream, 0.0);
  b.t_round = round_stream + b.t_datawait;

  // eq. (13): all block rounds plus the final drain.
  const double block_round_count = static_cast<double>(rounds.size());
  b.t_iter = block_round_count * b.t_round + b.t_pipeline;

  // eq. (12): initial staging of the p blocks from DDR.
  b.t_ddr = p * (blk_bytes / dev.ddr_bytes_per_s + dev.ddr_latency_s);

  // Normalization stage: blocks stream over one Tx PLIO, k norm kernels
  // run in parallel, results return over one Rx PLIO.
  b.t_norm_stage = p * b.t_tx_blk + b.t_norm_kernel + b.t_rx_blk;

  // HLS loop-switching overhead: one fixed stall per block-pair launch
  // that is not hidden by channel backpressure (calibrated constant).
  const double hls_per_launch = 64.0 / config.pl_frequency_hz;
  b.t_hls = config.iterations * block_round_count * hls_per_launch;

  // eq. (14). The DDR port is shared by all P_task slots, so within a
  // wave the last task's staging starts after the earlier tasks': the
  // wave makespan carries (P_task - 1) extra staging slots.
  b.t_task = b.t_ddr + config.iterations * b.t_iter + b.t_norm_stage + b.t_hls;
  const double waves =
      std::ceil(static_cast<double>(batch) / config.p_task);
  // Slots sharing a NoC DDRMC port serialize their staging.
  const double slots_per_port =
      std::ceil(static_cast<double>(config.p_task) / dev.ddr_ports);
  const double t_wave = b.t_task + (slots_per_port - 1) * b.t_ddr;
  b.t_sys = batch == 1 ? b.t_task : waves * t_wave;
  return b;
}

}  // namespace hsvd::perf
