// Resource usage model (paper Table I second-order parameters and the
// PL-side memory estimation used by the DSE constraints, eq. (16)).
//
// AIE counts come from the placement engine (single source of truth);
// this module adds the PL-side estimates: URAM for the double-buffered
// matrix storage of each task (split across the four orth PLIO lanes),
// BRAM for the sender/receiver FIFOs and convergence bookkeeping, and
// the near-constant LUT footprint of the PL data-movement logic.
#pragma once

#include <cstdint>

#include "accel/config.hpp"
#include "accel/placement.hpp"

namespace hsvd::perf {

struct ResourceUsage {
  int aie_orth = 0;
  int aie_norm = 0;
  int aie_mem = 0;
  int plio = 0;
  int uram = 0;
  int bram = 0;
  std::uint64_t lut = 0;

  int aie_total() const { return aie_orth + aie_norm + aie_mem; }

  bool fits(const versal::DeviceResources& dev) const {
    return aie_total() <= dev.total_aie && plio <= dev.total_plio &&
           uram <= dev.total_uram && bram <= dev.total_bram &&
           lut <= dev.lut_total;
  }
};

// URAM blocks needed by one task: double-buffered m x n fp32 matrix,
// partitioned over the four orth PLIO lanes (each lane needs its own
// URAM group, so each lane's share rounds up separately).
int uram_per_task(std::size_t rows, std::size_t cols,
                  const versal::DeviceResources& dev);

// BRAM blocks for one task's FIFOs: sender/receiver FIFOs sized to one
// block (m x P_eng fp32) each, plus fixed control buffers.
int bram_per_task(std::size_t rows, int p_eng,
                  const versal::DeviceResources& dev);

// Full usage for a placed configuration.
ResourceUsage estimate_resources(const accel::HeteroSvdConfig& config,
                                 const accel::PlacementResult& placement);

}  // namespace hsvd::perf
