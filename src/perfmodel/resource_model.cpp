#include "perfmodel/resource_model.hpp"

namespace hsvd::perf {

int uram_per_task(std::size_t rows, std::size_t cols,
                  const versal::DeviceResources& dev) {
  const std::uint64_t matrix_bytes =
      static_cast<std::uint64_t>(rows) * cols * sizeof(float);
  // Double buffering (ping-pong between iterations) over 4 PLIO lanes.
  const std::uint64_t per_lane = 2 * matrix_bytes / 4;
  const std::uint64_t blocks_per_lane =
      (per_lane + dev.uram_bytes - 1) / dev.uram_bytes;
  return static_cast<int>(4 * blocks_per_lane);
}

int bram_per_task(std::size_t rows, int p_eng,
                  const versal::DeviceResources& dev) {
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(p_eng) *
      sizeof(float);
  // Two sender FIFOs + two receiver FIFOs, one block deep each, plus two
  // control/convergence buffers.
  const std::uint64_t fifo_blocks =
      4 * ((block_bytes + dev.bram_bytes - 1) / dev.bram_bytes);
  return static_cast<int>(fifo_blocks + 2);
}

ResourceUsage estimate_resources(const accel::HeteroSvdConfig& config,
                                 const accel::PlacementResult& placement) {
  ResourceUsage usage;
  usage.aie_orth = placement.num_orth;
  usage.aie_norm = placement.num_norm;
  usage.aie_mem = placement.num_mem;
  usage.plio = placement.num_plio;
  usage.uram =
      config.p_task * uram_per_task(config.rows, config.cols, config.device);
  usage.bram =
      config.p_task * bram_per_task(config.rows, config.p_eng, config.device);
  // PL logic is dominated by the fixed data-arrangement/sender/receiver
  // state machines; it grows mildly with the matrix dimension (wider
  // counters/addresses). Calibrated to Table II's 15.1K-15.7K LUT range.
  usage.lut = 15000 + static_cast<std::uint64_t>(config.cols) * 7 / 10;
  return usage;
}

}  // namespace hsvd::perf
