// Analytic performance model (paper section IV-B, eqs. (8)-(14)).
//
// Estimates the latency of a HeteroSVD configuration without running the
// cycle-approximate simulator, in microseconds-fast time. The paper uses
// this model (validated against the board, Tables IV/V) inside the DSE
// loop; we validate ours against the simulator the same way.
//
// Symbol conventions (the paper overloads t_Tx; we split it):
//   t_tx_col  -- one column PL->AIE over one PLIO (eq. (8))
//   t_tx_blk  -- one block = P_eng columns serial on its PLIO
//   t_orth    -- orth kernel time (AIE simulator stand-in)
//   t_aie_wait-- eq. (9): kernels outpaced by transmission
//   t_algo    -- eq. (10): Tx->Rx data dependency of round-robin
//   t_datawait-- eq. (11): pipeline drain when a round is too short to
//                hide the block-pair latency
//   t_ddr     -- eq. (12): initial staging of all blocks
//   t_iter    -- eq. (13)
//   t_task / t_sys -- eq. (14)
#pragma once

#include "accel/config.hpp"
#include "perfmodel/aie_timing.hpp"

namespace hsvd::perf {

struct LatencyBreakdown {
  double t_tx_col = 0;
  double t_tx_blk = 0;
  double t_rx_blk = 0;
  double t_orth = 0;
  double t_norm_kernel = 0;
  double t_aie_wait = 0;
  double t_algo = 0;
  double t_datawait = 0;
  double t_pipeline = 0;   // one block pair through the layer array
  double t_round = 0;      // one block round (p/2 concurrent pairs)
  double t_iter = 0;       // eq. (13)
  double t_ddr = 0;        // eq. (12)
  double t_norm_stage = 0;
  double t_hls = 0;
  double t_task = 0;       // eq. (14), one matrix
  double t_sys = 0;        // eq. (14), whole batch

  double throughput_tasks_per_s(int batch) const {
    return batch / t_sys;
  }
};

class PerformanceModel {
 public:
  PerformanceModel(AieKernelModel kernels = {}, PlioModel plio = {})
      : kernels_(kernels), plio_(plio) {}

  // Latency of one task and of a batch of `batch` tasks under `config`.
  // `config.iterations` is the ITER of eq. (14).
  LatencyBreakdown evaluate(const accel::HeteroSvdConfig& config,
                            int batch = 1) const;

 private:
  AieKernelModel kernels_;
  PlioModel plio_;
};

}  // namespace hsvd::perf
