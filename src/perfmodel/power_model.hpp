// Power model for the HeteroSVD system.
//
// The paper measures board power with the AMD BEAM tool; we model it as
// static power plus per-resource dynamic terms. Constants are calibrated
// to Table VI's measured band (26-45 W across the four design points);
// see EXPERIMENTS.md for the fit residuals. Only the *ordering* of design
// points (more URAM / more AIEs => more power) is load-bearing for the
// reproduced claims (energy-efficiency gains of Table III).
#pragma once

#include "perfmodel/resource_model.hpp"

namespace hsvd::perf {

struct PowerModel {
  double static_watts = 14.0;      // PS + NoC + idle fabric
  double per_aie_watts = 0.025;    // active AIE tile average
  double per_uram_watts = 0.05;    // URAM bank incl. its PL routing
  double pl_clock_watts = 2.0;     // PL clock tree at 208.3 MHz
  double reference_pl_hz = 208.3e6;

  double system_watts(const ResourceUsage& usage, double pl_frequency_hz) const {
    return static_watts + per_aie_watts * usage.aie_total() +
           per_uram_watts * usage.uram +
           pl_clock_watts * (pl_frequency_hz / reference_pl_hz);
  }
};

}  // namespace hsvd::perf
