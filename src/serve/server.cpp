#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace hsvd::serve {

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kNotConverged: return "not-converged";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kExpired: return "expired";
    case ServeStatus::kCircuitOpen: return "circuit-open";
    case ServeStatus::kFailed: return "failed";
  }
  return "unknown";
}

void ServerOptions::validate() const {
  HSVD_REQUIRE(queue_capacity >= 1, "server queue_capacity must be at least 1");
  HSVD_REQUIRE(workers >= 1, "server workers must be at least 1");
  HSVD_REQUIRE(
      std::isfinite(default_deadline_seconds) && default_deadline_seconds >= 0,
      "server default_deadline_seconds must be finite and nonnegative");
  retry.validate();
  breaker.validate();
}

SvdServer::SvdServer(ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &common::MonotonicClock::instance()),
      breaker_(options_.breaker, clock_) {
  options_.validate();
  paused_ = options_.start_paused;
  set_breaker_gauge();
  gauge("serve.queue.depth", 0.0);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SvdServer::~SvdServer() { shutdown(); }

std::future<Response> SvdServer::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const double now_s = clock_->now_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.submitted;
    count("serve.submitted");
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      ++counters_.shed;
      count("serve.shed");
      Response shed;
      shed.status = ServeStatus::kShed;
      shed.message = stopping_ ? "server is shutting down"
                               : "work queue full, request shed";
      promise.set_value(std::move(shed));
      return future;
    }
    Job job;
    job.request = std::move(request);
    job.promise = std::move(promise);
    job.serial = next_serial_++;
    job.admitted_s = now_s;
    const double budget = job.request.deadline_seconds > 0.0
                              ? job.request.deadline_seconds
                              : options_.default_deadline_seconds;
    if (budget > 0.0) job.deadline_abs_s = now_s + budget;
    queue_.push_back(std::move(job));
    ++counters_.admitted;
    count("serve.admitted");
    counters_.queue_depth = queue_.size();
    counters_.peak_queue_depth =
        std::max(counters_.peak_queue_depth, queue_.size());
    gauge("serve.queue.depth", static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

std::future<Response> SvdServer::submit(linalg::MatrixF matrix,
                                        double deadline_seconds) {
  Request request;
  request.matrix = std::move(matrix);
  request.deadline_seconds = deadline_seconds;
  return submit(std::move(request));
}

Response SvdServer::serve(Request request) {
  return submit(std::move(request)).get();
}

void SvdServer::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SvdServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already shut down (or shutting down on another thread); joining
      // below would double-join, so bail once the flag is up.
      return;
    }
    stopping_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void SvdServer::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_) return;  // drained
        continue;               // spurious wake while paused
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      counters_.queue_depth = queue_.size();
      gauge("serve.queue.depth", static_cast<double>(queue_.size()));
    }
    Response response = execute(job);
    note_terminal(response);
    job.promise.set_value(std::move(response));
  }
}

Response SvdServer::execute(Job& job) {
  Response out;
  const double start_s = clock_->now_seconds();
  out.queue_seconds = start_s - job.admitted_s;

  common::CancelToken token(*clock_, job.deadline_abs_s);
  if (token.expired()) {
    out.status = ServeStatus::kExpired;
    out.message = "deadline expired while queued";
    out.service_seconds = clock_->now_seconds() - start_s;
    return out;
  }

  common::BackoffSchedule backoff(options_.retry, job.serial);
  const int max_attempts = options_.retry.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker_.allow()) {
      out.status = ServeStatus::kCircuitOpen;
      out.message = "circuit breaker open, request fast-failed";
      count("serve.breaker.fast_fail");
      break;
    }
    out.attempts = attempt;

    SvdOptions svd_options = options_.svd;
    svd_options.cancel = &token;
    svd_options.clock = clock_;
    svd_options.retry.reset();  // the server owns the retry loop
    if (job.request.fault_injector != nullptr) {
      svd_options.fault_injector = job.request.fault_injector;
    }

    bool transient = false;
    try {
      out.result = hsvd::svd(job.request.matrix, svd_options);
      breaker_.record_success();
      if (out.result.status == SvdStatus::kNotConverged) {
        if (options_.retry.retry_not_converged && attempt < max_attempts &&
            !token.expired()) {
          transient = true;
        } else {
          out.status = ServeStatus::kNotConverged;
          out.message = out.result.message;
          break;
        }
      } else {
        out.status = ServeStatus::kOk;
        out.message.clear();
        break;
      }
    } catch (const hsvd::DeadlineExceeded& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kExpired;
      out.message = e.what();
      break;
    } catch (const hsvd::InputError& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      break;  // deterministic rejection, retrying cannot help
    } catch (const hsvd::FaultDetected& e) {
      breaker_.record_failure();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      if (attempt < max_attempts && !token.expired()) transient = true;
    } catch (const std::exception& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      break;
    }

    if (!transient) break;
    count("serve.retries");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.retries;
    }
    const double delay =
        std::min(backoff.delay_seconds(attempt), token.remaining_seconds());
    if (delay > 0.0) clock_->sleep_for(delay);
    if (token.expired()) {
      out.status = ServeStatus::kExpired;
      out.message = "deadline expired during retry backoff";
      break;
    }
  }

  // Surface breaker trips that happened on this worker's watch.
  const std::uint64_t trips = breaker_.trips();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trips > last_trips_) {
      count("serve.breaker.trips", trips - last_trips_);
      counters_.breaker_trips = trips;
      last_trips_ = trips;
    }
  }
  set_breaker_gauge();

  out.service_seconds = clock_->now_seconds() - start_s;
  return out;
}

void SvdServer::note_terminal(const Response& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (response.status) {
    case ServeStatus::kOk:
      ++counters_.ok;
      count("serve.ok");
      break;
    case ServeStatus::kNotConverged:
      ++counters_.not_converged;
      count("serve.not_converged");
      break;
    case ServeStatus::kExpired:
      ++counters_.expired;
      count("serve.expired");
      break;
    case ServeStatus::kCircuitOpen:
      ++counters_.circuit_open;
      count("serve.circuit_open");
      break;
    case ServeStatus::kFailed:
      ++counters_.failed;
      count("serve.failed");
      break;
    case ServeStatus::kShed:
      break;  // counted at admission
  }
}

void SvdServer::set_breaker_gauge() {
  gauge("serve.breaker.state", static_cast<double>(breaker_.state()));
}

void SvdServer::count(const char* name, std::uint64_t delta) {
  if (options_.observer != nullptr) options_.observer->metrics().add(name, delta);
}

void SvdServer::gauge(const char* name, double value) {
  if (options_.observer != nullptr) {
    options_.observer->metrics().set_gauge(name, value);
  }
}

ServerStats SvdServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = counters_;
  out.queue_depth = queue_.size();
  out.breaker_trips = breaker_.trips();
  out.breaker_state = breaker_.state();
  return out;
}

}  // namespace hsvd::serve
