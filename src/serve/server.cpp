#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "verify/verifier.hpp"

namespace hsvd::serve {

namespace {

// True when the request opted into backend routing (pin, "auto", or an
// SLO); such jobs dispatch solo and carry a route-qualified cache key.
bool routed_request(const Request& request) {
  return !request.backend.empty() || request.slo.has_value();
}

// The routing intent folded into the result-cache key: which backend
// path would serve this request. "" for the classic path keeps legacy
// keys (and pre-router cache behavior) unchanged.
std::string route_intent(const Request& request) {
  if (!routed_request(request)) return "";
  return request.backend + "|" + backend::slo_class(request.slo);
}

// True when the request carries scenario intent (a named scenario or a
// truncation rank); such jobs dispatch solo and carry scenario-
// qualified cache keys.
bool scenario_request(const Request& request) {
  return !request.scenario.empty() || request.top_k > 0;
}

}  // namespace

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kNotConverged: return "not-converged";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kExpired: return "expired";
    case ServeStatus::kCircuitOpen: return "circuit-open";
    case ServeStatus::kFailed: return "failed";
  }
  return "unknown";
}

void ServerOptions::validate() const {
  HSVD_REQUIRE(queue_capacity >= 1, "server queue_capacity must be at least 1");
  HSVD_REQUIRE(workers >= 1, "server workers must be at least 1");
  HSVD_REQUIRE(
      std::isfinite(default_deadline_seconds) && default_deadline_seconds >= 0,
      "server default_deadline_seconds must be finite and nonnegative");
  retry.validate();
  breaker.validate();
  qos.validate();
}

SvdServer::SvdServer(ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &common::MonotonicClock::instance()),
      breaker_(options_.breaker, clock_),
      qos_enabled_(options_.qos.enabled()) {
  options_.validate();
  paused_ = options_.start_paused;
  if (qos_enabled_) {
    const double now_s = clock_->now_seconds();
    std::vector<double> weights;
    tenants_.reserve(options_.qos.tenants.size());
    weights.reserve(options_.qos.tenants.size());
    for (const TenantConfig& tenant : options_.qos.tenants) {
      tenants_.emplace_back(
          tenant,
          common::TokenBucket(tenant.quota_rate, tenant.quota_burst, now_s));
      weights.push_back(tenant.weight);
    }
    drr_.reserve(kPriorityBands);
    for (int band = 0; band < kPriorityBands; ++band) {
      drr_.emplace_back(weights);
    }
    if (options_.qos.cache_enabled) {
      cache_ = std::make_unique<ResultCache>(options_.qos.cache_capacity);
    }
    if (options_.observer != nullptr) {
      auto& metrics = options_.observer->metrics();
      metrics.register_histogram(
          "serve.batch.fill",
          obs::MetricsRegistry::exponential_bounds(1.0, 2.0, 8));
      for (const TenantConfig& tenant : options_.qos.tenants) {
        metrics.register_histogram(
            "serve.tenant." + tenant.name + ".latency_seconds",
            obs::MetricsRegistry::exponential_bounds(1e-5, 2.0, 32));
      }
    }
  }
  running_.resize(static_cast<std::size_t>(options_.workers));
  set_breaker_gauge();
  gauge("serve.queue.depth", 0.0);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

SvdServer::~SvdServer() { shutdown(); }

std::future<Response> SvdServer::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const double now_s = clock_->now_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.submitted;
    count("serve.submitted");

    if (!qos_enabled_) {
      // Single-FIFO admission, bit-identical to the pre-QoS server.
      if (stopping_ || queue_.size() >= options_.queue_capacity) {
        ++counters_.shed;
        count("serve.shed");
        Response shed;
        shed.status = ServeStatus::kShed;
        shed.message = stopping_ ? "server is shutting down"
                                 : "work queue full, request shed";
        promise.set_value(std::move(shed));
        return future;
      }
      Job job;
      job.request = std::move(request);
      job.promise = std::move(promise);
      job.serial = next_serial_++;
      job.admitted_s = now_s;
      const double budget = job.request.deadline_seconds > 0.0
                                ? job.request.deadline_seconds
                                : options_.default_deadline_seconds;
      if (budget > 0.0) job.deadline_abs_s = now_s + budget;
      queue_.push_back(std::move(job));
      ++counters_.admitted;
      count("serve.admitted");
      counters_.queue_depth = queue_.size();
      counters_.peak_queue_depth =
          std::max(counters_.peak_queue_depth, queue_.size());
      gauge("serve.queue.depth", static_cast<double>(queue_.size()));
    } else {
      // QoS admission: tenant resolution, quota, per-tenant queue bound.
      const std::size_t idx = options_.qos.tenant_index(request.tenant);
      const Priority priority = request.priority;
      const auto shed_with = [&](const std::string& message) {
        ++counters_.shed;
        count("serve.shed");
        Response shed;
        shed.status = ServeStatus::kShed;
        shed.message = message;
        shed.tenant = request.tenant.empty() ? "default" : request.tenant;
        shed.priority = priority;
        promise.set_value(std::move(shed));
      };
      if (idx == QosOptions::npos) {
        ++counters_.unknown_tenant;
        count("serve.shed.unknown_tenant");
        shed_with("unknown tenant '" +
                  (request.tenant.empty() ? std::string("default")
                                          : request.tenant) +
                  "', request shed");
        return future;
      }
      TenantRuntime& tenant = tenants_[idx];
      ++tenant.stats.submitted;
      if (stopping_) {
        ++tenant.stats.shed_queue;
        count_tenant(idx, "shed_queue");
        shed_with("server is shutting down");
        return future;
      }
      if (!tenant.bucket.try_acquire(now_s)) {
        ++counters_.quota_shed;
        ++tenant.stats.shed_quota;
        count("serve.shed.quota");
        count_tenant(idx, "shed_quota");
        shed_with("tenant quota exhausted, request shed");
        return future;
      }
      const int band = static_cast<int>(priority);
      if (tenant.queues[band].size() >= options_.queue_capacity) {
        ++tenant.stats.shed_queue;
        count_tenant(idx, "shed_queue");
        shed_with("tenant queue full, request shed");
        return future;
      }
      Job job;
      job.request = std::move(request);
      job.promise = std::move(promise);
      job.serial = next_serial_++;
      job.admitted_s = now_s;
      job.tenant = idx;
      job.band = band;
      // Routed and scenario-tagged requests never coalesce: the
      // coalescer dispatches under the pinned classic accelerator
      // configuration, which a routed job may not even run on and a
      // scenario front-end bypasses entirely. QoS queues/quotas are
      // untouched -- these only change what happens at dispatch.
      job.solo_only =
          routed_request(job.request) || scenario_request(job.request);
      const double budget = job.request.deadline_seconds > 0.0
                                ? job.request.deadline_seconds
                                : options_.default_deadline_seconds;
      if (budget > 0.0) job.deadline_abs_s = now_s + budget;
      tenant.queues[band].push_back(std::move(job));
      ++counters_.admitted;
      ++tenant.stats.admitted;
      count("serve.admitted");
      counters_.queue_depth = total_backlog_locked();
      counters_.peak_queue_depth =
          std::max(counters_.peak_queue_depth, counters_.queue_depth);
      set_depth_gauge_locked();
      maybe_preempt_locked(band);
    }
  }
  cv_.notify_one();
  return future;
}

std::future<Response> SvdServer::submit(linalg::MatrixF matrix,
                                        double deadline_seconds) {
  Request request;
  request.matrix = std::move(matrix);
  request.deadline_seconds = deadline_seconds;
  return submit(std::move(request));
}

Response SvdServer::serve(Request request) {
  return submit(std::move(request)).get();
}

void SvdServer::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SvdServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already shut down (or shutting down on another thread); joining
      // below would double-join, so bail once the flag is up.
      return;
    }
    stopping_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void SvdServer::worker_loop(std::size_t worker_index) {
  for (;;) {
    Job job;
    std::vector<Job> extras;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++idle_workers_;
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && total_backlog_locked() > 0);
      });
      --idle_workers_;
      if (total_backlog_locked() == 0) {
        if (stopping_) return;  // drained
        continue;               // spurious wake while paused
      }
      if (qos_enabled_) {
        std::optional<Job> picked = pop_next_locked();
        if (!picked.has_value()) {
          if (stopping_) return;
          continue;
        }
        job = std::move(*picked);
        job.dispatch_ordinal = ++next_dispatch_;
        gather_coalesce_locked(job, extras, clock_->now_seconds());
        for (Job& extra : extras) extra.dispatch_ordinal = ++next_dispatch_;
      } else {
        job = std::move(queue_.front());
        queue_.pop_front();
        job.dispatch_ordinal = ++next_dispatch_;
      }
      counters_.queue_depth = total_backlog_locked();
      set_depth_gauge_locked();
    }
    if (qos_enabled_) {
      service_qos(worker_index, std::move(job), std::move(extras));
    } else {
      common::CancelToken token(*clock_, job.deadline_abs_s);
      Response response = execute(job, token);
      note_terminal(job, response);
      resolve(std::move(job), std::move(response));
    }
  }
}

Response SvdServer::execute(Job& job, common::CancelToken& token) {
  Response out;
  const double start_s = clock_->now_seconds();
  out.queue_seconds = start_s - job.admitted_s;

  if (token.expired()) {
    out.status = ServeStatus::kExpired;
    out.message = "deadline expired while queued";
    out.service_seconds = clock_->now_seconds() - start_s;
    return out;
  }

  common::BackoffSchedule backoff(options_.retry, job.serial);
  const int max_attempts = options_.retry.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (!breaker_.allow()) {
      out.status = ServeStatus::kCircuitOpen;
      out.message = "circuit breaker open, request fast-failed";
      count("serve.breaker.fast_fail");
      break;
    }
    out.attempts = attempt;

    SvdOptions svd_options = options_.svd;
    svd_options.cancel = &token;
    svd_options.clock = clock_;
    svd_options.retry.reset();  // the server owns the retry loop
    if (job.request.fault_injector != nullptr) {
      svd_options.fault_injector = job.request.fault_injector;
    }
    // Per-request routing overrides the server's base options; svd()
    // validates the combination and dispatches through the router.
    if (routed_request(job.request)) {
      svd_options.backend = job.request.backend;
      svd_options.slo = job.request.slo;
    }

    bool transient = false;
    try {
      // Scenario intent overrides the base options inside the try: an
      // unknown scenario name is an InputError, handled like any other
      // deterministic rejection below.
      if (!job.request.scenario.empty()) {
        svd_options.scenario = scenarios::parse_scenario(job.request.scenario);
      }
      if (job.request.top_k > 0) svd_options.top_k = job.request.top_k;
      out.result = hsvd::svd(job.request.matrix, svd_options);
      out.backend = out.result.backend;
      breaker_.record_success();
      if (out.result.status == SvdStatus::kNotConverged) {
        if (options_.retry.retry_not_converged && attempt < max_attempts &&
            !token.expired()) {
          transient = true;
        } else {
          out.status = ServeStatus::kNotConverged;
          out.message = out.result.message;
          break;
        }
      } else {
        out.status = ServeStatus::kOk;
        out.message.clear();
        break;
      }
    } catch (const hsvd::DeadlineExceeded& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kExpired;
      out.message = e.what();
      break;
    } catch (const hsvd::InputError& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      break;  // deterministic rejection, retrying cannot help
    } catch (const hsvd::FaultDetected& e) {
      breaker_.record_failure();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      if (attempt < max_attempts && !token.expired()) transient = true;
    } catch (const std::exception& e) {
      breaker_.record_neutral();
      out.status = ServeStatus::kFailed;
      out.message = e.what();
      break;
    }

    if (!transient) break;
    count("serve.retries");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.retries;
    }
    const double delay =
        std::min(backoff.delay_seconds(attempt), token.remaining_seconds());
    if (delay > 0.0) clock_->sleep_for(delay);
    if (token.expired()) {
      out.status = ServeStatus::kExpired;
      out.message = "deadline expired during retry backoff";
      break;
    }
  }

  // Surface breaker trips that happened on this worker's watch.
  const std::uint64_t trips = breaker_.trips();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trips > last_trips_) {
      count("serve.breaker.trips", trips - last_trips_);
      counters_.breaker_trips = trips;
      last_trips_ = trips;
    }
  }
  set_breaker_gauge();

  out.service_seconds = clock_->now_seconds() - start_s;
  return out;
}

void SvdServer::service_qos(std::size_t worker_index, Job primary,
                            std::vector<Job> extras) {
  std::vector<Job> jobs;
  jobs.reserve(1 + extras.size());
  jobs.push_back(std::move(primary));
  for (Job& extra : extras) jobs.push_back(std::move(extra));
  extras.clear();

  const double start_s = clock_->now_seconds();

  // Expire-in-queue and cache probes before anything touches the fabric.
  std::vector<Job> runnable;
  runnable.reserve(jobs.size());
  for (Job& job : jobs) {
    if (start_s >= job.deadline_abs_s) {
      Response out;
      out.status = ServeStatus::kExpired;
      out.message = "deadline expired while queued";
      out.queue_seconds = start_s - job.admitted_s;
      note_terminal(job, out);
      resolve(std::move(job), std::move(out));
      continue;
    }
    if (cacheable(job)) {
      const std::uint64_t digest = ResultCache::digest(job.request.matrix);
      std::optional<Svd> hit =
          cache_->lookup(job.request.matrix, digest, route_intent(job.request),
                         job.request.scenario, job.request.top_k);
      // Re-verify an unattested hit when the verify policy selects this
      // request (the digest doubles as the sampling identity, so the
      // decision matches what the facade would have drawn): a cached
      // result must not dodge an enabled policy just because it skipped
      // the fabric. A clean re-check is stamped back onto the entry; a
      // failed one evicts it and the request recomputes.
      const verify::VerifyPolicy& vpolicy = options_.svd.verify;
      if (hit.has_value() && vpolicy.enabled() &&
          !hit->verify_report.verified && vpolicy.selects(digest)) {
        count("serve.cache.reverify");
        const verify::ResultVerifier verifier(options_.svd.precision);
        verify::RungAttempt attempt;
        attempt.rung = verify::VerifyRung::kPrimary;
        attempt.backend = hit->backend;
        attempt.outcome = verifier.check(job.request.matrix, *hit);
        verify::VerifyReport report;
        report.checked = true;
        report.verified = attempt.outcome.passed;
        report.rung = verify::VerifyRung::kPrimary;
        report.attempts.push_back(std::move(attempt));
        if (report.verified) {
          hit->verify_report = report;
          cache_->mark_verified(job.request.matrix, digest,
                                route_intent(job.request), report,
                                job.request.scenario, job.request.top_k);
        } else {
          count("serve.cache.verify_evict");
          cache_->erase(job.request.matrix, digest, route_intent(job.request),
                        job.request.scenario, job.request.top_k);
          hit.reset();  // recompute below, as a miss
        }
      }
      if (hit.has_value()) {
        count("serve.cache.hit");
        Response out;
        out.status = ServeStatus::kOk;
        out.result = std::move(*hit);
        out.backend = out.result.backend;
        out.cache_hit = true;
        out.queue_seconds = start_s - job.admitted_s;
        out.service_seconds = clock_->now_seconds() - start_s;
        note_terminal(job, out);
        resolve(std::move(job), std::move(out));
        continue;
      }
      count("serve.cache.miss");
    }
    runnable.push_back(std::move(job));
  }
  if (runnable.empty()) return;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.batch_dispatches;
    counters_.batch_tasks += runnable.size();
  }
  count("serve.batch.dispatches");
  observe("serve.batch.fill", static_cast<double>(runnable.size()));

  if (runnable.size() == 1) {
    Job job = std::move(runnable.front());
    common::CancelToken token(*clock_, job.deadline_abs_s);
    register_running(worker_index, job.band, &token);
    Response response = execute(job, token);
    const bool preempted = unregister_running(worker_index, job.deadline_abs_s);
    if (preempted && response.status == ServeStatus::kExpired) {
      requeue(std::move(job), /*count_preemption=*/true);
      return;
    }
    if (response.status == ServeStatus::kOk && cacheable(job)) {
      cache_->insert(job.request.matrix,
                     ResultCache::digest(job.request.matrix), response.result,
                     route_intent(job.request), job.request.scenario,
                     job.request.top_k);
    }
    response.batch_size = 1;
    note_terminal(job, response);
    resolve(std::move(job), std::move(response));
    return;
  }
  execute_coalesced(worker_index, std::move(runnable));
}

void SvdServer::execute_coalesced(std::size_t worker_index,
                                  std::vector<Job> jobs) {
  const double start_s = clock_->now_seconds();
  const std::size_t k = jobs.size();

  if (!breaker_.allow()) {
    count("serve.breaker.fast_fail", k);
    const double end_s = clock_->now_seconds();
    for (Job& job : jobs) {
      Response out;
      out.status = ServeStatus::kCircuitOpen;
      out.message = "circuit breaker open, request fast-failed";
      out.queue_seconds = start_s - job.admitted_s;
      out.service_seconds = end_s - start_s;
      out.batch_size = k;
      note_terminal(job, out);
      resolve(std::move(job), std::move(out));
    }
    return;
  }

  // One token covering the whole dispatch: the earliest member deadline
  // bounds the batch, and preemption cancels through the same token.
  double min_deadline = std::numeric_limits<double>::infinity();
  for (const Job& job : jobs) {
    min_deadline = std::min(min_deadline, job.deadline_abs_s);
  }
  common::CancelToken token(*clock_, min_deadline);
  register_running(worker_index, jobs.front().band, &token);

  SvdOptions svd_options = options_.svd;
  svd_options.cancel = &token;
  svd_options.clock = clock_;
  svd_options.retry.reset();
  const std::size_t rows = jobs.front().request.matrix.rows();
  const std::size_t cols = jobs.front().request.matrix.cols();
  if (!svd_options.config.has_value()) {
    // Pin the configuration the serial path would have chosen for one
    // matrix of this shape -- this is what makes a coalesced result
    // bit-identical to serving its members one at a time.
    svd_options.config = config_for_shape(rows, cols);
  }

  std::vector<linalg::MatrixF> batch;
  batch.reserve(k);
  for (const Job& job : jobs) batch.push_back(job.request.matrix);

  std::optional<BatchSvd> ran;
  bool deadline_hit = false;
  bool hard_fail = false;
  std::string diagnostic;
  try {
    ran = hsvd::svd_batch(batch, svd_options);
  } catch (const hsvd::DeadlineExceeded& e) {
    breaker_.record_neutral();
    deadline_hit = true;
    diagnostic = e.what();
  } catch (const std::exception& e) {
    breaker_.record_neutral();
    hard_fail = true;
    diagnostic = e.what();
  }
  const bool preempt_flag = unregister_running(
      worker_index, std::numeric_limits<double>::infinity());
  const double end_s = clock_->now_seconds();

  if (deadline_hit) {
    // The batch aborted at a sweep barrier: members whose own deadline
    // passed expire; the rest (preempted, or collateral of a
    // batch-mate's earlier deadline) go back to the queue front and
    // re-run bit-identically.
    for (Job& job : jobs) {
      if (end_s >= job.deadline_abs_s) {
        Response out;
        out.status = ServeStatus::kExpired;
        out.attempts = 1;
        out.message = diagnostic;
        out.queue_seconds = start_s - job.admitted_s;
        out.service_seconds = end_s - start_s;
        out.batch_size = k;
        note_terminal(job, out);
        resolve(std::move(job), std::move(out));
      } else {
        requeue(std::move(job), preempt_flag);
      }
    }
    return;
  }
  if (hard_fail) {
    for (Job& job : jobs) {
      Response out;
      out.status = ServeStatus::kFailed;
      out.attempts = 1;
      out.message = diagnostic;
      out.queue_seconds = start_s - job.admitted_s;
      out.service_seconds = end_s - start_s;
      out.batch_size = k;
      note_terminal(job, out);
      resolve(std::move(job), std::move(out));
    }
    return;
  }

  const bool can_retry = options_.retry.max_attempts > 1;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    Job& job = jobs[i];
    Svd& result = ran->results[i];
    Response out;
    out.attempts = 1;
    out.queue_seconds = start_s - job.admitted_s;
    out.service_seconds = end_s - start_s;
    out.batch_size = k;
    if (result.status == SvdStatus::kFailed) {
      breaker_.record_failure();
      if (can_retry && !stopping_seen()) {
        // Fall back to the solo path, which owns backoff and the
        // remaining attempt budget.
        count("serve.retries");
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.retries;
        }
        job.solo_only = true;
        requeue(std::move(job), /*count_preemption=*/false);
        continue;
      }
      out.status = ServeStatus::kFailed;
      out.message = result.message;
    } else if (result.status == SvdStatus::kNotConverged) {
      breaker_.record_success();
      if (options_.retry.retry_not_converged && can_retry &&
          !stopping_seen()) {
        count("serve.retries");
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.retries;
        }
        job.solo_only = true;
        requeue(std::move(job), /*count_preemption=*/false);
        continue;
      }
      out.status = ServeStatus::kNotConverged;
      out.result = std::move(result);
      out.message = out.result.message;
    } else {
      breaker_.record_success();
      if (cacheable(job)) {
        cache_->insert(job.request.matrix,
                       ResultCache::digest(job.request.matrix), result,
                       route_intent(job.request));
      }
      out.status = ServeStatus::kOk;
      out.result = std::move(result);
      out.backend = out.result.backend;
    }
    note_terminal(job, out);
    resolve(std::move(job), std::move(out));
  }

  const std::uint64_t trips = breaker_.trips();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trips > last_trips_) {
      count("serve.breaker.trips", trips - last_trips_);
      counters_.breaker_trips = trips;
      last_trips_ = trips;
    }
  }
  set_breaker_gauge();
}

accel::HeteroSvdConfig SvdServer::config_for_shape(std::size_t rows,
                                                   std::size_t cols) {
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    const auto it = shape_configs_.find({rows, cols});
    if (it != shape_configs_.end()) return it->second;
  }
  // The DSE probe runs outside every lock (it is the expensive part);
  // a concurrent duplicate computes the same deterministic answer.
  SvdOptions probe = options_.svd;
  probe.cancel = nullptr;
  probe.clock = nullptr;
  probe.retry.reset();
  probe.fault_injector = nullptr;
  probe.observer = nullptr;
  const accel::HeteroSvdConfig config =
      hsvd::planned_config(rows, cols, /*batch=*/1, probe);
  std::lock_guard<std::mutex> lock(config_mutex_);
  shape_configs_.emplace(std::make_pair(rows, cols), config);
  return config;
}

std::optional<SvdServer::Job> SvdServer::pop_next_locked() {
  std::vector<std::size_t> backlog(tenants_.size(), 0);
  for (int band = 0; band < kPriorityBands; ++band) {
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      backlog[t] = tenants_[t].queues[band].size();
    }
    const std::optional<std::size_t> pick = drr_[band].pick(backlog);
    if (pick.has_value()) {
      auto& queue = tenants_[*pick].queues[band];
      Job job = std::move(queue.front());
      queue.pop_front();
      return job;
    }
  }
  return std::nullopt;
}

void SvdServer::gather_coalesce_locked(const Job& primary,
                                       std::vector<Job>& extras,
                                       double now_s) {
  const QosOptions& qos = options_.qos;
  if (qos.coalesce_max_batch <= 1) return;
  if (primary.solo_only || primary.request.fault_injector != nullptr) return;
  // With a server-wide injector, batch composition would change which
  // faults land where; keep every request solo so fault behavior is
  // independent of coalescing.
  if (options_.svd.fault_injector != nullptr) return;
  const std::size_t rows = primary.request.matrix.rows();
  const std::size_t cols = primary.request.matrix.cols();
  // svd() transposes wide inputs internally, svd_batch() does not;
  // keep wide matrices on the solo path so results stay identical.
  if (rows < cols) return;
  const double window = qos.coalesce_window_seconds;
  const auto eligible = [&](const Job& job) {
    return job.request.fault_injector == nullptr && !job.solo_only &&
           job.request.matrix.rows() == rows &&
           job.request.matrix.cols() == cols &&
           std::abs(job.admitted_s - primary.admitted_s) <= window &&
           job.deadline_abs_s > now_s;
  };
  // Every ride-along slot is allocated through the same DRR scheduler
  // as a solo dispatch, with backlog restricted to coalescible jobs.
  // Batching therefore changes throughput, never the weighted shares:
  // a popular shape cannot let one tenant drain ahead of its weight.
  std::vector<std::size_t> backlog(tenants_.size(), 0);
  while (1 + extras.size() < qos.coalesce_max_batch) {
    bool any = false;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      backlog[t] = 0;
      for (const Job& job : tenants_[t].queues[primary.band]) {
        if (eligible(job)) ++backlog[t];
      }
      any |= backlog[t] > 0;
    }
    if (!any) return;
    const std::optional<std::size_t> pick = drr_[primary.band].pick(backlog);
    if (!pick.has_value()) return;
    auto& queue = tenants_[*pick].queues[primary.band];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (eligible(*it)) {
        extras.push_back(std::move(*it));
        queue.erase(it);
        break;
      }
    }
  }
}

std::size_t SvdServer::total_backlog_locked() const {
  if (!qos_enabled_) return queue_.size();
  std::size_t total = 0;
  for (const TenantRuntime& tenant : tenants_) {
    for (const auto& queue : tenant.queues) total += queue.size();
  }
  return total;
}

void SvdServer::requeue(Job job, bool count_preemption) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_preemption) {
      ++job.preemptions;
      ++counters_.preemptions;
      ++tenants_[job.tenant].stats.preemptions;
      count("serve.preempted");
      count_tenant(job.tenant, "preempted");
    }
    // Front of the owning queue: a re-queued request keeps its place at
    // the head of its tenant's line.
    tenants_[job.tenant].queues[job.band].push_front(std::move(job));
    counters_.queue_depth = total_backlog_locked();
    set_depth_gauge_locked();
  }
  cv_.notify_one();
}

void SvdServer::resolve(Job job, Response response) {
  if (qos_enabled_) {
    response.tenant = tenants_[job.tenant].config.name;
    response.priority = static_cast<Priority>(job.band);
  }
  response.preemptions = job.preemptions;
  response.dispatch_ordinal = job.dispatch_ordinal;
  job.promise.set_value(std::move(response));
}

void SvdServer::note_terminal(const Job& job, const Response& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (response.status) {
    case ServeStatus::kOk:
      ++counters_.ok;
      count("serve.ok");
      break;
    case ServeStatus::kNotConverged:
      ++counters_.not_converged;
      count("serve.not_converged");
      break;
    case ServeStatus::kExpired:
      ++counters_.expired;
      count("serve.expired");
      break;
    case ServeStatus::kCircuitOpen:
      ++counters_.circuit_open;
      count("serve.circuit_open");
      break;
    case ServeStatus::kFailed:
      ++counters_.failed;
      count("serve.failed");
      break;
    case ServeStatus::kShed:
      break;  // counted at admission
  }
  if (!qos_enabled_) return;
  TenantRuntime& tenant = tenants_[job.tenant];
  switch (response.status) {
    case ServeStatus::kOk:
      ++tenant.stats.ok;
      count_tenant(job.tenant, "ok");
      break;
    case ServeStatus::kNotConverged:
      ++tenant.stats.not_converged;
      count_tenant(job.tenant, "not_converged");
      break;
    case ServeStatus::kExpired:
      ++tenant.stats.expired;
      count_tenant(job.tenant, "expired");
      break;
    case ServeStatus::kCircuitOpen:
      ++tenant.stats.circuit_open;
      count_tenant(job.tenant, "circuit_open");
      break;
    case ServeStatus::kFailed:
      ++tenant.stats.failed;
      count_tenant(job.tenant, "failed");
      break;
    case ServeStatus::kShed:
      break;
  }
  if (response.cache_hit) {
    ++tenant.stats.cache_hits;
    count_tenant(job.tenant, "cache_hit");
  }
  if (response.batch_size >= 2) ++tenant.stats.coalesced;
  if (response.status == ServeStatus::kOk ||
      response.status == ServeStatus::kNotConverged) {
    observe("serve.tenant." + tenant.config.name + ".latency_seconds",
            response.queue_seconds + response.service_seconds);
  }
}

void SvdServer::register_running(std::size_t worker_index, int band,
                                 common::CancelToken* token) {
  std::lock_guard<std::mutex> lock(mutex_);
  running_[worker_index] = WorkerSlot{true, band, token, false};
  ++counters_.in_service;
}

bool SvdServer::unregister_running(std::size_t worker_index,
                                   double deadline_abs_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerSlot& slot = running_[worker_index];
  const bool preempted =
      slot.preempt_requested && clock_->now_seconds() < deadline_abs_s;
  slot = WorkerSlot{};
  if (counters_.in_service > 0) --counters_.in_service;
  return preempted;
}

void SvdServer::maybe_preempt_locked(int incoming_band) {
  if (!options_.qos.enable_preemption) return;
  if (idle_workers_ > 0) return;  // an idle worker will pick it up
  WorkerSlot* victim = nullptr;
  for (WorkerSlot& slot : running_) {
    if (!slot.active || slot.preempt_requested || slot.token == nullptr) {
      continue;
    }
    if (slot.band <= incoming_band) continue;  // never preempt an equal
    if (victim == nullptr || slot.band > victim->band) victim = &slot;
  }
  if (victim == nullptr) return;
  victim->preempt_requested = true;
  victim->token->cancel();
  ++counters_.preempt_requests;
  count("serve.preempt.requested");
}

bool SvdServer::cacheable(const Job& job) const {
  return cache_ != nullptr && job.request.fault_injector == nullptr &&
         options_.svd.fault_injector == nullptr;
}

bool SvdServer::stopping_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

void SvdServer::set_breaker_gauge() {
  gauge("serve.breaker.state", static_cast<double>(breaker_.state()));
}

void SvdServer::set_depth_gauge_locked() {
  gauge("serve.queue.depth", static_cast<double>(counters_.queue_depth));
}

void SvdServer::count(const char* name, std::uint64_t delta) {
  if (options_.observer != nullptr) options_.observer->metrics().add(name, delta);
}

void SvdServer::count_tenant(std::size_t tenant_index, const char* suffix) {
  if (options_.observer == nullptr) return;
  options_.observer->metrics().add(
      "serve.tenant." + tenants_[tenant_index].config.name + "." + suffix);
}

void SvdServer::gauge(const char* name, double value) {
  if (options_.observer != nullptr) {
    options_.observer->metrics().set_gauge(name, value);
  }
}

void SvdServer::observe(const std::string& name, double value) {
  if (options_.observer != nullptr) {
    options_.observer->metrics().observe(name, value);
  }
}

ServerStats SvdServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out = counters_;
  out.queue_depth = total_backlog_locked();
  out.breaker_trips = breaker_.trips();
  out.breaker_state = breaker_.state();
  if (cache_ != nullptr) {
    const ResultCache::Stats cache_stats = cache_->stats();
    out.cache_hits = cache_stats.hits;
    out.cache_misses = cache_stats.misses;
    out.cache_collisions = cache_stats.collisions;
    out.cache_evictions = cache_stats.evictions;
  }
  for (const TenantRuntime& tenant : tenants_) {
    out.tenants.emplace(tenant.config.name, tenant.stats);
  }
  return out;
}

}  // namespace hsvd::serve
