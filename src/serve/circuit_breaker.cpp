#include "serve/circuit_breaker.hpp"

namespace hsvd::serve {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half-open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerPolicy& policy,
                               const common::Clock* clock)
    : policy_(policy), clock_(clock) {
  policy_.validate();
  HSVD_REQUIRE(clock_ != nullptr, "circuit breaker needs a clock");
}

void CircuitBreaker::transition_if_cooled_locked() {
  if (state_ == BreakerState::kOpen &&
      clock_->now_seconds() >= open_until_s_) {
    state_ = BreakerState::kHalfOpen;
    probe_successes_ = 0;
    probes_in_flight_ = 0;
  }
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  transition_if_cooled_locked();
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ >= policy_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= policy_.close_threshold) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        probe_successes_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success finishing after the trip (another worker's in-flight
      // request) does not reset the cooldown.
      break;
  }
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        state_ = BreakerState::kOpen;
        open_until_s_ = clock_->now_seconds() + policy_.open_seconds;
        ++trips_;
      }
      break;
    case BreakerState::kHalfOpen:
      // One failed probe re-opens and restarts the cooldown.
      state_ = BreakerState::kOpen;
      open_until_s_ = clock_->now_seconds() + policy_.open_seconds;
      consecutive_failures_ = 0;
      probes_in_flight_ = 0;
      ++trips_;
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::record_neutral() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Report the effective state: an open breaker past its cooldown is
  // half-open for the next caller even before allow() runs.
  if (state_ == BreakerState::kOpen &&
      clock_->now_seconds() >= open_until_s_) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

}  // namespace hsvd::serve
