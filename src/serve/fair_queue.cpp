#include "serve/fair_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hsvd::serve {

DeficitRoundRobin::DeficitRoundRobin(const std::vector<double>& weights) {
  HSVD_REQUIRE(!weights.empty(), "DRR needs at least one tenant");
  double max_weight = 0.0;
  for (double w : weights) {
    HSVD_REQUIRE(w > 0.0, "DRR weights must be positive");
    max_weight = std::max(max_weight, w);
  }
  quantum_.reserve(weights.size());
  for (double w : weights) quantum_.push_back(w / max_weight);
  deficit_.assign(weights.size(), 0.0);
}

std::optional<std::size_t> DeficitRoundRobin::pick(
    const std::vector<std::size_t>& backlog) {
  HSVD_REQUIRE(backlog.size() == quantum_.size(),
               "DRR backlog size must match the tenant count");
  bool any = false;
  for (std::size_t len : backlog) any |= len > 0;
  if (!any) return std::nullopt;
  // The heaviest non-empty tenant gains a full unit per pass, so a
  // serve happens within ceil(1 / min quantum) passes; the guard is
  // generous slack over that bound, never reached in practice.
  const std::size_t n = quantum_.size();
  for (std::size_t pass = 0; pass < 4096; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t t = (cursor_ + i) % n;
      if (backlog[t] == 0) {
        deficit_[t] = 0.0;  // an idle tenant never banks credit
        continue;
      }
      deficit_[t] += quantum_[t];
      if (deficit_[t] >= 1.0) {
        deficit_[t] -= 1.0;
        cursor_ = (t + 1) % n;
        return t;
      }
    }
  }
  HSVD_ASSERT(false, "DRR failed to converge on a tenant");
  return std::nullopt;
}

}  // namespace hsvd::serve
