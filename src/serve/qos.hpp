// Multi-tenant QoS configuration for the serving layer.
//
// PR 4's SvdServer treats every request as an anonymous equal: one
// bursty client can fill the bounded admission queue and starve the
// rest. The QoS layer gives every request a tenant identity and a
// priority class, and the server then enforces policy per tenant:
//
//   quota      -- a clock-driven common::TokenBucket per tenant; a
//                 tenant offering more than its refill rate sheds its
//                 *own* excess at admission (kShed, "quota exhausted")
//                 instead of crowding the shared queue.
//   fair share -- per-tenant queues drained by deficit round-robin
//                 (serve/fair_queue.hpp): a backlogged tenant's service
//                 rate is proportional to its configured weight.
//   priority   -- three classes (latency > normal > batch). The
//                 scheduler always serves the highest non-empty class,
//                 and an arriving higher-class request preempts running
//                 lower-class work at the accelerator's sweep barriers
//                 (the existing CancelToken seam); preempted work is
//                 re-queued and completes bit-identical on its re-run.
//   coalescing -- same-(m, n) requests already queued in one class are
//                 dispatched as one svd_batch (bounded size and
//                 admission-age spread), amortizing fixed fabric cost.
//   cache      -- a digest-keyed LRU result cache
//                 (serve/result_cache.hpp) serves duplicate matrices
//                 without touching the fabric; every hit is verified
//                 against the full stored matrix, so a digest collision
//                 can never return the wrong factors.
//
// QoS engages only when at least one tenant is configured
// (QosOptions::enabled()); with no tenants the server runs the PR 4
// single-FIFO path bit-identically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsvd::serve {

// Priority class of a request. Lower value = more urgent; the scheduler
// serves classes in order and preempts across them at sweep barriers.
enum class Priority { kLatency = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kPriorityBands = 3;

const char* to_string(Priority priority);

struct TenantConfig {
  std::string name;
  // Fair-share weight: a backlogged tenant's drain rate relative to the
  // other backlogged tenants of the same priority class.
  double weight = 1.0;
  // Admission quota: token-bucket refill rate (requests per second on
  // the server clock) and burst capacity.
  double quota_rate = 1000.0;
  double quota_burst = 64.0;

  void validate() const;
};

struct QosOptions {
  // Tenants the server accepts; empty = QoS disabled (PR 4 behavior).
  // A request naming no tenant maps to "default" -- configure a tenant
  // of that name to accept untagged traffic; unknown tenants are shed.
  std::vector<TenantConfig> tenants;

  // Shape-bucketed micro-batching: a dispatching worker folds up to
  // coalesce_max_batch - 1 further queued same-shape, same-class,
  // injector-free requests into one svd_batch. 1 disables coalescing.
  // Dispatch never waits for the window to fill: the window bounds the
  // admission-age *spread* inside one batch, so coalescing only kicks
  // in when a backlog exists and adds zero latency when idle.
  std::size_t coalesce_max_batch = 1;
  double coalesce_window_seconds = 0.010;

  // Digest-keyed LRU result cache (FNV-1a over the matrix bytes, the
  // same checksum the fault-detection boundaries use). Capacity is in
  // entries; every hit re-verifies the full stored matrix.
  bool cache_enabled = false;
  std::size_t cache_capacity = 64;

  // Allow an arriving higher-class request to cancel (and re-queue)
  // running lower-class work when no worker is idle.
  bool enable_preemption = true;

  bool enabled() const { return !tenants.empty(); }
  // Index of `name` (empty maps to "default") in `tenants`, or npos.
  std::size_t tenant_index(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void validate() const;
};

// Parses "name:weight:rate:burst" (weight/rate/burst optional with
// defaults 1:1000:64) into a TenantConfig; throws InputError on a
// malformed spec. Shared by the hsvd CLI and the soak driver.
TenantConfig parse_tenant_spec(const std::string& spec);

// Parses "latency" / "normal" / "batch"; throws InputError otherwise.
Priority parse_priority(const std::string& text);

}  // namespace hsvd::serve
