// SvdServer: a resilient request-serving layer in front of the batch
// engine.
//
// The library's svd()/svd_batch() calls are one-shot: nothing above them
// protects a *stream* of requests from overload, hung work, or a flaky
// fabric. SvdServer adds that service-hardening layer:
//
//   admission control -- a bounded work queue; submit() on a full queue
//     returns an already-resolved kShed response instead of blocking the
//     producer (load-shedding, never back-pressure by hanging).
//   deadlines -- each request carries a time budget on the server's
//     clock; an expired request is failed fast in the queue, and one
//     that expires mid-run is cancelled cooperatively at the
//     accelerator's slot-chain boundaries (kExpired).
//   retry/backoff -- transient failures (FaultDetected, and optionally
//     kNotConverged) are re-submitted up to RetryPolicy::max_attempts
//     with exponential backoff and deterministic seeded jitter; the
//     jitter stream is derived from the request's admission ordinal, so
//     a fixed seed replays the same schedule.
//   circuit breaker -- consecutive fabric failures trip it; while open,
//     queued requests fast-fail (kCircuitOpen) instead of burning the
//     fabric; after a cooldown, probe requests half-open it and
//     successes close it again.
//
// All time comes from a common::Clock, so every behavior above is
// testable with a FakeClock and zero real sleeps. An attached
// obs::ObsContext gets serve.* counters (shed/retries/trips/...), a
// queue-depth gauge, and a breaker-state gauge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/retry.hpp"
#include "heterosvd.hpp"
#include "serve/circuit_breaker.hpp"

namespace hsvd::serve {

// Terminal outcome of one request. Every submitted request reaches
// exactly one of these.
enum class ServeStatus {
  kOk,           // decomposition succeeded
  kNotConverged, // factors usable, precision target missed
  kShed,         // rejected at admission (queue full or shutting down)
  kExpired,      // deadline passed (in queue or mid-run)
  kCircuitOpen,  // fast-failed while the breaker was open
  kFailed,       // fabric fault (after retries) or invalid request
};

const char* to_string(ServeStatus status);

struct ServerOptions {
  // Admission control: requests queued beyond this are shed.
  std::size_t queue_capacity = 64;
  // Worker threads executing requests.
  int workers = 1;
  // Base per-request SvdOptions (configuration, fault injector,
  // observer, threads). The server overrides cancel/clock per request
  // and owns the retry loop itself (SvdOptions::retry is ignored here).
  SvdOptions svd;
  common::RetryPolicy retry;
  BreakerPolicy breaker;
  // Deadline budget for requests that do not carry their own (seconds
  // on `clock`); 0 = no deadline.
  double default_deadline_seconds = 0.0;
  // Time source for deadlines, backoff, and the breaker cooldown (not
  // owned; nullptr = the process monotonic clock).
  common::Clock* clock = nullptr;
  // Observability for the serving layer itself (not owned; nullptr =
  // off): serve.* counters plus queue-depth and breaker-state gauges.
  obs::ObsContext* observer = nullptr;
  // When true the workers start idle; requests are admitted (and shed)
  // normally but none is served until resume(). Lets tests fill the
  // queue deterministically.
  bool start_paused = false;

  void validate() const;
};

struct Request {
  linalg::MatrixF matrix;
  // Relative deadline budget in seconds; 0 = the server default.
  double deadline_seconds = 0.0;
  // Per-request fault injector override (not owned; nullptr = the
  // server's base injector). The chaos driver uses this to give each
  // request its own seeded fault plan.
  versal::FaultInjector* fault_injector = nullptr;
};

struct Response {
  ServeStatus status = ServeStatus::kFailed;
  // Valid for kOk / kNotConverged only.
  Svd result;
  // Attempts actually executed (0 when the request never ran: shed,
  // expired in queue, or fast-failed by the breaker).
  int attempts = 0;
  std::string message;
  double queue_seconds = 0.0;    // admission -> service start
  double service_seconds = 0.0;  // service start -> terminal status
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t ok = 0;
  std::uint64_t not_converged = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t circuit_open = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_trips = 0;
  std::size_t queue_depth = 0;
  std::size_t peak_queue_depth = 0;
  BreakerState breaker_state = BreakerState::kClosed;
};

class SvdServer {
 public:
  explicit SvdServer(ServerOptions options);
  ~SvdServer();
  SvdServer(const SvdServer&) = delete;
  SvdServer& operator=(const SvdServer&) = delete;

  // Admission-controlled submission. Never blocks: a full queue (or a
  // stopped server) resolves the future immediately with kShed.
  std::future<Response> submit(Request request);
  std::future<Response> submit(linalg::MatrixF matrix,
                               double deadline_seconds = 0.0);
  // Blocking convenience (submit + wait). Do not call on a paused
  // server from the thread that would resume it.
  Response serve(Request request);

  // Starts the workers of a start_paused server (idempotent).
  void resume();
  // Stops admission, drains the queue, joins the workers (idempotent;
  // also runs on destruction). A paused server is resumed to drain.
  void shutdown();

  ServerStats stats() const;
  BreakerState breaker_state() const { return breaker_.state(); }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::uint64_t serial = 0;   // admission ordinal (backoff stream)
    double admitted_s = 0.0;    // clock time at admission
    // Absolute deadline on clock_ (+inf = none). The worker builds the
    // CancelToken from this at service start (the token itself is not
    // movable, so the queued job carries only the number).
    double deadline_abs_s = std::numeric_limits<double>::infinity();
  };

  void worker_loop();
  Response execute(Job& job);
  void note_terminal(const Response& response);
  void set_breaker_gauge();
  void count(const char* name, std::uint64_t delta = 1);
  void gauge(const char* name, double value);

  ServerOptions options_;
  common::Clock* clock_;
  CircuitBreaker breaker_;
  std::uint64_t last_trips_ = 0;  // for the serve.breaker.trips counter

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool paused_ = false;
  bool stopping_ = false;
  std::uint64_t next_serial_ = 0;

  // Counters (under mutex_ except where noted via stats()).
  ServerStats counters_;
};

}  // namespace hsvd::serve
