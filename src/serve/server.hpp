// SvdServer: a resilient request-serving layer in front of the batch
// engine.
//
// The library's svd()/svd_batch() calls are one-shot: nothing above them
// protects a *stream* of requests from overload, hung work, or a flaky
// fabric. SvdServer adds that service-hardening layer:
//
//   admission control -- a bounded work queue; submit() on a full queue
//     returns an already-resolved kShed response instead of blocking the
//     producer (load-shedding, never back-pressure by hanging).
//   deadlines -- each request carries a time budget on the server's
//     clock; an expired request is failed fast in the queue, and one
//     that expires mid-run is cancelled cooperatively at the
//     accelerator's slot-chain boundaries (kExpired).
//   retry/backoff -- transient failures (FaultDetected, and optionally
//     kNotConverged) are re-submitted up to RetryPolicy::max_attempts
//     with exponential backoff and deterministic seeded jitter; the
//     jitter stream is derived from the request's admission ordinal, so
//     a fixed seed replays the same schedule.
//   circuit breaker -- consecutive fabric failures trip it; while open,
//     queued requests fast-fail (kCircuitOpen) instead of burning the
//     fabric; after a cooldown, probe requests half-open it and
//     successes close it again.
//
// With tenants configured (ServerOptions::qos), the server additionally
// enforces multi-tenant QoS -- see serve/qos.hpp for the policy pieces:
// token-bucket admission quotas, per-tenant queues drained by deficit
// round-robin within three priority classes, preemption of lower-class
// running work at sweep barriers (preempted work is re-queued and its
// re-run is bit-identical), shape-bucketed micro-batching through
// svd_batch under the exact per-shape configuration the serial path
// would pick, and a verified digest-keyed result cache. With no tenants
// configured every one of these layers is compiled out of the request
// path and the server behaves bit-identically to the single-FIFO
// version.
//
// All time comes from a common::Clock, so every behavior above is
// testable with a FakeClock and zero real sleeps. An attached
// obs::ObsContext gets serve.* counters (shed/retries/trips/...), a
// queue-depth gauge, a breaker-state gauge, and -- in QoS mode -- the
// serve.batch.fill histogram, serve.cache.{hit,miss} counters, and
// per-tenant latency histograms and shed counters.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/retry.hpp"
#include "common/token_bucket.hpp"
#include "heterosvd.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/fair_queue.hpp"
#include "serve/qos.hpp"
#include "serve/result_cache.hpp"

namespace hsvd::serve {

// Terminal outcome of one request. Every submitted request reaches
// exactly one of these.
enum class ServeStatus {
  kOk,           // decomposition succeeded
  kNotConverged, // factors usable, precision target missed
  kShed,         // rejected at admission (queue full, quota, shutdown)
  kExpired,      // deadline passed (in queue or mid-run)
  kCircuitOpen,  // fast-failed while the breaker was open
  kFailed,       // fabric fault (after retries) or invalid request
};

const char* to_string(ServeStatus status);

struct ServerOptions {
  // Admission control: requests queued beyond this are shed. In QoS
  // mode the bound applies per (tenant, priority class) queue, so one
  // tenant's backlog can never displace another's.
  std::size_t queue_capacity = 64;
  // Worker threads executing requests.
  int workers = 1;
  // Base per-request SvdOptions (configuration, fault injector,
  // observer, threads). The server overrides cancel/clock per request
  // and owns the retry loop itself (SvdOptions::retry is ignored here).
  SvdOptions svd;
  common::RetryPolicy retry;
  BreakerPolicy breaker;
  // Multi-tenant QoS (quotas, fair share, priorities, coalescing,
  // result cache). Disabled while `qos.tenants` is empty.
  QosOptions qos;
  // Deadline budget for requests that do not carry their own (seconds
  // on `clock`); 0 = no deadline.
  double default_deadline_seconds = 0.0;
  // Time source for deadlines, backoff, and the breaker cooldown (not
  // owned; nullptr = the process monotonic clock).
  common::Clock* clock = nullptr;
  // Observability for the serving layer itself (not owned; nullptr =
  // off): serve.* counters plus queue-depth and breaker-state gauges.
  obs::ObsContext* observer = nullptr;
  // When true the workers start idle; requests are admitted (and shed)
  // normally but none is served until resume(). Lets tests fill the
  // queue deterministically.
  bool start_paused = false;

  void validate() const;
};

struct Request {
  linalg::MatrixF matrix;
  // Relative deadline budget in seconds; 0 = the server default.
  double deadline_seconds = 0.0;
  // Per-request fault injector override (not owned; nullptr = the
  // server's base injector). The chaos driver uses this to give each
  // request its own seeded fault plan. Injector-carrying requests are
  // never coalesced or cached.
  versal::FaultInjector* fault_injector = nullptr;
  // Tenant identity (QoS mode only; empty maps to "default"). A name
  // matching no configured tenant is shed at admission.
  std::string tenant;
  // Priority class (QoS mode only).
  Priority priority = Priority::kNormal;
  // Per-request backend routing (DESIGN.md section 14): a pin ("aie",
  // "cpu", ...), "auto", or an SLO for the router -- copied into the
  // dispatch SvdOptions over the server's base options. Empty + nullopt
  // keeps the server's default path. Routed requests are dispatched
  // solo (never coalesced: the coalescer pins the classic accelerator
  // configuration) and their result-cache identity includes the route
  // intent, so a pinned-cpu hit can never answer a pinned-aie request.
  std::string backend;
  std::optional<backend::Slo> slo;
  // Workload scenario (DESIGN.md section 16): "" keeps the server's
  // base SvdOptions; "auto", "off", "tall-skinny", or "truncated" is
  // parsed into the dispatch options. An unknown string fails the
  // request deterministically (kFailed, no retry). Scenario-tagged
  // requests dispatch solo -- the coalescer batches the plain dense
  // path only -- and scenario + top_k are part of the result-cache
  // identity, so a truncated answer can never satisfy a full request.
  std::string scenario;
  // Truncated decomposition rank (0 = full). Requires a scenario that
  // admits it ("", "auto", or "truncated").
  std::size_t top_k = 0;
};

struct Response {
  ServeStatus status = ServeStatus::kFailed;
  // Valid for kOk / kNotConverged only.
  Svd result;
  // Attempts actually executed (0 when the request never ran: shed,
  // expired in queue, served from cache, or fast-failed by the
  // breaker). A request re-queued by preemption or a coalesced-batch
  // fallback reports the attempts of its final execution.
  int attempts = 0;
  std::string message;
  double queue_seconds = 0.0;    // admission -> service start
  double service_seconds = 0.0;  // service start -> terminal status
  // --- QoS fields (defaults outside QoS mode) ---------------------
  std::string tenant;
  Priority priority = Priority::kNormal;
  bool cache_hit = false;
  // Tasks in the dispatch that produced this result: 1 = solo, k >= 2
  // = coalesced svd_batch of k, 0 = never reached the fabric.
  std::size_t batch_size = 0;
  // Times this request was preempted at a sweep barrier and re-queued.
  int preemptions = 0;
  // 1-based service-start order across the server (0 = never
  // dispatched); deterministic under start_paused + one worker, which
  // is how the fair-share tests observe the DRR schedule.
  std::uint64_t dispatch_ordinal = 0;
  // Backend that produced `result` ("" on the classic un-routed path;
  // populated from the cached result on a cache hit).
  std::string backend;
};

// Per-tenant terminal accounting (QoS mode).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_quota = 0;  // token bucket empty at admission
  std::uint64_t shed_queue = 0;  // tenant queue full (or shutdown)
  std::uint64_t ok = 0;
  std::uint64_t not_converged = 0;
  std::uint64_t expired = 0;
  std::uint64_t circuit_open = 0;
  std::uint64_t failed = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t coalesced = 0;  // completions served from a batch >= 2
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t ok = 0;
  std::uint64_t not_converged = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t circuit_open = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_trips = 0;
  std::size_t queue_depth = 0;
  std::size_t peak_queue_depth = 0;
  BreakerState breaker_state = BreakerState::kClosed;
  // --- QoS (zero outside QoS mode) --------------------------------
  std::uint64_t quota_shed = 0;
  std::uint64_t unknown_tenant = 0;
  std::uint64_t preemptions = 0;          // effective (work re-queued)
  std::uint64_t preempt_requests = 0;     // cancellations issued
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_collisions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t batch_dispatches = 0;     // fabric dispatches (any size)
  std::uint64_t batch_tasks = 0;          // jobs across those dispatches
  std::size_t in_service = 0;             // jobs executing right now
  std::map<std::string, TenantStats> tenants;
};

class SvdServer {
 public:
  explicit SvdServer(ServerOptions options);
  ~SvdServer();
  SvdServer(const SvdServer&) = delete;
  SvdServer& operator=(const SvdServer&) = delete;

  // Admission-controlled submission. Never blocks: a full queue, an
  // exhausted tenant quota, an unknown tenant, or a stopped server
  // resolves the future immediately with kShed.
  std::future<Response> submit(Request request);
  std::future<Response> submit(linalg::MatrixF matrix,
                               double deadline_seconds = 0.0);
  // Blocking convenience (submit + wait). Do not call on a paused
  // server from the thread that would resume it.
  Response serve(Request request);

  // Starts the workers of a start_paused server (idempotent).
  void resume();
  // Stops admission, drains the queue, joins the workers (idempotent;
  // also runs on destruction). A paused server is resumed to drain.
  void shutdown();

  ServerStats stats() const;
  BreakerState breaker_state() const { return breaker_.state(); }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::uint64_t serial = 0;   // admission ordinal (backoff stream)
    double admitted_s = 0.0;    // clock time at admission
    // Absolute deadline on clock_ (+inf = none). The worker builds the
    // CancelToken from this at service start (the token itself is not
    // movable, so the queued job carries only the number).
    double deadline_abs_s = std::numeric_limits<double>::infinity();
    // --- QoS bookkeeping --------------------------------------------
    std::size_t tenant = 0;        // index into tenants_
    int band = 1;                  // priority class
    int preemptions = 0;
    bool solo_only = false;        // after a coalesced-batch fallback
    std::uint64_t dispatch_ordinal = 0;
  };

  // Per-tenant runtime state (QoS mode). Move-only: jobs carry a
  // promise, so the queues (and therefore the runtime) cannot be
  // copied.
  struct TenantRuntime {
    TenantRuntime(TenantConfig config_in, common::TokenBucket bucket_in)
        : config(std::move(config_in)), bucket(std::move(bucket_in)) {}
    TenantRuntime(TenantRuntime&&) = default;
    TenantRuntime& operator=(TenantRuntime&&) = default;
    TenantRuntime(const TenantRuntime&) = delete;
    TenantRuntime& operator=(const TenantRuntime&) = delete;

    TenantConfig config;
    common::TokenBucket bucket;
    std::array<std::deque<Job>, kPriorityBands> queues;
    TenantStats stats;
  };

  // What a worker registers while executing, so submit() can preempt
  // running lower-class work through the CancelToken seam.
  struct WorkerSlot {
    bool active = false;
    int band = kPriorityBands;           // band of the running work
    common::CancelToken* token = nullptr;  // worker-stack token
    bool preempt_requested = false;
  };

  void worker_loop(std::size_t worker_index);
  // Legacy solo execution (also the QoS solo path): the retry loop,
  // breaker gating, deadline handling.
  Response execute(Job& job, common::CancelToken& token);
  // QoS dispatch of one popped job + coalesced extras.
  void service_qos(std::size_t worker_index, Job primary,
                   std::vector<Job> extras);
  void execute_coalesced(std::size_t worker_index, std::vector<Job> jobs);
  accel::HeteroSvdConfig config_for_shape(std::size_t rows, std::size_t cols);

  std::optional<Job> pop_next_locked();
  void gather_coalesce_locked(const Job& primary, std::vector<Job>& extras,
                              double now_s);
  std::size_t total_backlog_locked() const;
  void requeue(Job job, bool count_preemption);
  bool stopping_seen() const;
  void resolve(Job job, Response response);
  void note_terminal(const Job& job, const Response& response);
  void register_running(std::size_t worker_index, int band,
                        common::CancelToken* token);
  // Clears the slot; returns true when a preemption was requested and
  // the job's own deadline had not actually passed.
  bool unregister_running(std::size_t worker_index, double deadline_abs_s);
  void maybe_preempt_locked(int incoming_band);
  bool cacheable(const Job& job) const;

  void set_breaker_gauge();
  void set_depth_gauge_locked();
  void count(const char* name, std::uint64_t delta = 1);
  void count_tenant(std::size_t tenant_index, const char* suffix);
  void gauge(const char* name, double value);
  void observe(const std::string& name, double value);

  ServerOptions options_;
  common::Clock* clock_;
  CircuitBreaker breaker_;
  std::uint64_t last_trips_ = 0;  // for the serve.breaker.trips counter
  const bool qos_enabled_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;                 // legacy single FIFO
  std::vector<TenantRuntime> tenants_;    // QoS per-tenant queues
  std::vector<DeficitRoundRobin> drr_;    // one per priority band
  std::vector<WorkerSlot> running_;       // indexed by worker
  std::size_t idle_workers_ = 0;
  std::unique_ptr<ResultCache> cache_;
  std::vector<std::thread> workers_;
  bool paused_ = false;
  bool stopping_ = false;
  std::uint64_t next_serial_ = 0;
  std::uint64_t next_dispatch_ = 0;

  // Per-shape pinned configuration for coalesced dispatches (the DSE
  // choice the serial path would make); separate mutex because the DSE
  // is expensive and must not run under mutex_.
  std::mutex config_mutex_;
  std::map<std::pair<std::size_t, std::size_t>, accel::HeteroSvdConfig>
      shape_configs_;

  // Counters (under mutex_ except where noted via stats()).
  ServerStats counters_;
};

}  // namespace hsvd::serve
