// Deficit round-robin tenant scheduler.
//
// The QoS server keeps one queue per (priority class, tenant) and asks
// this scheduler which tenant to drain next within a class. Classic DRR
// adapted to unit-cost work items: each tenant owns a deficit counter;
// a scheduling pass visits tenants round-robin from a persistent
// cursor, credits each non-empty queue its quantum (weight normalized
// so the heaviest tenant's quantum is 1), and serves the first tenant
// whose deficit reaches one job. Backlogged tenants are therefore
// served in proportion to their weights, an idle tenant's deficit is
// reset (no hoarding credit while empty), and a tenant that just went
// busy is served within a bounded number of passes. The scheduler owns
// no queues and takes backlog sizes by argument, so it is trivially
// unit-testable and the server can hold it under its own mutex.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace hsvd::serve {

class DeficitRoundRobin {
 public:
  // One weight per tenant, all positive (validated by QosOptions).
  explicit DeficitRoundRobin(const std::vector<double>& weights);

  // Picks the tenant to serve next given each tenant's current backlog
  // (queue length), consuming one unit of that tenant's deficit.
  // Returns std::nullopt when every backlog is zero. Deterministic:
  // the same pick/backlog sequence replays the same decisions. The
  // coalescer also routes every ride-along slot through pick() (with
  // backlog restricted to coalescible jobs), so batching never lets a
  // tenant drain faster than its weighted share.
  std::optional<std::size_t> pick(const std::vector<std::size_t>& backlog);

  std::size_t tenants() const { return quantum_.size(); }

 private:
  std::vector<double> quantum_;  // weight / max weight, in (0, 1]
  std::vector<double> deficit_;
  std::size_t cursor_ = 0;
};

}  // namespace hsvd::serve
