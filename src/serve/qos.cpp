#include "serve/qos.hpp"

#include <cmath>
#include <cstdlib>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/format.hpp"

namespace hsvd::serve {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kLatency: return "latency";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "unknown";
}

void TenantConfig::validate() const {
  HSVD_REQUIRE(!name.empty(), "tenant name must be non-empty");
  HSVD_REQUIRE(std::isfinite(weight) && weight > 0.0,
               "tenant weight must be positive and finite");
  HSVD_REQUIRE(std::isfinite(quota_rate) && quota_rate > 0.0,
               "tenant quota_rate must be positive and finite");
  HSVD_REQUIRE(std::isfinite(quota_burst) && quota_burst >= 1.0,
               "tenant quota_burst must be at least 1");
}

void QosOptions::validate() const {
  for (const TenantConfig& tenant : tenants) {
    tenant.validate();
    std::size_t hits = 0;
    for (const TenantConfig& other : tenants) {
      if (other.name == tenant.name) ++hits;
    }
    HSVD_REQUIRE(hits == 1, "tenant names must be unique");
  }
  HSVD_REQUIRE(coalesce_max_batch >= 1,
               "qos coalesce_max_batch must be at least 1");
  if (coalesce_max_batch > 1) {
    HSVD_REQUIRE(
        std::isfinite(coalesce_window_seconds) && coalesce_window_seconds > 0.0,
        "qos coalesce_window_seconds must be positive and finite");
  }
  if (cache_enabled) {
    HSVD_REQUIRE(cache_capacity >= 1,
                 "qos cache_capacity must be at least 1 when the cache is "
                 "enabled");
  }
}

std::size_t QosOptions::tenant_index(const std::string& name) const {
  const std::string& key = name.empty() ? std::string("default") : name;
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    if (tenants[i].name == key) return i;
  }
  return npos;
}

TenantConfig parse_tenant_spec(const std::string& spec) {
  TenantConfig config;
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  HSVD_REQUIRE(parts.size() <= 4,
               "tenant spec is name[:weight[:rate[:burst]]]");
  config.name = parts[0];
  const auto parse_number = [&](const std::string& text, const char* what) {
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      throw InputError(cat("tenant spec '", spec, "': bad ", what, " '", text,
                           "'"));
    }
    return value;
  };
  if (parts.size() > 1 && !parts[1].empty()) {
    config.weight = parse_number(parts[1], "weight");
  }
  if (parts.size() > 2 && !parts[2].empty()) {
    config.quota_rate = parse_number(parts[2], "quota rate");
  }
  if (parts.size() > 3 && !parts[3].empty()) {
    config.quota_burst = parse_number(parts[3], "quota burst");
  }
  config.validate();
  return config;
}

Priority parse_priority(const std::string& text) {
  if (text == "latency") return Priority::kLatency;
  if (text == "normal") return Priority::kNormal;
  if (text == "batch") return Priority::kBatch;
  throw InputError(cat("unknown priority '", text,
                       "' (expected latency, normal, or batch)"));
}

}  // namespace hsvd::serve
