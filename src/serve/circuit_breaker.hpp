// Circuit breaker guarding the simulated fabric.
//
// Classic three-state breaker: kClosed passes everything and counts
// consecutive fabric failures; `failure_threshold` of them in a row trip
// it to kOpen, which fast-fails every caller for `open_seconds` of
// cooldown; then kHalfOpen admits up to `half_open_probes` concurrent
// probe requests -- `close_threshold` consecutive probe successes close
// the breaker, one probe failure re-opens it (and restarts the
// cooldown). Time comes from a common::Clock so the open->half-open
// transition is testable with a fake clock.
//
// Only *fabric* outcomes feed the breaker: the serving layer reports
// FaultDetected as failure and a completed decomposition as success;
// deadline expiry, shed requests, and input errors are neutral.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace hsvd::serve {

enum class BreakerState { kClosed, kHalfOpen, kOpen };

const char* to_string(BreakerState state);

struct BreakerPolicy {
  // Consecutive failures that trip a closed breaker.
  int failure_threshold = 5;
  // Cooldown before an open breaker lets probes through.
  double open_seconds = 1.0;
  // Probe requests admitted concurrently while half-open.
  int half_open_probes = 1;
  // Consecutive probe successes that close a half-open breaker.
  int close_threshold = 1;

  void validate() const {
    HSVD_REQUIRE(failure_threshold >= 1,
                 "breaker failure_threshold must be at least 1");
    HSVD_REQUIRE(open_seconds >= 0.0,
                 "breaker open_seconds must be nonnegative");
    HSVD_REQUIRE(half_open_probes >= 1,
                 "breaker half_open_probes must be at least 1");
    HSVD_REQUIRE(close_threshold >= 1,
                 "breaker close_threshold must be at least 1");
  }
};

class CircuitBreaker {
 public:
  CircuitBreaker(const BreakerPolicy& policy, const common::Clock* clock);

  // True when a request may proceed: the breaker is closed, or half-open
  // with a free probe slot (the caller then owns that slot until it
  // reports record_success/record_failure). An open breaker past its
  // cooldown transitions to half-open here.
  bool allow();
  void record_success();
  void record_failure();
  // Releases an allow()ed slot without judging the fabric: the request
  // ended breaker-neutral (deadline expiry, invalid input). Only
  // meaningful half-open, where it frees the probe slot.
  void record_neutral();

  BreakerState state() const;
  // Times the breaker tripped open (closed->open and half-open->open).
  std::uint64_t trips() const;

 private:
  void transition_if_cooled_locked();

  BreakerPolicy policy_;
  const common::Clock* clock_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int probes_in_flight_ = 0;
  double open_until_s_ = 0.0;
  std::uint64_t trips_ = 0;
};

}  // namespace hsvd::serve
