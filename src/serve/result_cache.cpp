#include "serve/result_cache.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "versal/faults.hpp"

namespace hsvd::serve {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  HSVD_REQUIRE(capacity >= 1, "result cache capacity must be at least 1");
}

std::uint64_t ResultCache::digest(const linalg::MatrixF& matrix) {
  return versal::buffer_checksum(matrix.data());
}

bool ResultCache::same_bytes(const linalg::MatrixF& a,
                             const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

std::optional<Svd> ResultCache::lookup(const linalg::MatrixF& matrix,
                                       std::uint64_t digest_value,
                                       const std::string& route,
                                       const std::string& scenario,
                                       std::size_t top_k) {
  const Key key{matrix.rows(), matrix.cols(), digest_value, route, scenario,
                top_k};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (!same_bytes(it->second->matrix, matrix)) {
    // Digest collision: two distinct matrices share the checksum. The
    // full-matrix verification is what makes the cache safe.
    ++stats_.collisions;
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->result;
}

void ResultCache::insert(const linalg::MatrixF& matrix,
                         std::uint64_t digest_value, const Svd& result,
                         const std::string& route, const std::string& scenario,
                         std::size_t top_k) {
  const Key key{matrix.rows(), matrix.cols(), digest_value, route, scenario,
                top_k};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->matrix = matrix;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, matrix, result});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool ResultCache::erase(const linalg::MatrixF& matrix,
                        std::uint64_t digest_value, const std::string& route,
                        const std::string& scenario, std::size_t top_k) {
  const Key key{matrix.rows(), matrix.cols(), digest_value, route, scenario,
                top_k};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void ResultCache::mark_verified(const linalg::MatrixF& matrix,
                                std::uint64_t digest_value,
                                const std::string& route,
                                const verify::VerifyReport& report,
                                const std::string& scenario,
                                std::size_t top_k) {
  const Key key{matrix.rows(), matrix.cols(), digest_value, route, scenario,
                top_k};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  it->second->result.verify_report = report;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  for (const auto& entry : lru_) {
    if (entry.result.verify_report.verified) ++out.verified_entries;
  }
  return out;
}

}  // namespace hsvd::serve
