// Digest-keyed LRU result cache for the serving layer.
//
// Duplicate matrices are common in real traffic (recommender refreshes,
// repeated beamforming snapshots), and a decomposition already served
// once can be answered without touching the fabric. The key is
// (rows, cols, FNV-1a digest of the matrix bytes) -- the same
// versal::buffer_checksum the fault-detection boundaries stamp on
// columns -- but a 64-bit digest is not an identity: every hit is
// verified against the full stored matrix byte for byte, so a digest
// collision is counted and served as a miss, never as wrong factors.
// Entries are only ever inserted from completed kOk decompositions of
// injector-free requests, which makes a (verified) hit bit-identical to
// re-running the decomposition by construction.
//
// Bounded capacity with LRU eviction; the server guards the cache with
// its own mutex-free call pattern -- the cache carries an internal
// mutex so workers can probe concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>

#include "heterosvd.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::serve {

class ResultCache {
 public:
  // Capacity in entries, at least 1 (validated by QosOptions).
  explicit ResultCache(std::size_t capacity);

  // FNV-1a digest of the matrix byte image (shape is keyed separately).
  static std::uint64_t digest(const linalg::MatrixF& matrix);

  // Returns the cached factors when `digest_value` hits AND the stored
  // matrix equals `matrix` byte for byte; refreshes LRU recency. The
  // digest is a parameter (not recomputed) so tests can force a
  // collision and prove the verification catches it. `route` is the
  // request's routing intent (backend pin + slo class, "" for the
  // classic path): the same matrix routed to different backends yields
  // different provenance labels (and, across functional backends,
  // different bits), so route intent is part of the identity. So are
  // `scenario` and `top_k` (DESIGN.md section 16): a truncated top-3
  // answer must never satisfy a full-decomposition request for the same
  // bytes, and vice versa.
  std::optional<Svd> lookup(const linalg::MatrixF& matrix,
                            std::uint64_t digest_value,
                            const std::string& route = "",
                            const std::string& scenario = "",
                            std::size_t top_k = 0);

  // Records a completed decomposition, evicting the least recently used
  // entry past capacity. An existing key is overwritten (the new matrix
  // wins a collision slot; lookups verify, so this is always safe). The
  // result's verify_report rides along, so an entry remembers whether
  // its factors were ever attested (Svd::verify_report.verified).
  void insert(const linalg::MatrixF& matrix, std::uint64_t digest_value,
              const Svd& result, const std::string& route = "",
              const std::string& scenario = "", std::size_t top_k = 0);

  // Drops the entry for this identity (the server evicts a cached
  // result that fails re-verification). Returns true when one existed.
  bool erase(const linalg::MatrixF& matrix, std::uint64_t digest_value,
             const std::string& route = "", const std::string& scenario = "",
             std::size_t top_k = 0);

  // Stamps the stored entry's attestation report in place: an
  // unattested hit that re-verified clean keeps that provenance, so
  // later hits skip the re-check. No-op when the entry is gone.
  void mark_verified(const linalg::MatrixF& matrix,
                     std::uint64_t digest_value, const std::string& route,
                     const verify::VerifyReport& report,
                     const std::string& scenario = "", std::size_t top_k = 0);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t collisions = 0;  // digest hit, byte verification failed
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t verified_entries = 0;  // entries holding an attested result
  };
  Stats stats() const;

 private:
  struct Key {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::uint64_t digest = 0;
    std::string route;     // routing intent ("" = classic path)
    std::string scenario;  // scenario intent ("" = dense default)
    std::size_t top_k = 0; // truncation rank (0 = full decomposition)
    bool operator<(const Key& other) const {
      if (rows != other.rows) return rows < other.rows;
      if (cols != other.cols) return cols < other.cols;
      if (digest != other.digest) return digest < other.digest;
      if (route != other.route) return route < other.route;
      if (scenario != other.scenario) return scenario < other.scenario;
      return top_k < other.top_k;
    }
  };
  struct Entry {
    Key key;
    linalg::MatrixF matrix;  // full copy, verified on every hit
    Svd result;
  };

  static bool same_bytes(const linalg::MatrixF& a, const linalg::MatrixF& b);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace hsvd::serve
