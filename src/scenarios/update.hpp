// Streaming scenario: incremental rank-1 update/downdate (DESIGN.md
// section 16). Given A ~ U S V^T, the factors of A' = A + u v^T follow
// from Brand's identity: with m = U^T u, p = u - U m, n = V^T v,
// q = v - V n,
//
//   A' = [U p/||p||] * K * [V q/||q||]^T,
//   K  = diag(S, 0) + [m; ||p||] [n; ||q||]^T,
//
// so one (n+1)x(n+1) rotation-based small SVD of K (the serial
// one-sided Jacobi reference) refreshes the factors in O(m n) + O(n^3)
// instead of a full re-decomposition. Factors are carried in fp32, the
// update core runs in double; each update adds O(eps_f) cast noise, so
// drift accumulates over a chain. StreamingSvd owns the running matrix
// and scores the factors with the production ResultVerifier every
// `ScenarioOptions::update_check_interval` updates -- the moment the
// drift breaks a verifier bound, it re-decomposes from scratch.
#pragma once

#include <span>

#include "heterosvd.hpp"

namespace hsvd::scenarios {

// In-place rank-1 update of a full decomposition: factors of A + u v^T
// from the factors of A. Requires a complete result (`svd.v` present
// and square, i.e. want_v = true and no truncation), u.size() ==
// svd.u.rows(), v.size() == svd.v.rows(). Marks the result's scenario
// provenance "update". Throws hsvd::InputError on a shape mismatch.
void svd_update(Svd& svd, std::span<const float> u, std::span<const float> v);

// Downdate convenience: A - u v^T is A + u (-v)^T.
void svd_downdate(Svd& svd, std::span<const float> u,
                  std::span<const float> v);

// Streaming decomposition: owns the running matrix and its factors,
// applies rank-1 updates through svd_update, and re-decomposes fully
// when the verifier-checked drift bound breaks.
class StreamingSvd {
 public:
  // Decomposes `a0` up front through the facade (want_v forced on;
  // top_k must be 0 -- streaming needs the full V). The options carry
  // into every re-decomposition, scenario selection included, so a
  // tall-skinny stream re-decomposes through the QR front-end.
  StreamingSvd(linalg::MatrixF a0, SvdOptions options);

  // A <- A + u v^T, factors via the Brand core; every
  // `update_check_interval`-th update the production ResultVerifier
  // scores the factors against the running matrix and a failed check
  // triggers a full re-decomposition (counted, observable as
  // scenario.update.redecompose).
  void apply(std::span<const float> u, std::span<const float> v);

  const Svd& current() const { return svd_; }
  const linalg::MatrixF& matrix() const { return a_; }
  int updates() const { return updates_; }
  int redecompositions() const { return redecompositions_; }
  // Verifier scores of the most recent drift check (-1 before any).
  double last_residual() const { return last_residual_; }

 private:
  void redecompose();

  linalg::MatrixF a_;
  SvdOptions options_;
  Svd svd_;
  int updates_ = 0;
  int since_check_ = 0;
  int redecompositions_ = 0;
  double last_residual_ = -1.0;
};

}  // namespace hsvd::scenarios
