// LSTM weight-compression demo workload (DESIGN.md section 16).
//
// A trained LSTM layer carries eight weight matrices (input-to-hidden
// and hidden-to-hidden for each of the i/f/g/o gates). Low-rank
// factorization is the classic compression move: replacing an m x n
// gate matrix by its rank-k factors U_k S_k V_k^T stores k(m + n + 1)
// parameters instead of m*n. This workload synthesizes a whole stack of
// such matrices with decaying spectra, batches every one through the
// serving layer as a truncated (top_k = rank) request -- exercising
// admission, QoS, the scenario front-end, and the scenario-keyed result
// cache end to end -- and reports compression ratio against measured
// reconstruction error per matrix as CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace hsvd::scenarios {

struct LstmCompressionOptions {
  std::size_t layers = 2;
  std::size_t input_dim = 48;
  std::size_t hidden_dim = 48;
  // Truncation rank per gate matrix (the request's top_k).
  std::size_t rank = 8;
  // Spectral condition of the synthetic weights: singular values decay
  // geometrically from 1 down to 1/condition, which is the shape that
  // makes trained recurrent weights compressible in the first place.
  double condition = 1e3;
  std::uint64_t seed = 0x157f3eedULL;

  void validate() const;
};

// One gate matrix's outcome.
struct CompressionRow {
  std::string name;        // "layer0.Wi", "layer1.Uo", ...
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t rank = 0;
  double ratio = 0.0;      // (rows*cols) / (rank*(rows+cols+1))
  double rel_error = -1.0; // ||A - U S V^T||_F / ||A||_F (-1: no result)
  double bound = 0.0;      // Svd::scenario_bound of the served result
  std::string status;      // serve::ServeStatus of the request
  bool cache_hit = false;
};

struct CompressionReport {
  std::vector<CompressionRow> rows;
  std::size_t served = 0;   // rows with usable factors
  double mean_ratio = 0.0;  // over served rows
  double mean_error = 0.0;  // over served rows
  // CSV image: header + one line per row, '\n'-terminated, %.6e floats
  // (deterministic for a fixed seed and single-threaded server).
  std::string csv() const;
};

// Synthesizes the weight stack from `options.seed` and serves every
// matrix through `server` as a truncated request (scenario "auto",
// top_k = rank). All requests are submitted before any result is
// awaited, so a multi-worker server overlaps them. The server's own
// options (QoS tenants, cache, verify policy) apply as configured.
CompressionReport compress_lstm(serve::SvdServer& server,
                                const LstmCompressionOptions& options);

}  // namespace hsvd::scenarios
