// Scenario front-end dispatch and shared attestation helpers
// (DESIGN.md section 16). The facade calls select_scenario() after the
// wide-transpose branch (rows >= cols is guaranteed here) and hands the
// input to the winning front-end; each front-end reduces the problem to
// an inner dense svd() call -- scenario disabled, so routing, retry and
// core attestation run exactly as on the dense path -- and assembles
// the full factors on the host.
#pragma once

#include "heterosvd.hpp"
#include "scenarios/scenario.hpp"

namespace hsvd::scenarios {

// Which front-end (if any) engages for this tall-or-square shape under
// these options, validating the combination: top_k with scenario kOff,
// top_k > cols, a forced front-end the shape cannot satisfy, two forced
// front-ends at once, or a backend pin outside the engaged scenario's
// allowlist all throw hsvd::InputError.
Scenario select_scenario(std::size_t rows, std::size_t cols,
                         const SvdOptions& options);

// Scenario-level attestation of *assembled* factors (the inner core's
// own report rides along in result.verify_report; these append to it).
// When the verify policy selects the request, the assembled factors are
// scored against the dense verifier bounds -- plus `residual_allowance`
// for deliberately truncated results -- and a failure escalates
// straight to the host double-precision reference for the scenario
// (`reference` recomputes the factors from scratch). Off-policy calls
// are free: no work, no report change.
void attest_assembled(const linalg::MatrixF& a, const SvdOptions& options,
                      Svd& result, double residual_allowance,
                      Svd (*reference)(const linalg::MatrixF&,
                                       const SvdOptions&));

// Bumps the "scenario.<name>" counter when an observer is attached.
void count_scenario(const SvdOptions& options, const char* name);

}  // namespace hsvd::scenarios
