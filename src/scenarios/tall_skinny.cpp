#include "scenarios/tall_skinny.hpp"

#include <utility>

#include "common/assert.hpp"
#include "linalg/ops.hpp"
#include "linalg/qr.hpp"
#include "linalg/reference_svd.hpp"
#include "scenarios/scenarios.hpp"
#include "verify/verifier.hpp"

namespace hsvd::scenarios {

namespace {

// Host double-precision reference for the whole scenario: the ladder's
// last rung when the assembled factors fail their bound.
Svd reference_result(const linalg::MatrixF& a, const SvdOptions& options) {
  const linalg::SvdResult ref = linalg::reference_svd(a.cast<double>());
  Svd out;
  out.u = ref.u.cast<float>();
  out.sigma.assign(ref.sigma.begin(), ref.sigma.end());
  if (options.want_v) out.v = ref.v.cast<float>();
  out.iterations = ref.sweeps;
  out.backend = "reference";
  out.scenario = "tall-skinny";
  out.scenario_bound =
      verify::ResultVerifier::residual_bound(a.cols(), options.precision);
  return out;
}

}  // namespace

Svd svd_tall_skinny(const linalg::MatrixF& a, const SvdOptions& options) {
  HSVD_REQUIRE(a.rows() >= a.cols() && a.cols() >= 2,
               "tall-skinny pre-reduction requires rows >= cols >= 2");
  count_scenario(options, "scenario.tall_skinny");

  // Stage 1 (host, double): A = Q R. Householder QR is backward stable,
  // so R carries A's spectrum to O(eps) * ||A||.
  const linalg::MatrixD ad = a.cast<double>();
  const linalg::QrResult qr = linalg::householder_qr(ad);

  // Stage 2 (fabric): the n x n triangle through the dense path --
  // routing, retry, and core attestation run exactly as for a direct
  // dense request. The scenario layer is off for the inner call, and V
  // is forced on (V_R is V_A, so it is this front-end's V output).
  SvdOptions inner = options;
  inner.scenario = Scenario::kOff;
  inner.top_k = 0;
  inner.want_v = true;
  Svd out = svd(qr.r.cast<float>(), inner);

  // Stage 3 (host, double): U = Q * U_R. The product of two (near-)
  // orthonormal factors, accumulated in double, keeps U's columns
  // orthonormal to the inner core's own error.
  out.u = linalg::matmul(qr.q, out.u.cast<double>()).cast<float>();
  if (!options.want_v) out.v = linalg::MatrixF();
  out.scenario = "tall-skinny";
  out.scenario_bound =
      verify::ResultVerifier::residual_bound(a.cols(), options.precision);
  attest_assembled(a, options, out, /*residual_allowance=*/0.0,
                   &reference_result);
  return out;
}

}  // namespace hsvd::scenarios
