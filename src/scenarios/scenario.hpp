// Workload-scenario front-ends: selection policy and knobs (DESIGN.md
// section 16).
//
// The accelerator core is a square-block one-shot Hestenes engine; real
// traffic is often tall-skinny (PCA pipelines), truncated (top-k
// queries), or incrementally updated (streaming covariance). The
// scenario layer wraps that core with pre-reduction front-ends instead
// of new kernels: each front-end reduces its input to a small dense
// decomposition that flows through the normal facade (routing, retry,
// attestation) and then assembles the full factors on the host.
//
// This header holds only the enum, the knobs, and the backend
// declarations -- it is included by heterosvd.hpp, so it must not
// depend on the facade types. The front-ends themselves live in
// tall_skinny.hpp / truncated.hpp / update.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hsvd::scenarios {

enum class Scenario {
  // Engage a front-end only when the input asks for one: the QR
  // pre-reduction above the aspect-ratio threshold, the randomized
  // sketch when SvdOptions::top_k >= 1. Below the threshold and with
  // top_k == 0 this is the dense one-shot path, bit-identical to kOff.
  kAuto,
  // Never engage a front-end; the classic dense path (and its
  // bit-identical results), regardless of shape. top_k must be 0.
  kOff,
  // Force the Householder-QR pre-reduction (rows >= cols required).
  kTallSkinny,
  // Force the randomized sketch; requires top_k >= 1.
  kTruncated,
};

const char* to_string(Scenario scenario);

// Parses "auto", "off", "tall-skinny", or "truncated"; throws
// hsvd::InputError on anything else.
Scenario parse_scenario(const std::string& spec);

// Knobs for the scenario front-ends. Every field is deterministic
// state: two calls with equal options and input produce bit-identical
// results.
struct ScenarioOptions {
  // kAuto engages the QR pre-reduction when rows >= ratio * cols. The
  // default 8 is where the modeled host-QR + square-core time beats the
  // direct padded fabric run with margin (bench_scenarios sweeps this;
  // CI asserts the crossover).
  double tall_skinny_ratio = 8.0;
  // Sketch columns beyond top_k (l = min(cols, top_k + oversample)).
  // More oversampling tightens the subspace at linear sketch cost.
  std::size_t oversample = 8;
  // Subspace (power) iterations on the sketch: each one sharpens the
  // captured spectrum by a factor of (sigma_{k+1}/sigma_k)^2.
  int power_iterations = 2;
  // Seed of the Gaussian sketch draw. Fixed by default so a repeated
  // query is bit-identical (and cacheable by the serving layer).
  std::uint64_t sketch_seed = 0x5ce4a6105eedULL;
  // StreamingSvd: score the factors against the running matrix with the
  // verify layer every this many rank-1 updates; a failed check
  // triggers a full re-decomposition. 1 = check every update.
  int update_check_interval = 1;

  void validate() const;  // throws hsvd::InputError on malformed knobs
};

// The backends a scenario front-end can carry ("" = the classic
// un-routed path). The modeled comparators (fpga-bcv / gpu-wcycle) are
// excluded: their reported time is a fitted model of a published
// square-problem anchor, and a host pre-reduction stage in front of the
// core would make that label cover only part of the work -- an explicit
// pin demanding a modeled total would be dishonest by construction.
// "auto" stays legal: the router labels whatever core it picks, and
// Svd::scenario records that the label covers the dense core only.
const std::vector<std::string>& allowed_backends(Scenario scenario);
bool scenario_allows_backend(Scenario scenario, const std::string& backend);

}  // namespace hsvd::scenarios
