#include "scenarios/scenarios.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/format.hpp"
#include "verify/verifier.hpp"

namespace hsvd::scenarios {

namespace {

// Dense verifier pass with the scenario's residual allowance folded in:
// a deliberately truncated result fails the full tier by construction
// (the dropped tail IS the residual), so the bound is widened by the
// recorded truncation allowance instead of treating the miss as silent
// corruption. allowance = 0 keeps the exact dense contract.
verify::VerifyOutcome score_assembled(const linalg::MatrixF& a,
                                      const SvdOptions& options, const Svd& r,
                                      double allowance) {
  const verify::ResultVerifier verifier(options.precision);
  verify::VerifyOutcome out = verifier.check(a, r);
  if (!out.passed && allowance > 0.0 &&
      out.failed_tier == verify::VerifyTier::kFull && out.residual >= 0.0) {
    out.residual_bound += allowance;
    if (out.residual <= out.residual_bound) {
      out.passed = true;
      out.note.clear();
    }
  }
  return out;
}

}  // namespace

Scenario select_scenario(std::size_t rows, std::size_t cols,
                         const SvdOptions& options) {
  options.scenario_opts.validate();
  const Scenario requested = options.scenario;
  if (options.top_k > 0) {
    if (requested == Scenario::kOff) {
      throw InputError(
          "top_k requires the scenario layer, but scenario is off (use auto "
          "or truncated)");
    }
    if (requested == Scenario::kTallSkinny) {
      throw InputError(
          "top_k and the tall-skinny front-end are mutually exclusive: a "
          "request engages one front-end");
    }
    if (options.top_k > cols) {
      throw InputError(cat("top_k (", options.top_k,
                           ") exceeds min(rows, cols) = ", cols));
    }
  }
  if (requested == Scenario::kTruncated && options.top_k == 0) {
    throw InputError("scenario truncated requires top_k >= 1");
  }

  Scenario engaged = Scenario::kOff;
  if (options.top_k > 0) {
    if (cols < 2) {
      throw InputError("the truncated front-end needs at least two columns");
    }
    engaged = Scenario::kTruncated;
  } else if (requested == Scenario::kTallSkinny) {
    if (cols < 2) {
      throw InputError(
          "the tall-skinny pre-reduction needs at least two columns");
    }
    engaged = Scenario::kTallSkinny;
  } else if (requested == Scenario::kAuto && cols >= 2 &&
             static_cast<double>(rows) >=
                 options.scenario_opts.tall_skinny_ratio *
                     static_cast<double>(cols)) {
    engaged = Scenario::kTallSkinny;
  }

  if (engaged != Scenario::kOff &&
      !scenario_allows_backend(engaged, options.backend)) {
    throw InputError(cat(
        "backend '", options.backend, "' cannot carry the ",
        to_string(engaged),
        " front-end: the modeled comparators label whole runs and the host "
        "pre-reduction stage is outside their model (allowed backends: "
        "auto, aie, aie-sharded, cpu)"));
  }
  return engaged;
}

void count_scenario(const SvdOptions& options, const char* name) {
  if (options.observer != nullptr) options.observer->metrics().add(name);
}

void attest_assembled(const linalg::MatrixF& a, const SvdOptions& options,
                      Svd& result, double residual_allowance,
                      Svd (*reference)(const linalg::MatrixF&,
                                       const SvdOptions&)) {
  if (!options.verify.enabled()) return;
  if (!options.verify.selects(verify::verify_ident(a))) return;
  count_scenario(options, "scenario.verify.checked");

  verify::RungAttempt attempt;
  attempt.rung = verify::VerifyRung::kPrimary;
  attempt.backend = cat("scenario:", result.scenario);
  attempt.outcome = score_assembled(a, options, result, residual_allowance);
  result.verify_report.checked = true;
  result.verify_report.attempts.push_back(attempt);
  if (attempt.outcome.passed) {
    result.verify_report.verified = true;
    if (result.verify_report.rung == verify::VerifyRung::kNone) {
      result.verify_report.rung = verify::VerifyRung::kPrimary;
    }
    return;
  }

  // The assembly failed its bound: skip the re-run/re-route rungs (the
  // inner core already attested clean through the normal ladder, so the
  // fault is in the host assembly or the scenario's own math) and go
  // straight to the host double-precision reference for this scenario.
  count_scenario(options, "scenario.verify.escalated");
  Svd upgraded = reference(a, options);
  verify::RungAttempt rung;
  rung.rung = verify::VerifyRung::kReference;
  rung.backend = "reference";
  rung.outcome = score_assembled(a, options, upgraded, residual_allowance);
  upgraded.verify_report = std::move(result.verify_report);
  upgraded.verify_report.attempts.push_back(rung);
  upgraded.verify_report.checked = true;
  upgraded.verify_report.verified = rung.outcome.passed;
  upgraded.verify_report.rung = verify::VerifyRung::kReference;
  result = std::move(upgraded);
}

}  // namespace hsvd::scenarios
