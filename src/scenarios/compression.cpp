#include "scenarios/compression.hpp"

#include <cmath>
#include <cstdio>
#include <future>
#include <utility>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"

namespace hsvd::scenarios {

namespace {

// ||A - U diag(sigma) V^T||_F / ||A||_F, accumulated in double.
double reconstruction_error(const linalg::MatrixF& a, const Svd& svd) {
  if (svd.u.empty() || svd.v.empty() || svd.sigma.empty()) return -1.0;
  const linalg::MatrixD ud = svd.u.cast<double>();
  const linalg::MatrixD vd = svd.v.cast<double>();
  const std::size_t k = svd.sigma.size();
  double err2 = 0.0;
  double norm2 = 0.0;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto ac = a.col(c);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      double approx = 0.0;
      for (std::size_t t = 0; t < k; ++t) {
        approx += ud(r, t) * static_cast<double>(svd.sigma[t]) * vd(c, t);
      }
      const double d = static_cast<double>(ac[r]) - approx;
      err2 += d * d;
      norm2 += static_cast<double>(ac[r]) * ac[r];
    }
  }
  return norm2 > 0.0 ? std::sqrt(err2 / norm2) : 0.0;
}

std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6e", value);
  return buf;
}

}  // namespace

void LstmCompressionOptions::validate() const {
  HSVD_REQUIRE(layers >= 1, "compression demo needs at least one layer");
  HSVD_REQUIRE(input_dim >= 2 && hidden_dim >= 2,
               "compression demo needs dims of at least 2");
  HSVD_REQUIRE(rank >= 1 && rank <= std::min(input_dim, hidden_dim),
               "compression rank must be in [1, min(input_dim, hidden_dim)]");
  HSVD_REQUIRE(std::isfinite(condition) && condition >= 1.0,
               "compression condition must be finite and >= 1");
}

std::string CompressionReport::csv() const {
  std::string out =
      "name,rows,cols,rank,ratio,rel_error,bound,status,cache_hit\n";
  for (const CompressionRow& row : rows) {
    out += cat(row.name, ",", row.rows, ",", row.cols, ",", row.rank, ",",
               fmt(row.ratio), ",", fmt(row.rel_error), ",", fmt(row.bound),
               ",", row.status, ",", row.cache_hit ? 1 : 0, "\n");
  }
  return out;
}

CompressionReport compress_lstm(serve::SvdServer& server,
                                const LstmCompressionOptions& options) {
  options.validate();
  static const char* const kGates[] = {"i", "f", "g", "o"};

  // Synthesize the stack: per layer, four input-to-hidden W gates
  // (hidden x input, tall or square) and four hidden-to-hidden U gates
  // (hidden x hidden), each with a geometric spectrum so the truncation
  // has something real to keep. One Rng stream drawn in a fixed order
  // keeps the whole stack a pure function of the seed.
  Rng rng(options.seed);
  const std::vector<double> w_spectrum = linalg::geometric_spectrum(
      std::min(options.hidden_dim, options.input_dim), options.condition);
  const std::vector<double> u_spectrum =
      linalg::geometric_spectrum(options.hidden_dim, options.condition);
  std::vector<std::pair<std::string, linalg::MatrixF>> weights;
  weights.reserve(options.layers * 8);
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    for (const char* gate : kGates) {
      weights.emplace_back(
          cat("layer", layer, ".W", gate),
          linalg::matrix_with_spectrum(options.hidden_dim, options.input_dim,
                                       w_spectrum, rng)
              .cast<float>());
    }
    for (const char* gate : kGates) {
      weights.emplace_back(
          cat("layer", layer, ".U", gate),
          linalg::matrix_with_spectrum(options.hidden_dim, options.hidden_dim,
                                       u_spectrum, rng)
              .cast<float>());
    }
  }

  // Submit everything before awaiting anything: the server's admission,
  // QoS, and workers see the whole batch at once.
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(weights.size());
  for (const auto& [name, matrix] : weights) {
    serve::Request request;
    request.matrix = matrix;
    request.scenario = "auto";
    request.top_k = options.rank;
    futures.push_back(server.submit(std::move(request)));
  }

  CompressionReport report;
  report.rows.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const serve::Response response = futures[i].get();
    CompressionRow row;
    row.name = weights[i].first;
    row.rows = weights[i].second.rows();
    row.cols = weights[i].second.cols();
    row.rank = options.rank;
    row.ratio = static_cast<double>(row.rows * row.cols) /
                static_cast<double>(options.rank * (row.rows + row.cols + 1));
    row.status = serve::to_string(response.status);
    row.cache_hit = response.cache_hit;
    if (response.status == serve::ServeStatus::kOk ||
        response.status == serve::ServeStatus::kNotConverged) {
      row.rel_error = reconstruction_error(weights[i].second, response.result);
      row.bound = response.result.scenario_bound;
      ++report.served;
      report.mean_ratio += row.ratio;
      report.mean_error += row.rel_error;
    }
    report.rows.push_back(std::move(row));
  }
  if (report.served > 0) {
    report.mean_ratio /= static_cast<double>(report.served);
    report.mean_error /= static_cast<double>(report.served);
  }
  return report;
}

}  // namespace hsvd::scenarios
