// Truncated scenario: randomized top-k SVD (DESIGN.md section 16).
// Seeded Gaussian sketch Y = A * Omega, subspace (power) iterations,
// Q = qr(Y), then the small dense core B = Q^T A through the fabric
// path (decomposed as B^T, which is tall, so the facade's
// wide-transpose branch never fires). U = Q * U_B, V = V_B, truncated
// to the leading k triplets.
//
// Error-bound contract (recorded in Svd::scenario_bound, relative to
// ||A||_F): the exact split
//   ||A - U_k S_k V_k^T||_F <= ||A - Q Q^T A||_F + ||B - B_k||_F
// where the first term is the subspace miss, computable a posteriori as
// sqrt(||A||_F^2 - ||B||_F^2), and the second the dropped tail of B's
// spectrum -- plus the dense verifier residual allowance for the fp32
// core. The differential harness checks the served factors against the
// leading k of the full double-precision reference inside this bound.
#pragma once

#include "heterosvd.hpp"

namespace hsvd::scenarios {

// Requires rows >= cols >= 2 and 1 <= options.top_k <= cols.
Svd svd_truncated(const linalg::MatrixF& a, const SvdOptions& options);

}  // namespace hsvd::scenarios
