#include "scenarios/scenario.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/format.hpp"

namespace hsvd::scenarios {

const char* to_string(Scenario scenario) {
  switch (scenario) {
    case Scenario::kAuto: return "auto";
    case Scenario::kOff: return "off";
    case Scenario::kTallSkinny: return "tall-skinny";
    case Scenario::kTruncated: return "truncated";
  }
  return "unknown";
}

Scenario parse_scenario(const std::string& spec) {
  if (spec == "auto") return Scenario::kAuto;
  if (spec == "off") return Scenario::kOff;
  if (spec == "tall-skinny") return Scenario::kTallSkinny;
  if (spec == "truncated") return Scenario::kTruncated;
  throw InputError(cat("unknown scenario '", spec,
                       "' (expected auto, off, tall-skinny, or truncated)"));
}

void ScenarioOptions::validate() const {
  HSVD_REQUIRE(std::isfinite(tall_skinny_ratio) && tall_skinny_ratio >= 1.0,
               "scenario tall_skinny_ratio must be finite and >= 1");
  HSVD_REQUIRE(oversample >= 1, "scenario oversample must be at least 1");
  HSVD_REQUIRE(power_iterations >= 0,
               "scenario power_iterations must be nonnegative");
  HSVD_REQUIRE(update_check_interval >= 1,
               "scenario update_check_interval must be at least 1");
}

const std::vector<std::string>& allowed_backends(Scenario scenario) {
  // The dense path carries every backend; an engaged front-end only the
  // functional ones (see the header for why the modeled comparators are
  // out).
  static const std::vector<std::string> dense = {
      "", "auto", "aie", "aie-sharded", "cpu", "fpga-bcv", "gpu-wcycle"};
  static const std::vector<std::string> front_end = {"", "auto", "aie",
                                                     "aie-sharded", "cpu"};
  switch (scenario) {
    case Scenario::kAuto:
    case Scenario::kOff:
      return dense;
    case Scenario::kTallSkinny:
    case Scenario::kTruncated:
      return front_end;
  }
  return dense;
}

bool scenario_allows_backend(Scenario scenario, const std::string& backend) {
  for (const std::string& b : allowed_backends(scenario)) {
    if (b == backend) return true;
  }
  return false;
}

}  // namespace hsvd::scenarios
