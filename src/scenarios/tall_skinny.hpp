// Tall-skinny scenario: Householder-QR pre-reduction (DESIGN.md
// section 16). A = Q R on the host in double precision, the n x n
// triangle R through the dense fabric path, U recovered as Q * U_R.
// V_R is V_A directly, so no extra pass is needed for V. Error-bound
// contract: Householder QR and the double-precision assembly are
// backward stable, so the assembled factors satisfy the *dense*
// verifier bounds (ResultVerifier::residual_bound et al.) unchanged --
// which is exactly what the scenario attestation holds them to.
#pragma once

#include "heterosvd.hpp"

namespace hsvd::scenarios {

// Requires rows >= cols (the facade's wide-transpose branch runs
// first) and cols >= 2. `options.scenario`/`top_k` are ignored here --
// the inner dense call always runs with the scenario layer off.
Svd svd_tall_skinny(const linalg::MatrixF& a, const SvdOptions& options);

}  // namespace hsvd::scenarios
