#include "scenarios/update.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"
#include "scenarios/scenarios.hpp"
#include "verify/verifier.hpp"

namespace hsvd::scenarios {

namespace {

// Orthogonal complement of `x` against the orthonormal columns of `q`
// (classical Gram-Schmidt with one re-orthogonalization pass): returns
// the residual norm and writes the normalized complement into `out`
// (zeroed when x is numerically inside span(q)).
double complement(const linalg::MatrixD& q, const std::vector<double>& x,
                  std::vector<double>& coeffs, std::vector<double>& out) {
  const std::size_t rows = q.rows();
  const std::size_t cols = q.cols();
  coeffs.assign(cols, 0.0);
  out = x;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t t = 0; t < cols; ++t) {
      const double c = linalg::dot<double>(q.col(t), std::span<const double>(out));
      coeffs[t] += c;
      auto qt = q.col(t);
      for (std::size_t r = 0; r < rows; ++r) out[r] -= c * qt[r];
    }
  }
  double norm2 = 0.0;
  for (double v : out) norm2 += v * v;
  const double norm = std::sqrt(norm2);
  // Scale-relative cutoff: a residual at the double noise floor of the
  // projected vector is span membership, not a new direction.
  double xscale = 0.0;
  for (double v : x) xscale += v * v;
  const double cutoff = 1e-12 * std::sqrt(std::max(xscale, 1e-300));
  if (norm <= cutoff) {
    for (double& v : out) v = 0.0;
    return 0.0;
  }
  for (double& v : out) v /= norm;
  return norm;
}

}  // namespace

void svd_update(Svd& svd, std::span<const float> u, std::span<const float> v) {
  HSVD_REQUIRE(!svd.u.empty() && !svd.sigma.empty(),
               "svd_update needs a complete decomposition");
  HSVD_REQUIRE(!svd.v.empty() && svd.v.rows() == svd.v.cols() &&
                   svd.v.cols() == svd.sigma.size(),
               "svd_update needs the full square V (want_v = true, no "
               "truncation)");
  HSVD_REQUIRE(u.size() == svd.u.rows(), "update vector u has wrong length");
  HSVD_REQUIRE(v.size() == svd.v.rows(), "update vector v has wrong length");
  const std::size_t m = svd.u.rows();
  const std::size_t n = svd.sigma.size();

  // Brand's rank-1 identity, all in double. V is square orthogonal, so
  // v is (numerically) inside span(V) and rb collapses to ~0; the
  // general (n+1)-dimensional core handles both shapes uniformly.
  const linalg::MatrixD ud = svd.u.cast<double>();
  const linalg::MatrixD vd = svd.v.cast<double>();
  const std::vector<double> uvec(u.begin(), u.end());
  const std::vector<double> vvec(v.begin(), v.end());
  std::vector<double> mcoef, p, ncoef, qvec;
  const double ra = complement(ud, uvec, mcoef, p);
  const double rb = complement(vd, vvec, ncoef, qvec);

  // K = diag(S, 0) + [m; ra] [n; rb]^T, (n+1) x (n+1).
  linalg::MatrixD k(n + 1, n + 1);
  for (std::size_t t = 0; t < n; ++t) k(t, t) = svd.sigma[t];
  std::vector<double> left = mcoef;
  left.push_back(ra);
  std::vector<double> right = ncoef;
  right.push_back(rb);
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = 0; j <= n; ++j) k(i, j) += left[i] * right[j];
  }

  // Rotation-based small core: the serial one-sided Jacobi reference.
  const linalg::SvdResult core = linalg::reference_svd(k);

  // U' = [U p] U_K, V' = [V q] V_K, keeping the leading n triplets (A'
  // is still m x n, so its (n+1)-th singular value is exactly zero; the
  // dropped column is the numerical null direction).
  linalg::MatrixD uext(m, n + 1);
  uext.assign_cols(0, ud);
  for (std::size_t r = 0; r < m; ++r) uext(r, n) = p.empty() ? 0.0 : p[r];
  linalg::MatrixD vext(v.size(), n + 1);
  vext.assign_cols(0, vd);
  for (std::size_t r = 0; r < v.size(); ++r) {
    vext(r, n) = qvec.empty() ? 0.0 : qvec[r];
  }
  const linalg::MatrixD unew = linalg::matmul(uext, core.u);
  const linalg::MatrixD vnew = linalg::matmul(vext, core.v);

  svd.u = unew.slice_cols(0, n).cast<float>();
  svd.v = vnew.slice_cols(0, n).cast<float>();
  svd.sigma.assign(core.sigma.begin(), core.sigma.begin() + n);
  svd.scenario = "update";
}

void svd_downdate(Svd& svd, std::span<const float> u,
                  std::span<const float> v) {
  std::vector<float> neg(v.begin(), v.end());
  for (float& x : neg) x = -x;
  svd_update(svd, u, std::span<const float>(neg));
}

StreamingSvd::StreamingSvd(linalg::MatrixF a0, SvdOptions options)
    : a_(std::move(a0)), options_(std::move(options)) {
  HSVD_REQUIRE(options_.top_k == 0,
               "StreamingSvd needs the full decomposition (top_k must be 0): "
               "the rank-1 core updates a square V");
  options_.want_v = true;
  redecompose();
  redecompositions_ = 0;  // the initial decomposition is not a re-run
}

void StreamingSvd::apply(std::span<const float> u, std::span<const float> v) {
  HSVD_REQUIRE(u.size() == a_.rows() && v.size() == a_.cols(),
               "update vectors must match the streaming matrix shape");
  // Running matrix first: it is the ground truth the drift check scores
  // the factors against.
  for (std::size_t c = 0; c < a_.cols(); ++c) {
    const float vc = v[c];
    auto col = a_.col(c);
    for (std::size_t r = 0; r < a_.rows(); ++r) col[r] += u[r] * vc;
  }
  svd_update(svd_, u, v);
  ++updates_;
  ++since_check_;
  count_scenario(options_, "scenario.update.applied");

  if (since_check_ < options_.scenario_opts.update_check_interval) return;
  since_check_ = 0;
  // Verifier-checked drift bound: the production ResultVerifier scores
  // the carried factors against the running matrix; the first broken
  // bound (orthogonality decay or residual growth from accumulated fp32
  // cast noise) triggers a full re-decomposition.
  const verify::ResultVerifier verifier(options_.precision);
  const verify::VerifyOutcome outcome = verifier.check(a_, svd_);
  last_residual_ = outcome.residual;
  if (!outcome.passed) {
    count_scenario(options_, "scenario.update.redecompose");
    redecompose();
    ++redecompositions_;
  }
}

void StreamingSvd::redecompose() {
  svd_ = hsvd::svd(a_, options_);
  svd_.scenario = "update";
}

}  // namespace hsvd::scenarios
