#include "scenarios/truncated.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/ops.hpp"
#include "linalg/qr.hpp"
#include "linalg/reference_svd.hpp"
#include "scenarios/scenarios.hpp"
#include "verify/verifier.hpp"

namespace hsvd::scenarios {

namespace {

// Truncates the assembled factors to the leading k triplets.
void truncate_to_k(Svd& out, std::size_t k, bool want_v) {
  if (out.u.cols() > k) out.u = out.u.slice_cols(0, k);
  if (out.sigma.size() > k) out.sigma.resize(k);
  if (!want_v) {
    out.v = linalg::MatrixF();
  } else if (out.v.cols() > k) {
    out.v = out.v.slice_cols(0, k);
  }
}

// Host double-precision reference for the scenario: the leading k
// triplets of the full reference decomposition. Its truncation residual
// is the optimal rank-k error, which is inside any valid sketch bound.
Svd reference_result(const linalg::MatrixF& a, const SvdOptions& options) {
  const linalg::SvdResult ref = linalg::reference_svd(a.cast<double>());
  const std::size_t k = std::min<std::size_t>(options.top_k, ref.sigma.size());
  Svd out;
  out.u = ref.u.cast<float>();
  out.sigma.assign(ref.sigma.begin(), ref.sigma.end());
  out.v = ref.v.cast<float>();
  truncate_to_k(out, k, options.want_v);
  out.iterations = ref.sweeps;
  out.backend = "reference";
  out.scenario = "truncated";
  out.scenario_top_k = k;
  // Optimal rank-k error, a posteriori from the dropped tail.
  double tail2 = 0.0;
  double total2 = 0.0;
  for (std::size_t i = 0; i < ref.sigma.size(); ++i) {
    total2 += ref.sigma[i] * ref.sigma[i];
    if (i >= k) tail2 += ref.sigma[i] * ref.sigma[i];
  }
  out.scenario_bound =
      total2 > 0.0 ? std::sqrt(tail2 / total2) : 0.0;
  out.scenario_bound +=
      verify::ResultVerifier::residual_bound(k, options.precision);
  return out;
}

}  // namespace

Svd svd_truncated(const linalg::MatrixF& a, const SvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = options.top_k;
  HSVD_REQUIRE(m >= n && n >= 2,
               "truncated front-end requires rows >= cols >= 2");
  HSVD_REQUIRE(k >= 1 && k <= n, "top_k out of range");
  count_scenario(options, "scenario.truncated");

  const ScenarioOptions& knobs = options.scenario_opts;
  const std::size_t l = std::min(n, k + knobs.oversample);

  // Stage 1 (host, double): seeded Gaussian sketch + subspace
  // iterations. Every QR re-orthonormalization keeps the power pass
  // numerically tame; the draw is seeded, so a repeated query is
  // bit-identical (and serveable from the result cache).
  const linalg::MatrixD ad = a.cast<double>();
  Rng rng(knobs.sketch_seed);
  const linalg::MatrixD omega = linalg::random_gaussian(n, l, rng);
  linalg::MatrixD q = linalg::householder_qr(linalg::matmul(ad, omega)).q;
  for (int it = 0; it < knobs.power_iterations; ++it) {
    const linalg::MatrixD z =
        linalg::householder_qr(linalg::matmul(linalg::transpose(ad), q)).q;
    q = linalg::householder_qr(linalg::matmul(ad, z)).q;
  }

  // Stage 2 (fabric): B = Q^T A is l x n (wide); the core decomposes
  // B^T (n x l, tall) so the facade's wide-transpose branch never
  // fires. B^T = V_B Sigma U_B^T, so the inner result's U is V_B and
  // its V is U_B.
  const linalg::MatrixD b = linalg::matmul(linalg::transpose(q), ad);
  SvdOptions inner = options;
  inner.scenario = Scenario::kOff;
  inner.top_k = 0;
  inner.want_v = true;
  Svd out = svd(linalg::transpose(b).cast<float>(), inner);

  // A-posteriori error bound, relative to ||A||_F (see truncated.hpp):
  // subspace miss sqrt(||A||^2 - ||B||^2) + dropped tail of B's
  // spectrum + the fp32 core's dense residual allowance.
  const double a_norm = linalg::frobenius_norm(ad);
  const double b_norm = linalg::frobenius_norm(b);
  const double miss2 = std::max(0.0, a_norm * a_norm - b_norm * b_norm);
  double tail2 = 0.0;
  for (std::size_t i = k; i < out.sigma.size(); ++i) {
    tail2 += static_cast<double>(out.sigma[i]) * out.sigma[i];
  }
  const double scale = std::max(a_norm, 1e-300);
  const double bound =
      (std::sqrt(miss2) + std::sqrt(tail2)) / scale +
      verify::ResultVerifier::residual_bound(k, options.precision);

  // Stage 3 (host, double): U = Q * U_B, V = V_B, truncated to k.
  linalg::MatrixF v_full = std::move(out.u);  // V_B, n x l
  out.u = linalg::matmul(q, out.v.cast<double>()).cast<float>();  // m x l
  out.v = std::move(v_full);
  truncate_to_k(out, k, options.want_v);
  out.scenario = "truncated";
  out.scenario_top_k = k;
  out.scenario_bound = bound;
  attest_assembled(a, options, out, /*residual_allowance=*/bound,
                   &reference_result);
  return out;
}

}  // namespace hsvd::scenarios
