// Escalation ladder for verified compute (DESIGN.md section 15).
//
// attest_result() is the single choke point every execution path funnels
// its answer through. When the policy selects the request, the result is
// scored by ResultVerifier; a failure climbs the ladder
//
//   primary -> rerun (same backend) -> reroute (alternate backend)
//           -> host double-precision reference
//
// until a rung verifies clean. Each rung is supplied by the caller as a
// hook (the classic path and the router wire them differently); missing
// hooks are skipped, the reference rung is always available. Every rung
// executed is recorded in Svd::verify_report with its scores, and each
// rung's pass/fail is fed to the health hook so the router's per-backend
// error budgets learn from attestation outcomes. With the policy off (or
// the request not sampled) the input result is returned untouched --
// bit-identical to a build without the verify layer.
#pragma once

#include <functional>
#include <string>

#include "heterosvd.hpp"
#include "linalg/matrix.hpp"
#include "verify/policy.hpp"

namespace hsvd::verify {

// Rung suppliers for one attestation. Any hook may be empty; the ladder
// skips rungs it cannot run. Hooks may throw -- the failure is recorded
// in the report and the ladder continues to the next rung.
struct EscalationHooks {
  // Provenance/health label of the backend that produced the primary
  // result ("" = the classic AIE path).
  std::string primary_backend;
  // Re-executes the request on the same backend.
  std::function<Svd()> rerun;
  // Re-routes to an alternate backend; writes the backend actually used
  // into *used_backend before returning.
  std::function<Svd(std::string* used_backend)> reroute;
  // Health feedback: called once per rung with the backend that
  // produced the candidate and whether it attested clean. Also called
  // on the unchecked path with the execution outcome, so error budgets
  // see every dispatch.
  std::function<void(const std::string& backend, bool ok)> health;
};

// Attests `result` (the decomposition of `a` under `options`) and
// escalates on failure. Returns the final answer with verify_report
// filled in. Never throws on a verification failure -- the worst case
// is the reference rung's answer with report.verified=false.
Svd attest_result(const linalg::MatrixF& a, const SvdOptions& options,
                  Svd result, const EscalationHooks& hooks);

// The terminal rung: host double-precision one-sided Jacobi, cast back
// to the library's fp32 factor types. Handles wide inputs by
// transposition. backend is set to "reference".
Svd reference_result(const linalg::MatrixF& a, bool want_v);

// Applies any armed versal::FaultKind::kSilentError for `task_slot` to
// the result's factors. Called *after* every dataflow detection point
// has passed -- this is the corruption that only attestation can see.
// No-op without an injector or on a factorless (failed) result.
void apply_silent_faults(const SvdOptions& options, int task_slot, Svd& out);

}  // namespace hsvd::verify
