#include "verify/escalate.hpp"

#include <exception>
#include <utility>

#include "common/format.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"
#include "obs/obs.hpp"
#include "verify/verifier.hpp"

namespace hsvd::verify {

namespace {

void count(const SvdOptions& options, const char* name) {
  if (options.observer != nullptr) options.observer->metrics().add(name);
}

}  // namespace

Svd reference_result(const linalg::MatrixF& a, bool want_v) {
  const bool wide = a.cols() > a.rows();
  const linalg::MatrixD ad =
      wide ? linalg::transpose(a).cast<double>() : a.cast<double>();
  const linalg::SvdResult ref = linalg::reference_svd(ad);

  Svd out;
  out.status = SvdStatus::kOk;
  out.converged = true;
  out.iterations = ref.sweeps;
  out.backend = "reference";
  out.sigma.assign(ref.sigma.begin(), ref.sigma.end());
  linalg::MatrixF uf = ref.u.cast<float>();
  linalg::MatrixF vf = ref.v.cast<float>();
  if (wide) {
    // A^T = U' Sigma V'^T implies A = V' Sigma U'^T.
    out.u = std::move(vf);
    if (want_v) out.v = std::move(uf);
  } else {
    out.u = std::move(uf);
    if (want_v) out.v = std::move(vf);
  }
  return out;
}

void apply_silent_faults(const SvdOptions& options, int task_slot, Svd& out) {
  if (options.fault_injector == nullptr || !out.ok() || out.u.empty() ||
      out.sigma.empty()) {
    return;
  }
  if (options.fault_injector->corrupt_result(task_slot, out.u.data(),
                                             out.sigma)) {
    count(options, "faults.silent.injected");
  }
}

Svd attest_result(const linalg::MatrixF& a, const SvdOptions& options,
                  Svd result, const EscalationHooks& hooks) {
  const VerifyPolicy& policy = options.verify;
  if (!policy.enabled() || !policy.selects(verify_ident(a))) {
    // Unchecked path: still feed the execution outcome to the health
    // budget, then hand the result back untouched (bit-identity).
    if (hooks.health) {
      hooks.health(hooks.primary_backend,
                   result.status != SvdStatus::kFailed);
    }
    return result;
  }

  count(options, "verify.checked");
  const ResultVerifier verifier(options.precision);
  VerifyReport report;
  report.checked = true;

  auto score = [&](VerifyRung rung, const std::string& backend,
                   const Svd& candidate) {
    RungAttempt attempt;
    attempt.rung = rung;
    attempt.backend = backend;
    attempt.outcome = verifier.check(a, candidate);
    report.attempts.push_back(std::move(attempt));
    return report.attempts.back().outcome.passed;
  };
  auto record_throw = [&](VerifyRung rung, const std::string& backend,
                          const char* what) {
    RungAttempt attempt;
    attempt.rung = rung;
    attempt.backend = backend;
    attempt.outcome.note = cat("rung raised: ", what);
    report.attempts.push_back(std::move(attempt));
  };
  auto health = [&](const std::string& backend, bool ok) {
    if (hooks.health) hooks.health(backend, ok);
  };
  auto finish = [&](Svd&& answer, VerifyRung rung) {
    report.rung = rung;
    report.verified =
        !report.attempts.empty() && report.attempts.back().outcome.passed;
    count(options, report.verified ? "verify.pass" : "verify.escape");
    if (report.escalated()) count(options, "verify.escalated");
    if (options.observer != nullptr) {
      auto& metrics = options.observer->metrics();
      const VerifyOutcome& final_scores = report.attempts.back().outcome;
      if (final_scores.residual >= 0.0) {
        metrics.register_histogram(
            "verify.residual",
            obs::MetricsRegistry::exponential_bounds(1e-9, 4.0, 24));
        metrics.observe("verify.residual", final_scores.residual);
      }
      if (final_scores.u_orth >= 0.0) {
        metrics.register_histogram(
            "verify.u_orth",
            obs::MetricsRegistry::exponential_bounds(1e-9, 4.0, 24));
        metrics.observe("verify.u_orth", final_scores.u_orth);
      }
    }
    answer.verify_report = std::move(report);
    return std::move(answer);
  };

  // Rung 1: the primary execution.
  if (score(VerifyRung::kPrimary, hooks.primary_backend, result)) {
    health(hooks.primary_backend, true);
    return finish(std::move(result), VerifyRung::kPrimary);
  }
  count(options, "verify.fail.primary");
  health(hooks.primary_backend, false);

  // Rung 2: re-run on the same backend (clears transient corruption).
  if (hooks.rerun) {
    count(options, "verify.rung.rerun");
    try {
      Svd candidate = hooks.rerun();
      const bool ok =
          score(VerifyRung::kRerun, hooks.primary_backend, candidate);
      health(hooks.primary_backend, ok);
      if (ok) return finish(std::move(candidate), VerifyRung::kRerun);
    } catch (const std::exception& e) {
      record_throw(VerifyRung::kRerun, hooks.primary_backend, e.what());
      health(hooks.primary_backend, false);
    }
  }

  // Rung 3: re-route to an alternate backend.
  if (hooks.reroute) {
    count(options, "verify.rung.reroute");
    std::string used;
    try {
      Svd candidate = hooks.reroute(&used);
      const bool ok = score(VerifyRung::kReroute, used, candidate);
      health(used, ok);
      if (ok) return finish(std::move(candidate), VerifyRung::kReroute);
    } catch (const std::exception& e) {
      record_throw(VerifyRung::kReroute, used.empty() ? "reroute" : used,
                   e.what());
      if (!used.empty()) health(used, false);
    }
  }

  // Rung 4: the host double-precision reference, always available.
  count(options, "verify.rung.reference");
  try {
    Svd candidate = reference_result(a, options.want_v || !result.v.empty());
    score(VerifyRung::kReference, "reference", candidate);
    return finish(std::move(candidate), VerifyRung::kReference);
  } catch (const std::exception& e) {
    record_throw(VerifyRung::kReference, "reference", e.what());
    // Nothing better exists; surface the primary answer, unverified.
    return finish(std::move(result), VerifyRung::kReference);
  }
}

}  // namespace hsvd::verify
