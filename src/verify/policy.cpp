#include "verify/policy.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "common/format.hpp"

namespace hsvd::verify {

const char* to_string(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kSample: return "sample";
    case VerifyMode::kAlways: return "always";
  }
  return "unknown";
}

const char* to_string(VerifyTier tier) {
  switch (tier) {
    case VerifyTier::kCheap: return "cheap";
    case VerifyTier::kMedium: return "medium";
    case VerifyTier::kFull: return "full";
  }
  return "unknown";
}

const char* to_string(VerifyRung rung) {
  switch (rung) {
    case VerifyRung::kNone: return "none";
    case VerifyRung::kPrimary: return "primary";
    case VerifyRung::kRerun: return "rerun";
    case VerifyRung::kReroute: return "reroute";
    case VerifyRung::kReference: return "reference";
  }
  return "unknown";
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool VerifyPolicy::selects(std::uint64_t ident) const {
  switch (mode) {
    case VerifyMode::kOff:
      return false;
    case VerifyMode::kAlways:
      return true;
    case VerifyMode::kSample: {
      // Threshold comparison on a seeded hash of the identity: the
      // selection is a pure function of (seed, ident), so replays and
      // duplicate requests agree on whether they are checked.
      const double unit =
          static_cast<double>(splitmix64(seed ^ ident) >> 11) * 0x1.0p-53;
      return unit < sample_rate;
    }
  }
  return false;
}

void VerifyPolicy::validate() const {
  if (mode == VerifyMode::kSample) {
    if (!std::isfinite(sample_rate) || sample_rate <= 0.0 ||
        sample_rate > 1.0) {
      throw InputError(cat("verify sample rate must be in (0, 1], got ",
                           sample_rate));
    }
  }
}

VerifyPolicy parse_verify_policy(const std::string& spec) {
  VerifyPolicy policy;
  if (spec == "off" || spec.empty()) {
    return policy;
  }
  if (spec == "always") {
    policy.mode = VerifyMode::kAlways;
    return policy;
  }
  const std::string prefix = "sample:";
  if (spec.rfind(prefix, 0) == 0) {
    policy.mode = VerifyMode::kSample;
    std::string rest = spec.substr(prefix.size());
    const auto colon = rest.find(':');
    std::string rate_text = rest.substr(0, colon);
    char* end = nullptr;
    policy.sample_rate = std::strtod(rate_text.c_str(), &end);
    if (end == rate_text.c_str() || *end != '\0') {
      throw InputError(cat("invalid verify sample rate '", rate_text, "'"));
    }
    if (colon != std::string::npos) {
      std::string seed_text = rest.substr(colon + 1);
      char* send = nullptr;
      policy.seed = std::strtoull(seed_text.c_str(), &send, 10);
      if (send == seed_text.c_str() || *send != '\0') {
        throw InputError(cat("invalid verify sample seed '", seed_text, "'"));
      }
    }
    policy.validate();
    return policy;
  }
  throw InputError(cat("invalid verify policy '", spec,
                       "' (expected off, always, or sample:<p>[:<seed>])"));
}

std::string to_string(const VerifyPolicy& policy) {
  switch (policy.mode) {
    case VerifyMode::kOff: return "off";
    case VerifyMode::kAlways: return "always";
    case VerifyMode::kSample:
      return cat("sample:", policy.sample_rate,
                 policy.seed != 0 ? cat(":", policy.seed) : std::string());
  }
  return "off";
}

}  // namespace hsvd::verify
