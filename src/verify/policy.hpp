// Verified-compute policy and provenance types (DESIGN.md section 15).
//
// The accelerator's fault detection lives at dataflow boundaries
// (checksums, non-finite guards, the watchdog): a *silent* error -- an
// undetected SEU, a wrong-but-finite kernel result, a buggy backend --
// flows straight past it. The verify layer closes that gap with result
// attestation: tiered mathematical checks on the returned factors,
// selected per request by a VerifyPolicy, and an escalation ladder
// (re-run -> re-route -> host double-precision reference) when a check
// fails. This header holds the policy and the provenance types; the
// checks themselves live in verify/verifier.hpp and the ladder in
// verify/escalate.hpp. It is included by heterosvd.hpp, so it must not
// depend on the facade types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsvd::verify {

enum class VerifyMode {
  kOff,     // never check: the classic, bit-identical default
  kSample,  // check a seeded deterministic sample of results
  kAlways,  // check every result
};

const char* to_string(VerifyMode mode);

// When (not how) results are verified. The default kOff path adds no
// work, no state, and no randomness: results are bit-identical to a
// build without the verify layer. kSample draws from a seeded hash of
// the request identity (the input matrix digest), so the same request
// is either always or never checked for a given seed -- replays agree.
struct VerifyPolicy {
  VerifyMode mode = VerifyMode::kOff;
  // kSample: probability in (0, 1]; ignored otherwise.
  double sample_rate = 0.0;
  // kSample: seed of the selection stream.
  std::uint64_t seed = 0;

  bool enabled() const { return mode != VerifyMode::kOff; }
  // Whether the result identified by `ident` is selected for
  // verification under this policy. Pure: same (policy, ident) always
  // answers the same.
  bool selects(std::uint64_t ident) const;
  void validate() const;
};

// Parses "off", "always", or "sample:<p>" (optionally "sample:<p>:<seed>").
// Throws hsvd::InputError on anything else.
VerifyPolicy parse_verify_policy(const std::string& spec);
std::string to_string(const VerifyPolicy& policy);

// The tiers a ResultVerifier runs, cheapest first; a failed tier stops
// the pass (deeper tiers are skipped -- their scores stay unset).
enum class VerifyTier {
  kCheap,   // finite factors, non-negative descending sigma
  kMedium,  // ||U^T U - I||_F and ||V^T V - I||_F vs shape-scaled bounds
  kFull,    // relative residual ||A - U Sigma V^T||_F / ||A||_F
};

const char* to_string(VerifyTier tier);

// Which rung of the escalation ladder produced the final answer.
enum class VerifyRung {
  kNone,       // verification did not run (policy off / not sampled)
  kPrimary,    // the original execution verified clean
  kRerun,      // re-run on the same backend
  kReroute,    // re-routed to an alternate backend via the Router
  kReference,  // host double-precision reference decomposition
};

const char* to_string(VerifyRung rung);

// Scores of one verifier pass over one result. A score of -1 means the
// tier that computes it never ran (an earlier tier failed first).
struct VerifyOutcome {
  bool passed = false;
  // First tier that failed; meaningful only when !passed.
  VerifyTier failed_tier = VerifyTier::kCheap;
  double u_orth = -1.0;     // ||U^T U - I||_F over significant columns
  double v_orth = -1.0;     // ||V^T V - I||_F (-1 when V absent too)
  double residual = -1.0;   // ||A - U Sigma V^T||_F / ||A||_F
  double orth_bound = 0.0;
  double v_orth_bound = 0.0;
  double residual_bound = 0.0;
  std::string note;  // diagnostic for the failing check
};

// One executed rung: where the candidate result came from and what the
// verifier scored it.
struct RungAttempt {
  VerifyRung rung = VerifyRung::kPrimary;
  // Backend that produced the candidate ("" = classic AIE path,
  // "reference" = the host double-precision rung).
  std::string backend;
  VerifyOutcome outcome;
};

// Full attestation provenance of one Svd result.
struct VerifyReport {
  // Policy selected this result for verification.
  bool checked = false;
  // The final answer passed its checks.
  bool verified = false;
  // Rung that produced the final answer (kNone when !checked).
  VerifyRung rung = VerifyRung::kNone;
  // Every rung executed, in ladder order, with its scores.
  std::vector<RungAttempt> attempts;

  // Convenience accessors over the final attempt (CLI columns).
  double final_residual() const {
    return attempts.empty() ? -1.0 : attempts.back().outcome.residual;
  }
  double final_u_orth() const {
    return attempts.empty() ? -1.0 : attempts.back().outcome.u_orth;
  }
  // True when the ladder had to go past the primary execution.
  bool escalated() const {
    return checked && rung != VerifyRung::kNone && rung != VerifyRung::kPrimary;
  }
};

}  // namespace hsvd::verify
