// ResultVerifier: tiered mathematical attestation of an SVD result
// against its input (DESIGN.md section 15).
//
// Three tiers, cheapest first, each gating the next:
//
//   cheap  -- every factor entry is finite, sigma is non-negative and
//             descending. O(mn), no arithmetic beyond comparisons.
//   medium -- ||U^T U - I||_F (and ||V^T V - I||_F when V is present)
//             over the *significant* columns, against a shape-scaled
//             bound. Gram entries are computed with the same SIMD dot
//             kernel the decomposition itself uses (linalg::dot), so
//             the check exercises the production arithmetic path.
//   full   -- the relative residual ||A - U Sigma V^T||_F / ||A||_F,
//             accumulated in double to avoid cancellation.
//
// Bound derivation (section 15): a converged one-sided Jacobi run
// bounds every column-pair coherence by the precision target p, so the
// off-diagonal of U^T U is entrywise <= p and its Frobenius norm is
// <= n*p; fp32 normalization adds O(eps) per diagonal entry. The U
// bound is 4*n_sig*max(p, 32*eps) -- a 4x safety factor over the n*p
// envelope. V = A^T U Sigma^-1 amplifies fp32 noise by sigma_max/sigma_t
// per column, so the V check only covers columns with sigma_t >=
// 1e-3*sigma_max (amplification <= 1e3) under a correspondingly looser
// bound. The residual of a backward-stable Jacobi run is O(eps)*||A||
// independent of conditioning; the bound 16*sqrt(n)*max(p, 32*eps)
// leaves the same safety margin. A not-converged result is scored
// against the same bounds: if it exceeds them, escalation upgrades it.
#pragma once

#include <cstddef>

#include "heterosvd.hpp"
#include "linalg/matrix.hpp"
#include "verify/policy.hpp"

namespace hsvd::verify {

class ResultVerifier {
 public:
  // `precision` is the run's convergence target (SvdOptions::precision);
  // the bounds scale with it.
  explicit ResultVerifier(double precision) : precision_(precision) {}

  // Shape-scaled bounds (see header comment for the derivation).
  static double orthogonality_bound(std::size_t significant_cols,
                                    double precision);
  static double v_orthogonality_bound(std::size_t significant_cols,
                                      double precision);
  static double residual_bound(std::size_t cols, double precision);

  // Runs the tiers in order over `result` (factors of `a`); stops at
  // the first failure. Pure: no observer, no state, deterministic.
  VerifyOutcome check(const linalg::MatrixF& a, const Svd& result) const;

 private:
  double precision_;
};

// Deterministic request identity for VerifyPolicy::selects: the FNV-1a
// digest of the input matrix bytes (the same digest the result cache
// keys on), so sampling decisions agree across layers and replays.
std::uint64_t verify_ident(const linalg::MatrixF& a);

}  // namespace hsvd::verify
