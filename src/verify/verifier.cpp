#include "verify/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/format.hpp"
#include "linalg/ops.hpp"
#include "versal/faults.hpp"

namespace hsvd::verify {

namespace {

// fp32 machine epsilon; the noise floor every bound is clamped to.
constexpr double kEps32 = 1.1920929e-7;

// Significance cutoff for the U orthogonality check and the residual
// sum: matches derive_v's null-space cutoff, so the columns the library
// itself treats as rank live are exactly the columns attested.
float u_significance_cutoff(const std::vector<float>& sigma) {
  float scale = 0.0f;
  for (float s : sigma) scale = std::max(scale, s);
  return std::max(1e-12f, 1e-6f * scale);
}

// The V factor amplifies fp32 noise by sigma_max/sigma_t per column
// (V = A^T U Sigma^-1); only columns with amplification <= 1e3 carry a
// meaningful orthogonality signal.
float v_significance_cutoff(const std::vector<float>& sigma) {
  float scale = 0.0f;
  for (float s : sigma) scale = std::max(scale, s);
  return 1e-3f * scale;
}

bool all_finite(std::span<const float> data) {
  for (float x : data) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// ||Q^T Q - I||_F over the columns of `q` whose sigma exceeds `cutoff`,
// with the Gram entries computed by the SIMD dot kernel.
double gram_orthogonality(const linalg::MatrixF& q,
                          const std::vector<float>& sigma, float cutoff) {
  std::vector<std::size_t> keep;
  const std::size_t limit = std::min<std::size_t>(q.cols(), sigma.size());
  for (std::size_t t = 0; t < limit; ++t) {
    if (sigma[t] > cutoff) keep.push_back(t);
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (std::size_t j = i; j < keep.size(); ++j) {
      const double g =
          linalg::dot<float>(q.col(keep[i]), q.col(keep[j]));
      const double err = g - (i == j ? 1.0 : 0.0);
      // Off-diagonal entries appear twice in the symmetric Gram matrix.
      sum += (i == j ? 1.0 : 2.0) * err * err;
    }
  }
  return std::sqrt(sum);
}

// Relative residual ||A - U Sigma V^T||_F / ||A||_F, accumulated in
// double column by column: the subtraction must happen entrywise --
// expanding the norm into Gram products would cancel catastrophically
// at fp32 dot precision.
double relative_residual(const linalg::MatrixF& a, const linalg::MatrixF& u,
                         const std::vector<float>& sigma,
                         const linalg::MatrixF& v, float cutoff) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  double a_norm_sq = 0.0;
  double err_sq = 0.0;
  std::vector<double> col(m);
  const std::size_t terms = std::min<std::size_t>(sigma.size(), u.cols());
  for (std::size_t c = 0; c < n; ++c) {
    const auto ac = a.col(c);
    for (std::size_t r = 0; r < m; ++r) {
      const double x = static_cast<double>(ac[r]);
      col[r] = x;
      a_norm_sq += x * x;
    }
    for (std::size_t t = 0; t < terms; ++t) {
      if (sigma[t] <= cutoff) continue;
      const double coef =
          static_cast<double>(sigma[t]) * static_cast<double>(v(c, t));
      if (coef == 0.0) continue;
      const auto ut = u.col(t);
      for (std::size_t r = 0; r < m; ++r) {
        col[r] -= coef * static_cast<double>(ut[r]);
      }
    }
    for (std::size_t r = 0; r < m; ++r) err_sq += col[r] * col[r];
  }
  if (a_norm_sq <= 0.0) return 0.0;
  return std::sqrt(err_sq / a_norm_sq);
}

}  // namespace

double ResultVerifier::orthogonality_bound(std::size_t significant_cols,
                                           double precision) {
  const double floor = std::max(precision, 32.0 * kEps32);
  return 4.0 * static_cast<double>(std::max<std::size_t>(significant_cols, 1)) *
         floor;
}

double ResultVerifier::v_orthogonality_bound(std::size_t significant_cols,
                                             double precision) {
  // The 1e-3 significance cutoff admits up to 1e3x fp32 noise
  // amplification in the checked columns.
  const double amplified = std::max(precision, 1e3 * 32.0 * kEps32);
  return 4.0 *
         static_cast<double>(std::max<std::size_t>(significant_cols, 1)) *
         amplified;
}

double ResultVerifier::residual_bound(std::size_t cols, double precision) {
  const double floor = std::max(precision, 32.0 * kEps32);
  return 16.0 * std::sqrt(static_cast<double>(std::max<std::size_t>(cols, 1))) *
         floor;
}

VerifyOutcome ResultVerifier::check(const linalg::MatrixF& a,
                                    const Svd& result) const {
  VerifyOutcome out;

  // ---- cheap: finite factors, non-negative descending sigma ----------
  out.failed_tier = VerifyTier::kCheap;
  if (result.status == SvdStatus::kFailed || result.u.empty() ||
      result.sigma.empty()) {
    out.note = "no factors to attest (failed or empty result)";
    return out;
  }
  if (result.u.rows() != a.rows() || result.u.cols() > a.cols() ||
      result.sigma.size() > result.u.cols()) {
    out.note = cat("factor shape mismatch: U is ", result.u.rows(), "x",
                   result.u.cols(), " for a ", a.rows(), "x", a.cols(),
                   " input");
    return out;
  }
  if (!all_finite(result.u.data()) || !all_finite(result.sigma) ||
      !all_finite(result.v.data())) {
    out.note = "non-finite entry in the returned factors";
    return out;
  }
  for (std::size_t t = 0; t < result.sigma.size(); ++t) {
    if (result.sigma[t] < 0.0f) {
      out.note = cat("negative singular value at index ", t);
      return out;
    }
    if (t > 0 && result.sigma[t] > result.sigma[t - 1]) {
      out.note = cat("sigma not descending at index ", t);
      return out;
    }
  }

  // ---- medium: factor orthogonality over significant columns ---------
  out.failed_tier = VerifyTier::kMedium;
  const float u_cutoff = u_significance_cutoff(result.sigma);
  std::size_t n_sig = 0;
  for (float s : result.sigma) {
    if (s > u_cutoff) ++n_sig;
  }
  out.orth_bound = orthogonality_bound(n_sig, precision_);
  out.u_orth = gram_orthogonality(result.u, result.sigma, u_cutoff);
  if (out.u_orth > out.orth_bound) {
    out.note = cat("U orthogonality ", out.u_orth, " exceeds bound ",
                   out.orth_bound);
    return out;
  }
  if (!result.v.empty()) {
    const float v_cutoff = v_significance_cutoff(result.sigma);
    std::size_t v_sig = 0;
    for (float s : result.sigma) {
      if (s > v_cutoff) ++v_sig;
    }
    out.v_orth_bound = v_orthogonality_bound(v_sig, precision_);
    out.v_orth = gram_orthogonality(result.v, result.sigma, v_cutoff);
    if (out.v_orth > out.v_orth_bound) {
      out.note = cat("V orthogonality ", out.v_orth, " exceeds bound ",
                     out.v_orth_bound);
      return out;
    }
  }

  // ---- full: relative reconstruction residual ------------------------
  // Needs V; a want_v=false result is attested by the first two tiers
  // only (U and sigma are the whole contract there).
  if (!result.v.empty()) {
    out.failed_tier = VerifyTier::kFull;
    out.residual_bound = residual_bound(a.cols(), precision_);
    out.residual =
        relative_residual(a, result.u, result.sigma, result.v, u_cutoff);
    if (out.residual > out.residual_bound) {
      out.note = cat("relative residual ", out.residual, " exceeds bound ",
                     out.residual_bound);
      return out;
    }
  }

  out.passed = true;
  out.note.clear();
  return out;
}

std::uint64_t verify_ident(const linalg::MatrixF& a) {
  return versal::buffer_checksum(a.data());
}

}  // namespace hsvd::verify
