#include "shard/topology.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "jacobi/movement.hpp"
#include "jacobi/ordering.hpp"

namespace hsvd::shard {

int home_shard(int block, int shards) {
  HSVD_REQUIRE(block >= 0, "block must be nonnegative");
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  return block % shards;
}

namespace {

double plio_rate(double bits_per_cycle, double pl_frequency_hz, double cap) {
  return std::min(bits_per_cycle / 8.0 * pl_frequency_hz, cap);
}

}  // namespace

InterShardLink::InterShardLink(int shards,
                               const versal::DeviceResources& device,
                               double pl_frequency_hz, perf::PlioModel plio)
    : noc_(shards, device.ddr_bytes_per_s, device.ddr_latency_s) {
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  HSVD_REQUIRE(pl_frequency_hz > 0, "PL frequency must be positive");
  const double egress_rate = plio_rate(plio.plio_bits, pl_frequency_hz,
                                       device.plio_aie_to_pl_bytes_per_s);
  const double ingress_rate = plio_rate(plio.plio_bits, pl_frequency_hz,
                                        device.plio_pl_to_aie_bytes_per_s);
  egress_.reserve(static_cast<std::size_t>(shards));
  ingress_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    egress_.emplace_back(cat("xshard.out.", s), egress_rate);
    ingress_.emplace_back(cat("xshard.in.", s), ingress_rate);
  }
}

double InterShardLink::transfer(int from, int to, double ready, double bytes) {
  HSVD_REQUIRE(from >= 0 && from < shards(), "source shard out of range");
  HSVD_REQUIRE(to >= 0 && to < shards(), "destination shard out of range");
  HSVD_REQUIRE(from != to, "a block never hops to its own shard");
  const double off_array =
      egress_[static_cast<std::size_t>(from)].transfer(ready, bytes);
  const double across = noc_.transfer(from, off_array, bytes);
  const double landed =
      ingress_[static_cast<std::size_t>(to)].transfer(across, bytes);
  ++transfers_;
  bytes_moved_ += static_cast<std::uint64_t>(bytes);
  return landed;
}

void InterShardLink::reset_time() {
  noc_.reset_time();
  for (auto& ch : egress_) ch.timeline().reset();
  for (auto& ch : ingress_) ch.timeline().reset();
  transfers_ = 0;
  bytes_moved_ = 0;
}

double InterShardLink::hop_seconds(const versal::DeviceResources& device,
                                   double pl_frequency_hz, double bytes,
                                   perf::PlioModel plio) {
  const double egress_rate = plio_rate(plio.plio_bits, pl_frequency_hz,
                                       device.plio_aie_to_pl_bytes_per_s);
  const double ingress_rate = plio_rate(plio.plio_bits, pl_frequency_hz,
                                        device.plio_pl_to_aie_bytes_per_s);
  return bytes / egress_rate + device.ddr_latency_s +
         bytes / device.ddr_bytes_per_s + bytes / ingress_rate;
}

int inter_shard_block_moves_per_sweep(int blocks, int shards) {
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  if (shards == 1) return 0;
  const auto schedule = jacobi::block_ring_schedule(blocks);
  return jacobi::count_inter_shard_moves(schedule, shards);
}

}  // namespace hsvd::shard
