// Multi-array sharding topology (DESIGN.md section 11).
//
// One SVD is partitioned across S simulated AIE arrays ("shards"). The
// block Hestenes-Jacobi ring is the unit of distribution: the sites of
// the block-level tournament (jacobi::block_ring_schedule) are assigned
// to shards cyclically (site j -> shard j % S), so column blocks rotate
// through ring stops that live on several arrays. A block that moves
// between sites on one shard stays in that array's PL URAM buffers
// (free at block granularity -- the intra-array moves are already priced
// by the dataflow builder); a block that crosses to another shard must
// leave through an AIE->PL PLIO, hop the NoC/DDR fabric, and re-enter
// the destination array over its PL->AIE PLIO. InterShardLink prices
// exactly that edge with the existing 24/32 GB/s PLIO and NoC models.
#pragma once

#include <cstdint>
#include <vector>

#include "perfmodel/aie_timing.hpp"
#include "versal/noc.hpp"
#include "versal/resources.hpp"
#include "versal/timeline.hpp"

namespace hsvd::shard {

// Block-cyclic home shard of block `block`: where its DDR staging lands.
int home_shard(int block, int shards);

// The inter-shard ring edge: AIE -> PL (24 GB/s PLIO egress) -> NoC/DDR
// hop -> PL -> AIE (32 GB/s PLIO ingress). Each shard owns one egress
// and one ingress channel, and the connecting NoC exposes one port per
// source shard; a transfer serializes on all three timelines, so
// concurrent cross-shard moves queue exactly like any other fabric
// traffic in the simulator.
class InterShardLink {
 public:
  InterShardLink(int shards, const versal::DeviceResources& device,
                 double pl_frequency_hz,
                 perf::PlioModel plio = {});

  // Moves `bytes` of one block from shard `from` to shard `to`; returns
  // the arrival time at the destination shard's PL buffers.
  double transfer(int from, int to, double ready, double bytes);

  void reset_time();

  int shards() const { return static_cast<int>(egress_.size()); }
  std::uint64_t transfers() const { return transfers_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

  // Unqueued duration of one cross-shard block hop (the analytic model's
  // edge cost): egress PLIO + NoC traversal + DDR bandwidth + ingress
  // PLIO, no queueing.
  static double hop_seconds(const versal::DeviceResources& device,
                            double pl_frequency_hz, double bytes,
                            perf::PlioModel plio = {});

 private:
  versal::NocModel noc_;
  std::vector<versal::Channel> egress_;   // AIE -> PL, 24 GB/s cap
  std::vector<versal::Channel> ingress_;  // PL -> AIE, 32 GB/s cap
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

// Cross-shard block moves of one steady-state sweep of the block ring:
// jacobi::count_inter_shard_moves over the padded block schedule. The
// phantom bye block of an odd count is included (it is a worst-case
// bound there; even block counts -- every power-of-two configuration --
// are exact).
int inter_shard_block_moves_per_sweep(int blocks, int shards);

}  // namespace hsvd::shard
