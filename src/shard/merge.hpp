// Merging per-shard simulator output into one report (DESIGN.md
// section 11).
//
// A sharded run drives S independent AieArraySim instances; the user
// still sees one RunResult. Counters (ArrayStats) sum. Utilization
// reports stack side by side -- shard s's tiles land at column offset
// s * cols of a rows x (S * cols) grid, so the heat-grid renderer shows
// the whole multi-array fabric in one picture and core_utilization()
// keeps its meaning (busy fraction over every core that ran a kernel,
// against the merged makespan).
#pragma once

#include <vector>

#include "versal/array.hpp"
#include "versal/utilization.hpp"

namespace hsvd::shard {

// Element-wise sum of per-shard counters.
versal::ArrayStats merge_stats(const std::vector<versal::ArrayStats>& per_shard);

// Side-by-side stack of per-shard utilization reports. All reports must
// share the same geometry and AIE clock; the merged makespan is the max
// over the shards (idle cycles of faster shards are re-derived against
// it). An empty input yields an empty report; a single report passes
// through unchanged.
versal::UtilizationReport merge_utilization(
    const std::vector<versal::UtilizationReport>& per_shard);

}  // namespace hsvd::shard
