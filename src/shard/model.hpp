// Analytic latency model of a sharded task (DESIGN.md section 11).
//
// Scales a single-array perf::LatencyBreakdown to S arrays: every block
// round spreads its q = p/2 pairs over the shards (so the per-round
// streaming term shrinks to ceil(q/S) pair slots), the normalization and
// DDR staging stages spread their p blocks the same way, and a new term
// appears -- the inter-shard ring edge, ceil(moves/S) block hops per
// sweep over the AIE->PL->NoC->PL->AIE path (S egress links drain the
// sweep's cross-shard moves in parallel). Used by the DSE to score
// multi-array design points and by bench_scaling for n beyond what the
// cycle-approximate simulator covers in bench time.
#pragma once

#include "accel/config.hpp"
#include "perfmodel/perf_model.hpp"

namespace hsvd::shard {

struct ShardedBreakdown {
  int shards = 1;
  // Cross-shard block moves of one sweep, and the unqueued cost of one
  // block hop over the inter-shard edge.
  int moves_per_sweep = 0;
  double hop_seconds = 0.0;
  double edge_seconds_per_sweep = 0.0;
  double t_iter = 0.0;       // one sharded sweep
  double t_ddr = 0.0;        // staging, spread over the shard NoCs
  double t_norm_stage = 0.0; // normalization, spread over the shards
  double t_task = 0.0;       // one matrix
  double t_sys = 0.0;        // whole batch
  double throughput_tasks_per_s(int batch) const { return batch / t_sys; }
};

// `single` must be PerformanceModel::evaluate(config, batch). S = 1
// reproduces `single` exactly (zero edge traffic, identical terms).
ShardedBreakdown evaluate_sharded(const accel::HeteroSvdConfig& config,
                                  const perf::LatencyBreakdown& single,
                                  int shards, int batch);

}  // namespace hsvd::shard
