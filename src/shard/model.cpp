#include "shard/model.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "jacobi/block.hpp"
#include "shard/topology.hpp"

namespace hsvd::shard {

ShardedBreakdown evaluate_sharded(const accel::HeteroSvdConfig& config,
                                  const perf::LatencyBreakdown& single,
                                  int shards, int batch) {
  config.validate();
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  HSVD_REQUIRE(batch >= 1, "batch must be positive");

  const auto& dev = config.device;
  const int p = config.blocks();
  const double blk_bytes = static_cast<double>(config.rows) * sizeof(float) *
                           static_cast<double>(config.p_eng);
  const auto rounds = jacobi::block_pair_rounds(p);
  const double q = static_cast<double>(rounds.front().size());
  const double round_count = static_cast<double>(rounds.size());

  ShardedBreakdown b;
  b.shards = shards;

  // A round's q pairs spread over the shards; each shard streams its
  // ceil(q/S) pairs through its own two Tx PLIOs, so the eq. (11) race
  // between round streaming and pipeline drain replays with the shorter
  // streaming term.
  const double pair_slots = std::ceil(q / shards);
  const double round_stream = pair_slots * (single.t_tx_blk + single.t_aie_wait);
  const double datawait =
      std::max(single.t_pipeline + single.t_algo - round_stream, 0.0);
  const double t_round = round_stream + datawait;

  // The sweep's cross-shard block moves drain through S parallel edges.
  b.moves_per_sweep = inter_shard_block_moves_per_sweep(p, shards);
  b.hop_seconds = InterShardLink::hop_seconds(dev, config.pl_frequency_hz,
                                              blk_bytes);
  b.edge_seconds_per_sweep =
      std::ceil(static_cast<double>(b.moves_per_sweep) / shards) *
      b.hop_seconds;

  b.t_iter = round_count * t_round + single.t_pipeline +
             b.edge_seconds_per_sweep;

  // Staging and normalization both walk each shard's ceil(p/S) home
  // blocks concurrently across shards.
  const double blocks_per_shard = std::ceil(static_cast<double>(p) / shards);
  b.t_ddr = blocks_per_shard *
            (blk_bytes / dev.ddr_bytes_per_s + dev.ddr_latency_s);
  b.t_norm_stage = blocks_per_shard * single.t_tx_blk + single.t_norm_kernel +
                   single.t_rx_blk;

  b.t_task = b.t_ddr + config.iterations * b.t_iter + b.t_norm_stage +
             single.t_hls;
  const double waves = std::ceil(static_cast<double>(batch) / config.p_task);
  const double slots_per_port =
      std::ceil(static_cast<double>(config.p_task) / dev.ddr_ports);
  const double t_wave = b.t_task + (slots_per_port - 1) * b.t_ddr;
  b.t_sys = batch == 1 ? b.t_task : waves * t_wave;
  return b;
}

}  // namespace hsvd::shard
