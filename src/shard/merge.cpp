#include "shard/merge.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hsvd::shard {

versal::ArrayStats merge_stats(
    const std::vector<versal::ArrayStats>& per_shard) {
  versal::ArrayStats sum;
  for (const auto& s : per_shard) {
    sum.neighbour_transfers += s.neighbour_transfers;
    sum.dma_transfers += s.dma_transfers;
    sum.dma_bytes += s.dma_bytes;
    sum.stream_packets += s.stream_packets;
    sum.stream_bytes += s.stream_bytes;
    sum.kernel_invocations += s.kernel_invocations;
  }
  return sum;
}

versal::UtilizationReport merge_utilization(
    const std::vector<versal::UtilizationReport>& per_shard) {
  if (per_shard.empty()) return {};
  if (per_shard.size() == 1) return per_shard.front();

  const auto& first = per_shard.front();
  versal::UtilizationReport merged;
  merged.rows = first.rows;
  merged.cols = first.cols * static_cast<int>(per_shard.size());
  merged.aie_clock_hz = first.aie_clock_hz;
  for (const auto& r : per_shard) {
    HSVD_REQUIRE(r.rows == first.rows && r.cols == first.cols,
                 "per-shard utilization reports must share one geometry");
    HSVD_REQUIRE(r.aie_clock_hz == first.aie_clock_hz,
                 "per-shard utilization reports must share one AIE clock");
    merged.makespan_seconds = std::max(merged.makespan_seconds,
                                       r.makespan_seconds);
  }

  merged.tiles.resize(static_cast<std::size_t>(merged.rows) *
                      static_cast<std::size_t>(merged.cols));
  const double makespan_cycles = merged.makespan_cycles();
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const int col_off = static_cast<int>(s) * first.cols;
    for (const auto& tile : per_shard[s].tiles) {
      versal::TileUtilization shifted = tile;
      shifted.tile.col += col_off;
      // A shard that finished early sat idle until the merged makespan.
      shifted.idle_cycles = std::max(
          makespan_cycles - shifted.busy_cycles - shifted.stalled_cycles, 0.0);
      const std::size_t idx =
          static_cast<std::size_t>(shifted.tile.row) *
              static_cast<std::size_t>(merged.cols) +
          static_cast<std::size_t>(shifted.tile.col);
      merged.tiles[idx] = shifted;
    }
  }
  return merged;
}

}  // namespace hsvd::shard
