// Bounded single-producer / single-consumer handoff queue for the
// accelerator's streaming stage pipeline (accel/pipeline.cpp).
//
// Design notes:
//   - Mutex + condvar, not a lock-free ring: the items flowing through
//     the stage chain are whole column-block work units (2k columns of
//     `rows` floats each), so the handoff cost is noise next to the work
//     per item. What matters here is the *blocking* contract below, which
//     a condvar expresses directly.
//   - Bounded: push() blocks while the queue holds `capacity` items.
//     The bound is what turns the stage chain into a pipeline with
//     backpressure -- a fast producer can run at most `capacity` items
//     ahead of its consumer, which also bounds how far the fabric
//     simulation can run ahead of the math when a stage throws.
//   - close() is the teardown/abort signal: it is idempotent, may be
//     called from any thread, wakes every blocked producer and consumer,
//     makes push() fail fast, and lets pop() drain the remaining items
//     before reporting end-of-stream. Stage loops therefore never
//     deadlock on teardown: a closed queue can always be drained and
//     never blocks.
//
// The name records the intended single-producer/single-consumer usage in
// the stage chain; the mutex actually makes the queue safe for any number
// of producers and consumers, which the unit tests exploit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace hsvd::common {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : capacity_(capacity) {
    HSVD_REQUIRE(capacity >= 1, "SpscQueue capacity must be positive");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Blocks while the queue is full. Returns true when the item was
  // enqueued; false (item dropped) when the queue was closed -- either
  // before the call or while waiting for space.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    available_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and open. Remaining items are still
  // delivered after close() (drain semantics); nullopt means closed and
  // fully drained -- the consumer's end-of-stream.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    space_.notify_one();
    return item;
  }

  // Idempotent; callable from any thread. Wakes all waiters.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    available_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;  // signalled on push / close
  std::condition_variable space_;      // signalled on pop / close
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hsvd::common
