#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace hsvd::common {

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

namespace {

// Shared between the caller and its helper jobs. Heap-owned so that a
// helper job which only gets scheduled after the loop already finished
// (every index claimed by faster participants) still has valid state to
// look at -- it sees no work left and exits. This is what makes nested
// parallel_for deadlock-free: a caller never waits on helpers that were
// queued but not started, only on helpers actively running indices.
struct LoopWork {
  explicit LoopWork(std::size_t count, std::function<void(std::size_t)> body)
      : n(count), fn(std::move(body)) {}

  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable idle_cv;
  int active = 0;  // helpers currently inside drain (guarded by mutex)
  std::exception_ptr error;  // first failure (guarded by mutex)

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, int threads,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t width = threads <= 1 ? 1 : static_cast<std::size_t>(threads);
  width = std::min(width, n);
  width = std::min(width, static_cast<std::size_t>(size()) + 1);
  if (width <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto work = std::make_shared<LoopWork>(n, fn);
  for (std::size_t h = 0; h + 1 < width; ++h) {
    submit([work] {
      if (work->exhausted()) return;
      {
        std::lock_guard<std::mutex> lock(work->mutex);
        ++work->active;
      }
      work->drain();
      {
        std::lock_guard<std::mutex> lock(work->mutex);
        --work->active;
      }
      work->idle_cv.notify_all();
    });
  }
  work->drain();  // the calling thread always participates
  {
    std::unique_lock<std::mutex> lock(work->mutex);
    work->idle_cv.wait(lock, [&work] { return work->active == 0; });
    if (work->error) std::rethrow_exception(work->error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

int ThreadPool::hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HSVD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<int>(v);
  }
  return hardware_threads();
}

}  // namespace hsvd::common
