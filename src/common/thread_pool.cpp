#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace hsvd::common {

namespace {

// Observer for labelled parallel_for loops; one process-wide slot keeps
// the no-observer fast path to a single relaxed load.
std::atomic<ParallelForObserver*> g_observer{nullptr};

// Ordinal of the pool worker owning the current thread (-1 = not a pool
// worker). Set once at worker startup.
thread_local int t_worker_ordinal = -1;

}  // namespace

void ThreadPool::set_observer(ParallelForObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

ParallelForObserver* ThreadPool::observer() {
  return g_observer.load(std::memory_order_acquire);
}

int ThreadPool::worker_ordinal() { return t_worker_ordinal; }

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int ordinal) {
  t_worker_ordinal = ordinal;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

namespace {

// Shared between the caller and its helper jobs. Heap-owned so that a
// helper job which only gets scheduled after the loop already finished
// (every index claimed by faster participants) still has valid state to
// look at -- it sees no work left and exits. This is what makes nested
// parallel_for deadlock-free: a caller never waits on helpers that were
// queued but not started, only on helpers actively running indices.
struct LoopWork {
  LoopWork(std::size_t count, std::function<void(std::size_t)> body,
           const char* loop_label, ParallelForObserver* obs)
      : n(count), fn(std::move(body)), label(loop_label), observer(obs) {}

  const std::size_t n;
  const std::function<void(std::size_t)> fn;
  const char* const label;                 // null = unobserved loop
  ParallelForObserver* const observer;     // sampled once at loop start
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable idle_cv;
  int active = 0;  // helpers currently inside drain (guarded by mutex)
  std::exception_ptr error;  // first failure (guarded by mutex)

  void run_index(std::size_t i) {
    if (observer != nullptr && label != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      fn(i);
      observer->on_index(label, i, ThreadPool::worker_ordinal(), start,
                         std::chrono::steady_clock::now());
    } else {
      fn(i);
    }
  }

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        run_index(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  bool exhausted() const {
    return next.load(std::memory_order_relaxed) >= n;
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n, int threads,
                              const std::function<void(std::size_t)>& fn,
                              const char* label) {
  if (n == 0) return;
  std::size_t width = threads <= 1 ? 1 : static_cast<std::size_t>(threads);
  width = std::min(width, n);
  width = std::min(width, static_cast<std::size_t>(size()) + 1);
  ParallelForObserver* obs = label != nullptr ? observer() : nullptr;
  if (width <= 1) {
    // Inline path: instrument identically so a trace's host spans do not
    // depend on the thread-count resolution.
    LoopWork work(n, fn, label, obs);
    for (std::size_t i = 0; i < n; ++i) work.run_index(i);
    return;
  }

  auto work = std::make_shared<LoopWork>(n, fn, label, obs);
  for (std::size_t h = 0; h + 1 < width; ++h) {
    submit([work] {
      if (work->exhausted()) return;
      {
        std::lock_guard<std::mutex> lock(work->mutex);
        ++work->active;
      }
      work->drain();
      {
        std::lock_guard<std::mutex> lock(work->mutex);
        --work->active;
      }
      work->idle_cv.notify_all();
    });
  }
  work->drain();  // the calling thread always participates
  {
    std::unique_lock<std::mutex> lock(work->mutex);
    work->idle_cv.wait(lock, [&work] { return work->active == 0; });
    if (work->error) std::rethrow_exception(work->error);
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

int ThreadPool::hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("HSVD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<int>(v);
  }
  return hardware_threads();
}

}  // namespace hsvd::common
