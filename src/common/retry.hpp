// Retry policy with exponential backoff and deterministic seeded jitter.
//
// The serving layer (and the facade's optional retry loop) re-submit
// transient failures -- detected hardware faults, non-converged sweeps --
// with a growing delay between attempts. Jitter decorrelates retries
// without sacrificing reproducibility: delays come from an hsvd::Rng
// stream derived from (policy seed, request stream), so the same seed
// replays the same schedule bit for bit on any host.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace hsvd::common {

struct RetryPolicy {
  // Total attempts, including the first; 1 disables retries.
  int max_attempts = 3;
  // Delay before the first retry; each further retry multiplies it.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  // Upper bound on the un-jittered delay.
  double max_backoff_seconds = 1.0;
  // Fraction of the delay that is randomized: the actual delay is
  // uniform in [(1 - jitter) * d, d]. 0 = no jitter, 1 = full jitter.
  double jitter = 0.5;
  // Seed of the jitter stream; combined with a per-request stream id so
  // concurrent requests draw independent (still reproducible) schedules.
  std::uint64_t seed = 0x5eedULL;
  // Whether SvdStatus::kNotConverged counts as transient. Under fault
  // injection a corrupted sweep stream can stall convergence, so the
  // serving layer retries it by default; without chaos a deterministic
  // non-convergence will simply burn the remaining attempts.
  bool retry_not_converged = true;

  void validate() const {
    HSVD_REQUIRE(max_attempts >= 1, "retry max_attempts must be at least 1");
    HSVD_REQUIRE(
        std::isfinite(initial_backoff_seconds) && initial_backoff_seconds >= 0,
        "retry initial_backoff_seconds must be finite and nonnegative");
    HSVD_REQUIRE(std::isfinite(backoff_multiplier) && backoff_multiplier >= 1.0,
                 "retry backoff_multiplier must be finite and at least 1");
    HSVD_REQUIRE(std::isfinite(max_backoff_seconds) &&
                     max_backoff_seconds >= initial_backoff_seconds,
                 "retry max_backoff_seconds must be finite and no smaller "
                 "than the initial backoff");
    HSVD_REQUIRE(jitter >= 0.0 && jitter <= 1.0,
                 "retry jitter must be in [0, 1]");
  }
};

// One request's backoff schedule. delay_seconds(k) is the wait before
// attempt k+1 (k = 1 is the first retry); consecutive calls advance the
// jitter stream, so the sequence is deterministic per (seed, stream).
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, std::uint64_t stream)
      : policy_(policy), rng_(Rng(policy.seed).split(stream)) {}

  double delay_seconds(int retry_index) {
    HSVD_ASSERT(retry_index >= 1, "retry index is 1-based");
    double d = policy_.initial_backoff_seconds;
    for (int i = 1; i < retry_index; ++i) {
      d *= policy_.backoff_multiplier;
      if (d >= policy_.max_backoff_seconds) break;
    }
    if (d > policy_.max_backoff_seconds) d = policy_.max_backoff_seconds;
    if (policy_.jitter > 0.0) {
      d *= (1.0 - policy_.jitter) + policy_.jitter * rng_.uniform();
    }
    return d;
  }

 private:
  RetryPolicy policy_;
  Rng rng_;
};

}  // namespace hsvd::common
