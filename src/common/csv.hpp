// CSV emission for benchmark results, so plots can be regenerated outside
// the harness. Values containing commas/quotes are quoted per RFC 4180.
#pragma once

#include <string>
#include <vector>

namespace hsvd {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::string render() const;

  // Writes render() to the given path; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hsvd
