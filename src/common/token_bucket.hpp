// Clock-driven token bucket for admission quotas.
//
// A tenant's quota is a refill rate (tokens per second of a
// common::Clock) plus a burst capacity. The bucket is lazy: tokens are
// not ticked by a timer but recomputed from the elapsed time at each
// try_acquire(), so a bucket costs nothing while idle and is exactly
// testable with a FakeClock. The caller supplies `now` explicitly (the
// serving layer already holds the admission timestamp), which keeps the
// bucket free of any clock ownership and makes replays deterministic.
#pragma once

#include <algorithm>

#include "common/assert.hpp"

namespace hsvd::common {

class TokenBucket {
 public:
  // `rate_per_second` tokens refill continuously up to `burst`. The
  // bucket starts full: a fresh tenant may burst immediately.
  TokenBucket(double rate_per_second, double burst, double now_seconds)
      : rate_(rate_per_second),
        burst_(burst),
        tokens_(burst),
        last_s_(now_seconds) {
    HSVD_REQUIRE(rate_per_second > 0.0, "token bucket rate must be positive");
    HSVD_REQUIRE(burst >= 1.0, "token bucket burst must be at least 1");
  }

  // Takes `tokens` if available at `now`; false leaves the bucket
  // untouched (aside from the refill). A `now` earlier than the last
  // acquisition refills nothing instead of going negative.
  bool try_acquire(double now_seconds, double tokens = 1.0) {
    refill(now_seconds);
    if (tokens_ < tokens) return false;
    tokens_ -= tokens;
    return true;
  }

  // Tokens that would be available at `now` (refill applied).
  double available(double now_seconds) {
    refill(now_seconds);
    return tokens_;
  }

  double rate_per_second() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(double now_seconds) {
    if (now_seconds > last_s_) {
      tokens_ = std::min(burst_, tokens_ + (now_seconds - last_s_) * rate_);
      last_s_ = now_seconds;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_s_;
};

}  // namespace hsvd::common
