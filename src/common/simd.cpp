#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace hsvd::simd {

namespace {

constexpr std::size_t kLanes = 8;

// Pairwise lane reduction: (0+1)+(2+3) ... matches the AIE kernel's
// adder tree. Every implementation funnels its accumulators through this
// exact tree so the result is independent of the vector ISA.
float reduce_lanes(float lane[kLanes]) {
  for (std::size_t step = 1; step < kLanes; step *= 2) {
    for (std::size_t l = 0; l + step < kLanes; l += 2 * step) {
      lane[l] += lane[l + step];
    }
  }
  return lane[0];
}

float scalar_dot(const float* a, const float* b, std::size_t n) {
  float lane[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lane[l] += a[i + l] * b[i + l];
    }
  }
  float s = 0.0f;
  for (; i < n; ++i) s += a[i] * b[i];
  return reduce_lanes(lane) + s;
}

Dot3f scalar_dot3(const float* x, const float* y, std::size_t n) {
  float lxx[kLanes] = {};
  float lyy[kLanes] = {};
  float lxy[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const float xi = x[i + l];
      const float yi = y[i + l];
      lxx[l] += xi * xi;
      lyy[l] += yi * yi;
      lxy[l] += xi * yi;
    }
  }
  float sxx = 0.0f, syy = 0.0f, sxy = 0.0f;
  for (; i < n; ++i) {
    const float xi = x[i];
    const float yi = y[i];
    sxx += xi * xi;
    syy += yi * yi;
    sxy += xi * yi;
  }
  Dot3f out;
  out.aii = reduce_lanes(lxx) + sxx;
  out.ajj = reduce_lanes(lyy) + syy;
  out.aij = reduce_lanes(lxy) + sxy;
  return out;
}

// The rotation kernel's columns are always distinct buffers (a pair of
// different matrix columns), so the pointers may be declared restrict --
// without it the auto-vectorizer has to version the loop for aliasing
// and gives up under -O2's cost model. The 8-wide chunking mirrors the
// lane model; per-element arithmetic is position-independent, so this is
// bit-identical to a plain scalar loop, and -O3's extra unrolling is
// safe here (unlike for dot3, whose 24 accumulator lanes it spills --
// hence per-function rather than per-file).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("O3")))
#endif
void scalar_apply_rotation(float* x, float* y, std::size_t n, float c,
                           float s) {
  float* __restrict px = x;
  float* __restrict py = y;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const float xi = px[i + l];
      const float yi = py[i + l];
      px[i + l] = c * xi - s * yi;
      py[i + l] = s * xi + c * yi;
    }
  }
  for (; i < n; ++i) {
    const float xi = px[i];
    const float yi = py[i];
    px[i] = c * xi - s * yi;
    py[i] = s * xi + c * yi;
  }
}

const Kernels kScalar{"scalar", static_cast<int>(kLanes), scalar_dot,
                      scalar_dot3, scalar_apply_rotation};

// Startup decision: env overrides first, then cpuid. Returning the
// scalar set is always safe.
const Kernels* resolve_startup() {
  const char* mode = std::getenv("HSVD_SIMD");
  const char* force = std::getenv("HSVD_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
    return &kScalar;
  }
  if (mode != nullptr) {
    if (std::strcmp(mode, "scalar") == 0) return &kScalar;
    if (std::strcmp(mode, "avx2") == 0) {
      return avx2_compiled() && avx2_supported() ? &avx2_kernels() : &kScalar;
    }
    // "auto" or anything unrecognized: fall through to detection.
  }
  if (avx2_compiled() && avx2_supported()) return &avx2_kernels();
  return &kScalar;
}

std::atomic<const Kernels*>& active_slot() {
  static std::atomic<const Kernels*> slot{resolve_startup()};
  return slot;
}

}  // namespace

const Kernels& scalar_kernels() { return kScalar; }

#if !defined(HSVD_HAVE_AVX2)
bool avx2_compiled() { return false; }
bool avx2_supported() { return false; }
const Kernels& avx2_kernels() { return kScalar; }
#endif

const Kernels& active() {
  return *active_slot().load(std::memory_order_acquire);
}

const Kernels* set_active_for_testing(const Kernels* k) {
  const Kernels* next = k != nullptr ? k : resolve_startup();
  return active_slot().exchange(next, std::memory_order_acq_rel);
}

}  // namespace hsvd::simd
