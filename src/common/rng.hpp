// Deterministic random number generation.
//
// All stochastic code in the library draws from hsvd::Rng so experiments
// are reproducible from a single seed. The generator is xoshiro256**,
// which is fast, high-quality, and has a trivially copyable state (useful
// for splitting independent streams per task).
#pragma once

#include <cstdint>
#include <cmath>

namespace hsvd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next_u64() % n; }

  // Standard normal via Box-Muller (no cached spare: simpler, still fast
  // relative to the matrix work these samples feed).
  double gaussian() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // An independent stream derived from this one (jump via reseeding on a
  // drawn value mixed with the stream index).
  Rng split(std::uint64_t stream) {
    return Rng(next_u64() ^ (0xA0761D6478BD642FULL * (stream + 1)));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace hsvd
