// Lightweight contract-checking macros used across the library.
//
// HSVD_REQUIRE  -- precondition on user-supplied input; throws
//                  hsvd::InputError (IS-A std::invalid_argument) so
//                  callers can recover.
// HSVD_ASSERT   -- internal invariant; failure is a library bug, aborts
//                  with a diagnostic (kept on in release builds: the cost
//                  is negligible next to the simulation work).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/error.hpp"

namespace hsvd {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "HSVD_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace hsvd

#define HSVD_ASSERT(expr, msg)                               \
  do {                                                       \
    if (!(expr)) {                                           \
      ::hsvd::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                        \
  } while (0)

#define HSVD_REQUIRE(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      throw ::hsvd::InputError(std::string("HeteroSVD precondition: ") + \
                               (msg) + " (" #expr ")");                  \
    }                                                                    \
  } while (0)
