// AVX2 implementations of the fp32 hot-path kernels.
//
// This translation unit is the only one compiled with -mavx2, and it is
// compiled with -ffp-contract=off: the bit-identity contract with the
// scalar 8-lane model (common/simd.cpp) forbids FMA contraction, because
// a fused multiply-add rounds once where mul+add rounds twice. Each
// kernel keeps the same 8 accumulator lanes (one __m256), the same
// per-lane accumulation order over i, the same scalar tail loop, and
// funnels the lanes through the same pairwise reduction tree -- so the
// results match the scalar model bit for bit, including NaN/Inf
// propagation and denormals (no DAZ/FTZ is ever enabled here).
#include "common/simd.hpp"

#if defined(HSVD_HAVE_AVX2)

#include <immintrin.h>

namespace hsvd::simd {

namespace {

constexpr std::size_t kLanes = 8;

// Same tree as simd.cpp's reduce_lanes: (0+1)+(2+3) ...
float reduce_lanes(float lane[kLanes]) {
  for (std::size_t step = 1; step < kLanes; step *= 2) {
    for (std::size_t l = 0; l + step < kLanes; l += 2 * step) {
      lane[l] += lane[l + step];
    }
  }
  return lane[0];
}

float avx2_dot(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  alignas(32) float lane[kLanes];
  _mm256_store_ps(lane, acc);
  float s = 0.0f;
  for (; i < n; ++i) s += a[i] * b[i];
  return reduce_lanes(lane) + s;
}

Dot3f avx2_dot3(const float* x, const float* y, std::size_t n) {
  __m256 axx = _mm256_setzero_ps();
  __m256 ayy = _mm256_setzero_ps();
  __m256 axy = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    axx = _mm256_add_ps(axx, _mm256_mul_ps(vx, vx));
    ayy = _mm256_add_ps(ayy, _mm256_mul_ps(vy, vy));
    axy = _mm256_add_ps(axy, _mm256_mul_ps(vx, vy));
  }
  alignas(32) float lxx[kLanes];
  alignas(32) float lyy[kLanes];
  alignas(32) float lxy[kLanes];
  _mm256_store_ps(lxx, axx);
  _mm256_store_ps(lyy, ayy);
  _mm256_store_ps(lxy, axy);
  float sxx = 0.0f, syy = 0.0f, sxy = 0.0f;
  for (; i < n; ++i) {
    const float xi = x[i];
    const float yi = y[i];
    sxx += xi * xi;
    syy += yi * yi;
    sxy += xi * yi;
  }
  Dot3f out;
  out.aii = reduce_lanes(lxx) + sxx;
  out.ajj = reduce_lanes(lyy) + syy;
  out.aij = reduce_lanes(lxy) + sxy;
  return out;
}

void avx2_apply_rotation(float* x, float* y, std::size_t n, float c,
                         float s) {
  const __m256 vc = _mm256_set1_ps(c);
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(
        x + i, _mm256_sub_ps(_mm256_mul_ps(vc, vx), _mm256_mul_ps(vs, vy)));
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_mul_ps(vs, vx), _mm256_mul_ps(vc, vy)));
  }
  for (; i < n; ++i) {
    const float xi = x[i];
    const float yi = y[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

const Kernels kAvx2{"avx2", static_cast<int>(kLanes), avx2_dot, avx2_dot3,
                    avx2_apply_rotation};

}  // namespace

bool avx2_compiled() { return true; }

bool avx2_supported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& avx2_kernels() { return kAvx2; }

}  // namespace hsvd::simd

#endif  // HSVD_HAVE_AVX2
