// Minimal string formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace hsvd {

// Concatenate any streamable values into a string: cat("n=", n, " ok").
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

// Fixed-point decimal with the given number of digits after the point.
inline std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

// Scientific notation, e.g. 1.23e-06.
inline std::string sci(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return buf;
}

// Percentage with given digits: pct(0.3141, 1) == "31.4%".
inline std::string pct(double fraction, int digits = 2) {
  return fixed(fraction * 100.0, digits) + "%";
}

// A multiplier label: times(1.98) == "1.98x".
inline std::string times(double v, int digits = 2) {
  return fixed(v, digits) + "x";
}

}  // namespace hsvd
