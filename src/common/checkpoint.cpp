#include "common/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace hsvd::common {

namespace {

constexpr const char* kMagic = "#hsvd-checkpoint";

std::string header_line(const std::string& tag) {
  return cat(kMagic, " v", CheckpointFile::kVersion, " ", tag);
}

}  // namespace

std::string CheckpointFile::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string CheckpointFile::unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    switch (escaped[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += escaped[i];
    }
  }
  return out;
}

CheckpointFile::CheckpointFile(std::string path, std::string tag)
    : path_(std::move(path)), tag_(std::move(tag)) {
  HSVD_REQUIRE(!path_.empty(), "checkpoint path must not be empty");
  HSVD_REQUIRE(!tag_.empty(), "checkpoint tag must not be empty");
  HSVD_REQUIRE(tag_.find('\n') == std::string::npos,
               "checkpoint tag must be a single line");
  std::ifstream in(path_);
  if (!in.is_open()) return;  // no file yet: start empty, append later
  std::string line;
  if (!std::getline(in, line) || line != header_line(tag_)) {
    // Version or tag mismatch: the records belong to different campaign
    // parameters. Start empty; the stale file is replaced on the first
    // record.
    return;
  }
  disk_compatible_ = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;  // torn tail line from a kill
    records_[unescape(line.substr(0, tab))] = unescape(line.substr(tab + 1));
  }
}

bool CheckpointFile::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.count(key) != 0;
}

const std::string* CheckpointFile::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t CheckpointFile::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void CheckpointFile::record(const std::string& key,
                            const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_[key] = payload;
  if (!disk_compatible_) {
    rewrite_locked();
  } else {
    append_locked(key, payload);
  }
}

void CheckpointFile::rewrite_locked() {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  HSVD_REQUIRE(f != nullptr, cat("cannot write checkpoint file ", path_));
  std::string body = header_line(tag_) + "\n";
  for (const auto& [key, payload] : records_) {
    body += escape(key) + "\t" + escape(payload) + "\n";
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fflush(f);
  std::fclose(f);
  disk_compatible_ = true;
}

void CheckpointFile::append_locked(const std::string& key,
                                   const std::string& payload) {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  HSVD_REQUIRE(f != nullptr, cat("cannot append to checkpoint file ", path_));
  const std::string line = escape(key) + "\t" + escape(payload) + "\n";
  std::fwrite(line.data(), 1, line.size(), f);
  std::fflush(f);
  std::fclose(f);
}

}  // namespace hsvd::common
