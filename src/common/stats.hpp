// Small statistics helpers used by the perf-model validation benches
// (mean/max error, geomean speedups).
#pragma once

#include <cmath>
#include <span>

#include "common/assert.hpp"

namespace hsvd {

inline double mean(std::span<const double> xs) {
  HSVD_REQUIRE(!xs.empty(), "mean of empty span");
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double max_value(std::span<const double> xs) {
  HSVD_REQUIRE(!xs.empty(), "max of empty span");
  double m = xs[0];
  for (double x : xs) m = x > m ? x : m;
  return m;
}

inline double geomean(std::span<const double> xs) {
  HSVD_REQUIRE(!xs.empty(), "geomean of empty span");
  double s = 0;
  for (double x : xs) {
    HSVD_REQUIRE(x > 0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

// |a-b| / |b| -- the relative-error metric Tables IV/V report.
inline double relative_error(double measured, double reference) {
  HSVD_REQUIRE(reference != 0.0, "relative error against zero reference");
  return std::fabs(measured - reference) / std::fabs(reference);
}

}  // namespace hsvd
