#include "common/csv.hpp"

#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace hsvd {

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HSVD_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  HSVD_REQUIRE(cells.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = render();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace hsvd
