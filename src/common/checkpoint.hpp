// Versioned key/value checkpoint file for long-running campaigns.
//
// A CheckpointFile records completed units of work (one line per unit)
// so a killed sweep restarts where it left off: open the same path with
// the same tag, and every key recorded by the previous run is visible
// before any new work starts. The format is line-based and append-only:
//
//   #hsvd-checkpoint v1 <tag>
//   <key>\t<payload>
//
// Keys and payloads are escaped (\\ \t \n \r), so arbitrary serialized
// records round-trip. The tag encodes the parameters the records depend
// on (seed, shape, trial plan, ...); opening a file whose tag does not
// match starts empty and the stale file is rewritten on the first
// record -- a checkpoint from a different configuration is never
// silently reused. record() flushes each line, so a kill between
// records loses at most the unit in flight.
//
// Thread-safe: record()/find() may be called from concurrent pool
// workers (the DSE checkpoints per-slice results from the pool).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace hsvd::common {

class CheckpointFile {
 public:
  static constexpr int kVersion = 1;

  // Loads compatible records from `path` (missing file, or a header
  // whose version/tag mismatch, both start empty). Throws
  // hsvd::InputError on an unreadable-but-existing file or an empty
  // path/tag.
  CheckpointFile(std::string path, std::string tag);

  const std::string& path() const { return path_; }
  const std::string& tag() const { return tag_; }

  bool contains(const std::string& key) const;
  // Payload recorded for `key`, or nullptr. The pointer stays valid
  // until the next record() with the same key.
  const std::string* find(const std::string& key) const;
  std::size_t size() const;

  // Records (or overwrites) one unit and flushes it to disk. The first
  // record after an empty/incompatible open rewrites the file with a
  // fresh header.
  void record(const std::string& key, const std::string& payload);

  static std::string escape(const std::string& raw);
  static std::string unescape(const std::string& escaped);

 private:
  void rewrite_locked();
  void append_locked(const std::string& key, const std::string& payload);

  std::string path_;
  std::string tag_;
  // True once the on-disk file carries a compatible header (either
  // loaded from disk or written by us), i.e. appending is safe.
  bool disk_compatible_ = false;
  std::map<std::string, std::string> records_;
  mutable std::mutex mutex_;
};

}  // namespace hsvd::common
