// Console table rendering for benchmark harnesses.
//
// Each bench binary reproduces one table/figure of the paper and prints it
// as an aligned ASCII table; this class owns the layout so every bench
// looks the same.
#pragma once

#include <string>
#include <vector>

namespace hsvd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Renders with single-space-padded columns and a rule under the header.
  std::string render() const;

  // Renders and writes to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hsvd
