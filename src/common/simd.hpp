// Runtime-dispatched SIMD kernels for the fp32 hot path.
//
// The paper's AIE vector units are 8-lane fp32 MACs (Table IV); the host
// mirrors them with an 8-accumulator-lane model whose summation tree is
// fixed (pairwise (0+1)+(2+3)... reduction). This header is the dispatch
// seam: `active()` resolves once, at first use, to the widest
// implementation the build and the CPU both support -- AVX2 when
// HSVD_ENABLE_AVX2 compiled it in and cpuid reports it, the portable
// scalar model otherwise -- and every implementation is required to be
// BIT-IDENTICAL to the scalar 8-lane model: same per-lane accumulation
// order, same reduction tree, same tail handling, no FMA contraction.
// Factors therefore do not depend on which path ran, and the
// differential harness pins {scalar, avx2} against each other bitwise.
//
// Overrides (resolved in this order, before cpuid):
//   HSVD_SIMD=scalar|avx2|auto  -- explicit path selection; requesting
//                                  avx2 on an unsupported host falls
//                                  back to scalar.
//   HSVD_FORCE_SCALAR=1         -- reproducibility switch: same as
//                                  HSVD_SIMD=scalar.
#pragma once

#include <cstddef>

namespace hsvd::simd {

// The three Gram entries of a column pair from one fused traversal.
struct Dot3f {
  float aii = 0.0f;
  float ajj = 0.0f;
  float aij = 0.0f;
};

// One resolved kernel set. All pointers are non-null.
struct Kernels {
  const char* name;  // "scalar" or "avx2"
  int lane_width;    // accumulator lanes of the summation model (8)
  float (*dot)(const float* a, const float* b, std::size_t n);
  Dot3f (*dot3)(const float* x, const float* y, std::size_t n);
  void (*apply_rotation)(float* x, float* y, std::size_t n, float c,
                         float s);
};

// The kernel set every other implementation must match bit for bit.
const Kernels& scalar_kernels();

// True when the build compiled the AVX2 translation unit in.
bool avx2_compiled();
// True when the running CPU supports AVX2 (false on non-x86 builds).
bool avx2_supported();
// The AVX2 kernel set; only callable when avx2_compiled().
const Kernels& avx2_kernels();

// The dispatch decision, made once at first use (env overrides, then
// cpuid) and stable for the life of the process unless a test overrides
// it.
const Kernels& active();

// Test/bench hook: forces `k` as the active set (nullptr restores the
// startup decision). Returns the previously active set. Not safe while
// other threads are inside a kernel -- call between runs only.
const Kernels* set_active_for_testing(const Kernels* k);

}  // namespace hsvd::simd
