// Physical quantities used throughout the performance model.
//
// We keep these as thin value types (not a full dimensional-analysis
// library): the goal is readable call sites (seconds(t), Bytes{n}) and a
// single place defining the conversions the paper uses.
#pragma once

#include <cstdint>

namespace hsvd {

// One gibibyte per second expressed in bytes/second. The paper quotes PLIO
// bandwidth in GB/s; AMD documentation uses decimal GB, so we do too.
inline constexpr double kGBps = 1e9;

inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

// Cycle count at a given frequency -> seconds.
inline constexpr double cycles_to_seconds(double cycles, double frequency_hz) {
  return cycles / frequency_hz;
}

inline constexpr double seconds_to_cycles(double seconds, double frequency_hz) {
  return seconds * frequency_hz;
}

// Convenience for byte sizes.
inline constexpr std::uint64_t KiB(std::uint64_t n) { return n * 1024ULL; }
inline constexpr std::uint64_t MiB(std::uint64_t n) { return n * 1024ULL * 1024ULL; }

}  // namespace hsvd
