#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace hsvd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HSVD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HSVD_REQUIRE(cells.size() == headers_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace hsvd
