// Host-side thread pool for task-level parallelism.
//
// The accelerator model exposes P_task independent task slots; the host
// analogue is a small pool of worker threads that execute independent
// batch tasks (and other embarrassingly parallel loops: derive_v
// columns, DSE P_eng slices) concurrently. Determinism is a design
// requirement, not an accident: parallel_for hands out loop indices and
// every index writes only its own output slot, so results are bitwise
// identical for any thread count -- including 1, which runs inline with
// no pool involvement at all.
//
// Thread-count resolution order (resolve_threads):
//   explicit positive request > HSVD_THREADS env var > hardware cores.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsvd::common {

// Host-side instrumentation hook for parallel_for (see src/obs/ for the
// tracer-backed implementation). Defined here as a pure interface so
// the common layer stays free of observability dependencies.
class ParallelForObserver {
 public:
  virtual ~ParallelForObserver() = default;
  // One call per finished loop index of a *labelled* parallel_for.
  // `worker` is the pool worker ordinal that ran the index (-1 = the
  // calling thread). Timestamps are raw steady_clock points so the
  // observer can convert to whatever epoch its tracer uses. Must be
  // thread-safe: indices finish concurrently.
  virtual void on_index(const char* label, std::size_t index, int worker,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end) = 0;
};

class ThreadPool {
 public:
  // Spawns `threads` persistent workers (minimum 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for every i in [0, n). `threads` bounds the concurrency:
  // <= 1 executes inline in index order; otherwise up to threads - 1 pool
  // workers help the calling thread drain an atomic index counter. The
  // calling thread always participates, so nested parallel_for calls
  // cannot deadlock even when every pool worker is busy. The first
  // exception thrown by fn is rethrown here after all indices finish.
  //
  // `label` names the loop for the observer hook: when a label is given
  // AND an observer is attached, every index is timed and reported via
  // ParallelForObserver::on_index. A null label (the default) or a null
  // observer costs one pointer check per loop.
  void parallel_for(std::size_t n, int threads,
                    const std::function<void(std::size_t)>& fn,
                    const char* label = nullptr);

  // Process-wide observer for labelled parallel_for loops (last writer
  // wins; nullptr detaches). Scoped attachment: obs::ScopedPoolObservation.
  static void set_observer(ParallelForObserver* observer);
  static ParallelForObserver* observer();

  // Ordinal of the pool worker running the current thread (-1 when the
  // current thread is not a pool worker, e.g. the caller of parallel_for).
  static int worker_ordinal();

  // Process-wide pool sized to the hardware concurrency.
  static ThreadPool& shared();

  // Resolves a requested thread count: `requested` > 0 wins; otherwise
  // the HSVD_THREADS environment variable (positive integer); otherwise
  // std::thread::hardware_concurrency() (at least 1).
  static int resolve_threads(int requested);

  static int hardware_threads();

 private:
  void worker_loop(int ordinal);
  void submit(std::function<void()> job);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hsvd::common
