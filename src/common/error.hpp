// Typed error taxonomy for the HeteroSVD library.
//
// Every recoverable failure the library raises carries a type describing
// *what went wrong*, so callers can route recovery instead of string-
// matching what():
//
//   InputError        -- the caller's data or options are invalid
//                        (NaN/Inf matrices, shape mismatches, parameter
//                        ranges). Derives std::invalid_argument.
//   PlacementError    -- no placement of the requested configuration fits
//                        the (healthy part of the) device.
//   ConvergenceError  -- the iteration diverged or provably cannot reach
//                        the requested precision.
//   FaultDetected     -- a hardware-level fault was caught at a dataflow
//                        boundary (checksum mismatch, lost buffer, hung
//                        core, non-finite kernel output); carries the
//                        faulty tile when attribution is possible, which
//                        drives re-placement.
//   DeadlineExceeded  -- a cooperative deadline (common::CancelToken)
//                        expired; the run was abandoned at a slot-chain
//                        boundary. Not a fabric failure: the serving
//                        layer maps it to its own terminal status and
//                        the circuit breaker ignores it.
//
// `hsvd::Error` is a mixin base: `catch (const hsvd::Error&)` handles the
// whole taxonomy, while each type also derives the std exception callers
// historically caught (InputError IS-A std::invalid_argument, the rest
// ARE std::runtime_error), so existing call sites keep working.
#pragma once

#include <stdexcept>
#include <string>

namespace hsvd {

// Completion status of one SVD task, surfaced on hsvd::Svd and
// accel::TaskResult. kFailed results carry a diagnostic message and have
// empty factors; kNotConverged results are usable but did not reach the
// requested precision within the sweep budget.
enum class SvdStatus { kOk, kNotConverged, kFailed };

inline const char* to_string(SvdStatus s) {
  switch (s) {
    case SvdStatus::kOk: return "ok";
    case SvdStatus::kNotConverged: return "not-converged";
    case SvdStatus::kFailed: return "failed";
  }
  return "unknown";
}

class Error {
 public:
  virtual ~Error() = default;
  // Short machine-readable tag of the error class ("input", "placement",
  // "convergence", "fault").
  virtual const char* kind() const noexcept = 0;
};

class InputError : public std::invalid_argument, public Error {
 public:
  explicit InputError(const std::string& msg) : std::invalid_argument(msg) {}
  const char* kind() const noexcept override { return "input"; }
};

class PlacementError : public InputError {
 public:
  explicit PlacementError(const std::string& msg) : InputError(msg) {}
  const char* kind() const noexcept override { return "placement"; }
};

class ConvergenceError : public std::runtime_error, public Error {
 public:
  explicit ConvergenceError(const std::string& msg) : std::runtime_error(msg) {}
  const char* kind() const noexcept override { return "convergence"; }
};

class DeadlineExceeded : public std::runtime_error, public Error {
 public:
  explicit DeadlineExceeded(const std::string& msg)
      : std::runtime_error(msg) {}
  const char* kind() const noexcept override { return "deadline"; }
};

class FaultDetected : public std::runtime_error, public Error {
 public:
  // `sim_seconds` optionally stamps the simulated time at which the
  // detection point fired (negative = unknown); the observability layer
  // turns it into timeline instants and detection-latency figures.
  explicit FaultDetected(const std::string& msg, double sim_seconds = -1.0)
      : std::runtime_error(msg), sim_seconds_(sim_seconds) {}
  // With tile attribution: (row, col) of the AIE tile the detection point
  // blames; the accelerator's recovery masks it out of the placement.
  FaultDetected(const std::string& msg, int tile_row, int tile_col,
                double sim_seconds = -1.0)
      : std::runtime_error(msg),
        has_tile_(true),
        tile_row_(tile_row),
        tile_col_(tile_col),
        sim_seconds_(sim_seconds) {}
  const char* kind() const noexcept override { return "fault"; }
  bool has_tile() const noexcept { return has_tile_; }
  int tile_row() const noexcept { return tile_row_; }
  int tile_col() const noexcept { return tile_col_; }
  // Simulated time of detection, in seconds; negative when the detection
  // point could not supply one.
  double sim_seconds() const noexcept { return sim_seconds_; }

 private:
  bool has_tile_ = false;
  int tile_row_ = 0;
  int tile_col_ = 0;
  double sim_seconds_ = -1.0;
};

}  // namespace hsvd
