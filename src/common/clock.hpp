// Monotonic clock abstraction for the serving layer.
//
// Deadlines, retry backoff, and the circuit breaker's cooldown all need
// a notion of *host* time (the simulated fabric has its own timeline).
// They take a `Clock*` instead of calling std::chrono directly so tests
// can drive them with a FakeClock -- no real sleeps, fully
// deterministic. MonotonicClock is the production implementation
// (steady_clock seconds since process start).
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace hsvd::common {

class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic seconds since an arbitrary epoch (stable per instance).
  virtual double now_seconds() const = 0;
  // Blocks the calling thread for `seconds` of this clock's time. A fake
  // clock advances itself instead of sleeping, so tests run instantly.
  virtual void sleep_for(double seconds) = 0;
};

// steady_clock-backed wall time. Stateless; share the process-wide
// instance().
class MonotonicClock final : public Clock {
 public:
  double now_seconds() const override {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
  }
  void sleep_for(double seconds) override {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  static MonotonicClock& instance() {
    static MonotonicClock clock;
    return clock;
  }
};

// Manually advanced clock for tests. Thread-safe: serving-layer workers
// read it concurrently while the test thread advances it.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start_seconds = 0.0) : now_(start_seconds) {}
  double now_seconds() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_;
  }
  // sleep_for on a fake clock advances time instead of blocking, so a
  // backoff of minutes costs nothing in a test.
  void sleep_for(double seconds) override {
    if (seconds > 0.0) advance(seconds);
  }
  void advance(double seconds) {
    HSVD_REQUIRE(seconds >= 0.0, "a monotonic clock cannot go backwards");
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += seconds;
  }

 private:
  mutable std::mutex mutex_;
  double now_;
};

// Cooperative cancellation handle: a deadline on a clock plus a manual
// cancel flag. The accelerator polls expired() at its slot-chain
// boundaries and aborts the run with hsvd::DeadlineExceeded; nothing is
// ever interrupted mid-kernel, so a cancelled run leaves no shared state
// behind. Not copyable (the flag is shared by pointer between the party
// that cancels and the workers that poll).
class CancelToken {
 public:
  // Never expires until cancel().
  CancelToken() = default;
  // Expires once `clock` reaches the absolute time `deadline_seconds`.
  CancelToken(const Clock& clock, double deadline_seconds)
      : clock_(&clock), deadline_s_(deadline_seconds) {}
  // Expires `budget_seconds` from now. The budget must be positive: a
  // non-positive budget is a caller bug, not a request that instantly
  // times out.
  static CancelToken with_budget(const Clock& clock, double budget_seconds) {
    HSVD_REQUIRE(budget_seconds > 0.0, "deadline budget must be positive");
    return CancelToken(clock, clock.now_seconds() + budget_seconds);
  }

  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const { return clock_ != nullptr; }
  double deadline_seconds() const { return deadline_s_; }
  // True once cancel() was called or the clock passed the deadline.
  bool expired() const {
    if (cancelled()) return true;
    return clock_ != nullptr && clock_->now_seconds() >= deadline_s_;
  }
  // Seconds left before expiry; +inf without a deadline, 0 when expired.
  double remaining_seconds() const {
    if (cancelled()) return 0.0;
    if (clock_ == nullptr) return std::numeric_limits<double>::infinity();
    const double left = deadline_s_ - clock_->now_seconds();
    return left > 0.0 ? left : 0.0;
  }

 private:
  const Clock* clock_ = nullptr;
  double deadline_s_ = std::numeric_limits<double>::infinity();
  std::atomic<bool> cancelled_{false};
};

}  // namespace hsvd::common
