// Design space exploration (paper section IV-C, Fig. 8).
//
// Problem (eq. (15)): given matrix size and batch size, choose
// (P_eng, P_task, Freq) minimizing runtime subject to the AIE / PLIO /
// BRAM / URAM budgets (eq. (16)).
//
// Two-stage flow: stage 1 enumerates P_eng and, for each, maximizes
// P_task under the resource constraints (placement gives exact AIE and
// PLIO usage; the resource model gives URAM/BRAM). Stage 2 scores every
// surviving design point with the analytic performance model and ranks
// by the requested objective.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/placement.hpp"
#include "dse/frequency_model.hpp"
#include "obs/obs.hpp"
#include "perfmodel/perf_model.hpp"
#include "perfmodel/power_model.hpp"
#include "perfmodel/resource_model.hpp"

namespace hsvd::dse {

enum class Objective { kLatency, kThroughput };

struct DesignPoint {
  int p_eng = 1;
  int p_task = 1;
  // Simulated AIE arrays the point spans (DESIGN.md section 11). S > 1
  // points replicate the S = 1 placement on S devices and add the
  // inter-shard ring edge to the latency model; resources/power cover
  // all S arrays plus the 2S link PLIOs.
  int shards = 1;
  double frequency_hz = 0.0;
  perf::LatencyBreakdown latency;
  perf::ResourceUsage resources;
  double power_watts = 0.0;
  double latency_seconds = 0.0;            // one task
  double throughput_tasks_per_s = 0.0;     // at the requested batch
  double energy_efficiency() const {       // tasks/s/W (Table III metric)
    return throughput_tasks_per_s / power_watts;
  }
  double energy_per_task_joules() const {   // W / (tasks/s)
    return power_watts / throughput_tasks_per_s;
  }
};

struct DseRequest {
  std::size_t rows = 128;
  std::size_t cols = 128;
  int batch = 1;
  int iterations = 6;
  Objective objective = Objective::kLatency;
  // When set, fixes the PL frequency; otherwise the frequency model
  // supplies the maximum achievable per design point.
  std::optional<double> frequency_hz;
  // Largest shard count to co-explore with (P_eng, P_task): every
  // feasible single-array point also spawns S = 2, 4, ... <= max_shards
  // variants scored with the sharded latency model, so the Pareto front
  // can include multi-array points. 1 (the default) explores the
  // paper's single-array space only.
  int max_shards = 1;
  versal::DeviceResources device = versal::vck190();
  // Host threads for evaluating independent P_eng slices of the design
  // space in parallel (0 = auto via HSVD_THREADS/hardware, 1 = inline).
  // The enumeration order and scores are thread-count invariant.
  int threads = 0;
  // Optional observability context (not owned): enumerate() records
  // placement-effort counters and -- through the pool observer -- a host
  // span per P_eng slice. Never changes the enumeration.
  obs::ObsContext* observer = nullptr;
  // Checkpoint/resume for expensive sweeps: when non-empty, every
  // evaluated P_eng slice (its scored design points, or its proven
  // infeasibility) is recorded in this file, and a rerun with the same
  // request replays the recorded slices without a single placement
  // call. The file is tagged with a digest of the request (shape, batch,
  // iterations, frequency, device budgets -- the objective only orders
  // the final ranking and is deliberately excluded); custom
  // frequency/power/performance models are NOT part of the tag, so keep
  // one checkpoint per explorer configuration.
  std::string checkpoint_path;
  // In-memory cross-call memoization: when true, the full enumeration
  // (pre-sort, so one entry serves every objective) is cached in the
  // explorer's shared state under the same request digest the checkpoint
  // uses, and a repeat request returns the cached points with zero
  // placement calls. Opt-in because the memo pins the scored points in
  // memory for the explorer's lifetime; the backend router (which asks
  // for the same handful of shapes over and over) turns it on.
  bool memoize = false;
};

// Placement-effort accounting for the most recent enumerate() on an
// explorer: every feasible or infeasible (P_eng, P_task) point is placed
// at most once; stage 2 reuses the placements stage 1 already computed.
struct DseStats {
  std::uint64_t placement_calls = 0;   // try_place + estimate_resources runs
  std::uint64_t placement_reuses = 0;  // served from the memo instead
  // Lifetime count of enumerate() calls answered entirely from the
  // cross-call memo (DseRequest::memoize).
  std::uint64_t enumerate_memo_hits = 0;
};

class DesignSpaceExplorer {
 public:
  DesignSpaceExplorer() = default;
  explicit DesignSpaceExplorer(FrequencyModel freq,
                               perf::PowerModel power = {},
                               perf::PerformanceModel perf = {})
      : freq_(freq), power_(power), perf_(perf) {}

  // Stage 1 + stage 2: all feasible design points, best first.
  std::vector<DesignPoint> enumerate(const DseRequest& request) const;

  // The winning design point; throws if no configuration fits.
  DesignPoint optimize(const DseRequest& request) const;

  // Stage 1 only: the largest feasible P_task for a given P_eng, or
  // nullopt when even P_task = 1 does not fit.
  std::optional<int> max_task_parallelism(const DseRequest& request,
                                          int p_eng) const;

  // Placement-call accounting of the most recent enumerate().
  DseStats last_stats() const;

 private:
  // One memoized placement attempt: the config it was derived from, the
  // placement (when one exists) and whether the point fits the device.
  struct PlacedPoint {
    accel::HeteroSvdConfig config;
    std::optional<accel::PlacementResult> placement;
    perf::ResourceUsage resources;
    bool feasible = false;
  };
  // Per-P_eng-slice memo: P_task -> placement attempt. Slices are
  // independent, so each parallel slice owns its own cache and there is
  // no cross-thread sharing to synchronize.
  using SliceCache = std::map<int, std::shared_ptr<const PlacedPoint>>;

  accel::HeteroSvdConfig make_config(const DseRequest& request, int p_eng,
                                     int p_task) const;
  std::shared_ptr<const PlacedPoint> place_cached(const DseRequest& request,
                                                  int p_eng, int p_task,
                                                  SliceCache& cache) const;
  std::optional<int> max_task_parallelism_cached(const DseRequest& request,
                                                 int p_eng,
                                                 SliceCache& cache) const;

  FrequencyModel freq_;
  perf::PowerModel power_;
  perf::PerformanceModel perf_;
  // Shared (not copied per explorer value) so that the counters survive
  // the copies the by-value API encourages; atomics because P_eng slices
  // run concurrently. The cross-call enumerate memo lives here too, so
  // copies of one explorer (the backend registry holds several) share
  // one memo.
  struct Counters {
    std::atomic<std::uint64_t> placement_calls{0};
    std::atomic<std::uint64_t> placement_reuses{0};
    std::atomic<std::uint64_t> enumerate_memo_hits{0};
    std::mutex enumerate_memo_mutex;
    // Request digest (dse_checkpoint_tag) -> pre-sort enumeration.
    std::map<std::string, std::vector<DesignPoint>> enumerate_memo;
  };
  std::shared_ptr<Counters> counters_ = std::make_shared<Counters>();
};

}  // namespace hsvd::dse
