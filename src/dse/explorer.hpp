// Design space exploration (paper section IV-C, Fig. 8).
//
// Problem (eq. (15)): given matrix size and batch size, choose
// (P_eng, P_task, Freq) minimizing runtime subject to the AIE / PLIO /
// BRAM / URAM budgets (eq. (16)).
//
// Two-stage flow: stage 1 enumerates P_eng and, for each, maximizes
// P_task under the resource constraints (placement gives exact AIE and
// PLIO usage; the resource model gives URAM/BRAM). Stage 2 scores every
// surviving design point with the analytic performance model and ranks
// by the requested objective.
#pragma once

#include <optional>
#include <vector>

#include "accel/config.hpp"
#include "dse/frequency_model.hpp"
#include "perfmodel/perf_model.hpp"
#include "perfmodel/power_model.hpp"
#include "perfmodel/resource_model.hpp"

namespace hsvd::dse {

enum class Objective { kLatency, kThroughput };

struct DesignPoint {
  int p_eng = 1;
  int p_task = 1;
  double frequency_hz = 0.0;
  perf::LatencyBreakdown latency;
  perf::ResourceUsage resources;
  double power_watts = 0.0;
  double latency_seconds = 0.0;            // one task
  double throughput_tasks_per_s = 0.0;     // at the requested batch
  double energy_efficiency() const {       // tasks/s/W (Table III metric)
    return throughput_tasks_per_s / power_watts;
  }
  double energy_per_task_joules() const {   // W / (tasks/s)
    return power_watts / throughput_tasks_per_s;
  }
};

struct DseRequest {
  std::size_t rows = 128;
  std::size_t cols = 128;
  int batch = 1;
  int iterations = 6;
  Objective objective = Objective::kLatency;
  // When set, fixes the PL frequency; otherwise the frequency model
  // supplies the maximum achievable per design point.
  std::optional<double> frequency_hz;
  versal::DeviceResources device = versal::vck190();
};

class DesignSpaceExplorer {
 public:
  DesignSpaceExplorer() = default;
  explicit DesignSpaceExplorer(FrequencyModel freq,
                               perf::PowerModel power = {},
                               perf::PerformanceModel perf = {})
      : freq_(freq), power_(power), perf_(perf) {}

  // Stage 1 + stage 2: all feasible design points, best first.
  std::vector<DesignPoint> enumerate(const DseRequest& request) const;

  // The winning design point; throws if no configuration fits.
  DesignPoint optimize(const DseRequest& request) const;

  // Stage 1 only: the largest feasible P_task for a given P_eng, or
  // nullopt when even P_task = 1 does not fit.
  std::optional<int> max_task_parallelism(const DseRequest& request,
                                          int p_eng) const;

 private:
  accel::HeteroSvdConfig make_config(const DseRequest& request, int p_eng,
                                     int p_task) const;

  FrequencyModel freq_;
  perf::PowerModel power_;
  perf::PerformanceModel perf_;
};

}  // namespace hsvd::dse
