// Pareto analysis of DSE design points.
//
// Table VI shows that no single configuration wins latency, throughput,
// and power at once; the useful output of a DSE run is the frontier of
// non-dominated points. A point dominates another when it is no worse in
// all three objectives (latency and power minimized, throughput
// maximized) and strictly better in at least one.
#pragma once

#include <vector>

#include "dse/explorer.hpp"

namespace hsvd::dse {

// True when `a` dominates `b`.
bool dominates(const DesignPoint& a, const DesignPoint& b);

// Non-dominated subset, sorted by ascending latency. Input order ties are
// broken toward the earlier point (stable).
std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points);

}  // namespace hsvd::dse
