#include "dse/explorer.hpp"

#include <algorithm>

#include "accel/placement.hpp"
#include "common/format.hpp"

namespace hsvd::dse {

accel::HeteroSvdConfig DesignSpaceExplorer::make_config(
    const DseRequest& request, int p_eng, int p_task) const {
  accel::HeteroSvdConfig config;
  config.rows = request.rows;
  config.cols = request.cols;
  config.iterations = request.iterations;
  config.p_eng = p_eng;
  config.p_task = p_task;
  config.pl_frequency_hz = request.frequency_hz.value_or(
      freq_.max_frequency_hz(request.cols, p_task));
  config.device = request.device;
  return config;
}

std::optional<int> DesignSpaceExplorer::max_task_parallelism(
    const DseRequest& request, int p_eng) const {
  // Walk down from the architectural limit; the first P_task whose
  // placement and PL memory fit is the stage-1 answer.
  for (int p_task = 26; p_task >= 1; --p_task) {
    const auto config = make_config(request, p_eng, p_task);
    auto placement = accel::try_place(config);
    if (!placement.has_value()) continue;
    const auto usage = perf::estimate_resources(config, *placement);
    if (usage.fits(request.device)) return p_task;
  }
  return std::nullopt;
}

std::vector<DesignPoint> DesignSpaceExplorer::enumerate(
    const DseRequest& request) const {
  HSVD_REQUIRE(request.batch >= 1, "batch must be positive");
  std::vector<DesignPoint> points;
  for (int p_eng = 1; p_eng <= 11; ++p_eng) {
    if (request.cols < 2 * static_cast<std::size_t>(p_eng)) continue;
    const auto max_tasks = max_task_parallelism(request, p_eng);
    if (!max_tasks.has_value()) continue;
    // Stage 2 scores every P_task up to the stage-1 maximum: latency-
    // optimal points often use fewer tasks than fit (Table VI).
    for (int p_task = 1; p_task <= *max_tasks; ++p_task) {
      const auto config = make_config(request, p_eng, p_task);
      auto placement = accel::try_place(config);
      if (!placement.has_value()) continue;
      DesignPoint point;
      point.p_eng = p_eng;
      point.p_task = p_task;
      point.frequency_hz = config.pl_frequency_hz;
      point.resources = perf::estimate_resources(config, *placement);
      if (!point.resources.fits(request.device)) continue;
      point.latency = perf_.evaluate(config, request.batch);
      point.latency_seconds = point.latency.t_task;
      point.throughput_tasks_per_s =
          point.latency.throughput_tasks_per_s(request.batch);
      point.power_watts =
          power_.system_watts(point.resources, config.pl_frequency_hz);
      points.push_back(point);
    }
  }
  const auto better = [&](const DesignPoint& a, const DesignPoint& b) {
    if (request.objective == Objective::kLatency) {
      return a.latency_seconds < b.latency_seconds;
    }
    return a.throughput_tasks_per_s > b.throughput_tasks_per_s;
  };
  std::stable_sort(points.begin(), points.end(), better);
  return points;
}

DesignPoint DesignSpaceExplorer::optimize(const DseRequest& request) const {
  auto points = enumerate(request);
  HSVD_REQUIRE(!points.empty(),
               cat("no feasible design point for ", request.rows, "x",
                   request.cols));
  return points.front();
}

}  // namespace hsvd::dse
