#include "dse/explorer.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "common/checkpoint.hpp"
#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "shard/model.hpp"

namespace hsvd::dse {

namespace {
// Architectural parameter ranges of Table I.
constexpr int kMaxPeng = 11;
constexpr int kMaxPtask = 26;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Shortest decimal round-tripping the exact double: a slice replayed
// from the checkpoint scores identical to a freshly evaluated one.
std::string g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Digest of the request fields a slice's design points depend on. The
// objective only orders the final ranking (slices are recorded
// pre-sort), so it is excluded on purpose: one checkpoint serves both
// objectives.
std::string dse_checkpoint_tag(const DseRequest& request) {
  std::uint64_t h = 0xd5eull;
  const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  const auto fold_d = [&fold](double v) {
    fold(std::bit_cast<std::uint64_t>(v));
  };
  fold(request.rows);
  fold(request.cols);
  fold(static_cast<std::uint64_t>(request.batch));
  fold(static_cast<std::uint64_t>(request.iterations));
  fold(request.frequency_hz.has_value() ? 1 : 0);
  fold_d(request.frequency_hz.value_or(0.0));
  const auto& dev = request.device;
  fold(static_cast<std::uint64_t>(dev.aie_rows));
  fold(static_cast<std::uint64_t>(dev.aie_cols));
  fold_d(dev.aie_clock_hz);
  fold_d(dev.plio_pl_to_aie_bytes_per_s);
  fold_d(dev.plio_aie_to_pl_bytes_per_s);
  fold(static_cast<std::uint64_t>(dev.total_aie));
  fold(static_cast<std::uint64_t>(dev.total_plio));
  fold(static_cast<std::uint64_t>(dev.total_bram));
  fold(static_cast<std::uint64_t>(dev.total_uram));
  fold(dev.lut_total);
  fold_d(dev.ddr_bytes_per_s);
  fold_d(dev.ddr_latency_s);
  fold(static_cast<std::uint64_t>(dev.ddr_ports));
  fold(static_cast<std::uint64_t>(request.max_shards));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return cat("dse-", buf);
}

// Space-separated flat encoding: point count, then 30 numbers per
// point. All numeric, so no escaping is needed.
std::string serialize_points(const std::vector<DesignPoint>& points) {
  std::ostringstream os;
  os << points.size();
  for (const auto& p : points) {
    os << ' ' << p.p_eng << ' ' << p.p_task << ' ' << p.shards << ' '
       << g17(p.frequency_hz);
    const auto& l = p.latency;
    for (double v : {l.t_tx_col, l.t_tx_blk, l.t_rx_blk, l.t_orth,
                     l.t_norm_kernel, l.t_aie_wait, l.t_algo, l.t_datawait,
                     l.t_pipeline, l.t_round, l.t_iter, l.t_ddr,
                     l.t_norm_stage, l.t_hls, l.t_task, l.t_sys}) {
      os << ' ' << g17(v);
    }
    const auto& r = p.resources;
    os << ' ' << r.aie_orth << ' ' << r.aie_norm << ' ' << r.aie_mem << ' '
       << r.plio << ' ' << r.uram << ' ' << r.bram << ' ' << r.lut;
    os << ' ' << g17(p.power_watts) << ' ' << g17(p.latency_seconds) << ' '
       << g17(p.throughput_tasks_per_s);
  }
  return os.str();
}

bool deserialize_points(const std::string& payload,
                        std::vector<DesignPoint>& out) {
  out.clear();
  if (payload.empty()) return true;  // slice proven infeasible
  std::istringstream is(payload);
  std::size_t count = 0;
  if (!(is >> count)) return false;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DesignPoint p;
    auto& l = p.latency;
    auto& r = p.resources;
    if (!(is >> p.p_eng >> p.p_task >> p.shards >> p.frequency_hz >> l.t_tx_col >>
          l.t_tx_blk >> l.t_rx_blk >> l.t_orth >> l.t_norm_kernel >>
          l.t_aie_wait >> l.t_algo >> l.t_datawait >> l.t_pipeline >>
          l.t_round >> l.t_iter >> l.t_ddr >> l.t_norm_stage >> l.t_hls >>
          l.t_task >> l.t_sys >> r.aie_orth >> r.aie_norm >> r.aie_mem >>
          r.plio >> r.uram >> r.bram >> r.lut >> p.power_watts >>
          p.latency_seconds >> p.throughput_tasks_per_s)) {
      out.clear();
      return false;
    }
    out.push_back(p);
  }
  return true;
}

}  // namespace

accel::HeteroSvdConfig DesignSpaceExplorer::make_config(
    const DseRequest& request, int p_eng, int p_task) const {
  accel::HeteroSvdConfig config;
  config.rows = request.rows;
  config.cols = request.cols;
  config.iterations = request.iterations;
  config.p_eng = p_eng;
  config.p_task = p_task;
  config.pl_frequency_hz = request.frequency_hz.value_or(
      freq_.max_frequency_hz(request.cols, p_task));
  config.device = request.device;
  return config;
}

std::shared_ptr<const DesignSpaceExplorer::PlacedPoint>
DesignSpaceExplorer::place_cached(const DseRequest& request, int p_eng,
                                  int p_task, SliceCache& cache) const {
  auto it = cache.find(p_task);
  if (it != cache.end()) {
    counters_->placement_reuses.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  counters_->placement_calls.fetch_add(1, std::memory_order_relaxed);
  auto point = std::make_shared<PlacedPoint>();
  point->config = make_config(request, p_eng, p_task);
  point->placement = accel::try_place(point->config);
  if (point->placement.has_value()) {
    point->resources =
        perf::estimate_resources(point->config, *point->placement);
    point->feasible = point->resources.fits(request.device);
  }
  cache.emplace(p_task, point);
  return point;
}

std::optional<int> DesignSpaceExplorer::max_task_parallelism_cached(
    const DseRequest& request, int p_eng, SliceCache& cache) const {
  // Walk down from the architectural limit; the first P_task whose
  // placement and PL memory fit is the stage-1 answer. Every attempt
  // (feasible or not) lands in the slice cache for stage 2 to reuse.
  for (int p_task = kMaxPtask; p_task >= 1; --p_task) {
    if (place_cached(request, p_eng, p_task, cache)->feasible) return p_task;
  }
  return std::nullopt;
}

std::optional<int> DesignSpaceExplorer::max_task_parallelism(
    const DseRequest& request, int p_eng) const {
  SliceCache cache;
  return max_task_parallelism_cached(request, p_eng, cache);
}

DseStats DesignSpaceExplorer::last_stats() const {
  DseStats out;
  out.placement_calls =
      counters_->placement_calls.load(std::memory_order_relaxed);
  out.placement_reuses =
      counters_->placement_reuses.load(std::memory_order_relaxed);
  out.enumerate_memo_hits =
      counters_->enumerate_memo_hits.load(std::memory_order_relaxed);
  return out;
}

std::vector<DesignPoint> DesignSpaceExplorer::enumerate(
    const DseRequest& request) const {
  HSVD_REQUIRE(request.batch >= 1, "batch must be positive");
  counters_->placement_calls.store(0, std::memory_order_relaxed);
  counters_->placement_reuses.store(0, std::memory_order_relaxed);

  // Cross-call memo: a repeat request replays the recorded pre-sort
  // enumeration (re-sorted below for *this* call's objective, which the
  // digest deliberately excludes) with zero placement calls.
  std::string memo_key;
  if (request.memoize) {
    memo_key = dse_checkpoint_tag(request);
    std::lock_guard<std::mutex> lock(counters_->enumerate_memo_mutex);
    const auto it = counters_->enumerate_memo.find(memo_key);
    if (it != counters_->enumerate_memo.end()) {
      counters_->enumerate_memo_hits.fetch_add(1, std::memory_order_relaxed);
      if (request.observer != nullptr) {
        request.observer->metrics().add("dse.enumerate.memo_hit");
      }
      std::vector<DesignPoint> points = it->second;
      std::stable_sort(points.begin(), points.end(),
                       [&](const DesignPoint& a, const DesignPoint& b) {
                         if (request.objective == Objective::kLatency) {
                           return a.latency_seconds < b.latency_seconds;
                         }
                         return a.throughput_tasks_per_s >
                                b.throughput_tasks_per_s;
                       });
      return points;
    }
  }

  std::shared_ptr<common::CheckpointFile> checkpoint;
  if (!request.checkpoint_path.empty()) {
    checkpoint = std::make_shared<common::CheckpointFile>(
        request.checkpoint_path, dse_checkpoint_tag(request));
  }

  // Each P_eng slice of the design space is self-contained (its own
  // placements, its own P_task scan), so slices evaluate in parallel on
  // the pool; slice outputs are concatenated in P_eng order, keeping the
  // enumeration deterministic for any thread count.
  std::vector<std::vector<DesignPoint>> slices(
      static_cast<std::size_t>(kMaxPeng));
  const auto evaluate_slice = [&](std::size_t slice) {
    const int p_eng = static_cast<int>(slice) + 1;
    if (request.cols < 2 * static_cast<std::size_t>(p_eng)) return;
    const std::string key = cat("peng:", p_eng);
    if (checkpoint != nullptr) {
      if (const std::string* payload = checkpoint->find(key)) {
        // Replayed slice: identical points, zero placement calls. A
        // malformed payload (torn write) falls through to a fresh
        // evaluation that overwrites the record.
        if (deserialize_points(*payload, slices[slice])) return;
      }
    }
    SliceCache cache;
    const auto max_tasks = max_task_parallelism_cached(request, p_eng, cache);
    if (max_tasks.has_value()) {
      // Stage 2 scores every P_task up to the stage-1 maximum: latency-
      // optimal points often use fewer tasks than fit (Table VI). The
      // stage-1 placement of the maximum is reused from the cache
      // instead of being recomputed.
      for (int p_task = 1; p_task <= *max_tasks; ++p_task) {
        const auto placed = place_cached(request, p_eng, p_task, cache);
        if (!placed->feasible) continue;
        DesignPoint point;
        point.p_eng = p_eng;
        point.p_task = p_task;
        point.frequency_hz = placed->config.pl_frequency_hz;
        point.resources = placed->resources;
        point.latency = perf_.evaluate(placed->config, request.batch);
        point.latency_seconds = point.latency.t_task;
        point.throughput_tasks_per_s =
            point.latency.throughput_tasks_per_s(request.batch);
        point.power_watts = power_.system_watts(point.resources,
                                                placed->config.pl_frequency_hz);
        slices[slice].push_back(point);
        // Multi-array variants of the same placement: the S = 1 point's
        // breakdown feeds the sharded model, the resource footprint
        // covers S replicas plus the 2S inter-shard link PLIOs, and
        // power follows the scaled resources. Feasibility is per device
        // and therefore inherited from the S = 1 placement.
        for (int s = 2; s <= request.max_shards; s *= 2) {
          const shard::ShardedBreakdown sb = shard::evaluate_sharded(
              placed->config, point.latency, s, request.batch);
          DesignPoint multi = point;
          multi.shards = s;
          multi.latency.t_iter = sb.t_iter;
          multi.latency.t_ddr = sb.t_ddr;
          multi.latency.t_norm_stage = sb.t_norm_stage;
          multi.latency.t_task = sb.t_task;
          multi.latency.t_sys = sb.t_sys;
          multi.latency_seconds = sb.t_task;
          multi.throughput_tasks_per_s = sb.throughput_tasks_per_s(request.batch);
          multi.resources.aie_orth *= s;
          multi.resources.aie_norm *= s;
          multi.resources.aie_mem *= s;
          multi.resources.uram *= s;
          multi.resources.bram *= s;
          multi.resources.lut *= static_cast<std::uint64_t>(s);
          multi.resources.plio = point.resources.plio * s + 2 * s;
          multi.power_watts = power_.system_watts(
              multi.resources, placed->config.pl_frequency_hz);
          slices[slice].push_back(multi);
        }
      }
    }
    // Record feasible and infeasible slices alike (an empty point list
    // proves infeasibility, so the resume skips the placement scan too).
    if (checkpoint != nullptr) {
      checkpoint->record(key, serialize_points(slices[slice]));
    }
  };
  const int threads = common::ThreadPool::resolve_threads(request.threads);
  {
    obs::ScopedPoolObservation observe(request.observer);
    common::ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(kMaxPeng), threads, evaluate_slice,
        "dse-slice");
  }

  std::vector<DesignPoint> points;
  for (const auto& slice : slices) {
    points.insert(points.end(), slice.begin(), slice.end());
  }
  if (request.observer != nullptr) {
    auto& metrics = request.observer->metrics();
    metrics.add("dse.placement_calls",
                counters_->placement_calls.load(std::memory_order_relaxed));
    metrics.add("dse.placement_reuses",
                counters_->placement_reuses.load(std::memory_order_relaxed));
    metrics.add("dse.points", points.size());
  }
  if (request.memoize) {
    // Record the pre-sort concatenation so one memo entry serves both
    // objectives (first insertion wins; concurrent callers computed the
    // identical points anyway).
    std::lock_guard<std::mutex> lock(counters_->enumerate_memo_mutex);
    counters_->enumerate_memo.emplace(memo_key, points);
  }
  const auto better = [&](const DesignPoint& a, const DesignPoint& b) {
    if (request.objective == Objective::kLatency) {
      return a.latency_seconds < b.latency_seconds;
    }
    return a.throughput_tasks_per_s > b.throughput_tasks_per_s;
  };
  std::stable_sort(points.begin(), points.end(), better);
  return points;
}

DesignPoint DesignSpaceExplorer::optimize(const DseRequest& request) const {
  auto points = enumerate(request);
  HSVD_REQUIRE(!points.empty(),
               cat("no feasible design point for ", request.rows, "x",
                   request.cols));
  return points.front();
}

}  // namespace hsvd::dse
