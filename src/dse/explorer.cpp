#include "dse/explorer.hpp"

#include <algorithm>

#include "common/format.hpp"
#include "common/thread_pool.hpp"

namespace hsvd::dse {

namespace {
// Architectural parameter ranges of Table I.
constexpr int kMaxPeng = 11;
constexpr int kMaxPtask = 26;
}  // namespace

accel::HeteroSvdConfig DesignSpaceExplorer::make_config(
    const DseRequest& request, int p_eng, int p_task) const {
  accel::HeteroSvdConfig config;
  config.rows = request.rows;
  config.cols = request.cols;
  config.iterations = request.iterations;
  config.p_eng = p_eng;
  config.p_task = p_task;
  config.pl_frequency_hz = request.frequency_hz.value_or(
      freq_.max_frequency_hz(request.cols, p_task));
  config.device = request.device;
  return config;
}

std::shared_ptr<const DesignSpaceExplorer::PlacedPoint>
DesignSpaceExplorer::place_cached(const DseRequest& request, int p_eng,
                                  int p_task, SliceCache& cache) const {
  auto it = cache.find(p_task);
  if (it != cache.end()) {
    counters_->placement_reuses.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  counters_->placement_calls.fetch_add(1, std::memory_order_relaxed);
  auto point = std::make_shared<PlacedPoint>();
  point->config = make_config(request, p_eng, p_task);
  point->placement = accel::try_place(point->config);
  if (point->placement.has_value()) {
    point->resources =
        perf::estimate_resources(point->config, *point->placement);
    point->feasible = point->resources.fits(request.device);
  }
  cache.emplace(p_task, point);
  return point;
}

std::optional<int> DesignSpaceExplorer::max_task_parallelism_cached(
    const DseRequest& request, int p_eng, SliceCache& cache) const {
  // Walk down from the architectural limit; the first P_task whose
  // placement and PL memory fit is the stage-1 answer. Every attempt
  // (feasible or not) lands in the slice cache for stage 2 to reuse.
  for (int p_task = kMaxPtask; p_task >= 1; --p_task) {
    if (place_cached(request, p_eng, p_task, cache)->feasible) return p_task;
  }
  return std::nullopt;
}

std::optional<int> DesignSpaceExplorer::max_task_parallelism(
    const DseRequest& request, int p_eng) const {
  SliceCache cache;
  return max_task_parallelism_cached(request, p_eng, cache);
}

DseStats DesignSpaceExplorer::last_stats() const {
  DseStats out;
  out.placement_calls =
      counters_->placement_calls.load(std::memory_order_relaxed);
  out.placement_reuses =
      counters_->placement_reuses.load(std::memory_order_relaxed);
  return out;
}

std::vector<DesignPoint> DesignSpaceExplorer::enumerate(
    const DseRequest& request) const {
  HSVD_REQUIRE(request.batch >= 1, "batch must be positive");
  counters_->placement_calls.store(0, std::memory_order_relaxed);
  counters_->placement_reuses.store(0, std::memory_order_relaxed);

  // Each P_eng slice of the design space is self-contained (its own
  // placements, its own P_task scan), so slices evaluate in parallel on
  // the pool; slice outputs are concatenated in P_eng order, keeping the
  // enumeration deterministic for any thread count.
  std::vector<std::vector<DesignPoint>> slices(
      static_cast<std::size_t>(kMaxPeng));
  const auto evaluate_slice = [&](std::size_t slice) {
    const int p_eng = static_cast<int>(slice) + 1;
    if (request.cols < 2 * static_cast<std::size_t>(p_eng)) return;
    SliceCache cache;
    const auto max_tasks = max_task_parallelism_cached(request, p_eng, cache);
    if (!max_tasks.has_value()) return;
    // Stage 2 scores every P_task up to the stage-1 maximum: latency-
    // optimal points often use fewer tasks than fit (Table VI). The
    // stage-1 placement of the maximum is reused from the cache instead
    // of being recomputed.
    for (int p_task = 1; p_task <= *max_tasks; ++p_task) {
      const auto placed = place_cached(request, p_eng, p_task, cache);
      if (!placed->feasible) continue;
      DesignPoint point;
      point.p_eng = p_eng;
      point.p_task = p_task;
      point.frequency_hz = placed->config.pl_frequency_hz;
      point.resources = placed->resources;
      point.latency = perf_.evaluate(placed->config, request.batch);
      point.latency_seconds = point.latency.t_task;
      point.throughput_tasks_per_s =
          point.latency.throughput_tasks_per_s(request.batch);
      point.power_watts =
          power_.system_watts(point.resources, placed->config.pl_frequency_hz);
      slices[slice].push_back(point);
    }
  };
  const int threads = common::ThreadPool::resolve_threads(request.threads);
  {
    obs::ScopedPoolObservation observe(request.observer);
    common::ThreadPool::shared().parallel_for(
        static_cast<std::size_t>(kMaxPeng), threads, evaluate_slice,
        "dse-slice");
  }

  std::vector<DesignPoint> points;
  for (const auto& slice : slices) {
    points.insert(points.end(), slice.begin(), slice.end());
  }
  if (request.observer != nullptr) {
    auto& metrics = request.observer->metrics();
    metrics.add("dse.placement_calls",
                counters_->placement_calls.load(std::memory_order_relaxed));
    metrics.add("dse.placement_reuses",
                counters_->placement_reuses.load(std::memory_order_relaxed));
    metrics.add("dse.points", points.size());
  }
  const auto better = [&](const DesignPoint& a, const DesignPoint& b) {
    if (request.objective == Objective::kLatency) {
      return a.latency_seconds < b.latency_seconds;
    }
    return a.throughput_tasks_per_s > b.throughput_tasks_per_s;
  };
  std::stable_sort(points.begin(), points.end(), better);
  return points;
}

DesignPoint DesignSpaceExplorer::optimize(const DseRequest& request) const {
  auto points = enumerate(request);
  HSVD_REQUIRE(!points.empty(),
               cat("no feasible design point for ", request.rows, "x",
                   request.cols));
  return points.front();
}

}  // namespace hsvd::dse
