// Achievable PL frequency model.
//
// The paper reports that larger designs close timing at lower PL
// frequencies (Table V: 450 MHz for a single 128x128 task down to
// 310 MHz at 1024x1024 or high task parallelism; section V-B attributes
// this to PL complexity). We model f_max as a base frequency degraded
// logarithmically by matrix size and linearly by task parallelism,
// calibrated to Table V's eight (size, P_task, freq) points.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace hsvd::dse {

struct FrequencyModel {
  double base_hz = 450.0e6;          // single 128x128 task
  double per_size_octave_hz = 45.0e6;  // drop per doubling of n
  double per_task_hz = 13.0e6;         // drop per extra parallel task
  double floor_hz = 250.0e6;

  double max_frequency_hz(std::size_t cols, int p_task) const {
    const double octaves = std::log2(static_cast<double>(cols) / 128.0);
    const double f = base_hz - per_size_octave_hz * std::max(octaves, 0.0) -
                     per_task_hz * (p_task - 1);
    return std::max(f, floor_hz);
  }
};

}  // namespace hsvd::dse
