#include "dse/pareto.hpp"

#include <algorithm>

namespace hsvd::dse {

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  const bool no_worse = a.latency_seconds <= b.latency_seconds &&
                        a.throughput_tasks_per_s >= b.throughput_tasks_per_s &&
                        a.power_watts <= b.power_watts;
  const bool strictly_better =
      a.latency_seconds < b.latency_seconds ||
      a.throughput_tasks_per_s > b.throughput_tasks_per_s ||
      a.power_watts < b.power_watts;
  return no_worse && strictly_better;
}

std::vector<DesignPoint> pareto_front(const std::vector<DesignPoint>& points) {
  std::vector<DesignPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      if (dominates(points[j], points[i])) dominated = true;
      // Exact duplicates: keep only the first occurrence.
      if (j < i && !dominates(points[i], points[j]) &&
          points[j].latency_seconds == points[i].latency_seconds &&
          points[j].throughput_tasks_per_s == points[i].throughput_tasks_per_s &&
          points[j].power_watts == points[i].power_watts) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(points[i]);
  }
  std::stable_sort(front.begin(), front.end(),
                   [](const DesignPoint& a, const DesignPoint& b) {
                     return a.latency_seconds < b.latency_seconds;
                   });
  return front;
}

}  // namespace hsvd::dse
