// HeteroSVD -- public API facade.
//
// One include for downstream users:
//
//   #include "heterosvd.hpp"
//
//   hsvd::linalg::MatrixF a = ...;           // rows >= cols, column-major
//   hsvd::Svd result = hsvd::svd(a);         // DSE-chosen accelerator run
//   // result.u, result.sigma (descending), result.v
//
// svd() picks the accelerator micro-architecture with the DSE flow
// (latency objective for a single matrix, throughput objective for
// batches) and executes functionally on the simulated Versal fabric.
// Lower-level control: build an accel::HeteroSvdConfig yourself and use
// accel::HeteroSvdAccelerator directly; every layer below is public.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/config.hpp"
#include "accel/sharded.hpp"
#include "backend/slo.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/retry.hpp"
#include "dse/explorer.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "scenarios/scenario.hpp"
#include "verify/policy.hpp"
#include "versal/faults.hpp"
#include "versal/utilization.hpp"

namespace hsvd {

struct SvdOptions {
  // Convergence threshold on the pair coherence of eq. (6).
  double precision = 1e-6;
  // Device to target; defaults to the VCK190 of the paper.
  versal::DeviceResources device = versal::vck190();
  // When set, skip the DSE and use this configuration (its rows/cols are
  // overwritten to match the input).
  std::optional<accel::HeteroSvdConfig> config;
  // Accumulate V (adds an A^T U Sigma^-1 pass on the host; the hardware
  // computes U and Sigma only, exactly as the paper's Algorithm 1).
  bool want_v = true;
  // Host worker threads for the batch engine and the derive_v pass.
  // 0 = auto (HSVD_THREADS env var, else all hardware cores); 1 forces
  // single-threaded execution. Results are bit-identical for any value:
  // parallel work is partitioned over independent task slots / columns
  // and the simulated timing model is untouched.
  int threads = 0;
  // Simulated AIE arrays to partition each decomposition across (see
  // DESIGN.md section 11). 1 (the default) is the paper's single-array
  // engine. S > 1 distributes the block tournament ring over S arrays:
  // factors are bit-identical to the single-array path for every S
  // (tournament rounds are disjoint, so rotation order is unchanged);
  // only the simulated timeline differs, with cross-shard ring moves
  // priced over the AIE->PL->NoC/DDR->PL->AIE edge.
  int shards = 1;
  // Fault injector to attach to the accelerator (not owned; nullptr =
  // fault-free). Injected faults are detected at the dataflow boundaries
  // and surface per result as SvdStatus::kFailed after recovery runs out.
  versal::FaultInjector* fault_injector = nullptr;
  // Recovery budget: masked-tile re-placement + re-run rounds (see
  // accel::HeteroSvdConfig::fault_retries).
  int fault_retries = 2;
  // Observability context (not owned; nullptr = off, the default).
  // Attaching one records metrics (and, when its tracer is enabled,
  // simulated + host timeline events) for the run. Guaranteed inert:
  // results are bit-identical and the simulated timing is unchanged
  // whether or not an observer is attached -- an enabled tracer only
  // changes how the *host* schedules the identical simulated work.
  obs::ObsContext* observer = nullptr;
  // Cooperative deadline / cancellation token (not owned; nullptr =
  // unbounded). The accelerator polls it at slot-chain boundaries and
  // the call throws hsvd::DeadlineExceeded once it expires; the factors
  // computed so far are abandoned. Build one with
  // common::CancelToken::with_budget(clock, seconds).
  const common::CancelToken* cancel = nullptr;
  // Transient-failure retry: when set, a run that ends in FaultDetected
  // (or, if the policy says so, SvdStatus::kNotConverged) is re-submitted
  // on a freshly built accelerator after an exponential backoff with
  // deterministic seeded jitter, up to retry->max_attempts total
  // attempts. svd_batch() re-submits only the affected tasks. Retries
  // respect `cancel`: backoff never sleeps past the deadline.
  std::optional<common::RetryPolicy> retry;
  // Clock used for backoff sleeps (not owned; nullptr = the process
  // monotonic clock). Tests inject a common::FakeClock so retries run
  // without real sleeps.
  common::Clock* clock = nullptr;
  // Execution backend (DESIGN.md section 14). "" (the default) is the
  // classic AIE-simulator path, bit-identical to pre-router behaviour.
  // "auto" routes through the SLO-aware cost-model router across the
  // registered backends; an explicit name ("aie", "aie-sharded", "cpu",
  // "fpga-bcv", "gpu-wcycle") pins that backend and bypasses scoring.
  // Setting `slo` with an empty backend implies "auto". A pin combined
  // with an slo is rejected as InputError (the pin makes the objective
  // unreachable by construction).
  std::string backend;
  std::optional<backend::Slo> slo;
  // Result attestation (DESIGN.md section 15). Off by default: results,
  // timings, and routing are bit-identical to a build without the
  // verify layer. When the policy selects a request, the returned
  // factors are scored by verify::ResultVerifier and a failure climbs
  // the escalation ladder (re-run -> re-route -> host reference); the
  // full provenance lands in Svd::verify_report.
  verify::VerifyPolicy verify;
  // Workload-scenario front-end (DESIGN.md section 16). kAuto (the
  // default) engages the Householder-QR pre-reduction only above the
  // aspect-ratio threshold in `scenario_opts` and the randomized sketch
  // only when `top_k` asks for it -- below the threshold with top_k == 0
  // the dense path runs untouched, bit-identical to kOff. kOff pins the
  // dense one-shot path regardless of shape; kTallSkinny / kTruncated
  // force a front-end. An engaged front-end declares the backends it
  // can carry (scenarios::allowed_backends): a pin to a modeled
  // comparator is rejected as InputError. svd_batch() accepts only
  // kAuto (never engaging) and kOff -- scenario requests are served one
  // matrix at a time, which is how the serving layer dispatches them.
  scenarios::Scenario scenario = scenarios::Scenario::kAuto;
  // Truncated top-k query: 0 (the default) = full decomposition; k >= 1
  // serves the leading k singular triplets through the randomized
  // sketch front-end and records the a-posteriori error bound in
  // Svd::scenario_bound. Requires scenario kAuto or kTruncated and
  // k <= min(rows, cols).
  std::size_t top_k = 0;
  // Knobs for the scenario front-ends (aspect threshold, sketch shape
  // and seed, streaming-update drift checks).
  scenarios::ScenarioOptions scenario_opts;
};

struct Svd {
  linalg::MatrixF u;          // rows x cols, orthonormal columns
  std::vector<float> sigma;   // descending
  linalg::MatrixF v;          // cols x cols (empty if !want_v)
  int iterations = 0;
  double convergence_rate = 0.0;
  // Accelerator-clock latency of this matrix (simulated seconds).
  double accelerator_seconds = 0.0;
  // Robustness outcome. kOk: factors valid and (in precision mode) the
  // coherence target was reached. kNotConverged: factors are the best
  // available but the sweep budget ran out or the convergence watchdog
  // tripped (`converged` is false, `message` says which). kFailed: a
  // hardware fault was detected and recovery was exhausted -- factors
  // are empty, `message` carries the diagnostic. Only svd_batch()
  // returns kFailed results; svd() throws FaultDetected instead.
  SvdStatus status = SvdStatus::kOk;
  bool converged = true;
  std::string message;
  // 0 when the first attempt succeeded; n when the result came from the
  // nth masked-tile re-placement retry.
  int recovery_attempts = 0;
  // Facade-level re-submissions consumed by SvdOptions::retry (0 when
  // the first submission produced this result). Distinct from
  // recovery_attempts, which counts in-run masked-tile re-placements.
  int retries = 0;
  // Routing provenance (empty / zero on the classic un-routed path).
  // Which backend produced this result.
  std::string backend;
  // Honesty labels (DESIGN.md section 14): every reported time says
  // where it came from, and sources are never mixed. modeled_time means
  // the backend is a fitted model of a published comparator (fpga-bcv /
  // gpu-wcycle): the factors are real (host one-sided Jacobi) but the
  // *reported* latency is modeled_seconds from the published anchors --
  // modeled_extrapolated flags a shape clamped outside the anchor range.
  // wall_seconds is the host execution time for every host-executed
  // backend (cpu and the model-backed ones); the AIE paths report
  // simulated time in accelerator_seconds instead.
  bool modeled_time = false;
  double modeled_seconds = 0.0;
  bool modeled_extrapolated = false;
  double wall_seconds = 0.0;
  // Energy attributed by the backend's power model (0 when it has none).
  double energy_joules = 0.0;
  // Attestation provenance (checked == false when the verify policy is
  // off or did not sample this request): which ladder rung produced the
  // final answer and what every executed rung scored.
  verify::VerifyReport verify_report;
  // Scenario provenance (DESIGN.md section 16): which front-end shaped
  // this result ("" = the dense one-shot path, else "tall-skinny",
  // "truncated", or "update"), the k actually served for a truncated
  // query, and the scenario's error-bound contract -- the a-posteriori
  // relative Frobenius bound ||A - U_k S_k V_k^T||_F / ||A||_F for the
  // truncated sketch, the verifier residual bound the assembled factors
  // are held to for the exact front-ends. On a scenario result the
  // time/energy labels above describe the inner dense core run; the
  // host pre-reduction and assembly stages are not included.
  std::string scenario;
  std::size_t scenario_top_k = 0;
  double scenario_bound = 0.0;
  bool ok() const { return status != SvdStatus::kFailed; }
};

// Singular value decomposition of one tall-or-square matrix.
//
// Errors: throws hsvd::InputError (an std::invalid_argument) for invalid
// input -- empty matrices, NaN/Inf entries, malformed options (negative
// fault_retries or threads, non-positive precision, an invalid retry
// policy) -- hsvd::FaultDetected (an std::runtime_error) when an
// injected hardware fault is detected and the recovery (and retry)
// budget is exhausted, and hsvd::DeadlineExceeded when an attached
// cancel token expires mid-run. A matrix that merely fails to reach the
// precision target is NOT an error: the result comes back with status ==
// SvdStatus::kNotConverged and converged == false.
Svd svd(const linalg::MatrixF& a, const SvdOptions& options = {});

// Batched decomposition: all matrices share one shape and one
// accelerator configuration (chosen by the DSE throughput objective).
struct BatchSvd {
  std::vector<Svd> results;
  double batch_seconds = 0.0;              // simulated makespan
  double throughput_tasks_per_s = 0.0;
  accel::HeteroSvdConfig config;           // what the DSE picked
  int shards = 1;                          // arrays the batch ran across
  // Fault outcome of the batch: a detected fault fails only its own
  // task; the rest of the batch completes with results bit-identical to
  // a fault-free run. results[i].status says which tasks survived.
  int failed_tasks = 0;                    // still kFailed after recovery
  int recovery_runs = 0;                   // re-placement rounds consumed
  // Per-tile busy/stall/idle tallies and link-byte counters of the run
  // (always populated; render with accel::render_utilization).
  versal::UtilizationReport utilization;
  // Backend the batch ran on ("" on the classic un-routed path). Routed
  // host/model backends leave `config`/`utilization` default -- they have
  // no accelerator run to describe.
  std::string backend;
};
//
// Errors: throws hsvd::InputError for invalid input (empty batch, mixed
// shapes, NaN/Inf entries, malformed options) and hsvd::DeadlineExceeded
// when an attached cancel token expires mid-run. Detected hardware
// faults never throw here -- each one fails only its own task
// (results[i].status == SvdStatus::kFailed with the diagnostic in
// message) and every healthy task completes bit-identical to a
// fault-free run. With SvdOptions::retry set, still-failed (and
// optionally non-converged) tasks are re-submitted on a fresh
// accelerator with backoff between attempts.
BatchSvd svd_batch(const std::vector<linalg::MatrixF>& batch,
                   const SvdOptions& options = {});

// The accelerator configuration svd()/svd_batch() would run `rows` x
// `cols` matrices with under `options`: the pinned options.config when
// set (rows/cols overwritten), otherwise the DSE choice (latency
// objective for batch == 1, throughput for larger batches), with
// precision/threads/fault_retries folded in. The serving layer's
// coalescer uses this with batch = 1 to dispatch a micro-batch under
// exactly the configuration each member would have been served with
// individually -- which is what makes coalesced results bit-identical
// to uncoalesced serial execution.
accel::HeteroSvdConfig planned_config(std::size_t rows, std::size_t cols,
                                      int batch, const SvdOptions& options);

// Rejects a threads/shards combination that oversubscribes the host:
// throws hsvd::InputError when max(threads, 1) * shards exceeds the
// machine's hardware thread count (each shard's per-round fan-out wants
// its own worker; threads = 0 means auto and counts as one because the
// pool partitions rather than multiplies). The hsvd CLI calls this for
// explicit --threads/--shards flags; programmatic callers may opt in.
void validate_host_budget(int threads, int shards);

// Recovers V from A ~ U diag(sigma) V^T (V = A^T U Sigma^-1). Columns
// belonging to (near-)zero singular values are left zero. Rows of V are
// computed with the fused dot kernel and distributed over `threads` pool
// workers (0 = auto, 1 = inline); every entry is an independent dot, so
// the result is identical for any thread count.
linalg::MatrixF derive_v(const linalg::MatrixF& a, const linalg::MatrixF& u,
                         const std::vector<float>& sigma, int threads = 1);

}  // namespace hsvd
