#include "jacobi/normalization.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.hpp"

namespace hsvd::jacobi {

void normalize_in_place(linalg::MatrixF& b, linalg::MatrixF& v, bool with_v,
                        linalg::MatrixF& u_out, std::vector<float>& sigma_out,
                        linalg::MatrixF& v_out) {
  const std::size_t n = b.cols();
  std::vector<float> sigma(n);
  for (std::size_t j = 0; j < n; ++j) sigma[j] = linalg::norm2<float>(b.col(j));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  u_out = linalg::MatrixF(b.rows(), n);
  sigma_out.resize(n);
  if (with_v) v_out = linalg::MatrixF(v.rows(), n);

  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t src = order[t];
    sigma_out[t] = sigma[src];
    const float inv = sigma[src] > 0.0f ? 1.0f / sigma[src] : 0.0f;
    auto bcol = b.col(src);
    auto ucol = u_out.col(t);
    for (std::size_t i = 0; i < b.rows(); ++i) ucol[i] = bcol[i] * inv;
    if (with_v) {
      auto vsrc = v.col(src);
      auto vdst = v_out.col(t);
      for (std::size_t i = 0; i < v.rows(); ++i) vdst[i] = vsrc[i];
    }
  }
}

}  // namespace hsvd::jacobi
