// Inter-round data movement induced by an ordering.
//
// Between two consecutive rounds of a schedule every column travels from
// the engine slot that just processed it to the slot that processes it
// next. This module extracts those moves in hardware-neutral form; the
// accelerator's dataflow builder (src/accel) classifies each move as
// neighbour access vs. DMA given the physical AIE topology.
#pragma once

#include <vector>

#include "jacobi/ordering.hpp"

namespace hsvd::jacobi {

enum class Side { kLeft, kRight };

struct SlotPosition {
  int slot = 0;  // engine index within the row, 0..k-1
  Side side = Side::kLeft;
  friend bool operator==(const SlotPosition&, const SlotPosition&) = default;
};

struct Move {
  int column = 0;
  SlotPosition from;
  SlotPosition to;
  friend bool operator==(const Move&, const Move&) = default;
};

// Where each column sits in the given round; index = column id.
std::vector<SlotPosition> slot_map(const EngineSchedule& schedule,
                                   std::size_t round);

// Moves from round r to round r_next (use r_next = 0 with r = last round
// for the sweep wrap-around). Columns that stay in place (same slot and
// side) are omitted: they involve no data transfer.
std::vector<Move> moves_between(const EngineSchedule& schedule, std::size_t r,
                                std::size_t r_next);

// ---- Multi-array sharding (DESIGN.md section 11) --------------------
//
// A move annotated with the shards its endpoint sites live on (sites are
// distributed over shards cyclically, see jacobi::shard_of_slot). An
// intra-shard move keeps its neighbour/DMA pricing from the dataflow
// builder; a cross-shard move must leave the array through an AIE->PL
// PLIO, hop the NoC, and re-enter the destination array (priced by
// shard::InterShardLink).
struct ShardedMove {
  Move move;
  int from_shard = 0;
  int to_shard = 0;
  bool crosses_shards() const { return from_shard != to_shard; }
};

std::vector<ShardedMove> sharded_moves_between(const EngineSchedule& schedule,
                                               std::size_t r,
                                               std::size_t r_next, int shards);

// Cross-shard moves of one full sweep (wrap-around transition included):
// the traffic a sharded engine pushes over the inter-shard ring edge
// when the sweep's round sequence is walked in steady state.
int count_inter_shard_moves(const EngineSchedule& schedule, int shards);

}  // namespace hsvd::jacobi
