// Inter-round data movement induced by an ordering.
//
// Between two consecutive rounds of a schedule every column travels from
// the engine slot that just processed it to the slot that processes it
// next. This module extracts those moves in hardware-neutral form; the
// accelerator's dataflow builder (src/accel) classifies each move as
// neighbour access vs. DMA given the physical AIE topology.
#pragma once

#include <vector>

#include "jacobi/ordering.hpp"

namespace hsvd::jacobi {

enum class Side { kLeft, kRight };

struct SlotPosition {
  int slot = 0;  // engine index within the row, 0..k-1
  Side side = Side::kLeft;
  friend bool operator==(const SlotPosition&, const SlotPosition&) = default;
};

struct Move {
  int column = 0;
  SlotPosition from;
  SlotPosition to;
  friend bool operator==(const Move&, const Move&) = default;
};

// Where each column sits in the given round; index = column id.
std::vector<SlotPosition> slot_map(const EngineSchedule& schedule,
                                   std::size_t round);

// Moves from round r to round r_next (use r_next = 0 with r = last round
// for the sweep wrap-around). Columns that stay in place (same slot and
// side) are omitted: they involve no data transfer.
std::vector<Move> moves_between(const EngineSchedule& schedule, std::size_t r,
                                std::size_t r_next);

}  // namespace hsvd::jacobi
