#include "jacobi/complex_hestenes.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "jacobi/convergence.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/ops.hpp"

namespace hsvd::jacobi {

ComplexF cdot(std::span<const ComplexF> x, std::span<const ComplexF> y) {
  HSVD_REQUIRE(x.size() == y.size(), "cdot: length mismatch");
  ComplexF s{0.0f, 0.0f};
  for (std::size_t i = 0; i < x.size(); ++i) s += std::conj(x[i]) * y[i];
  return s;
}

float cnorm2(std::span<const ComplexF> x) {
  float s = 0.0f;
  for (const auto& v : x) s += std::norm(v);
  return s;
}

ComplexGram cdot3(std::span<const ComplexF> x, std::span<const ComplexF> y) {
  HSVD_REQUIRE(x.size() == y.size(), "cdot3: length mismatch");
  ComplexGram g;
  for (std::size_t i = 0; i < x.size(); ++i) {
    g.gii += std::norm(x[i]);
    g.gjj += std::norm(y[i]);
    g.gij += std::conj(x[i]) * y[i];
  }
  return g;
}

namespace {

// Applies the phase twist a_j *= e^{-i phi} followed by the real plane
// rotation [x, y] <- [c x - s y, s x + c y] to a column pair.
void apply_complex_rotation(std::span<ComplexF> x, std::span<ComplexF> y,
                            ComplexF phase, float c, float s) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    const ComplexF yi = y[i] * phase;
    const ComplexF xi = x[i];
    x[i] = c * xi - s * yi;
    y[i] = s * xi + c * yi;
  }
}

}  // namespace

ComplexHestenesResult complex_hestenes_svd(const ComplexMatrix& a,
                                           const ComplexHestenesOptions& opts) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "complex_hestenes_svd expects rows >= cols");
  HSVD_REQUIRE(a.cols() >= 2 && a.cols() % 2 == 0,
               "complex_hestenes_svd expects an even column count >= 2");
  const int n = static_cast<int>(a.cols());
  const EngineSchedule schedule = make_schedule(opts.ordering, n);

  ComplexMatrix b = a;
  ComplexMatrix v;
  if (opts.accumulate_v) v = ComplexMatrix::identity(static_cast<std::size_t>(n));

  ConvergenceTracker tracker(opts.precision);
  const int budget = opts.fixed_sweeps.value_or(opts.max_sweeps);
  HSVD_REQUIRE(budget >= 1, "sweep budget must be positive");

  // Incremental Gram-diagonal cache, mirroring the real Hestenes sweep:
  // after the phase twist the pair's off-diagonal is real (= |gij|), so
  // the real closed-form norm update applies verbatim and the pair loop
  // needs one fused Hermitian dot instead of three traversals.
  std::vector<float> colnorm(static_cast<std::size_t>(n));

  int sweep = 0;
  for (; sweep < budget; ++sweep) {
    tracker.begin_sweep();
    for (int j = 0; j < n; ++j) {
      colnorm[static_cast<std::size_t>(j)] =
          cnorm2(b.col(static_cast<std::size_t>(j)));
    }
    for (const auto& round : schedule) {
      for (const auto& pair : round) {
        const std::size_t li = static_cast<std::size_t>(pair.left);
        const std::size_t ri = static_cast<std::size_t>(pair.right);
        auto bi = b.col(li);
        auto bj = b.col(ri);
        const ComplexF gij = cdot(bi, bj);
        const float gii = colnorm[li];
        const float gjj = colnorm[ri];
        const float mag = std::abs(gij);
        const double denom = std::sqrt(static_cast<double>(gii) * gjj);
        const double coherence = denom > 0.0 ? mag / denom : 0.0;
        tracker.observe(coherence);
        if (denom <= 0.0 || mag == 0.0f) continue;
        // Phase twist makes the pair's Gram off-diagonal real positive,
        // then the real closed form applies.
        const ComplexF phase = std::conj(gij) / mag;
        const Rotation<float> rot = compute_rotation(gii, gjj, mag);
        if (rot.identity && phase == ComplexF{1.0f, 0.0f}) continue;
        apply_complex_rotation(bi, bj, phase, rot.c, rot.s);
        linalg::rotated_norms(gii, gjj, mag, rot.c, rot.s, colnorm[li],
                              colnorm[ri]);
        // Cancellation noise from a dominant pair can leave a tracked
        // norm negative; refresh from the column (see hestenes.cpp).
        if (!(colnorm[li] > 0.0f)) colnorm[li] = cnorm2(bi);
        if (!(colnorm[ri] > 0.0f)) colnorm[ri] = cnorm2(bj);
        if (opts.accumulate_v) {
          apply_complex_rotation(v.col(li), v.col(ri), phase, rot.c, rot.s);
        }
      }
    }
    if (!opts.fixed_sweeps.has_value() && tracker.converged()) {
      ++sweep;
      break;
    }
  }

  // Normalization and descending sort.
  std::vector<float> sigma(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    sigma[static_cast<std::size_t>(j)] =
        std::sqrt(cnorm2(b.col(static_cast<std::size_t>(j))));
  }
  std::vector<std::size_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  ComplexHestenesResult out;
  out.sweeps = sweep;
  out.final_convergence_rate = tracker.sweep_rate();
  out.converged = tracker.converged();
  out.sigma.resize(static_cast<std::size_t>(n));
  out.u = ComplexMatrix(a.rows(), static_cast<std::size_t>(n));
  if (opts.accumulate_v) out.v = ComplexMatrix(static_cast<std::size_t>(n),
                                               static_cast<std::size_t>(n));
  for (std::size_t t = 0; t < static_cast<std::size_t>(n); ++t) {
    const std::size_t src = order[t];
    out.sigma[t] = sigma[src];
    const float inv = sigma[src] > 0.0f ? 1.0f / sigma[src] : 0.0f;
    auto bcol = b.col(src);
    auto ucol = out.u.col(t);
    for (std::size_t i = 0; i < a.rows(); ++i) ucol[i] = bcol[i] * inv;
    if (opts.accumulate_v) {
      auto vsrc = v.col(src);
      auto vdst = out.v.col(t);
      for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i)
        vdst[i] = vsrc[i];
    }
  }
  return out;
}

double complex_orthogonality_error(const ComplexMatrix& q) {
  const std::size_t n = q.cols();
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const ComplexF g = cdot(q.col(i), q.col(j));
      const ComplexF target = i == j ? ComplexF{1.0f, 0.0f} : ComplexF{0.0f, 0.0f};
      const double d = std::norm(g - target);
      err += (i == j) ? d : 2.0 * d;
    }
  }
  return std::sqrt(err);
}

double complex_reconstruction_error(const ComplexMatrix& a,
                                    const ComplexMatrix& u,
                                    const std::vector<float>& sigma,
                                    const ComplexMatrix& v) {
  HSVD_REQUIRE(u.rows() == a.rows() && v.rows() == a.cols(),
               "factor shapes inconsistent with A");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      ComplexF rec{0.0f, 0.0f};
      for (std::size_t t = 0; t < sigma.size(); ++t) {
        rec += u(i, t) * sigma[t] * std::conj(v(j, t));
      }
      num += std::norm(a(i, j) - rec);
      den += std::norm(a(i, j));
    }
  }
  HSVD_REQUIRE(den > 0.0, "reconstruction error of zero matrix");
  return std::sqrt(num / den);
}

}  // namespace hsvd::jacobi
