// Normalization stage (paper eq. (7)): from B = A V recover
//   sigma_j = ||B_j||,  U_j = B_j / sigma_j,
// then sort all factors by descending singular value. Shared by the serial
// algorithm layer and the accelerator's norm-AIE kernels.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace hsvd::jacobi {

// Consumes b (and v when with_v) and fills the sorted outputs. Zero
// columns produce sigma = 0 and a zero U column.
void normalize_in_place(linalg::MatrixF& b, linalg::MatrixF& v, bool with_v,
                        linalg::MatrixF& u_out, std::vector<float>& sigma_out,
                        linalg::MatrixF& v_out);

}  // namespace hsvd::jacobi
