// Complex one-sided Jacobi SVD.
//
// The paper's wireless applications ([1]-[3]) operate on complex channel
// matrices; the hardware processes real data, so complex workloads are
// handled at the library level. The algorithm is the classical complex
// extension of Hestenes-Jacobi: for a column pair with complex Gram
// off-diagonal a_ij = |a_ij| e^{i phi}, first rotate column j's phase by
// e^{-i phi} (making the pair's Gram real), then apply the real rotation
// closed form of eqs. (4)-(5). V accumulates both the phase twist and
// the rotation, so A = U diag(sigma) V^H holds with unitary factors.
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "jacobi/ordering.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::jacobi {

using ComplexF = std::complex<float>;
using ComplexMatrix = linalg::Matrix<ComplexF>;

struct ComplexHestenesOptions {
  OrderingKind ordering = OrderingKind::kShiftingRing;
  double precision = 1e-6;
  int max_sweeps = 40;
  std::optional<int> fixed_sweeps;
  bool accumulate_v = true;
};

struct ComplexHestenesResult {
  ComplexMatrix u;            // rows x cols, unitary columns
  std::vector<float> sigma;   // real, descending
  ComplexMatrix v;            // cols x cols (empty if accumulate_v = false)
  int sweeps = 0;
  double final_convergence_rate = 0.0;
  bool converged = false;
};

// Requires rows >= cols and an even column count (pad upstream).
ComplexHestenesResult complex_hestenes_svd(
    const ComplexMatrix& a, const ComplexHestenesOptions& opts = {});

// Helpers shared with tests: Hermitian inner product sum conj(x_i) y_i
// and squared norm.
ComplexF cdot(std::span<const ComplexF> x, std::span<const ComplexF> y);
float cnorm2(std::span<const ComplexF> x);

// The pair's complex Gram entries from one fused traversal:
//   gii = ||x||^2, gjj = ||y||^2, gij = sum conj(x_i) y_i.
struct ComplexGram {
  float gii = 0.0f;
  float gjj = 0.0f;
  ComplexF gij{0.0f, 0.0f};
};
ComplexGram cdot3(std::span<const ComplexF> x, std::span<const ComplexF> y);

// || Q^H Q - I ||_F for complex factors.
double complex_orthogonality_error(const ComplexMatrix& q);

// || A - U diag(sigma) V^H ||_F / ||A||_F.
double complex_reconstruction_error(const ComplexMatrix& a,
                                    const ComplexMatrix& u,
                                    const std::vector<float>& sigma,
                                    const ComplexMatrix& v);

}  // namespace hsvd::jacobi
