// Serial Hestenes-Jacobi SVD driven by an explicit ordering.
//
// This is the algorithm layer's single-threaded executable model: it
// consumes the same EngineSchedule objects the accelerator maps onto
// AIEs, so ordering correctness can be tested without any hardware model
// in the loop. Works in float (the AIE datatype) by default.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "jacobi/ordering.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::jacobi {

struct HestenesOptions {
  OrderingKind ordering = OrderingKind::kShiftingRing;
  double precision = 1e-6;  // eq. (6) threshold
  // Threshold Jacobi: skip rotations whose pair coherence is below this
  // (0 = rotate everything). Classical speedup; convergence is preserved
  // as long as the threshold is at or below the precision target.
  double rotation_threshold = 0.0;
  int max_sweeps = 30;
  // When set, run exactly this many sweeps regardless of convergence
  // (the paper's Tables II/VI fix six iterations for fair comparison).
  std::optional<int> fixed_sweeps;
  bool accumulate_v = true;
};

struct HestenesResult {
  linalg::MatrixF u;          // rows x cols, orthonormal columns
  std::vector<float> sigma;   // descending
  linalg::MatrixF v;          // cols x cols (empty if accumulate_v = false)
  int sweeps = 0;
  double final_convergence_rate = 0.0;
  bool converged = false;
  // Instrumentation of the O(rows) column traversals, for asserting the
  // incremental-norm invariant: the pair loop issues exactly one dot per
  // pair visit (the off-diagonal aij); the diagonal Gram entries come
  // from the per-column norm cache, which is refreshed by `norm_dots`
  // full dots once per sweep to bound float drift.
  std::uint64_t pair_visits = 0;
  std::uint64_t pair_dots = 0;
  std::uint64_t norm_dots = 0;
};

// Requires a.rows() >= a.cols() and an even column count (pad one zero
// column upstream for odd sizes; the accelerator front end does this too).
HestenesResult hestenes_svd(const linalg::MatrixF& a,
                            const HestenesOptions& opts = {});

}  // namespace hsvd::jacobi
