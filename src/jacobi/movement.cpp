#include "jacobi/movement.hpp"

#include "common/assert.hpp"

namespace hsvd::jacobi {

std::vector<SlotPosition> slot_map(const EngineSchedule& schedule,
                                   std::size_t round) {
  HSVD_REQUIRE(round < schedule.size(), "round out of range");
  const auto& row = schedule[round];
  const int columns = static_cast<int>(row.size()) * 2;
  std::vector<SlotPosition> where(static_cast<std::size_t>(columns));
  for (int slot = 0; slot < static_cast<int>(row.size()); ++slot) {
    const auto& pair = row[static_cast<std::size_t>(slot)];
    HSVD_ASSERT(pair.left < columns && pair.right < columns,
                "schedule references column beyond matrix width");
    where[static_cast<std::size_t>(pair.left)] = {slot, Side::kLeft};
    where[static_cast<std::size_t>(pair.right)] = {slot, Side::kRight};
  }
  return where;
}

std::vector<Move> moves_between(const EngineSchedule& schedule, std::size_t r,
                                std::size_t r_next) {
  const auto from = slot_map(schedule, r);
  const auto to = slot_map(schedule, r_next);
  HSVD_ASSERT(from.size() == to.size(), "round widths differ");
  std::vector<Move> moves;
  moves.reserve(from.size());
  for (std::size_t col = 0; col < from.size(); ++col) {
    if (from[col] == to[col]) continue;
    moves.push_back({static_cast<int>(col), from[col], to[col]});
  }
  return moves;
}

std::vector<ShardedMove> sharded_moves_between(const EngineSchedule& schedule,
                                               std::size_t r,
                                               std::size_t r_next, int shards) {
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  std::vector<ShardedMove> out;
  for (const Move& mv : moves_between(schedule, r, r_next)) {
    out.push_back(ShardedMove{mv, shard_of_slot(mv.from.slot, shards),
                              shard_of_slot(mv.to.slot, shards)});
  }
  return out;
}

int count_inter_shard_moves(const EngineSchedule& schedule, int shards) {
  HSVD_REQUIRE(!schedule.empty(), "schedule must have at least one round");
  int total = 0;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    const std::size_t next = (r + 1) % schedule.size();
    for (const auto& mv : sharded_moves_between(schedule, r, next, shards)) {
      if (mv.crosses_shards()) ++total;
    }
  }
  return total;
}

}  // namespace hsvd::jacobi
