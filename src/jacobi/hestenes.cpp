#include "jacobi/hestenes.hpp"

#include <algorithm>
#include <numeric>

#include "jacobi/convergence.hpp"
#include "jacobi/normalization.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/ops.hpp"

namespace hsvd::jacobi {

HestenesResult hestenes_svd(const linalg::MatrixF& a, const HestenesOptions& opts) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "hestenes_svd expects rows >= cols");
  HSVD_REQUIRE(a.cols() >= 2 && a.cols() % 2 == 0,
               "hestenes_svd expects an even column count >= 2");
  const int n = static_cast<int>(a.cols());
  const EngineSchedule schedule = make_schedule(opts.ordering, n);

  linalg::MatrixF b = a;
  linalg::MatrixF v;
  if (opts.accumulate_v) v = linalg::MatrixF::identity(static_cast<std::size_t>(n));

  ConvergenceTracker tracker(opts.precision);
  const int sweep_budget = opts.fixed_sweeps.value_or(opts.max_sweeps);
  HSVD_REQUIRE(sweep_budget >= 1, "sweep budget must be positive");

  // Incremental Gram-norm cache: colnorm[j] tracks ||b.col(j)||^2 and is
  // updated from the rotation closed form, so the pair loop issues one
  // O(rows) dot (aij) instead of three. Refreshed from scratch at every
  // sweep start so float drift stays bounded by one sweep's rotations.
  std::vector<float> colnorm(static_cast<std::size_t>(n));
  std::uint64_t pair_visits = 0;
  std::uint64_t pair_dots = 0;
  std::uint64_t norm_dots = 0;

  int sweep = 0;
  for (; sweep < sweep_budget; ++sweep) {
    tracker.begin_sweep();
    for (int j = 0; j < n; ++j) {
      auto bj = b.col(static_cast<std::size_t>(j));
      colnorm[static_cast<std::size_t>(j)] = linalg::dot<float>(bj, bj);
      ++norm_dots;
    }
    for (const auto& round : schedule) {
      for (const auto& pair : round) {
        const std::size_t li = static_cast<std::size_t>(pair.left);
        const std::size_t ri = static_cast<std::size_t>(pair.right);
        auto bi = b.col(li);
        auto bj = b.col(ri);
        const float aij = linalg::dot<float>(bi, bj);
        const float aii = colnorm[li];
        const float ajj = colnorm[ri];
        ++pair_visits;
        ++pair_dots;
        tracker.observe(pair_coherence(aii, ajj, aij));
        const Rotation<float> rot = compute_rotation(
            aii, ajj, aij, static_cast<float>(opts.rotation_threshold));
        if (rot.identity) continue;
        linalg::apply_rotation(bi, bj, rot.c, rot.s);
        linalg::rotated_norms(aii, ajj, aij, rot.c, rot.s, colnorm[li],
                              colnorm[ri]);
        // When a rotation cancels a dominant pair (sigma gap near
        // 1/sqrt(eps)) the incremental update is pure cancellation
        // noise and can land negative; refresh from the column.
        if (!(colnorm[li] > 0.0f)) {
          colnorm[li] = linalg::dot<float>(bi, bi);
          ++norm_dots;
        }
        if (!(colnorm[ri] > 0.0f)) {
          colnorm[ri] = linalg::dot<float>(bj, bj);
          ++norm_dots;
        }
        if (opts.accumulate_v) {
          linalg::apply_rotation(v.col(li), v.col(ri), rot.c, rot.s);
        }
      }
    }
    if (!opts.fixed_sweeps.has_value() && tracker.converged()) {
      ++sweep;
      break;
    }
  }

  HestenesResult out;
  out.sweeps = sweep;
  out.pair_visits = pair_visits;
  out.pair_dots = pair_dots;
  out.norm_dots = norm_dots;
  out.final_convergence_rate = tracker.sweep_rate();
  out.converged = tracker.converged();
  normalize_in_place(b, v, opts.accumulate_v, out.u, out.sigma, out.v);
  return out;
}

}  // namespace hsvd::jacobi
