// SVD orderings: which column pairs are orthogonalized in which round,
// and on which engine slot each pair sits.
//
// An ordering for 2k columns is a schedule of (2k-1) rounds; each round
// holds k disjoint pairs, one per engine slot, and across a full sweep
// every unordered column pair appears exactly once (a round-robin
// tournament). The paper's co-design contribution (shifting ring
// ordering, Fig. 3) changes only the *slot assignment* per round --
// pair coverage is identical -- so orderings here carry both.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsvd::jacobi {

struct ColumnPair {
  int left = 0;
  int right = 0;
  friend bool operator==(const ColumnPair&, const ColumnPair&) = default;
};

// rounds[r][slot] -> the pair processed by engine `slot` in round r.
using EngineSchedule = std::vector<std::vector<ColumnPair>>;

enum class OrderingKind {
  kRing,         // classic ring ordering [16]: canonical slot assignment
  kRoundRobin,   // Brent-Luk round-robin [17]: same tournament, exchange
                 // pattern expressed with the fixed-player convention
  kShiftingRing  // the paper's ordering: round i shifted right by i/2
};

std::string to_string(OrderingKind kind);

// Builds the schedule for `columns` columns (must be even, >= 2).
//
// `first_row_parity` matters only for kShiftingRing: the shifting ring
// aligns its cyclic shifts with the mirrored core/memory layout of the
// physical AIE rows, so the schedule must know whether its first layer
// lands on an odd or even array row. The default (1) is the paper's
// placement, whose first orth-layer sits at array row 1.
EngineSchedule make_schedule(OrderingKind kind, int columns,
                             int first_row_parity = 1);

// Validation helpers (used by tests and HSVD_ASSERTed by consumers):
// - every round has columns/2 disjoint pairs
// - across the sweep every unordered pair appears exactly once
bool is_valid_tournament(const EngineSchedule& schedule, int columns);

}  // namespace hsvd::jacobi
