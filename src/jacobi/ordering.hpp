// SVD orderings: which column pairs are orthogonalized in which round,
// and on which engine slot each pair sits.
//
// An ordering for 2k columns is a schedule of (2k-1) rounds; each round
// holds k disjoint pairs, one per engine slot, and across a full sweep
// every unordered column pair appears exactly once (a round-robin
// tournament). The paper's co-design contribution (shifting ring
// ordering, Fig. 3) changes only the *slot assignment* per round --
// pair coverage is identical -- so orderings here carry both.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsvd::jacobi {

struct ColumnPair {
  int left = 0;
  int right = 0;
  friend bool operator==(const ColumnPair&, const ColumnPair&) = default;
};

// rounds[r][slot] -> the pair processed by engine `slot` in round r.
using EngineSchedule = std::vector<std::vector<ColumnPair>>;

enum class OrderingKind {
  kRing,         // classic ring ordering [16]: canonical slot assignment
  kRoundRobin,   // Brent-Luk round-robin [17]: same tournament, exchange
                 // pattern expressed with the fixed-player convention
  kShiftingRing  // the paper's ordering: round i shifted right by i/2
};

std::string to_string(OrderingKind kind);

// Builds the schedule for `columns` columns (must be even, >= 2).
//
// `first_row_parity` matters only for kShiftingRing: the shifting ring
// aligns its cyclic shifts with the mirrored core/memory layout of the
// physical AIE rows, so the schedule must know whether its first layer
// lands on an odd or even array row. The default (1) is the paper's
// placement, whose first orth-layer sits at array row 1.
EngineSchedule make_schedule(OrderingKind kind, int columns,
                             int first_row_parity = 1);

// Validation helpers (used by tests and HSVD_ASSERTed by consumers):
// - every round has columns/2 disjoint pairs
// - across the sweep every unordered pair appears exactly once
bool is_valid_tournament(const EngineSchedule& schedule, int columns);

// ---- Multi-array sharding (DESIGN.md section 11) --------------------
//
// The block-level tournament of block_pair_rounds() expressed as an
// EngineSchedule, so slot_map/moves_between apply to *blocks* exactly as
// they do to columns: "column" id = block id, "slot" = the ring site
// processing one block pair per round. An odd block count is padded with
// a phantom bye block (id == blocks) to complete every round; pairs
// touching the bye carry no data and no work. For even counts, round r
// slot j holds exactly jacobi::block_pair_rounds(blocks)[r][j], so a
// sharded engine walking this schedule covers the same disjoint pair
// sets per round as the single-array engine (bit-identical factors).
EngineSchedule block_ring_schedule(int blocks);

// Cyclic distribution of ring sites over S simulated AIE arrays: site
// (pair slot) j lives on shard j % shards. Consecutive sites alternate
// arrays, so the shifting-ring exchange between neighbouring sites
// crosses an array boundary at most once per neighbour hop.
int shard_of_slot(int slot, int shards);

}  // namespace hsvd::jacobi
