#include "jacobi/ordering.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/assert.hpp"

namespace hsvd::jacobi {

std::string to_string(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kRing: return "ring";
    case OrderingKind::kRoundRobin: return "round-robin";
    case OrderingKind::kShiftingRing: return "shifting-ring";
  }
  return "unknown";
}

namespace {

// Parallel ring ordering [16]: k sites each hold two columns; between
// rounds each site keeps one resident and passes the other to its LEFT
// neighbour (cyclically). The inter-round movement is therefore
// monolithic -- every transfer is "stay" or "one site leftward" -- which
// is the property Fig. 3 exploits. The eviction rule that makes this a
// valid tournament (every unordered pair meets exactly once over 2k-1
// rounds): on the first transition every site passes its initial first
// resident; afterwards every site passes its newest arrival, except one
// "relay" site per transition, b(j) = k-1-floor((j-1)/2), which passes
// its parked resident instead.
EngineSchedule ring_schedule(int n) {
  const int k = n / 2;
  EngineSchedule rounds;
  rounds.reserve(static_cast<std::size_t>(n - 1));
  // state: per site, {parked resident, newest arrival}.
  std::vector<std::pair<int, int>> state(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) state[static_cast<std::size_t>(s)] = {2 * s, 2 * s + 1};
  for (int r = 0; r < n - 1; ++r) {
    std::vector<ColumnPair> row(static_cast<std::size_t>(k));
    for (int s = 0; s < k; ++s) {
      row[static_cast<std::size_t>(s)] = {state[static_cast<std::size_t>(s)].first,
                                          state[static_cast<std::size_t>(s)].second};
    }
    rounds.push_back(std::move(row));
    if (r == n - 2) break;
    const int j = r;  // transition index
    const int relay = j == 0 ? -1 : k - 1 - (j - 1) / 2;
    std::vector<int> mover(static_cast<std::size_t>(k));
    std::vector<int> stay(static_cast<std::size_t>(k));
    for (int s = 0; s < k; ++s) {
      auto& [parked, arrival] = state[static_cast<std::size_t>(s)];
      const bool pass_parked = (j == 0) || (s == relay);
      mover[static_cast<std::size_t>(s)] = pass_parked ? parked : arrival;
      stay[static_cast<std::size_t>(s)] = pass_parked ? arrival : parked;
    }
    for (int s = 0; s < k; ++s) {
      state[static_cast<std::size_t>(s)] = {stay[static_cast<std::size_t>(s)],
                                            mover[static_cast<std::size_t>((s + 1) % k)]};
    }
  }
  return rounds;
}

// Caterpillar-track tournament: hold slot 0's left column, rotate the rest
// of the ring by one between rounds. Same pair coverage as ring_schedule
// but a different slot assignment -- this is the Brent-Luk exchange
// pattern expressed as a schedule.
EngineSchedule caterpillar_schedule(int n) {
  const int k = n / 2;
  std::vector<int> ring(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ring[static_cast<std::size_t>(i)] = i;
  EngineSchedule rounds(static_cast<std::size_t>(n - 1));
  for (int r = 0; r < n - 1; ++r) {
    auto& row = rounds[static_cast<std::size_t>(r)];
    row.resize(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      row[static_cast<std::size_t>(i)] = {ring[static_cast<std::size_t>(i)],
                                          ring[static_cast<std::size_t>(n - 1 - i)]};
    }
    // Rotate all positions except ring[0]: last element moves to slot 1.
    const int last = ring[static_cast<std::size_t>(n - 1)];
    for (int i = n - 1; i >= 2; --i)
      ring[static_cast<std::size_t>(i)] = ring[static_cast<std::size_t>(i - 1)];
    ring[1] = last;
  }
  return rounds;
}

// The paper's shifting ring ordering (Fig. 3(b)): start from the ring
// schedule and cyclically shift the slot assignment of row i (1-indexed)
// right by floor(i/2). The cumulative shift increments exactly on the
// transitions that leave an odd physical array row, which converts the
// ring ordering's leftward moves into straight/rightward moves there --
// the directions the mirrored AIE rows support without DMA.
// `first_row_parity` is the physical parity of the row hosting layer 0.
EngineSchedule shifting_ring_schedule(int n, int first_row_parity) {
  EngineSchedule base = ring_schedule(n);
  const int k = n / 2;
  EngineSchedule shifted(base.size());
  for (std::size_t r = 0; r < base.size(); ++r) {
    // Number of shift increments before round r: one per earlier
    // transition whose source row (first_row_parity + j) is odd.
    const int shift =
        ((static_cast<int>(r) + (first_row_parity % 2 == 1 ? 1 : 0)) / 2) % k;
    auto& row = shifted[r];
    row.resize(static_cast<std::size_t>(k));
    for (int slot = 0; slot < k; ++slot) {
      row[static_cast<std::size_t>((slot + shift) % k)] =
          base[r][static_cast<std::size_t>(slot)];
    }
  }
  return shifted;
}

}  // namespace

EngineSchedule make_schedule(OrderingKind kind, int columns,
                             int first_row_parity) {
  HSVD_REQUIRE(columns >= 2, "need at least two columns");
  HSVD_REQUIRE(columns % 2 == 0, "ordering requires an even column count");
  HSVD_REQUIRE(first_row_parity == 0 || first_row_parity == 1,
               "row parity must be 0 or 1");
  switch (kind) {
    case OrderingKind::kRing: return ring_schedule(columns);
    case OrderingKind::kRoundRobin: return caterpillar_schedule(columns);
    case OrderingKind::kShiftingRing:
      return shifting_ring_schedule(columns, first_row_parity);
  }
  HSVD_ASSERT(false, "unreachable ordering kind");
}

bool is_valid_tournament(const EngineSchedule& schedule, int columns) {
  if (columns < 2 || columns % 2 != 0) return false;
  const std::size_t k = static_cast<std::size_t>(columns) / 2;
  if (schedule.size() != static_cast<std::size_t>(columns - 1)) return false;
  std::set<std::pair<int, int>> seen;
  for (const auto& round : schedule) {
    if (round.size() != k) return false;
    std::set<int> used;
    for (const auto& pair : round) {
      if (pair.left < 0 || pair.left >= columns) return false;
      if (pair.right < 0 || pair.right >= columns) return false;
      if (pair.left == pair.right) return false;
      if (!used.insert(pair.left).second) return false;
      if (!used.insert(pair.right).second) return false;
      auto key = std::minmax(pair.left, pair.right);
      if (!seen.insert({key.first, key.second}).second) return false;
    }
  }
  const std::size_t expected =
      static_cast<std::size_t>(columns) * (static_cast<std::size_t>(columns) - 1) / 2;
  return seen.size() == expected;
}

EngineSchedule block_ring_schedule(int blocks) {
  HSVD_REQUIRE(blocks >= 2, "need at least two blocks to form pairs");
  // Same circle method as block_pair_rounds, but bye pairs are kept so
  // every round is a complete row of p/2 sites (required by slot_map).
  const int p = blocks % 2 == 0 ? blocks : blocks + 1;
  const int m = p - 1;
  EngineSchedule rounds;
  rounds.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    std::vector<ColumnPair> row;
    row.reserve(static_cast<std::size_t>(p / 2));
    auto push = [&row](int u, int v) {
      if (u > v) std::swap(u, v);
      row.push_back(ColumnPair{u, v});
    };
    push(p - 1, r);
    for (int i = 1; i < p / 2; ++i) push((r + i) % m, ((r - i) % m + m) % m);
    rounds.push_back(std::move(row));
  }
  return rounds;
}

int shard_of_slot(int slot, int shards) {
  HSVD_REQUIRE(slot >= 0, "slot must be nonnegative");
  HSVD_REQUIRE(shards >= 1, "need at least one shard");
  return slot % shards;
}

}  // namespace hsvd::jacobi
