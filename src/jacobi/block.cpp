#include "jacobi/block.hpp"

#include <algorithm>
#include <utility>

#include "jacobi/convergence.hpp"
#include "jacobi/normalization.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/ops.hpp"

namespace hsvd::jacobi {

std::vector<std::vector<std::pair<int, int>>> block_pair_rounds(int blocks) {
  HSVD_REQUIRE(blocks >= 2, "need at least two blocks to form pairs");
  // Circle method with a bye slot when the count is odd.
  const int p = blocks % 2 == 0 ? blocks : blocks + 1;
  const int bye = blocks % 2 == 0 ? -1 : p - 1;
  const int m = p - 1;
  std::vector<std::vector<std::pair<int, int>>> rounds;
  rounds.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, int>> row;
    row.reserve(static_cast<std::size_t>(p / 2));
    auto push = [&](int u, int v) {
      if (u == bye || v == bye) return;
      if (u > v) std::swap(u, v);
      row.push_back({u, v});
    };
    push(p - 1, r);
    for (int i = 1; i < p / 2; ++i) push((r + i) % m, ((r - i) % m + m) % m);
    rounds.push_back(std::move(row));
  }
  return rounds;
}

namespace {

// One tournament sweep over the 2k columns listed in `cols`, applied to b
// (and v). Reports pair coherences into `tracker`.
void orthogonalize_column_set(linalg::MatrixF& b, linalg::MatrixF& v,
                              bool with_v, const std::vector<int>& cols,
                              const EngineSchedule& schedule,
                              ConvergenceTracker& tracker,
                              float rotation_threshold) {
  for (const auto& round : schedule) {
    for (const auto& pair : round) {
      const auto ci = static_cast<std::size_t>(cols[static_cast<std::size_t>(pair.left)]);
      const auto cj = static_cast<std::size_t>(cols[static_cast<std::size_t>(pair.right)]);
      auto bi = b.col(ci);
      auto bj = b.col(cj);
      const float aij = linalg::dot<float>(bi, bj);
      const float aii = linalg::dot<float>(bi, bi);
      const float ajj = linalg::dot<float>(bj, bj);
      tracker.observe(pair_coherence(aii, ajj, aij));
      const Rotation<float> rot =
          compute_rotation(aii, ajj, aij, rotation_threshold);
      if (rot.identity) continue;
      linalg::apply_rotation(bi, bj, rot.c, rot.s);
      if (with_v) linalg::apply_rotation(v.col(ci), v.col(cj), rot.c, rot.s);
    }
  }
}

}  // namespace

HestenesResult block_hestenes_svd(const linalg::MatrixF& a,
                                  const BlockOptions& opts) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "block_hestenes_svd expects rows >= cols");
  HSVD_REQUIRE(opts.block_cols >= 1, "block width must be positive");
  HSVD_REQUIRE(a.cols() % static_cast<std::size_t>(opts.block_cols) == 0,
               "column count must be a multiple of block width");
  const int n = static_cast<int>(a.cols());
  const int k = opts.block_cols;
  const int p = n / k;

  linalg::MatrixF b = a;
  linalg::MatrixF v;
  if (opts.accumulate_v) v = linalg::MatrixF::identity(static_cast<std::size_t>(n));

  HestenesResult out;
  const int sweep_budget = opts.fixed_sweeps.value_or(opts.max_sweeps);
  HSVD_REQUIRE(sweep_budget >= 1, "sweep budget must be positive");

  ConvergenceTracker tracker(opts.precision);

  if (p == 1) {
    // Single block: degenerate to plain Hestenes over n columns.
    HSVD_REQUIRE(n % 2 == 0, "single-block case needs an even column count");
    const EngineSchedule schedule = make_schedule(opts.ordering, n);
    std::vector<int> cols(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) cols[static_cast<std::size_t>(i)] = i;
    int sweep = 0;
    for (; sweep < sweep_budget; ++sweep) {
      tracker.begin_sweep();
      orthogonalize_column_set(b, v, opts.accumulate_v, cols, schedule, tracker,
                               static_cast<float>(opts.rotation_threshold));
      if (!opts.fixed_sweeps.has_value() && tracker.converged()) {
        ++sweep;
        break;
      }
    }
    out.sweeps = sweep;
  } else {
    const EngineSchedule schedule = make_schedule(opts.ordering, 2 * k);
    const auto rounds = block_pair_rounds(p);
    int sweep = 0;
    for (; sweep < sweep_budget; ++sweep) {
      tracker.begin_sweep();
      for (const auto& round : rounds) {
        for (const auto& [bu, bv] : round) {
          std::vector<int> cols(static_cast<std::size_t>(2 * k));
          for (int i = 0; i < k; ++i) {
            cols[static_cast<std::size_t>(i)] = bu * k + i;
            cols[static_cast<std::size_t>(k + i)] = bv * k + i;
          }
          // Per-block-pair convergence (Algorithm 1 line 10) merged into
          // the sweep tracker (line 15).
          ConvergenceTracker pair_tracker(opts.precision);
          pair_tracker.begin_sweep();
          orthogonalize_column_set(b, v, opts.accumulate_v, cols, schedule,
                                   pair_tracker,
                                   static_cast<float>(opts.rotation_threshold));
          tracker.merge(pair_tracker);
        }
      }
      if (!opts.fixed_sweeps.has_value() && tracker.converged()) {
        ++sweep;
        break;
      }
    }
    out.sweeps = sweep;
  }

  out.final_convergence_rate = tracker.sweep_rate();
  out.converged = tracker.converged();
  normalize_in_place(b, v, opts.accumulate_v, out.u, out.sigma, out.v);
  return out;
}

}  // namespace hsvd::jacobi
