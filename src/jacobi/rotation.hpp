// Jacobi plane-rotation parameters (paper eqs. (3)-(5)).
//
// Given the Gram entries of a column pair
//   aii = a_i^T a_i,  ajj = a_j^T a_j,  aij = a_i^T a_j,
// produce (c, s) such that rotating [a_i, a_j] by [[c, -s], [s, c]]
// orthogonalizes the pair. The closed form picks the smaller rotation
// angle, which is what gives Jacobi its quadratic convergence.
#pragma once

#include <cmath>

#include "common/assert.hpp"

namespace hsvd::jacobi {

template <typename T>
struct Rotation {
  T c{1};
  T s{0};
  T t{0};    // tan(theta)
  T tau{0};  // (ajj - aii) / (2 aij)
  bool identity = true;  // true when the pair was already orthogonal
};

// `threshold` guards the division by |aij|: pairs whose coherence
// |aij| / sqrt(aii*ajj) is below it are left untouched (eq. (6) is then
// already satisfied for the pair).
template <typename T>
Rotation<T> compute_rotation(T aii, T ajj, T aij, T threshold = T{0}) {
  HSVD_ASSERT(aii >= T{0} && ajj >= T{0}, "Gram diagonal must be nonnegative");
  Rotation<T> r;
  const T denom = std::sqrt(aii * ajj);
  if (denom <= T{0} || std::fabs(aij) <= threshold * denom ||
      aij == T{0}) {
    return r;  // identity
  }
  const T tau = (ajj - aii) / (2 * aij);
  const T t = (tau >= T{0} ? T{1} : T{-1}) /
              (std::fabs(tau) + std::sqrt(T{1} + tau * tau));
  r.tau = tau;
  r.t = t;
  r.c = T{1} / std::sqrt(T{1} + t * t);
  r.s = t * r.c;
  r.identity = false;
  return r;
}

// Coherence of a pair: the convergence measure of eq. (6).
template <typename T>
T pair_coherence(T aii, T ajj, T aij) {
  const T denom = std::sqrt(aii * ajj);
  if (denom <= T{0}) return T{0};
  return std::fabs(aij) / denom;
}

}  // namespace hsvd::jacobi
