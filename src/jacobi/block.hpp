// Block Hestenes-Jacobi (paper Algorithm 1, host-side executable model).
//
// A large matrix A (m x n) is split into p = n / block_cols column blocks.
// Each sweep enumerates block pairs round-robin; for every block pair the
// union of its 2*block_cols columns is orthogonalized with a full
// tournament ordering -- the same schedule the orth-AIE array executes.
// Convergence (eq. (6)) is tracked per block pair and merged (Algorithm 1
// lines 10/15).
#pragma once

#include <optional>
#include <vector>

#include "jacobi/hestenes.hpp"
#include "jacobi/ordering.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::jacobi {

struct BlockOptions {
  int block_cols = 8;  // k: columns per block (= P_eng on hardware)
  OrderingKind ordering = OrderingKind::kShiftingRing;
  double precision = 1e-6;
  double rotation_threshold = 0.0;  // threshold Jacobi (see HestenesOptions)
  int max_sweeps = 30;
  std::optional<int> fixed_sweeps;
  bool accumulate_v = true;
};

// Round-robin enumeration of block pairs: rounds of disjoint pairs so that
// every unordered block pair appears exactly once per sweep. Handles odd p
// with a bye. Returns rounds[r] = list of (u, v), u < v.
std::vector<std::vector<std::pair<int, int>>> block_pair_rounds(int blocks);

// Requires a.cols() divisible by block_cols and rows >= cols.
HestenesResult block_hestenes_svd(const linalg::MatrixF& a,
                                  const BlockOptions& opts = {});

}  // namespace hsvd::jacobi
