// Convergence tracking for Hestenes-Jacobi sweeps (paper eq. (6)).
//
// Every orthogonalization reports the pre-rotation coherence of its pair;
// the tracker keeps the sweep maximum. A sweep has converged when no pair
// exceeded `precision` -- exactly the termination test of Algorithm 1.
#pragma once

#include <algorithm>

namespace hsvd::jacobi {

class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(double precision) : precision_(precision) {}

  void begin_sweep() { sweep_max_ = 0.0; }

  void observe(double coherence) { sweep_max_ = std::max(sweep_max_, coherence); }

  // Merges a sub-tracker (e.g. per-block-pair convergence from line 10 of
  // Algorithm 1) into this sweep.
  void merge(const ConvergenceTracker& other) { observe(other.sweep_max_); }

  double sweep_rate() const { return sweep_max_; }
  double precision() const { return precision_; }
  bool converged() const { return sweep_max_ < precision_; }

 private:
  double precision_;
  double sweep_max_ = 0.0;
};

}  // namespace hsvd::jacobi
