// AIE array geometry: tile coordinates and the mirrored core/memory
// layout that motivates the paper's co-design.
//
// Each tile holds a computation core and a memory module side by side.
// In even rows the core sits left of its memory; in odd rows the layout
// is mirrored (paper section III-B). A core can directly access a memory
// module that is physically adjacent to it: its own, the vertical
// neighbours' in the same column, and one horizontal neighbour whose
// memory abuts it (west for even rows, east for odd rows). Every other
// tile-to-tile transfer needs DMA, which costs double memory and runs at
// a lower rate.
#pragma once

#include <string>

#include "common/assert.hpp"

namespace hsvd::versal {

struct TileCoord {
  int row = 0;
  int col = 0;
  friend bool operator==(const TileCoord&, const TileCoord&) = default;
  friend bool operator<(const TileCoord& a, const TileCoord& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  }
};

std::string to_string(const TileCoord& t);

class ArrayGeometry {
 public:
  ArrayGeometry(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int tile_count() const { return rows_ * cols_; }

  bool contains(const TileCoord& t) const {
    return t.row >= 0 && t.row < rows_ && t.col >= 0 && t.col < cols_;
  }

  int index_of(const TileCoord& t) const {
    HSVD_ASSERT(contains(t), "tile out of array");
    return t.row * cols_ + t.col;
  }

  // Physical x position (in half-tile units) of the core / memory module
  // of the given tile. Row parity mirrors the pair.
  int core_x(const TileCoord& t) const {
    return t.row % 2 == 0 ? 2 * t.col : 2 * t.col + 1;
  }
  int memory_x(const TileCoord& t) const {
    return t.row % 2 == 0 ? 2 * t.col + 1 : 2 * t.col;
  }

  // True if the core of `core_tile` can directly read/write the memory
  // module of `mem_tile` (adjacency in the physical module grid).
  bool core_can_access_memory(const TileCoord& core_tile,
                              const TileCoord& mem_tile) const;

  // True if a value produced on `src` can reach the core of `dst` without
  // DMA, i.e. dst's core can read some memory src's core can write:
  // either directly (dst core reads src-accessible memory) -- we model
  // the paper's rule: the transfer is a neighbour access when the
  // producing core can write a memory module the consuming core can read.
  bool neighbour_transfer_possible(const TileCoord& src,
                                   const TileCoord& dst) const;

 private:
  int rows_;
  int cols_;
};

}  // namespace hsvd::versal
