// Per-tile utilization accounting for the AIE array.
//
// A UtilizationReport is a snapshot of how each tile spent a run: core
// busy cycles, fault-stall cycles, DMA-engine and stream-port busy
// cycles, plus per-link byte totals (neighbour moves, DMA shadows,
// stream/PLIO packets). Tallies come straight from the simulator's
// timelines and relaxed per-tile counters, so building a report is cheap
// and never perturbs the simulated schedule; the accelerator attaches
// one to every RunResult and accel/report.hpp renders it as a heat grid.
//
// All cycle figures are in the AIE clock domain (seconds * aie_clock_hz)
// to match the paper's Fig. 9 utilization accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "versal/geometry.hpp"

namespace hsvd::versal {

struct TileUtilization {
  TileCoord tile{0, 0};
  // Core cycles spent executing kernels.
  double busy_cycles = 0;
  // Injected fault stalls charged to this tile's DMA engine or stream
  // port (already included in the respective engine busy time below, but
  // tallied separately so degraded tiles stand out).
  double stalled_cycles = 0;
  // Core cycles left over within the makespan: makespan - busy - stalled,
  // clamped at zero.
  double idle_cycles = 0;
  double dma_busy_cycles = 0;     // this tile's mm2s DMA engine
  double stream_busy_cycles = 0;  // this tile's stream port
  std::uint64_t kernel_invocations = 0;
  // Per-link traffic, in bytes: neighbour moves consumed by this tile,
  // DMA issued by this tile's engine, stream/PLIO packets landing on this
  // tile's port.
  std::uint64_t neighbour_bytes = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t stream_bytes = 0;

  // Core busy fraction of the report's makespan (0 when makespan is 0).
  double busy_fraction(double makespan_cycles) const {
    return makespan_cycles > 0 ? busy_cycles / makespan_cycles : 0.0;
  }
};

struct UtilizationReport {
  int rows = 0;
  int cols = 0;
  double makespan_seconds = 0;
  double aie_clock_hz = 1.0;
  std::vector<TileUtilization> tiles;  // row-major, rows * cols entries

  double makespan_cycles() const { return makespan_seconds * aie_clock_hz; }
  const TileUtilization& at(int row, int col) const;

  // Busy-time utilization of the cores that ran at least one kernel --
  // the same definition as AieArraySim::core_utilization, reproduced
  // from the per-tile tallies (Fig. 9's aggregate).
  double core_utilization() const;

  std::uint64_t total_neighbour_bytes() const;
  std::uint64_t total_dma_bytes() const;
  std::uint64_t total_stream_bytes() const;
};

}  // namespace hsvd::versal
