// The AIE array simulator: tiles with core timelines and checked
// memories, plus the three inter-tile transfer mechanisms of Fig. 1
// (neighbour access, DMA, packet streams) with their cost asymmetry.
//
// Functional payloads are optional: when a transfer is issued without
// data the simulator still performs all capacity accounting and timing,
// which is how the large-size benches run (timing is data-independent
// once the iteration count is fixed).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/obs.hpp"
#include "versal/faults.hpp"
#include "versal/geometry.hpp"
#include "versal/memory.hpp"
#include "versal/packet.hpp"
#include "versal/resources.hpp"
#include "versal/timeline.hpp"
#include "versal/trace.hpp"
#include "versal/utilization.hpp"

namespace hsvd::versal {

struct ArrayStats {
  std::uint64_t neighbour_transfers = 0;
  std::uint64_t dma_transfers = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t stream_packets = 0;
  std::uint64_t stream_bytes = 0;
  std::uint64_t kernel_invocations = 0;
};

class AieArraySim {
 public:
  AieArraySim(const ArrayGeometry& geometry, const DeviceResources& device);

  const ArrayGeometry& geometry() const { return geometry_; }
  const DeviceResources& device() const { return device_; }

  TileMemory& memory(const TileCoord& t);
  Timeline& core(const TileCoord& t);

  // --- Functional + accounted transfers -------------------------------
  // Neighbour transfer: requires geometric adjacency (throws otherwise).
  // Zero-copy in time (the consuming kernel reads the shared memory
  // module directly); the buffer ownership moves to dst. `bytes_hint`
  // supplies the link-byte tally when the move carries no payload
  // (timing-only execution).
  void neighbour_move(const TileCoord& src, const TileCoord& dst,
                      const std::string& key, std::uint64_t bytes_hint = 0);

  // DMA transfer: allowed between any two tiles. Duplicates the buffer
  // (shadow copy in dst) -- the "twice the memory" cost -- and occupies
  // the source tile's DMA engine for bytes / dma_rate. Returns completion
  // time.
  double dma_move(const TileCoord& src, const TileCoord& dst,
                  const std::string& key, double ready,
                  std::uint64_t bytes_hint = 0);

  // Stream packet from PL into a tile (or between tiles) through the
  // packet-switched network; serializes on the destination's stream port.
  // `payload_bytes_hint` supplies the wire size when the packet carries
  // no payload (timing-only execution).
  double stream_packet(const TileCoord& dst, const Packet& packet,
                       double ready, bool store_payload,
                       std::uint64_t payload_bytes_hint = 0);

  // Records a kernel run on the tile's core timeline.
  double run_kernel(const TileCoord& tile, double ready, double duration);

  const ArrayStats& stats() const;
  void reset_time();

  // Aggregate peak memory over all tiles (bytes) -- resource report.
  std::uint64_t peak_memory_bytes() const;

  // Busy-time utilization of the cores that ran at least one kernel,
  // relative to `makespan` seconds.
  double core_utilization(double makespan) const;

  // Per-tile busy/stall/idle cycle tallies and link-byte counters for a
  // run whose critical path ended at `makespan` seconds. Reads the
  // timelines and relaxed counters only -- never perturbs the schedule.
  // Aggregates match the scalar accessors exactly (core_utilization,
  // stats().dma_bytes, ...).
  UtilizationReport utilization(double makespan) const;

  // DMA engine rate (bytes/s): 32-bit per AIE clock cycle.
  double dma_rate() const { return 4.0 * device_.aie_clock_hz; }

  // Optional execution tracing: when attached, every kernel, DMA, and
  // stream packet is recorded (not owned; pass nullptr to detach).
  // Tracing serializes execution: the accelerator's parallel batch path
  // checks trace() and falls back to sequential task chains so the
  // recorded event order stays reproducible.
  void attach_trace(TraceRecorder* recorder) { trace_ = recorder; }
  TraceRecorder* trace() const { return trace_; }

  // Per-transfer DMA setup: buffer-descriptor programming plus lock
  // acquire/release (~300 AIE cycles). Part of why DMA is the slow path.
  double dma_setup_seconds() const { return 300.0 / device_.aie_clock_hz; }

  // Optional fault injection: when attached, kernels, DMA transfers,
  // packet stores, and staged payloads are perturbed per the injector's
  // FaultPlan (not owned; pass nullptr to detach). A hung core reports
  // +infinity as its kernel completion time -- the accelerator's
  // detection points treat a non-finite timestamp as a dead tile.
  void attach_faults(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* faults() const { return faults_; }

  // Optional observability context (not owned; nullptr detaches). When
  // attached, transfers and kernels record metrics counters/histograms,
  // and -- when the context's tracer is enabled -- simulated-domain spans
  // (per-tile kernel/DMA/stream tracks) plus fault-injection instants.
  // Like the legacy TraceRecorder, an enabled *tracer* serializes the
  // accelerator's batch engine so event order stays reproducible;
  // metrics-only observation is sharded and stays parallel-safe.
  void attach_observer(obs::ObsContext* observer);
  obs::ObsContext* observer() const { return obs_; }

 private:
  ArrayGeometry geometry_;
  DeviceResources device_;
  std::vector<TileMemory> memories_;
  std::vector<Timeline> cores_;
  std::vector<Timeline> stream_ports_;
  std::vector<Timeline> dma_engines_;  // one per tile (mm2s side)
  // Counters are atomic so that task slots touching disjoint tiles can
  // execute concurrently (the accelerator's parallel batch engine); sums
  // are order-independent, so totals match the sequential run exactly.
  struct AtomicStats {
    std::atomic<std::uint64_t> neighbour_transfers{0};
    std::atomic<std::uint64_t> dma_transfers{0};
    std::atomic<std::uint64_t> dma_bytes{0};
    std::atomic<std::uint64_t> stream_packets{0};
    std::atomic<std::uint64_t> stream_bytes{0};
    std::atomic<std::uint64_t> kernel_invocations{0};
  };
  AtomicStats stats_;
  // Per-tile tallies behind the utilization report. Same atomicity
  // contract as AtomicStats: relaxed adds from concurrent task slots,
  // order-independent sums. Held in a fixed-size array because atomics
  // are not movable.
  struct TileCounters {
    std::atomic<std::uint64_t> kernel_invocations{0};
    std::atomic<std::uint64_t> neighbour_bytes{0};
    std::atomic<std::uint64_t> dma_bytes{0};
    std::atomic<std::uint64_t> stream_bytes{0};
    std::atomic<double> stall_seconds{0.0};
  };
  TileCounters& counters(const TileCoord& t) {
    return tile_counters_[static_cast<std::size_t>(geometry_.index_of(t))];
  }
  std::unique_ptr<TileCounters[]> tile_counters_;
  mutable ArrayStats stats_snapshot_;  // materialized by stats()
  TraceRecorder* trace_ = nullptr;
  FaultInjector* faults_ = nullptr;
  obs::ObsContext* obs_ = nullptr;
};

}  // namespace hsvd::versal
