// Per-tile data memory with capacity accounting.
//
// A tile's memory holds named buffers (one per column of the working
// matrix, plus DMA shadow copies). Allocation is checked against the
// 4 x 8 KB budget so placement bugs that would not fit on silicon fail
// loudly in simulation. Peak usage is tracked for the resource reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace hsvd::versal {

class TileMemory {
 public:
  explicit TileMemory(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Allocates (or replaces) a buffer of `values.size()` floats under `key`.
  // Throws std::runtime_error if the tile memory would overflow.
  void store(const std::string& key, std::vector<float> values);

  bool contains(const std::string& key) const { return buffers_.count(key) > 0; }

  const std::vector<float>& load(const std::string& key) const;

  // Removes a buffer; no-op if absent.
  void erase(const std::string& key);

  // Removes every buffer whose key satisfies `pred`; returns the number
  // removed. Used to purge a failed task's stranded columns so later
  // tasks on the same tiles do not inherit its memory footprint.
  std::size_t erase_if(const std::function<bool(const std::string&)>& pred);

  void clear();

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t peak_bytes() const { return peak_; }
  std::uint64_t capacity_bytes() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t peak_ = 0;
  std::map<std::string, std::vector<float>> buffers_;
};

}  // namespace hsvd::versal
