#include "versal/trace.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace hsvd::versal {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kKernel: return "kernel";
    case TraceKind::kDma: return "dma";
    case TraceKind::kStream: return "stream";
    case TraceKind::kPlio: return "plio";
    case TraceKind::kDdr: return "ddr";
  }
  return "unknown";
}

void TraceRecorder::record(TraceKind kind, std::string lane, std::string label,
                           double start_s, double duration_s) {
  events_.push_back(
      {kind, std::move(lane), std::move(label), start_s, duration_s});
}

double TraceRecorder::busy_seconds(TraceKind kind) const {
  double total = 0.0;
  for (const auto& e : events_) {
    if (e.kind == kind) total += e.duration_s;
  }
  return total;
}

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  // Stable tid per lane, in first-seen order.
  std::map<std::string, int> tids;
  for (const auto& e : events_) {
    tids.emplace(e.lane, static_cast<int>(tids.size()));
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [lane, tid] : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(os, lane);
    os << "\"}}";
  }
  for (const auto& e : events_) {
    os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << tids[e.lane] << ",\"ts\":"
       << e.start_s * 1e6 << ",\"dur\":" << e.duration_s * 1e6
       << ",\"cat\":\"" << to_string(e.kind) << "\",\"name\":\"";
    append_escaped(os, e.label);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_chrome_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace hsvd::versal
