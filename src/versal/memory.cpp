#include "versal/memory.hpp"

#include <stdexcept>

#include "common/format.hpp"

namespace hsvd::versal {

void TileMemory::store(const std::string& key, std::vector<float> values) {
  const std::uint64_t incoming = values.size() * sizeof(float);
  std::uint64_t after = used_ + incoming;
  auto it = buffers_.find(key);
  if (it != buffers_.end()) after -= it->second.size() * sizeof(float);
  if (after > capacity_) {
    throw std::runtime_error(
        cat("tile memory overflow: need ", after, " bytes of ", capacity_,
            " storing '", key, "'"));
  }
  used_ = after;
  peak_ = peak_ > used_ ? peak_ : used_;
  buffers_[key] = std::move(values);
}

const std::vector<float>& TileMemory::load(const std::string& key) const {
  auto it = buffers_.find(key);
  HSVD_REQUIRE(it != buffers_.end(), cat("missing buffer '", key, "'"));
  return it->second;
}

void TileMemory::erase(const std::string& key) {
  auto it = buffers_.find(key);
  if (it == buffers_.end()) return;
  used_ -= it->second.size() * sizeof(float);
  buffers_.erase(it);
}

std::size_t TileMemory::erase_if(
    const std::function<bool(const std::string&)>& pred) {
  std::size_t removed = 0;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (pred(it->first)) {
      used_ -= it->second.size() * sizeof(float);
      it = buffers_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void TileMemory::clear() {
  buffers_.clear();
  used_ = 0;
}

}  // namespace hsvd::versal
