// Execution tracing for the simulator.
//
// A TraceRecorder collects timestamped events (kernel executions, DMA
// transfers, stream packets, PLIO transfers) and exports them in the
// Chrome trace-event JSON format (chrome://tracing, Perfetto), with one
// lane per hardware resource. Attach one to an AieArraySim to see where
// a configuration's time actually goes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsvd::versal {

enum class TraceKind { kKernel, kDma, kStream, kPlio, kDdr };

struct TraceEvent {
  TraceKind kind = TraceKind::kKernel;
  std::string lane;   // resource name, e.g. "core(2,3)" or "tx0.0"
  std::string label;  // what ran, e.g. "orth c5/c9"
  double start_s = 0.0;
  double duration_s = 0.0;
};

class TraceRecorder {
 public:
  void record(TraceKind kind, std::string lane, std::string label,
              double start_s, double duration_s);

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // Total busy time per kind (seconds) -- a quick where-does-time-go.
  double busy_seconds(TraceKind kind) const;

  // Chrome trace-event JSON ("traceEvents" array of complete events,
  // microsecond timestamps). One pid, one tid per lane.
  std::string to_chrome_json() const;

  bool write_chrome_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

const char* to_string(TraceKind kind);

}  // namespace hsvd::versal
