// Transaction-level timing primitives for the cycle-approximate
// simulator.
//
// Rather than a callback-driven event queue, the simulator schedules
// work onto Timeline resources: each resource serializes its operations
// (an operation starts no earlier than both its data-ready time and the
// resource's previous completion) and accumulates busy time for the
// utilization reports (Fig. 9). This is the standard modeling level for
// pipelined accelerators where each unit processes requests in order.
#pragma once

#include <algorithm>
#include <string>

namespace hsvd::versal {

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(std::string name) : name_(std::move(name)) {}

  // Schedules an operation of `duration` seconds that cannot start before
  // `ready`. Returns the completion time.
  double schedule(double ready, double duration) {
    const double start = std::max(ready, next_free_);
    next_free_ = start + duration;
    busy_ += duration;
    last_start_ = start;
    return next_free_;
  }

  double next_free() const { return next_free_; }
  double busy_seconds() const { return busy_; }
  double last_start() const { return last_start_; }
  const std::string& name() const { return name_; }

  void reset() {
    next_free_ = 0;
    busy_ = 0;
    last_start_ = 0;
  }

 private:
  std::string name_;
  double next_free_ = 0;
  double busy_ = 0;
  double last_start_ = 0;
};

// A bandwidth-limited channel: transfer duration = bytes / rate, plus a
// fixed per-transfer overhead (header/latch cycles).
class Channel {
 public:
  Channel(std::string name, double bytes_per_second, double overhead_s = 0.0)
      : timeline_(std::move(name)),
        rate_(bytes_per_second),
        overhead_(overhead_s) {}

  double transfer(double ready, double bytes) {
    return timeline_.schedule(ready, overhead_ + bytes / rate_);
  }

  double transfer_duration(double bytes) const { return overhead_ + bytes / rate_; }

  Timeline& timeline() { return timeline_; }
  const Timeline& timeline() const { return timeline_; }
  double rate() const { return rate_; }

  // Permanently scales the channel's bandwidth (degraded link fault
  // model); `factor` must be in (0, 1].
  void degrade(double factor) {
    if (factor > 0.0 && factor <= 1.0) rate_ *= factor;
  }

 private:
  Timeline timeline_;
  double rate_;
  double overhead_;
};

}  // namespace hsvd::versal
