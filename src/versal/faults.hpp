// Deterministic fault injection for the simulated Versal fabric.
//
// Real AIE deployments contend with SEUs in tile memories, hung cores,
// stalled DMA channels, dropped packets, and degraded PLIO links. A
// FaultInjector attaches to an AieArraySim and perturbs its transfers and
// kernels according to a declarative FaultPlan: each FaultSpec names a
// fault kind, a target resource (tile, DMA engine, or task-slot PLIO
// group), and a trigger ordinal -- the nth operation of the matching
// category on that resource. Trigger counting is *per resource*, never
// global, so the same plan fires at the same architectural points no
// matter how the host interleaves concurrent task slots: a tile belongs
// to exactly one slot chain and each chain issues its tile's operations
// in a fixed order. The plan seed picks derived randomness (which bit a
// SEU flips) via a splitmix64 hash, so a plan replays bit-identically.
//
// The injector only *causes* faults; detection lives at the accelerator's
// dataflow boundaries (checksums, missing-buffer checks, non-finite
// guards, the convergence watchdog) and recovery in the accelerator's
// retry/re-placement policy.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "versal/geometry.hpp"

namespace hsvd::versal {

enum class FaultKind {
  kTileHang,       // the tile's core stops completing kernels (sticky)
  kMemoryBitFlip,  // SEU: flip one bit of the nth buffer staged on the tile
  kStreamDrop,     // the nth packet into the tile loses its payload
  kStreamStall,    // the nth packet into the tile is delayed
  kDmaDrop,        // the nth DMA out of the tile loses the shadow copy
  kDmaStall,       // the nth DMA out of the tile is delayed
  kPlioDegrade,    // a task slot's PLIO bandwidth is scaled down
  kSilentError,    // post-detection corruption of a returned factor:
                   // flies under every dataflow checksum and non-finite
                   // guard, only result attestation can catch it
};

const char* to_string(FaultKind kind);

// True for kinds that corrupt data or halt progress (and therefore must
// be caught by a detection point); stalls and bandwidth degradation only
// stretch the simulated timeline.
bool corrupts(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kStreamDrop;
  // Target tile: the hung core (kTileHang), the staging destination
  // (kMemoryBitFlip, kStreamDrop, kStreamStall) or the DMA engine's
  // source tile (kDmaDrop, kDmaStall). Ignored for kPlioDegrade.
  TileCoord tile{0, 0};
  // Target task slot for kPlioDegrade and kSilentError.
  int slot = 0;
  // Fires on the nth (0-based) matching operation at the target.
  std::uint64_t after_op = 0;
  double stall_seconds = 0.0;    // kStreamStall / kDmaStall
  double bandwidth_scale = 1.0;  // kPlioDegrade: multiplier in (0, 1]
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;
};

// One fault that actually fired, for campaign reporting.
struct FaultEvent {
  FaultKind kind = FaultKind::kStreamDrop;
  TileCoord tile{0, 0};
  std::uint64_t op = 0;   // the per-resource ordinal it fired at
  std::string detail;
};

// FNV-1a over the byte image of a float buffer: the checksum the PL
// sender stamps on outgoing columns and the detection points recompute.
std::uint64_t buffer_checksum(std::span<const float> data);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // --- hooks consulted by AieArraySim (thread-safe) -------------------
  // Counts a kernel launch on `tile`; true once a kTileHang has triggered
  // (sticky: the core never completes again).
  bool hang_core(const TileCoord& tile);
  // Counts a packet into `tile`; returns the injected delay and sets
  // *drop when the payload is lost.
  double on_stream(const TileCoord& tile, bool* drop);
  // Counts a DMA issued by `src`'s engine; delay + shadow-drop flag.
  double on_dma(const TileCoord& src, bool* drop);
  // Counts a payload staged into `tile`'s memory; may flip one seed-chosen
  // bit in `data`. Returns true when a flip happened.
  bool corrupt_payload(const TileCoord& tile, std::vector<float>& data);
  // Counts a finished result for task `slot` and may apply an armed
  // kSilentError: a seed-chosen exponent-bit flip of either sigma[0] or
  // a dominant U entry -- a finite, plausible-looking corruption that no
  // dataflow detection point sees. Returns true when it fired.
  bool corrupt_result(int slot, std::span<float> u,
                      std::vector<float>& sigma);

  // --- PLIO degradation (applied by the accelerator at attach) --------
  // Combined bandwidth multiplier for a task slot's PLIO channels.
  double plio_scale(int slot) const;

  const FaultPlan& plan() const { return plan_; }
  // Faults that fired so far, in a deterministic order (sorted by plan
  // index; each spec fires at most once except sticky hangs, logged once).
  std::vector<FaultEvent> events() const;
  std::size_t event_count() const;
  // Clears trigger counters and the event log so the same plan can drive
  // a fresh run.
  void reset();

 private:
  // Operation categories counted independently per tile (kResult is
  // keyed by task slot, encoded as TileCoord{0, slot}).
  enum class OpClass { kKernel, kStream, kDma, kStore, kResult };

  struct Armed {
    std::size_t plan_index;  // salt for derived randomness + log ordering
    bool fired = false;
  };

  double on_channel_op(OpClass cls, FaultKind drop_kind, FaultKind stall_kind,
                       const TileCoord& tile, bool* drop);
  void record(std::size_t plan_index, const TileCoord& tile, std::uint64_t op,
              std::string detail);

  FaultPlan plan_;
  // (OpClass, tile) -> per-resource operation counter.
  std::map<std::pair<int, TileCoord>, std::uint64_t> counters_;
  // (OpClass, tile) -> armed specs targeting that resource.
  std::map<std::pair<int, TileCoord>, std::vector<Armed>> armed_;
  std::vector<FaultEvent> events_;
  std::vector<std::size_t> event_plan_index_;
  mutable std::mutex mutex_;
};

}  // namespace hsvd::versal
