#include "versal/geometry.hpp"

#include <cmath>

#include "common/format.hpp"

namespace hsvd::versal {

std::string to_string(const TileCoord& t) {
  return cat("(", t.row, ",", t.col, ")");
}

ArrayGeometry::ArrayGeometry(int rows, int cols) : rows_(rows), cols_(cols) {
  HSVD_REQUIRE(rows >= 1 && cols >= 1, "array must have positive dimensions");
}

bool ArrayGeometry::core_can_access_memory(const TileCoord& core_tile,
                                           const TileCoord& mem_tile) const {
  HSVD_REQUIRE(contains(core_tile) && contains(mem_tile),
               "tiles must be inside the array");
  const int dr = mem_tile.row - core_tile.row;
  const int dx = memory_x(mem_tile) - core_x(core_tile);
  // Adjacency in the physical module grid: side-by-side in the same row,
  // or vertically aligned in an adjacent row.
  if (dr == 0) return dx == 1 || dx == -1;
  if (dr == 1 || dr == -1) return dx == 0;
  return false;
}

bool ArrayGeometry::neighbour_transfer_possible(const TileCoord& src,
                                                const TileCoord& dst) const {
  HSVD_REQUIRE(contains(src) && contains(dst), "tiles must be inside the array");
  if (src == dst) return true;  // same core: data already in reach
  // A transfer avoids DMA when some memory module is adjacent to both the
  // producing core (so it can deposit the result there) and the consuming
  // core (so it can read it back) -- Fig. 4(b)'s relocated-output rule.
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      const TileCoord mem{src.row + dr, src.col + dc};
      if (!contains(mem)) continue;
      if (core_can_access_memory(src, mem) && core_can_access_memory(dst, mem)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace hsvd::versal
