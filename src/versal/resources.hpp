// Hardware budget of the target device (AMD Versal AI Core VCK190, the
// paper's evaluation board). Encoded once here; the placement engine, the
// resource model (Table I) and the DSE constraints (eq. (16)) all consume
// this struct, so experiments can also retarget a hypothetical device.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hsvd::versal {

struct DeviceResources {
  // AIE array: 8 rows x 50 columns on the VC1902 device.
  int aie_rows = 8;
  int aie_cols = 50;

  double aie_clock_hz = 1.25 * kGHz;

  // Per-tile data memory: four banks of 8 KB.
  int mem_banks_per_tile = 4;
  std::uint64_t mem_bank_bytes = KiB(8);

  // PL <-> AIE interface bandwidth (paper section II-B).
  double plio_pl_to_aie_bytes_per_s = 32.0 * kGBps;
  double plio_aie_to_pl_bytes_per_s = 24.0 * kGBps;

  // Budgets used by the DSE constraints (eq. (16)).
  int total_aie = 400;       // 8 x 50
  int total_plio = 156;      // usable PLIO channels
  int total_bram = 967;      // BRAM36 blocks
  int total_uram = 463;      // URAM288 blocks
  std::uint64_t lut_total = 899840;

  std::uint64_t uram_bytes = 288 * 1024 / 8;  // 288 Kb per URAM block
  std::uint64_t bram_bytes = 36 * 1024 / 8;   // 36 Kb per BRAM block

  // DDR staging model: effective sequential bandwidth seen by the data
  // arrangement module and first-touch latency.
  double ddr_bytes_per_s = 12.0 * kGBps;
  double ddr_latency_s = 2e-7;
  int ddr_ports = 4;  // DDRMC ports exposed through the NoC

  std::uint64_t tile_memory_bytes() const {
    return static_cast<std::uint64_t>(mem_banks_per_tile) * mem_bank_bytes;
  }
};

// The default experiment target.
inline DeviceResources vck190() { return DeviceResources{}; }

}  // namespace hsvd::versal
