#include "versal/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/format.hpp"

namespace hsvd::versal {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTileHang: return "tile-hang";
    case FaultKind::kMemoryBitFlip: return "memory-bit-flip";
    case FaultKind::kStreamDrop: return "stream-drop";
    case FaultKind::kStreamStall: return "stream-stall";
    case FaultKind::kDmaDrop: return "dma-drop";
    case FaultKind::kDmaStall: return "dma-stall";
    case FaultKind::kPlioDegrade: return "plio-degrade";
    case FaultKind::kSilentError: return "silent-error";
  }
  return "unknown";
}

bool corrupts(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTileHang:
    case FaultKind::kMemoryBitFlip:
    case FaultKind::kStreamDrop:
    case FaultKind::kDmaDrop:
    case FaultKind::kSilentError:
      return true;
    case FaultKind::kStreamStall:
    case FaultKind::kDmaStall:
    case FaultKind::kPlioDegrade:
      return false;
  }
  return false;
}

std::uint64_t buffer_checksum(std::span<const float> data) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (float f : data) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  }
  return h;
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int op_class_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTileHang: return 0;          // OpClass::kKernel
    case FaultKind::kStreamDrop:
    case FaultKind::kStreamStall: return 1;       // OpClass::kStream
    case FaultKind::kDmaDrop:
    case FaultKind::kDmaStall: return 2;          // OpClass::kDma
    case FaultKind::kMemoryBitFlip: return 3;     // OpClass::kStore
    case FaultKind::kSilentError: return 4;       // OpClass::kResult
    case FaultKind::kPlioDegrade: return -1;      // not operation-counted
  }
  return -1;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const int cls = op_class_of(plan_.faults[i].kind);
    if (cls < 0) continue;  // PLIO degrades are queried, not triggered
    // Silent errors target a task slot, not a tile; key them on the
    // slot so concurrent batch post-passes count independently.
    const TileCoord target = plan_.faults[i].kind == FaultKind::kSilentError
                                 ? TileCoord{0, plan_.faults[i].slot}
                                 : plan_.faults[i].tile;
    armed_[{cls, target}].push_back(Armed{i, false});
  }
}

void FaultInjector::record(std::size_t plan_index, const TileCoord& tile,
                           std::uint64_t op, std::string detail) {
  // Keep the log sorted by plan index so events() is independent of the
  // real-time order in which concurrent slot chains hit their triggers.
  FaultEvent ev;
  ev.kind = plan_.faults[plan_index].kind;
  ev.tile = tile;
  ev.op = op;
  ev.detail = std::move(detail);
  const auto at = std::upper_bound(event_plan_index_.begin(),
                                   event_plan_index_.end(), plan_index);
  const auto pos = at - event_plan_index_.begin();
  event_plan_index_.insert(at, plan_index);
  events_.insert(events_.begin() + pos, std::move(ev));
}

bool FaultInjector::hang_core(const TileCoord& tile) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::pair<int, TileCoord> key{0, tile};
  const std::uint64_t op = counters_[key]++;
  auto it = armed_.find(key);
  if (it == armed_.end()) return false;
  bool hung = false;
  for (auto& armed : it->second) {
    const FaultSpec& spec = plan_.faults[armed.plan_index];
    if (spec.kind != FaultKind::kTileHang) continue;
    if (armed.fired) {
      hung = true;  // sticky: once hung, every later kernel hangs
    } else if (op >= spec.after_op) {
      armed.fired = true;
      hung = true;
      record(armed.plan_index, tile, op, cat("core ", to_string(tile), " hung"));
    }
  }
  return hung;
}

double FaultInjector::on_channel_op(OpClass cls, FaultKind drop_kind,
                                    FaultKind stall_kind, const TileCoord& tile,
                                    bool* drop) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::pair<int, TileCoord> key{static_cast<int>(cls), tile};
  const std::uint64_t op = counters_[key]++;
  auto it = armed_.find(key);
  if (it == armed_.end()) return 0.0;
  double delay = 0.0;
  for (auto& armed : it->second) {
    const FaultSpec& spec = plan_.faults[armed.plan_index];
    if (armed.fired || op != spec.after_op) continue;
    if (spec.kind == drop_kind) {
      armed.fired = true;
      if (drop != nullptr) *drop = true;
      record(armed.plan_index, tile, op,
             cat(to_string(spec.kind), " at ", to_string(tile)));
    } else if (spec.kind == stall_kind) {
      armed.fired = true;
      delay += spec.stall_seconds;
      record(armed.plan_index, tile, op,
             cat(to_string(spec.kind), " at ", to_string(tile), " +",
                 spec.stall_seconds, "s"));
    }
  }
  return delay;
}

double FaultInjector::on_stream(const TileCoord& tile, bool* drop) {
  return on_channel_op(OpClass::kStream, FaultKind::kStreamDrop,
                       FaultKind::kStreamStall, tile, drop);
}

double FaultInjector::on_dma(const TileCoord& src, bool* drop) {
  return on_channel_op(OpClass::kDma, FaultKind::kDmaDrop,
                       FaultKind::kDmaStall, src, drop);
}

bool FaultInjector::corrupt_payload(const TileCoord& tile,
                                    std::vector<float>& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::pair<int, TileCoord> key{3, tile};
  const std::uint64_t op = counters_[key]++;
  auto it = armed_.find(key);
  if (it == armed_.end() || data.empty()) return false;
  bool flipped = false;
  for (auto& armed : it->second) {
    const FaultSpec& spec = plan_.faults[armed.plan_index];
    if (spec.kind != FaultKind::kMemoryBitFlip || armed.fired ||
        op != spec.after_op) {
      continue;
    }
    armed.fired = true;
    // The flipped bit is a pure function of (plan seed, spec index): the
    // same plan corrupts the same bit in every replay.
    const std::uint64_t r =
        splitmix64(plan_.seed ^ (0x51ed2701u + armed.plan_index));
    const std::size_t word = static_cast<std::size_t>(r % data.size());
    const int bit = static_cast<int>((r >> 32) % 32);
    std::uint32_t bits;
    std::memcpy(&bits, &data[word], sizeof(bits));
    bits ^= 1u << bit;
    std::memcpy(&data[word], &bits, sizeof(bits));
    flipped = true;
    record(armed.plan_index, tile, op,
           cat("bit ", bit, " of word ", word, " flipped at ",
               to_string(tile)));
  }
  return flipped;
}

bool FaultInjector::corrupt_result(int slot, std::span<float> u,
                                   std::vector<float>& sigma) {
  std::lock_guard<std::mutex> lock(mutex_);
  const TileCoord target{0, slot};
  const std::pair<int, TileCoord> key{4, target};
  const std::uint64_t op = counters_[key]++;
  auto it = armed_.find(key);
  if (it == armed_.end() || u.empty() || sigma.empty()) return false;
  bool corrupted = false;
  for (auto& armed : it->second) {
    const FaultSpec& spec = plan_.faults[armed.plan_index];
    if (spec.kind != FaultKind::kSilentError || armed.fired ||
        op != spec.after_op) {
      continue;
    }
    armed.fired = true;
    const std::uint64_t r =
        splitmix64(plan_.seed ^ (0x7a11c0deull + armed.plan_index));
    std::string detail;
    if ((r >> 48) % 4 == 3) {
      // Flip the exponent's low bit of sigma[0]: the leading singular
      // value silently doubles or halves while staying finite.
      std::uint32_t bits;
      std::memcpy(&bits, &sigma[0], sizeof(bits));
      bits ^= 1u << 23;
      std::memcpy(&sigma[0], &bits, sizeof(bits));
      detail = cat("silent-error scaled sigma[0] on slot ", slot);
    } else {
      // Same flip on a dominant U entry: scan cyclically from a
      // seed-chosen start for an entry near the peak magnitude, so the
      // damage is guaranteed to dwarf the verification bounds.
      float peak = 0.0f;
      for (float x : u) peak = std::max(peak, std::fabs(x));
      std::size_t idx = static_cast<std::size_t>(r % u.size());
      for (std::size_t scanned = 0; scanned < u.size(); ++scanned) {
        if (u[idx] != 0.0f && std::fabs(u[idx]) >= 0.5f * peak) break;
        idx = idx + 1 == u.size() ? 0 : idx + 1;
      }
      std::uint32_t bits;
      std::memcpy(&bits, &u[idx], sizeof(bits));
      bits ^= 1u << 23;
      std::memcpy(&u[idx], &bits, sizeof(bits));
      detail = cat("silent-error scaled U word ", idx, " on slot ", slot);
    }
    record(armed.plan_index, target, op, std::move(detail));
    corrupted = true;
  }
  return corrupted;
}

double FaultInjector::plio_scale(int slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double scale = 1.0;
  for (const auto& spec : plan_.faults) {
    if (spec.kind == FaultKind::kPlioDegrade && spec.slot == slot) {
      scale *= spec.bandwidth_scale;
    }
  }
  return scale;
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t FaultInjector::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  events_.clear();
  event_plan_index_.clear();
  for (auto& [key, specs] : armed_) {
    for (auto& armed : specs) armed.fired = false;
  }
}

}  // namespace hsvd::versal
