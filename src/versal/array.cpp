#include "versal/array.hpp"

#include <limits>

#include "common/format.hpp"

namespace hsvd::versal {

AieArraySim::AieArraySim(const ArrayGeometry& geometry,
                         const DeviceResources& device)
    : geometry_(geometry), device_(device) {
  memories_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  cores_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  stream_ports_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  dma_engines_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  for (int i = 0; i < geometry_.tile_count(); ++i) {
    memories_.emplace_back(device_.tile_memory_bytes());
    cores_.emplace_back(cat("core", i));
    stream_ports_.emplace_back(cat("stream", i));
    dma_engines_.emplace_back(cat("dma", i));
  }
}

TileMemory& AieArraySim::memory(const TileCoord& t) {
  return memories_[static_cast<std::size_t>(geometry_.index_of(t))];
}

Timeline& AieArraySim::core(const TileCoord& t) {
  return cores_[static_cast<std::size_t>(geometry_.index_of(t))];
}

void AieArraySim::neighbour_move(const TileCoord& src, const TileCoord& dst,
                                 const std::string& key) {
  HSVD_REQUIRE(geometry_.neighbour_transfer_possible(src, dst),
               cat("tiles ", to_string(src), " -> ", to_string(dst),
                   " are not neighbour-accessible"));
  stats_.neighbour_transfers.fetch_add(1, std::memory_order_relaxed);
  if (src == dst) return;
  TileMemory& sm = memory(src);
  if (!sm.contains(key)) return;  // timing-only execution: no payload
  std::vector<float> data = sm.load(key);
  sm.erase(key);
  memory(dst).store(key, std::move(data));
}

double AieArraySim::dma_move(const TileCoord& src, const TileCoord& dst,
                             const std::string& key, double ready,
                             std::uint64_t bytes_hint) {
  stats_.dma_transfers.fetch_add(1, std::memory_order_relaxed);
  bool drop = false;
  double stall = 0.0;
  if (faults_ != nullptr) stall = faults_->on_dma(src, &drop);
  TileMemory& sm = memory(src);
  std::uint64_t bytes = bytes_hint;
  if (sm.contains(key)) {
    const std::vector<float>& data = sm.load(key);
    bytes = data.size() * sizeof(float);
    // The shadow copy lives in the destination while the source keeps its
    // original until the consumer releases it: the 2x memory cost of DMA.
    // A dropped DMA consumes the engine's time but never lands the
    // shadow; a staged shadow can take an injected SEU.
    if (!drop) {
      std::vector<float> shadow = data;
      if (faults_ != nullptr) faults_->corrupt_payload(dst, shadow);
      memory(dst).store(key + "#dma", std::move(shadow));
    }
  }
  stats_.dma_bytes.fetch_add(bytes, std::memory_order_relaxed);
  Timeline& engine =
      dma_engines_[static_cast<std::size_t>(geometry_.index_of(src))];
  const double duration =
      stall + dma_setup_seconds() + static_cast<double>(bytes) / dma_rate();
  const double done = engine.schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kDma, cat("dma", to_string(src)),
                   cat(key, " -> ", to_string(dst)), done - duration, duration);
  }
  return done;
}

double AieArraySim::stream_packet(const TileCoord& dst, const Packet& packet,
                                  double ready, bool store_payload,
                                  std::uint64_t payload_bytes_hint) {
  stats_.stream_packets.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t wire_bytes =
      packet.payload.empty() ? 16 + payload_bytes_hint : packet.bytes();
  stats_.stream_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  bool drop = false;
  double stall = 0.0;
  if (faults_ != nullptr) stall = faults_->on_stream(dst, &drop);
  if (store_payload && !packet.payload.empty() && !drop) {
    std::vector<float> data = packet.payload;
    if (faults_ != nullptr) faults_->corrupt_payload(dst, data);
    memory(dst).store(cat("c", packet.header.column, ".t", packet.header.task),
                      std::move(data));
  }
  // Stream ports move 32 bits per AIE cycle.
  const double rate = 4.0 * device_.aie_clock_hz;
  Timeline& port = stream_ports_[static_cast<std::size_t>(geometry_.index_of(dst))];
  const double duration = stall + static_cast<double>(wire_bytes) / rate;
  const double done = port.schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kStream, cat("stream", to_string(dst)),
                   cat("pkt c", packet.header.column, " t", packet.header.task),
                   done - duration, duration);
  }
  return done;
}

double AieArraySim::run_kernel(const TileCoord& tile, double ready,
                               double duration) {
  stats_.kernel_invocations.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr && faults_->hang_core(tile)) {
    // The core never completes: report an unreachable completion time and
    // leave the timeline untouched so healthy tiles stay unperturbed.
    return std::numeric_limits<double>::infinity();
  }
  const double done = core(tile).schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kKernel, cat("core", to_string(tile)), "kernel",
                   done - duration, duration);
  }
  return done;
}

const ArrayStats& AieArraySim::stats() const {
  stats_snapshot_.neighbour_transfers =
      stats_.neighbour_transfers.load(std::memory_order_relaxed);
  stats_snapshot_.dma_transfers =
      stats_.dma_transfers.load(std::memory_order_relaxed);
  stats_snapshot_.dma_bytes = stats_.dma_bytes.load(std::memory_order_relaxed);
  stats_snapshot_.stream_packets =
      stats_.stream_packets.load(std::memory_order_relaxed);
  stats_snapshot_.stream_bytes =
      stats_.stream_bytes.load(std::memory_order_relaxed);
  stats_snapshot_.kernel_invocations =
      stats_.kernel_invocations.load(std::memory_order_relaxed);
  return stats_snapshot_;
}

void AieArraySim::reset_time() {
  for (auto& c : cores_) c.reset();
  for (auto& p : stream_ports_) p.reset();
  for (auto& d : dma_engines_) d.reset();
}

std::uint64_t AieArraySim::peak_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : memories_) total += m.peak_bytes();
  return total;
}

double AieArraySim::core_utilization(double makespan) const {
  if (makespan <= 0) return 0.0;
  double busy = 0.0;
  int active = 0;
  for (const auto& c : cores_) {
    if (c.busy_seconds() > 0) {
      busy += c.busy_seconds();
      ++active;
    }
  }
  if (active == 0) return 0.0;
  return busy / (static_cast<double>(active) * makespan);
}

}  // namespace hsvd::versal
