#include "versal/array.hpp"

#include <algorithm>
#include <limits>

#include "common/format.hpp"

namespace hsvd::versal {

AieArraySim::AieArraySim(const ArrayGeometry& geometry,
                         const DeviceResources& device)
    : geometry_(geometry), device_(device) {
  memories_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  cores_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  stream_ports_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  dma_engines_.reserve(static_cast<std::size_t>(geometry_.tile_count()));
  for (int i = 0; i < geometry_.tile_count(); ++i) {
    memories_.emplace_back(device_.tile_memory_bytes());
    cores_.emplace_back(cat("core", i));
    stream_ports_.emplace_back(cat("stream", i));
    dma_engines_.emplace_back(cat("dma", i));
  }
  tile_counters_ = std::make_unique<TileCounters[]>(
      static_cast<std::size_t>(geometry_.tile_count()));
}

void AieArraySim::attach_observer(obs::ObsContext* observer) {
  obs_ = observer;
  if (obs_ == nullptr) return;
  // Cycle histograms share the default exponential bounds; registering is
  // idempotent so repeated attachment is safe.
  const auto bounds = obs::MetricsRegistry::default_bounds();
  obs_->metrics().register_histogram("sim.kernel.cycles", bounds);
  obs_->metrics().register_histogram("sim.dma.cycles", bounds);
  obs_->metrics().register_histogram("sim.stream.cycles", bounds);
}

TileMemory& AieArraySim::memory(const TileCoord& t) {
  return memories_[static_cast<std::size_t>(geometry_.index_of(t))];
}

Timeline& AieArraySim::core(const TileCoord& t) {
  return cores_[static_cast<std::size_t>(geometry_.index_of(t))];
}

void AieArraySim::neighbour_move(const TileCoord& src, const TileCoord& dst,
                                 const std::string& key,
                                 std::uint64_t bytes_hint) {
  HSVD_REQUIRE(geometry_.neighbour_transfer_possible(src, dst),
               cat("tiles ", to_string(src), " -> ", to_string(dst),
                   " are not neighbour-accessible"));
  stats_.neighbour_transfers.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t bytes = bytes_hint;
  if (obs_ != nullptr) obs_->metrics().add("sim.neighbour.transfers");
  if (src == dst) return;
  TileMemory& sm = memory(src);
  if (sm.contains(key)) {
    std::vector<float> data = sm.load(key);
    bytes = data.size() * sizeof(float);
    sm.erase(key);
    memory(dst).store(key, std::move(data));
  }
  // The consuming tile reads the shared memory module: charge the link
  // bytes to the destination.
  counters(dst).neighbour_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

double AieArraySim::dma_move(const TileCoord& src, const TileCoord& dst,
                             const std::string& key, double ready,
                             std::uint64_t bytes_hint) {
  stats_.dma_transfers.fetch_add(1, std::memory_order_relaxed);
  bool drop = false;
  double stall = 0.0;
  if (faults_ != nullptr) stall = faults_->on_dma(src, &drop);
  if (stall > 0 || drop) {
    counters(src).stall_seconds.fetch_add(stall, std::memory_order_relaxed);
    if (obs_ != nullptr) {
      obs_->metrics().add(drop ? "sim.fault.inject.dma_drop"
                               : "sim.fault.inject.dma_stall");
      if (obs::Tracer* tr = obs_->tracer()) {
        tr->instant(obs::Domain::kSim, "faults",
                    cat(drop ? "inject:dma-drop " : "inject:dma-stall ",
                        to_string(src)),
                    "fault", ready);
      }
    }
  }
  TileMemory& sm = memory(src);
  std::uint64_t bytes = bytes_hint;
  if (sm.contains(key)) {
    const std::vector<float>& data = sm.load(key);
    bytes = data.size() * sizeof(float);
    // The shadow copy lives in the destination while the source keeps its
    // original until the consumer releases it: the 2x memory cost of DMA.
    // A dropped DMA consumes the engine's time but never lands the
    // shadow; a staged shadow can take an injected SEU.
    if (!drop) {
      std::vector<float> shadow = data;
      if (faults_ != nullptr) faults_->corrupt_payload(dst, shadow);
      memory(dst).store(key + "#dma", std::move(shadow));
    }
  }
  stats_.dma_bytes.fetch_add(bytes, std::memory_order_relaxed);
  counters(src).dma_bytes.fetch_add(bytes, std::memory_order_relaxed);
  Timeline& engine =
      dma_engines_[static_cast<std::size_t>(geometry_.index_of(src))];
  const double duration =
      stall + dma_setup_seconds() + static_cast<double>(bytes) / dma_rate();
  const double done = engine.schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kDma, cat("dma", to_string(src)),
                   cat(key, " -> ", to_string(dst)), done - duration, duration);
  }
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.dma.transfers");
    obs_->metrics().add("sim.dma.bytes", bytes);
    obs_->metrics().observe("sim.dma.cycles", duration * device_.aie_clock_hz);
    if (obs::Tracer* tr = obs_->tracer()) {
      tr->span(obs::Domain::kSim, cat("dma", to_string(src)),
               cat(key, " -> ", to_string(dst)), "dma", done - duration,
               duration);
    }
  }
  return done;
}

double AieArraySim::stream_packet(const TileCoord& dst, const Packet& packet,
                                  double ready, bool store_payload,
                                  std::uint64_t payload_bytes_hint) {
  stats_.stream_packets.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t wire_bytes =
      packet.payload.empty() ? 16 + payload_bytes_hint : packet.bytes();
  stats_.stream_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  counters(dst).stream_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  bool drop = false;
  double stall = 0.0;
  if (faults_ != nullptr) stall = faults_->on_stream(dst, &drop);
  if (stall > 0 || drop) {
    counters(dst).stall_seconds.fetch_add(stall, std::memory_order_relaxed);
    if (obs_ != nullptr) {
      obs_->metrics().add(drop ? "sim.fault.inject.stream_drop"
                               : "sim.fault.inject.stream_stall");
      if (obs::Tracer* tr = obs_->tracer()) {
        tr->instant(obs::Domain::kSim, "faults",
                    cat(drop ? "inject:stream-drop " : "inject:stream-stall ",
                        to_string(dst)),
                    "fault", ready);
      }
    }
  }
  if (store_payload && !packet.payload.empty() && !drop) {
    std::vector<float> data = packet.payload;
    if (faults_ != nullptr) faults_->corrupt_payload(dst, data);
    memory(dst).store(cat("c", packet.header.column, ".t", packet.header.task),
                      std::move(data));
  }
  // Stream ports move 32 bits per AIE cycle.
  const double rate = 4.0 * device_.aie_clock_hz;
  Timeline& port = stream_ports_[static_cast<std::size_t>(geometry_.index_of(dst))];
  const double duration = stall + static_cast<double>(wire_bytes) / rate;
  const double done = port.schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kStream, cat("stream", to_string(dst)),
                   cat("pkt c", packet.header.column, " t", packet.header.task),
                   done - duration, duration);
  }
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.stream.packets");
    obs_->metrics().add("sim.stream.bytes", wire_bytes);
    obs_->metrics().observe("sim.stream.cycles",
                            duration * device_.aie_clock_hz);
    if (obs::Tracer* tr = obs_->tracer()) {
      tr->span(obs::Domain::kSim, cat("stream", to_string(dst)),
               cat("pkt c", packet.header.column, " t", packet.header.task),
               "stream", done - duration, duration);
    }
  }
  return done;
}

double AieArraySim::run_kernel(const TileCoord& tile, double ready,
                               double duration) {
  stats_.kernel_invocations.fetch_add(1, std::memory_order_relaxed);
  counters(tile).kernel_invocations.fetch_add(1, std::memory_order_relaxed);
  if (faults_ != nullptr && faults_->hang_core(tile)) {
    // The core never completes: report an unreachable completion time and
    // leave the timeline untouched so healthy tiles stay unperturbed.
    if (obs_ != nullptr) {
      obs_->metrics().add("sim.fault.inject.tile_hang");
      if (obs::Tracer* tr = obs_->tracer()) {
        tr->instant(obs::Domain::kSim, "faults",
                    cat("inject:hang ", to_string(tile)), "fault", ready);
      }
    }
    return std::numeric_limits<double>::infinity();
  }
  const double done = core(tile).schedule(ready, duration);
  if (trace_ != nullptr) {
    trace_->record(TraceKind::kKernel, cat("core", to_string(tile)), "kernel",
                   done - duration, duration);
  }
  if (obs_ != nullptr) {
    obs_->metrics().add("sim.kernel.invocations");
    obs_->metrics().observe("sim.kernel.cycles",
                            duration * device_.aie_clock_hz);
    if (obs::Tracer* tr = obs_->tracer()) {
      tr->span(obs::Domain::kSim, cat("core", to_string(tile)), "kernel",
               "kernel", done - duration, duration);
    }
  }
  return done;
}

const ArrayStats& AieArraySim::stats() const {
  stats_snapshot_.neighbour_transfers =
      stats_.neighbour_transfers.load(std::memory_order_relaxed);
  stats_snapshot_.dma_transfers =
      stats_.dma_transfers.load(std::memory_order_relaxed);
  stats_snapshot_.dma_bytes = stats_.dma_bytes.load(std::memory_order_relaxed);
  stats_snapshot_.stream_packets =
      stats_.stream_packets.load(std::memory_order_relaxed);
  stats_snapshot_.stream_bytes =
      stats_.stream_bytes.load(std::memory_order_relaxed);
  stats_snapshot_.kernel_invocations =
      stats_.kernel_invocations.load(std::memory_order_relaxed);
  return stats_snapshot_;
}

void AieArraySim::reset_time() {
  for (auto& c : cores_) c.reset();
  for (auto& p : stream_ports_) p.reset();
  for (auto& d : dma_engines_) d.reset();
}

std::uint64_t AieArraySim::peak_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& m : memories_) total += m.peak_bytes();
  return total;
}

double AieArraySim::core_utilization(double makespan) const {
  if (makespan <= 0) return 0.0;
  double busy = 0.0;
  int active = 0;
  for (const auto& c : cores_) {
    if (c.busy_seconds() > 0) {
      busy += c.busy_seconds();
      ++active;
    }
  }
  if (active == 0) return 0.0;
  return busy / (static_cast<double>(active) * makespan);
}

UtilizationReport AieArraySim::utilization(double makespan) const {
  UtilizationReport report;
  report.rows = geometry_.rows();
  report.cols = geometry_.cols();
  report.makespan_seconds = makespan;
  report.aie_clock_hz = device_.aie_clock_hz;
  const double hz = device_.aie_clock_hz;
  const double makespan_cycles = makespan * hz;
  report.tiles.resize(static_cast<std::size_t>(geometry_.tile_count()));
  for (int row = 0; row < geometry_.rows(); ++row) {
    for (int col = 0; col < geometry_.cols(); ++col) {
      const TileCoord coord{row, col};
      const auto i = static_cast<std::size_t>(geometry_.index_of(coord));
      TileUtilization& t = report.tiles[i];
      const TileCounters& c = tile_counters_[i];
      t.tile = coord;
      t.busy_cycles = cores_[i].busy_seconds() * hz;
      t.stalled_cycles =
          c.stall_seconds.load(std::memory_order_relaxed) * hz;
      t.idle_cycles =
          std::max(0.0, makespan_cycles - t.busy_cycles - t.stalled_cycles);
      t.dma_busy_cycles = dma_engines_[i].busy_seconds() * hz;
      t.stream_busy_cycles = stream_ports_[i].busy_seconds() * hz;
      t.kernel_invocations =
          c.kernel_invocations.load(std::memory_order_relaxed);
      t.neighbour_bytes = c.neighbour_bytes.load(std::memory_order_relaxed);
      t.dma_bytes = c.dma_bytes.load(std::memory_order_relaxed);
      t.stream_bytes = c.stream_bytes.load(std::memory_order_relaxed);
    }
  }
  return report;
}

}  // namespace hsvd::versal
