// Network-on-chip and DDR memory controller model (paper section II-B:
// PS, PL, and AIEs are connected by a high-bandwidth NoC).
//
// The VC1902 NoC exposes multiple DDR memory controller (DDRMC) ports;
// PL masters reach DRAM through them. We model each port as a
// bandwidth-limited channel plus a fixed NoC traversal latency, with
// round-robin port assignment for the accelerator's task slots -- so
// parallel tasks only contend for DDR when they share a port, matching
// the hardware's behaviour instead of a single global DDR bottleneck.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "versal/resources.hpp"
#include "versal/timeline.hpp"

namespace hsvd::versal {

class NocModel {
 public:
  // `ports`: number of DDRMC ports (VCK190 exposes 2 controllers with 2
  // ports each -> 4). `port_bytes_per_s`: sustained bandwidth per port.
  NocModel(int ports, double port_bytes_per_s, double traversal_latency_s);

  // Default VCK190 NoC: 4 DDRMC ports at 12 GB/s, 150 ns traversal.
  static NocModel vck190();

  int ports() const { return static_cast<int>(channels_.size()); }

  // The port a task slot is wired to (round-robin).
  int port_for_slot(int slot) const {
    HSVD_REQUIRE(slot >= 0, "slot must be nonnegative");
    return slot % ports();
  }

  // Schedules a DDR transfer of `bytes` on the given port; returns the
  // completion time (ready + queueing + traversal + transfer).
  double transfer(int port, double ready, double bytes);

  // Convenience: transfer on the slot's assigned port.
  double transfer_for_slot(int slot, double ready, double bytes) {
    return transfer(port_for_slot(slot), ready, bytes);
  }

  double port_bandwidth() const { return bandwidth_; }
  double traversal_latency() const { return latency_; }

  void reset_time();

 private:
  double bandwidth_;
  double latency_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace hsvd::versal
