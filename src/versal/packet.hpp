// Packet-switched stream communication (paper Fig. 1(b)).
//
// The PL sender packs each column into a packet whose header carries a
// destination id; AIE switches forward the packet to the tile registered
// for that id (dynamic forwarding). A ForwardingTable is the rule set the
// sender module programs (section III-C: odd/even columns of a block pair
// routed over four PLIOs to their orth-AIEs).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/assert.hpp"
#include "versal/geometry.hpp"

namespace hsvd::versal {

struct PacketHeader {
  std::uint32_t dest_id = 0;   // forwarding key
  std::uint32_t column = 0;    // column index of the payload
  std::uint32_t task = 0;      // batch task the column belongs to
};

struct Packet {
  PacketHeader header;
  std::vector<float> payload;
  std::uint64_t bytes() const {
    // 128-bit header beat + payload words.
    return 16 + payload.size() * sizeof(float);
  }
};

class ForwardingTable {
 public:
  // Registers a destination tile for a forwarding key. A key can only be
  // bound once (the hardware analogue is a fixed packet-switch route).
  void bind(std::uint32_t dest_id, TileCoord tile);

  bool has(std::uint32_t dest_id) const { return routes_.count(dest_id) > 0; }

  TileCoord route(std::uint32_t dest_id) const;

  std::size_t size() const { return routes_.size(); }

 private:
  std::map<std::uint32_t, TileCoord> routes_;
};

}  // namespace hsvd::versal
