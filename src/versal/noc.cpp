#include "versal/noc.hpp"

#include "common/format.hpp"

namespace hsvd::versal {

NocModel::NocModel(int ports, double port_bytes_per_s,
                   double traversal_latency_s)
    : bandwidth_(port_bytes_per_s), latency_(traversal_latency_s) {
  HSVD_REQUIRE(ports >= 1, "NoC needs at least one DDR port");
  HSVD_REQUIRE(port_bytes_per_s > 0, "port bandwidth must be positive");
  channels_.reserve(static_cast<std::size_t>(ports));
  for (int p = 0; p < ports; ++p) {
    channels_.push_back(std::make_unique<Channel>(
        cat("ddrmc", p), port_bytes_per_s, traversal_latency_s));
  }
}

NocModel NocModel::vck190() { return NocModel(4, 12.0 * kGBps, 150e-9); }

double NocModel::transfer(int port, double ready, double bytes) {
  HSVD_REQUIRE(port >= 0 && port < ports(), "DDR port out of range");
  return channels_[static_cast<std::size_t>(port)]->transfer(ready, bytes);
}

void NocModel::reset_time() {
  for (auto& ch : channels_) ch->timeline().reset();
}

}  // namespace hsvd::versal
