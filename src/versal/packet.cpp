#include "versal/packet.hpp"

#include "common/format.hpp"

namespace hsvd::versal {

void ForwardingTable::bind(std::uint32_t dest_id, TileCoord tile) {
  auto [it, inserted] = routes_.insert({dest_id, tile});
  (void)it;
  HSVD_REQUIRE(inserted, cat("forwarding key ", dest_id, " already bound"));
}

TileCoord ForwardingTable::route(std::uint32_t dest_id) const {
  auto it = routes_.find(dest_id);
  HSVD_REQUIRE(it != routes_.end(), cat("no route for forwarding key ", dest_id));
  return it->second;
}

}  // namespace hsvd::versal
