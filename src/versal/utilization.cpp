#include "versal/utilization.hpp"

#include "common/assert.hpp"

namespace hsvd::versal {

const TileUtilization& UtilizationReport::at(int row, int col) const {
  HSVD_REQUIRE(row >= 0 && row < rows && col >= 0 && col < cols,
               "tile out of utilization report");
  return tiles[static_cast<std::size_t>(row * cols + col)];
}

double UtilizationReport::core_utilization() const {
  const double makespan = makespan_cycles();
  if (makespan <= 0) return 0.0;
  double busy = 0.0;
  int active = 0;
  for (const auto& t : tiles) {
    if (t.busy_cycles > 0) {
      busy += t.busy_cycles;
      ++active;
    }
  }
  if (active == 0) return 0.0;
  return busy / (static_cast<double>(active) * makespan);
}

std::uint64_t UtilizationReport::total_neighbour_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tiles) total += t.neighbour_bytes;
  return total;
}

std::uint64_t UtilizationReport::total_dma_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tiles) total += t.dma_bytes;
  return total;
}

std::uint64_t UtilizationReport::total_stream_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : tiles) total += t.stream_bytes;
  return total;
}

}  // namespace hsvd::versal
