// Timeline tracing across the simulator's two clock domains.
//
// The codebase runs on two clocks at once: the *simulated* clock (the
// transaction-level seconds the Versal fabric model computes -- AIE
// kernels, DMA/PLIO/DDR transfers, injected faults) and the *host* clock
// (wall time spent by thread-pool workers, batch slot chains, DSE
// candidate scoring). A Tracer records spans and instant events from
// both, tagged with their domain, and exports Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing. The two domains land in two
// separate process groups (pid 1 = "simulated fabric", pid 2 = "host"),
// so the viewer never implies that simulated microseconds and host
// microseconds share an axis origin.
//
// Appends are mutex-serialized: host-domain spans genuinely arrive from
// concurrent pool workers. Simulated-domain recording additionally
// serializes the accelerator's batch engine (same rule as the legacy
// versal::TraceRecorder) so the simulated event order is reproducible.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace hsvd::obs {

enum class Domain { kSim, kHost };

const char* to_string(Domain domain);

struct TraceSpan {
  Domain domain = Domain::kSim;
  std::string track;     // lane name, e.g. "core(2,3)" or "worker-1"
  std::string name;      // what ran, e.g. "kernel" or "batch-chain[0]"
  std::string category;  // trace-event cat, e.g. "kernel", "dma", "pool"
  double start_s = 0.0;
  double duration_s = 0.0;
};

struct TraceInstant {
  Domain domain = Domain::kSim;
  std::string track;
  std::string name;
  std::string category;
  double at_s = 0.0;
};

class Tracer {
 public:
  Tracer();

  void span(Domain domain, std::string track, std::string name,
            std::string category, double start_s, double duration_s);
  void instant(Domain domain, std::string track, std::string name,
               std::string category, double at_s);

  // Host-domain timestamp: seconds since this tracer was constructed.
  double host_now() const;

  // Copies (events may keep arriving from other threads).
  std::vector<TraceSpan> spans() const;
  std::vector<TraceInstant> instants() const;
  std::size_t event_count() const;
  void clear();

  // Chrome trace-event JSON: {"traceEvents": [...]} with "M" metadata
  // (process_name per domain, thread_name per track), "X" complete spans
  // and "i" thread-scoped instants, microsecond timestamps.
  std::string to_chrome_json() const;
  bool write_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hsvd::obs
