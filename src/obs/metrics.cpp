#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "common/assert.hpp"

namespace hsvd::obs {

namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

std::string json_number(double v) {
  // Shortest round-trippable form that is still valid JSON (no bare NaN).
  if (!(v == v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s = buf;
  if (s == "inf") return "1e308";
  if (s == "-inf") return "-1e308";
  return s;
}

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
}

}  // namespace

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double hi = bounds[b];
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    if (counts[b] == 0) return hi;
    const double into =
        rank - static_cast<double>(cumulative - counts[b]);
    return lo + (hi - lo) * into / static_cast<double>(counts[b]);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " " << json_number(value) << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    os << name << "{count} " << hist.total << "\n";
    os << name << "{sum} " << json_number(hist.sum) << "\n";
    os << name << "{p50} " << json_number(hist.quantile(0.5)) << "\n";
    os << name << "{p99} " << json_number(hist.quantile(0.99)) << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    append_json_escaped(os, name);
    os << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    append_json_escaped(os, name);
    os << "\":" << json_number(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    append_json_escaped(os, name);
    os << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      if (b > 0) os << ",";
      os << json_number(hist.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      if (b > 0) os << ",";
      os << hist.counts[b];
    }
    os << "],\"total\":" << hist.total << ",\"sum\":" << json_number(hist.sum)
       << ",\"p50\":" << json_number(hist.quantile(0.5))
       << ",\"p99\":" << json_number(hist.quantile(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

bool MetricsSnapshot::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------------

struct MetricsRegistry::HistogramCell {
  std::shared_ptr<const std::vector<double>> bounds;
  std::vector<std::uint64_t> counts;  // bounds->size() + 1
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct MetricsRegistry::Shard {
  // The shard's mutex is uncontended in steady state (one writer thread);
  // snapshot() and reset() take it briefly while merging/clearing.
  std::mutex mutex;
  std::unordered_map<std::string, std::uint64_t> counters;
  std::unordered_map<std::string, HistogramCell> histograms;
};

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  // Registry ids are never reused, so a cached pointer can only be used
  // while its registry is alive (lookups happen through that registry).
  thread_local std::unordered_map<std::uint64_t, Shard*> t_cache;
  const auto it = t_cache.find(id_);
  if (it != t_cache.end()) return *it->second;
  std::lock_guard<std::mutex> lock(shards_mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_cache.emplace(id_, shard);
  return *shard;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(gauges_mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::register_histogram(const std::string& name,
                                         std::vector<double> bounds) {
  HSVD_REQUIRE(!bounds.empty(), "histogram needs at least one bucket edge");
  HSVD_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
               "histogram bucket edges must be ascending");
  std::lock_guard<std::mutex> lock(config_mutex_);
  histogram_bounds_.emplace(
      name, std::make_shared<const std::vector<double>>(std::move(bounds)));
}

std::shared_ptr<const std::vector<double>> MetricsRegistry::bounds_for(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(config_mutex_);
  const auto it = histogram_bounds_.find(name);
  if (it != histogram_bounds_.end()) return it->second;
  static const auto defaults =
      std::make_shared<const std::vector<double>>(default_bounds());
  return defaults;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  HistogramCell& cell = shard.histograms[name];
  if (cell.bounds == nullptr) {
    cell.bounds = bounds_for(name);
    cell.counts.assign(cell.bounds->size() + 1, 0);
  }
  const auto& bounds = *cell.bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds.begin());
  ++cell.counts[bucket];
  ++cell.total;
  cell.sum += value;
}

std::vector<double> MetricsRegistry::exponential_bounds(double first,
                                                        double factor,
                                                        int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& MetricsRegistry::default_bounds() {
  static const std::vector<double> bounds = exponential_bounds(1.0, 4.0, 24);
  return bounds;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [name, value] : shard->counters) {
      snap.counters[name] += value;
    }
    for (const auto& [name, cell] : shard->histograms) {
      HistogramSnapshot& hist = snap.histograms[name];
      if (hist.bounds.empty()) {
        hist.bounds = *cell.bounds;
        hist.counts.assign(cell.counts.size(), 0);
      }
      for (std::size_t b = 0; b < cell.counts.size() && b < hist.counts.size();
           ++b) {
        hist.counts[b] += cell.counts[b];
      }
      hist.total += cell.total;
      hist.sum += cell.sum;
    }
  }
  {
    std::lock_guard<std::mutex> lock(gauges_mutex_);
    snap.gauges = gauges_;
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->counters.clear();
    shard->histograms.clear();
  }
  std::lock_guard<std::mutex> lock(gauges_mutex_);
  gauges_.clear();
}

}  // namespace hsvd::obs
