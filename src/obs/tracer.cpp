#include "obs/tracer.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace hsvd::obs {

const char* to_string(Domain domain) {
  switch (domain) {
    case Domain::kSim: return "simulated fabric";
    case Domain::kHost: return "host";
  }
  return "unknown";
}

namespace {

int pid_of(Domain domain) { return domain == Domain::kSim ? 1 : 2; }

void append_escaped(std::ostringstream& os, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::span(Domain domain, std::string track, std::string name,
                  std::string category, double start_s, double duration_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back({domain, std::move(track), std::move(name),
                    std::move(category), start_s, duration_s});
}

void Tracer::instant(Domain domain, std::string track, std::string name,
                     std::string category, double at_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  instants_.push_back(
      {domain, std::move(track), std::move(name), std::move(category), at_s});
}

double Tracer::host_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::vector<TraceSpan> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<TraceInstant> Tracer::instants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return instants_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size() + instants_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  instants_.clear();
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Stable tid per (domain, track), in first-seen order across both
  // event kinds, so lanes are deterministic for a deterministic run.
  std::map<std::pair<int, std::string>, int> tids;
  const auto tid_of = [&tids](Domain domain, const std::string& track) {
    return tids.emplace(std::make_pair(pid_of(domain), track),
                        static_cast<int>(tids.size()))
        .first->second;
  };
  for (const auto& e : spans_) tid_of(e.domain, e.track);
  for (const auto& e : instants_) tid_of(e.domain, e.track);

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&os, &first] {
    if (!first) os << ",";
    first = false;
  };
  for (const Domain domain : {Domain::kSim, Domain::kHost}) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << pid_of(domain)
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    append_escaped(os, to_string(domain));
    os << "\"}}";
  }
  for (const auto& [key, tid] : tids) {
    comma();
    os << "{\"ph\":\"M\",\"pid\":" << key.first << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(os, key.second);
    os << "\"}}";
  }
  for (const auto& e : spans_) {
    comma();
    os << "{\"ph\":\"X\",\"pid\":" << pid_of(e.domain)
       << ",\"tid\":" << tid_of(e.domain, e.track) << ",\"ts\":" << e.start_s * 1e6
       << ",\"dur\":" << e.duration_s * 1e6 << ",\"cat\":\"";
    append_escaped(os, e.category);
    os << "\",\"name\":\"";
    append_escaped(os, e.name);
    os << "\"}";
  }
  for (const auto& e : instants_) {
    comma();
    os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid_of(e.domain)
       << ",\"tid\":" << tid_of(e.domain, e.track) << ",\"ts\":" << e.at_s * 1e6
       << ",\"cat\":\"";
    append_escaped(os, e.category);
    os << "\",\"name\":\"";
    append_escaped(os, e.name);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_chrome_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace hsvd::obs
