#include "obs/obs.hpp"

#include <chrono>

#include "common/format.hpp"

namespace hsvd::obs {

class ObsContext::PoolObserver : public common::ParallelForObserver {
 public:
  explicit PoolObserver(ObsContext& owner) : owner_(owner) {}

  void on_index(const char* label, std::size_t index, int worker,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end) override {
    owner_.metrics_.add(cat("host.pool.", label));
    Tracer* tracer = owner_.tracer_.get();
    if (tracer == nullptr) return;
    // Convert the raw steady_clock points into the tracer's host epoch so
    // pool spans line up with every other host-domain event.
    const double now = tracer->host_now();
    const double end_s =
        now - std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            end)
                  .count();
    const double start_s =
        end_s - std::chrono::duration<double>(end - start).count();
    const std::string track =
        worker < 0 ? "caller" : cat("worker-", worker);
    tracer->span(Domain::kHost, track, cat(label, "[", index, "]"), "pool",
                 start_s, end_s - start_s);
  }

 private:
  ObsContext& owner_;
};

ObsContext::ObsContext() : pool_(std::make_unique<PoolObserver>(*this)) {}

ObsContext::~ObsContext() {
  // Never leave a dangling pool observer behind if a caller forgot the
  // scoped detach.
  if (common::ThreadPool::observer() == pool_.get()) {
    common::ThreadPool::set_observer(nullptr);
  }
}

void ObsContext::enable_tracing() {
  if (tracer_ == nullptr) tracer_ = std::make_unique<Tracer>();
}

common::ParallelForObserver* ObsContext::pool_observer() {
  return pool_.get();
}

ScopedPoolObservation::ScopedPoolObservation(ObsContext* context) {
  if (context == nullptr) return;
  previous_ = common::ThreadPool::observer();
  common::ThreadPool::set_observer(context->pool_observer());
  attached_ = true;
}

ScopedPoolObservation::~ScopedPoolObservation() {
  if (attached_) common::ThreadPool::set_observer(previous_);
}

}  // namespace hsvd::obs
