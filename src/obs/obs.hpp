// Observability context: the single handle instrumentation points see.
//
// An ObsContext bundles a MetricsRegistry (always on once attached;
// sharded, safe to record from concurrent pool workers) and an optional
// Tracer (off until enable_tracing(); recording spans serializes the
// accelerator's batch engine the same way the legacy TraceRecorder
// does). Everything in the library takes a raw `ObsContext*` and treats
// nullptr as "observability disabled": the disabled path is a single
// pointer check, results are bit-identical and the simulated timeline is
// untouched either way -- observation only ever *reads* the simulation's
// timestamps, it never schedules anything.
//
// Host-side loops report through the pool observer: attach it to
// common::ThreadPool (ScopedPoolObservation below) and every labelled
// parallel_for index becomes a host-domain span plus a task counter.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace hsvd::obs {

class ObsContext {
 public:
  ObsContext();
  ~ObsContext();
  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Creates the tracer (idempotent). Until this is called tracer()
  // returns nullptr and only metrics are collected.
  void enable_tracing();
  Tracer* tracer() { return tracer_.get(); }
  const Tracer* tracer() const { return tracer_.get(); }

  // Adapter feeding labelled parallel_for loops into this context:
  // counter "host.pool.<label>" always, host-domain span when tracing.
  common::ParallelForObserver* pool_observer();

 private:
  class PoolObserver;

  MetricsRegistry metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<PoolObserver> pool_;
};

// RAII attachment of an ObsContext's pool observer to the process-wide
// ThreadPool observer slot (restores the previous observer on exit).
// Pass nullptr for a no-op scope. The slot is last-writer-wins, so two
// concurrently observed top-level calls should use the same ObsContext.
class ScopedPoolObservation {
 public:
  explicit ScopedPoolObservation(ObsContext* context);
  ~ScopedPoolObservation();
  ScopedPoolObservation(const ScopedPoolObservation&) = delete;
  ScopedPoolObservation& operator=(const ScopedPoolObservation&) = delete;

 private:
  bool attached_ = false;
  common::ParallelForObserver* previous_ = nullptr;
};

}  // namespace hsvd::obs
