// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// The registry is the always-cheap half of the observability subsystem
// (src/obs/): instrumentation points record named values, a snapshot
// merges them into an immutable view exportable as text or JSON. Writes
// are sharded per thread -- each recording thread owns a private shard
// keyed by a process-unique registry id, so `common::ThreadPool` workers
// record without contending on a global lock; shards are only walked (and
// briefly locked one at a time) when a snapshot is taken. Counter and
// histogram merges are order-independent sums, so a snapshot of N
// threads' shards equals the sequential total exactly.
//
// Histograms use fixed upper-edge buckets (value lands in the first
// bucket whose edge is >= value, overflow past the last edge); quantiles
// are linearly interpolated inside the winning bucket, the standard
// Prometheus estimation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hsvd::obs {

// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;         // ascending upper edges
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
  std::uint64_t total = 0;
  double sum = 0.0;

  double mean() const { return total > 0 ? sum / static_cast<double>(total) : 0.0; }
  // Interpolated quantile, q in [0, 1]. Values in the overflow bucket
  // clamp to the last edge (there is no upper bound to interpolate to).
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Prometheus-flavoured plain text, one metric per line.
  std::string to_text() const;
  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {bounds, counts, total, sum, p50, p99}}}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Counter: monotonically increasing sum.
  void add(const std::string& name, std::uint64_t delta = 1);
  // Gauge: last written value wins (write-time ordered).
  void set_gauge(const std::string& name, double value);
  // Fixes a histogram's bucket edges before (or after) the first observe.
  // Idempotent: a name that already has edges keeps them, so concurrent
  // registration from instrumentation points is safe.
  void register_histogram(const std::string& name, std::vector<double> bounds);
  // Records one sample. Unregistered names get default_bounds().
  void observe(const std::string& name, double value);

  // `count` edges: first, first*factor, first*factor^2, ...
  static std::vector<double> exponential_bounds(double first, double factor,
                                                int count);
  // The fallback edges for unregistered histograms: 24 powers of 4
  // starting at 1.0 (covers counts/cycles from 1 to ~7e13).
  static const std::vector<double>& default_bounds();

  // Merges every shard into one consistent view.
  MetricsSnapshot snapshot() const;
  // Zeroes all counters/gauges/histogram contents (registrations kept).
  void reset();

 private:
  struct Shard;
  struct HistogramCell;
  Shard& local_shard() const;
  std::shared_ptr<const std::vector<double>> bounds_for(
      const std::string& name) const;

  const std::uint64_t id_;  // process-unique, never reused
  mutable std::mutex shards_mutex_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex config_mutex_;
  // Registered bucket edges; shards cache the shared_ptr per name.
  mutable std::map<std::string, std::shared_ptr<const std::vector<double>>>
      histogram_bounds_;
  mutable std::mutex gauges_mutex_;
  std::map<std::string, double> gauges_;
};

}  // namespace hsvd::obs
