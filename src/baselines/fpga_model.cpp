#include "baselines/fpga_model.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hsvd::baselines {

namespace {

// Table II anchors: (n, seconds for six iterations).
constexpr int kAnchorN[] = {128, 256, 512, 1024};
constexpr double kAnchorSeconds[] = {0.0014, 0.0113, 0.0829, 0.6119};

}  // namespace

double FpgaBcvModel::latency_seconds(std::size_t n, int iterations) const {
  HSVD_REQUIRE(n >= 2, "matrix too small");
  HSVD_REQUIRE(iterations >= 1, "iterations must be positive");
  const double x = std::log2(static_cast<double>(n));
  double log_latency;
  if (n <= 128) {
    // Extrapolate below the smallest anchor with the first segment slope.
    const double slope = (std::log2(kAnchorSeconds[1]) - std::log2(kAnchorSeconds[0]));
    log_latency = std::log2(kAnchorSeconds[0]) + slope * (x - 7.0);
  } else if (n >= 1024) {
    const double slope = (std::log2(kAnchorSeconds[3]) - std::log2(kAnchorSeconds[2]));
    log_latency = std::log2(kAnchorSeconds[3]) + slope * (x - 10.0);
  } else {
    int seg = 0;
    while (seg < 2 && static_cast<double>(n) > kAnchorN[seg + 1]) ++seg;
    const double x0 = std::log2(static_cast<double>(kAnchorN[seg]));
    const double x1 = std::log2(static_cast<double>(kAnchorN[seg + 1]));
    const double y0 = std::log2(kAnchorSeconds[seg]);
    const double y1 = std::log2(kAnchorSeconds[seg + 1]);
    log_latency = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
  }
  return std::exp2(log_latency) * (static_cast<double>(iterations) / 6.0);
}

}  // namespace hsvd::baselines
