#include "baselines/fpga_model.hpp"

#include "common/assert.hpp"

namespace hsvd::baselines {

namespace {

// Table II anchors: (n, seconds for six iterations).
constexpr double kAnchorN[] = {128, 256, 512, 1024};
constexpr double kAnchorSeconds[] = {0.0014, 0.0113, 0.0829, 0.6119};

}  // namespace

InterpValue FpgaBcvModel::latency_modeled(std::size_t n, int iterations) const {
  HSVD_REQUIRE(n >= 2, "matrix too small");
  HSVD_REQUIRE(iterations >= 1, "iterations must be positive");
  InterpValue modeled =
      loglog_interp_guarded(kAnchorN, kAnchorSeconds, static_cast<double>(n));
  // The published protocol fixes six iterations; the per-sweep cost of
  // BCV is iteration-count linear.
  modeled.value *= static_cast<double>(iterations) / 6.0;
  return modeled;
}

}  // namespace hsvd::baselines
