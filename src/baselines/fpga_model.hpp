// Latency/resource model of the FPGA baseline [6]: the ultra-parallel
// BCV Jacobi solver on a Xilinx XC7V690T at 200 MHz, configured (as in
// the paper's Table II protocol) at maximum task parallelism.
//
// We do not have the closed-source RTL; the model is anchored to the
// published Table II measurements (six iterations per matrix) and
// interpolated log-log between anchors -- the standard way to model a
// published comparator. Outside the anchor range the model clamps to the
// outermost anchor and flags the value as extrapolated (see
// baselines/interp.hpp); the router breaks near-ties against flagged
// (and, more generally, fitted-model) estimates. Resource usage is the
// fixed full-device configuration Table II reports.
#pragma once

#include <cstddef>

#include "baselines/interp.hpp"

namespace hsvd::baselines {

struct FpgaBcvModel {
  double frequency_hz = 200.0e6;

  // Latency of one matrix, `iterations` BCV sweeps (Table II uses 6),
  // with the outside-anchor-range trust flag.
  InterpValue latency_modeled(std::size_t n, int iterations = 6) const;

  // Value-only convenience (clamped outside the anchors).
  double latency_seconds(std::size_t n, int iterations = 6) const {
    return latency_modeled(n, iterations).value;
  }

  // Fixed resource configuration (Table II).
  struct Resources {
    double lut = 212000;        // 30.6% of XC7V690T
    double lut_pct = 0.306;
    double bram = 519.5;        // 31.4%
    double bram_pct = 0.314;
    int dsp = 1602;             // 44.5%
    double dsp_pct = 0.445;
  };
  Resources resources() const { return {}; }
};

}  // namespace hsvd::baselines
