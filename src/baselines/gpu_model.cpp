#include "baselines/gpu_model.hpp"

#include <algorithm>
#include <cmath>

namespace hsvd::baselines {

namespace {

// Table III anchors for the RTX 3090 W-cycle SVD.
constexpr double kN[] = {128, 256, 512, 1024};
constexpr double kLatency[] = {0.0166, 0.0429, 0.1237, 0.6857};
constexpr double kThroughput[] = {1351.35, 217.39, 27.55, 3.52};

}  // namespace

InterpValue GpuWcycleModel::latency_modeled(std::size_t n) const {
  return loglog_interp_guarded(kN, kLatency, static_cast<double>(n));
}

InterpValue GpuWcycleModel::throughput_modeled(std::size_t n) const {
  return loglog_interp_guarded(kN, kThroughput, static_cast<double>(n));
}

double GpuWcycleModel::core_utilization(std::size_t n) const {
  // SM occupancy of the batched kernels: small matrices leave most of
  // the 82 SMs idle; 1024x1024 batches fill the device (the rising curve
  // of Fig. 9). Jacobi SVD is memory-bound, so occupancy -- not flops
  // efficiency -- is the utilization the paper plots.
  const double ratio = static_cast<double>(n) / 128.0;
  return std::min(0.92, 0.10 * std::pow(ratio, 1.1));
}

double GpuWcycleModel::memory_utilization(std::size_t n) const {
  // Device-memory footprint of the in-flight batch relative to 24 GB;
  // the batch the scheduler keeps resident grows with matrix size until
  // memory saturates (qualitative curve of Fig. 9).
  const double ratio = static_cast<double>(n) / 128.0;
  return std::min(0.92, 0.08 * std::pow(ratio, 1.2));
}

}  // namespace hsvd::baselines
