// Model of the GPU baseline [11]: W-cycle multilevel batched Jacobi SVD
// on a GeForce RTX 3090 (270 W board power).
//
// Structure: a fixed kernel-launch/synchronization overhead plus cubic
// numerical work executed at an effective rate that grows with problem
// size (small matrices underutilize the 82-SM device -- the paper's
// Fig. 9 observation). The model's constants are fitted to the published
// Table III latency/throughput anchors; between anchors it interpolates
// the utilization curve smoothly, so sweeps over n behave sensibly.
// Outside the anchor range (n < 128 or n > 1024) the model clamps to the
// outermost anchor and the *_modeled variants flag the value as
// extrapolated -- see baselines/interp.hpp for why.
#pragma once

#include <cstddef>

#include "baselines/interp.hpp"

namespace hsvd::baselines {

struct GpuWcycleModel {
  double board_watts = 270.0;
  double peak_flops = 35.6e12;  // fp32 RTX 3090

  // Latency of one matrix processed alone (converged run, the Table III
  // protocol), with the outside-anchor-range trust flag.
  InterpValue latency_modeled(std::size_t n) const;

  // Sustained throughput (tasks/s) for large-batch processing.
  InterpValue throughput_modeled(std::size_t n) const;

  // Value-only conveniences (clamped outside the anchors).
  double latency_seconds(std::size_t n) const {
    return latency_modeled(n).value;
  }
  double throughput_tasks_per_s(std::size_t n) const {
    return throughput_modeled(n).value;
  }

  double energy_efficiency(std::size_t n) const {
    return throughput_tasks_per_s(n) / board_watts;
  }

  // Utilization of compute cores / device memory at large batch --
  // the quantities Fig. 9 plots.
  double core_utilization(std::size_t n) const;
  double memory_utilization(std::size_t n) const;
};

}  // namespace hsvd::baselines
