// BCV (odd-even transposition) Jacobi ordering -- the algorithm of the
// FPGA baseline [6] ("ultra-parallel BCV Jacobi").
//
// For n columns, a sweep has n rounds alternating the odd phase
// (pairs (0,1), (2,3), ...) and the even phase (pairs (1,2), (3,4), ...).
// Unlike the tournament orderings in src/jacobi, a single BCV sweep does
// NOT visit every pair; convergence instead relies on repeated sweeps
// (the transpositions diffuse columns across positions). We implement it
// functionally to compare convergence behaviour against the ring
// orderings.
#pragma once

#include <optional>
#include <vector>

#include "jacobi/hestenes.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::baselines {

// rounds[r] = disjoint position pairs of phase r (r even: odd phase).
std::vector<std::vector<std::pair<int, int>>> bcv_rounds(int columns);

struct BcvOptions {
  double precision = 1e-6;
  int max_sweeps = 60;
  std::optional<int> fixed_sweeps;
};

// One-sided Jacobi SVD with BCV ordering. Column *positions* are paired;
// after each rotation the two columns swap positions, which is what
// carries every column across the array over a sweep.
jacobi::HestenesResult bcv_svd(const linalg::MatrixF& a,
                               const BcvOptions& opts = {});

}  // namespace hsvd::baselines
