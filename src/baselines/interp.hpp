// Log-log anchor interpolation shared by the published-comparator models
// (FPGA [6], GPU [11]): exact at the published anchors, power-law
// interpolated between them, CLAMPED outside.
//
// Clamping (rather than slope extrapolation) is deliberate: the fitted
// slope of the outermost segment has no experimental support beyond the
// anchor range, and the router must not trust a fantasy number for, say,
// n = 64 when the smallest published measurement is n = 128. Callers
// that need to know they are outside the fitted range use the guarded
// variant, which surfaces a `modeled_extrapolated` flag alongside the
// clamped value.
#pragma once

#include <cmath>
#include <span>

#include "common/assert.hpp"

namespace hsvd::baselines {

// A model evaluation plus its trust label: `extrapolated` is true when
// the query fell outside the fitted anchor range and the value was
// clamped to the outermost anchor.
struct InterpValue {
  double value = 0.0;
  bool extrapolated = false;
};

inline InterpValue loglog_interp_guarded(std::span<const double> xs,
                                         std::span<const double> ys,
                                         double x) {
  HSVD_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "need at least two anchors");
  if (x <= xs[0]) return {ys[0], x < xs[0]};
  if (x >= xs[xs.size() - 1]) return {ys[ys.size() - 1], x > xs[xs.size() - 1]};
  std::size_t seg = 0;
  while (seg + 2 < xs.size() && x > xs[seg + 1]) ++seg;
  const double lx = std::log2(x);
  const double x0 = std::log2(xs[seg]);
  const double x1 = std::log2(xs[seg + 1]);
  const double y0 = std::log2(ys[seg]);
  const double y1 = std::log2(ys[seg + 1]);
  return {std::exp2(y0 + (y1 - y0) * (lx - x0) / (x1 - x0)), false};
}

// Value-only convenience for in-range queries (clamped outside, same as
// the guarded variant).
inline double loglog_interp(std::span<const double> xs,
                            std::span<const double> ys, double x) {
  return loglog_interp_guarded(xs, ys, x).value;
}

}  // namespace hsvd::baselines
