// Log-log anchor interpolation shared by the published-comparator models
// (FPGA [6], GPU [11]): exact at the published anchors, power-law
// interpolated between them, slope-extrapolated outside.
#pragma once

#include <cmath>
#include <span>

#include "common/assert.hpp"

namespace hsvd::baselines {

inline double loglog_interp(std::span<const double> xs,
                            std::span<const double> ys, double x) {
  HSVD_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "need at least two anchors");
  const double lx = std::log2(x);
  std::size_t seg = 0;
  if (x <= xs[0]) {
    seg = 0;
  } else if (x >= xs[xs.size() - 1]) {
    seg = xs.size() - 2;
  } else {
    while (seg + 2 < xs.size() && x > xs[seg + 1]) ++seg;
  }
  const double x0 = std::log2(xs[seg]);
  const double x1 = std::log2(xs[seg + 1]);
  const double y0 = std::log2(ys[seg]);
  const double y1 = std::log2(ys[seg + 1]);
  return std::exp2(y0 + (y1 - y0) * (lx - x0) / (x1 - x0));
}

}  // namespace hsvd::baselines
