#include "baselines/cpu_reference.hpp"

#include <chrono>

#include "common/format.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"

namespace hsvd::baselines {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CpuRunResult finish(std::string name, double start,
                    const jacobi::HestenesResult& r,
                    const linalg::MatrixF& a) {
  CpuRunResult out;
  out.algorithm = std::move(name);
  out.wall_seconds = now_seconds() - start;
  out.sweeps = r.sweeps;
  out.converged = r.converged;
  out.final_convergence_rate = r.final_convergence_rate;
  // Rebuild B = U * diag(sigma) and measure residual coherence.
  linalg::MatrixD b(a.rows(), a.cols());
  for (std::size_t j = 0; j < r.u.cols() && j < a.cols(); ++j) {
    auto src = r.u.col(j);
    auto dst = b.col(j);
    for (std::size_t i = 0; i < a.rows(); ++i)
      dst[i] = static_cast<double>(src[i]) * r.sigma[j];
  }
  out.max_offdiag_coherence = linalg::max_pair_coherence(b);
  return out;
}

}  // namespace

CpuRunResult run_hestenes(const linalg::MatrixF& a,
                          jacobi::OrderingKind ordering, double precision,
                          int max_sweeps) {
  jacobi::HestenesOptions opts;
  opts.ordering = ordering;
  opts.precision = precision;
  opts.max_sweeps = max_sweeps;
  const double start = now_seconds();
  auto r = jacobi::hestenes_svd(a, opts);
  return finish(cat("hestenes-", to_string(ordering)), start, r, a);
}

CpuRunResult run_block(const linalg::MatrixF& a, int block_cols,
                       double precision, int max_sweeps) {
  jacobi::BlockOptions opts;
  opts.block_cols = block_cols;
  opts.precision = precision;
  opts.max_sweeps = max_sweeps;
  const double start = now_seconds();
  auto r = jacobi::block_hestenes_svd(a, opts);
  return finish(cat("block-k", block_cols), start, r, a);
}

CpuRunResult run_bcv(const linalg::MatrixF& a, double precision,
                     int max_sweeps) {
  BcvOptions opts;
  opts.precision = precision;
  opts.max_sweeps = max_sweeps;
  const double start = now_seconds();
  auto r = bcv_svd(a, opts);
  return finish("bcv-odd-even", start, r, a);
}

}  // namespace hsvd::baselines
