#include "baselines/bcv.hpp"

#include <numeric>
#include <utility>

#include "jacobi/convergence.hpp"
#include "jacobi/normalization.hpp"
#include "jacobi/rotation.hpp"
#include "linalg/ops.hpp"

namespace hsvd::baselines {

std::vector<std::vector<std::pair<int, int>>> bcv_rounds(int columns) {
  HSVD_REQUIRE(columns >= 2, "need at least two columns");
  std::vector<std::vector<std::pair<int, int>>> rounds;
  rounds.reserve(static_cast<std::size_t>(columns));
  for (int r = 0; r < columns; ++r) {
    std::vector<std::pair<int, int>> row;
    for (int i = r % 2; i + 1 < columns; i += 2) row.push_back({i, i + 1});
    rounds.push_back(std::move(row));
  }
  return rounds;
}

jacobi::HestenesResult bcv_svd(const linalg::MatrixF& a, const BcvOptions& opts) {
  HSVD_REQUIRE(a.rows() >= a.cols(), "bcv_svd expects rows >= cols");
  HSVD_REQUIRE(a.cols() >= 2, "need at least two columns");
  const int n = static_cast<int>(a.cols());
  const auto rounds = bcv_rounds(n);

  linalg::MatrixF b = a;
  linalg::MatrixF v = linalg::MatrixF::identity(static_cast<std::size_t>(n));
  // Position permutation: pos[i] = column currently at array position i.
  std::vector<int> pos(static_cast<std::size_t>(n));
  std::iota(pos.begin(), pos.end(), 0);

  jacobi::ConvergenceTracker tracker(opts.precision);
  const int budget = opts.fixed_sweeps.value_or(opts.max_sweeps);
  HSVD_REQUIRE(budget >= 1, "sweep budget must be positive");

  int sweep = 0;
  for (; sweep < budget; ++sweep) {
    tracker.begin_sweep();
    for (const auto& round : rounds) {
      for (const auto& [pi, pj] : round) {
        const auto ci = static_cast<std::size_t>(pos[static_cast<std::size_t>(pi)]);
        const auto cj = static_cast<std::size_t>(pos[static_cast<std::size_t>(pj)]);
        auto bi = b.col(ci);
        auto bj = b.col(cj);
        const float aij = linalg::dot<float>(bi, bj);
        const float aii = linalg::dot<float>(bi, bi);
        const float ajj = linalg::dot<float>(bj, bj);
        tracker.observe(jacobi::pair_coherence(aii, ajj, aij));
        const auto rot = jacobi::compute_rotation(aii, ajj, aij);
        if (!rot.identity) {
          linalg::apply_rotation(bi, bj, rot.c, rot.s);
          linalg::apply_rotation(v.col(ci), v.col(cj), rot.c, rot.s);
        }
        // The transposition that carries every column across the array:
        // the two columns swap physical positions unconditionally.
        std::swap(pos[static_cast<std::size_t>(pi)],
                  pos[static_cast<std::size_t>(pj)]);
      }
    }
    if (!opts.fixed_sweeps.has_value() && tracker.converged()) {
      ++sweep;
      break;
    }
  }

  jacobi::HestenesResult out;
  out.sweeps = sweep;
  out.final_convergence_rate = tracker.sweep_rate();
  out.converged = tracker.converged();
  jacobi::normalize_in_place(b, v, true, out.u, out.sigma, out.v);
  return out;
}

}  // namespace hsvd::baselines
