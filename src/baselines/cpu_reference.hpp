// CPU reference executions with wall-clock timing.
//
// Runs the library's serial SVD implementations (plain Hestenes with any
// ordering, block Hestenes, BCV) on the host CPU and reports elapsed
// time and convergence statistics -- the software baseline an adopter
// would compare the accelerator against, and the measurement source for
// the convergence-study bench.
#pragma once

#include <string>

#include "baselines/bcv.hpp"
#include "jacobi/block.hpp"
#include "jacobi/hestenes.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::baselines {

struct CpuRunResult {
  std::string algorithm;
  double wall_seconds = 0.0;
  int sweeps = 0;
  bool converged = false;
  double final_convergence_rate = 0.0;
  // Factor quality against the input (double-precision checks).
  double max_offdiag_coherence = 0.0;  // eq. (6) measure of B at the end
};

// Serial one-sided Jacobi with the given ordering.
CpuRunResult run_hestenes(const linalg::MatrixF& a,
                          jacobi::OrderingKind ordering,
                          double precision = 1e-6, int max_sweeps = 30);

// Block Hestenes-Jacobi (Algorithm 1 host model).
CpuRunResult run_block(const linalg::MatrixF& a, int block_cols,
                       double precision = 1e-6, int max_sweeps = 30);

// BCV odd-even Jacobi (the FPGA baseline's algorithm).
CpuRunResult run_bcv(const linalg::MatrixF& a, double precision = 1e-6,
                     int max_sweeps = 60);

}  // namespace hsvd::baselines
