#include "heterosvd.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "linalg/ops.hpp"

namespace hsvd {

namespace {

// Rejects NaN/Inf entries up front: a single non-finite value poisons
// every rotation it touches and would otherwise surface much later as a
// (misattributed) in-fabric fault detection. `what` names the argument
// in the diagnostic ("matrix", "batch[3]", ...).
void require_finite(const linalg::MatrixF& a, const std::string& what) {
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto col = a.col(c);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      if (!std::isfinite(col[r])) {
        throw InputError(cat(what, " contains a non-finite entry at (", r,
                             ", ", c, ")"));
      }
    }
  }
}

accel::HeteroSvdConfig choose_config(std::size_t rows, std::size_t cols,
                                     int batch, const SvdOptions& options) {
  if (options.config.has_value()) {
    accel::HeteroSvdConfig cfg = *options.config;
    cfg.rows = rows;
    cfg.cols = cols;
    return cfg;
  }
  dse::DseRequest req;
  req.rows = rows;
  req.cols = cols;
  req.batch = batch;
  req.objective =
      batch > 1 ? dse::Objective::kThroughput : dse::Objective::kLatency;
  req.device = options.device;
  req.threads = options.threads;
  req.observer = options.observer;
  const auto point = dse::DesignSpaceExplorer{}.optimize(req);
  accel::HeteroSvdConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.p_eng = point.p_eng;
  cfg.p_task = point.p_task;
  cfg.pl_frequency_hz = point.frequency_hz;
  cfg.device = options.device;
  return cfg;
}

Svd from_task(const accel::TaskResult& task, const linalg::MatrixF& a,
              bool want_v, int threads) {
  Svd out;
  out.u = task.u;
  out.sigma = task.sigma;
  out.iterations = task.iterations;
  out.convergence_rate = task.convergence_rate;
  out.accelerator_seconds = task.latency_seconds();
  out.status = task.status;
  out.converged = task.converged;
  out.message = task.message;
  out.recovery_attempts = task.recovery_attempts;
  // A failed task has no factors; deriving V needs U.
  if (want_v && task.ok()) out.v = derive_v(a, out.u, out.sigma, threads);
  return out;
}

}  // namespace

Svd svd(const linalg::MatrixF& a, const SvdOptions& options) {
  HSVD_REQUIRE(a.rows() >= 1 && a.cols() >= 1, "matrix must be non-empty");
  require_finite(a, "matrix");
  if (a.cols() > a.rows()) {
    // Wide input: decompose the transpose and swap the factors
    // (A = U S V^T  <=>  A^T = V S U^T). V is needed to produce U here,
    // so want_v is forced on for the inner call.
    SvdOptions inner = options;
    inner.want_v = true;
    Svd t = svd(linalg::transpose(a), inner);
    std::swap(t.u, t.v);
    if (!options.want_v) t.v = linalg::MatrixF();
    return t;
  }
  accel::HeteroSvdConfig cfg = choose_config(a.rows(), a.cols(), 1, options);
  cfg.precision = options.precision;
  cfg.host_threads = options.threads;
  cfg.fault_retries = options.fault_retries;
  accel::HeteroSvdAccelerator acc(cfg);
  if (options.fault_injector != nullptr) {
    acc.attach_faults(options.fault_injector);
  }
  acc.attach_observer(options.observer);
  obs::ScopedPoolObservation observe(options.observer);
  auto run = acc.run({a});
  const auto& task = run.tasks.front();
  if (!task.ok()) {
    // A single-matrix call has no partial batch to salvage: surface the
    // unrecovered fault as the typed exception.
    throw FaultDetected(task.message.empty()
                            ? std::string("hardware fault detected")
                            : task.message);
  }
  return from_task(task, a, options.want_v, options.threads);
}

BatchSvd svd_batch(const std::vector<linalg::MatrixF>& batch,
                   const SvdOptions& options) {
  HSVD_REQUIRE(!batch.empty(), "empty batch");
  const std::size_t rows = batch.front().rows();
  const std::size_t cols = batch.front().cols();
  HSVD_REQUIRE(rows >= 1 && cols >= 1, "batch matrices must be non-empty");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& m = batch[i];
    HSVD_REQUIRE(m.rows() == rows && m.cols() == cols,
                 "all batch matrices must share one shape");
    require_finite(m, cat("batch[", i, "]"));
  }
  accel::HeteroSvdConfig cfg =
      choose_config(rows, cols, static_cast<int>(batch.size()), options);
  cfg.precision = options.precision;
  cfg.host_threads = options.threads;
  cfg.fault_retries = options.fault_retries;
  accel::HeteroSvdAccelerator acc(cfg);
  if (options.fault_injector != nullptr) {
    acc.attach_faults(options.fault_injector);
  }
  acc.attach_observer(options.observer);
  obs::ScopedPoolObservation observe(options.observer);
  auto run = acc.run(batch);
  BatchSvd out;
  out.config = cfg;
  out.batch_seconds = run.batch_seconds;
  out.throughput_tasks_per_s = run.throughput_tasks_per_s;
  out.failed_tasks = run.failed_tasks;
  out.recovery_runs = run.recovery_runs;
  out.utilization = std::move(run.utilization);
  out.results.resize(batch.size());
  // The host-side post-pass (factor copies + derive_v) is independent
  // per task; fan it out over the pool. derive_v runs inline (threads=1)
  // inside each task since the batch loop already saturates the pool.
  const int threads = common::ThreadPool::resolve_threads(options.threads);
  common::ThreadPool::shared().parallel_for(
      batch.size(), threads, [&](std::size_t i) {
        out.results[i] = from_task(run.tasks[i], batch[i], options.want_v, 1);
      },
      "task-post");
  return out;
}

linalg::MatrixF derive_v(const linalg::MatrixF& a, const linalg::MatrixF& u,
                         const std::vector<float>& sigma, int threads) {
  HSVD_REQUIRE(u.rows() == a.rows(), "U row count must match A");
  HSVD_REQUIRE(sigma.size() <= u.cols(), "sigma longer than U");
  for (std::size_t t = 0; t < sigma.size(); ++t) {
    if (!std::isfinite(sigma[t])) {
      throw InputError(cat("sigma contains a non-finite entry at ", t));
    }
  }
  linalg::MatrixF v(a.cols(), sigma.size());
  // Row j of V needs one fused dot per kept singular value:
  // v(j, t) = (a.col(j) . u.col(t)) / sigma[t]. Rows are independent, so
  // they are distributed over the pool; each entry's arithmetic is a
  // self-contained dot, making the result thread-count invariant.
  const int width = common::ThreadPool::resolve_threads(threads);
  common::ThreadPool::shared().parallel_for(
      a.cols(), width,
      [&](std::size_t j) {
        auto aj = a.col(j);
        for (std::size_t t = 0; t < sigma.size(); ++t) {
          if (sigma[t] <= 1e-12f) continue;
          const float inv = 1.0f / sigma[t];
          v(j, t) = linalg::dot<float>(aj, u.col(t)) * inv;
        }
      },
      "derive-v");
  return v;
}

}  // namespace hsvd
