#include "heterosvd.hpp"

#include <algorithm>
#include <cmath>

#include "backend/router.hpp"
#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "linalg/ops.hpp"
#include "scenarios/scenarios.hpp"
#include "scenarios/tall_skinny.hpp"
#include "scenarios/truncated.hpp"
#include "verify/escalate.hpp"

namespace hsvd {

namespace {

// Rejects NaN/Inf entries up front: a single non-finite value poisons
// every rotation it touches and would otherwise surface much later as a
// (misattributed) in-fabric fault detection. `what` names the argument
// in the diagnostic ("matrix", "batch[3]", ...).
void require_finite(const linalg::MatrixF& a, const std::string& what) {
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const auto col = a.col(c);
    for (std::size_t r = 0; r < a.rows(); ++r) {
      if (!std::isfinite(col[r])) {
        throw InputError(cat(what, " contains a non-finite entry at (", r,
                             ", ", c, ")"));
      }
    }
  }
}

// Rejects malformed numeric options up front with a typed InputError;
// without this, a negative fault_retries or a NaN precision would thread
// silently through the DSE and the accelerator config and misbehave far
// from the caller's mistake.
void validate_options(const SvdOptions& options) {
  HSVD_REQUIRE(std::isfinite(options.precision) && options.precision > 0.0,
               "precision must be positive and finite");
  HSVD_REQUIRE(options.threads >= 0, "threads must be nonnegative (0 = auto)");
  HSVD_REQUIRE(options.shards >= 1, "shards must be at least 1");
  HSVD_REQUIRE(options.fault_retries >= 0,
               "fault_retries must be nonnegative");
  if (options.retry.has_value()) options.retry->validate();
  if (!options.backend.empty() && options.backend != "auto" &&
      !backend::is_known_backend(options.backend)) {
    throw InputError(cat("unknown backend '", options.backend,
                         "' (expected auto, aie, aie-sharded, cpu, fpga-bcv, "
                         "or gpu-wcycle)"));
  }
  if (!options.backend.empty() && options.backend != "auto" &&
      options.slo.has_value()) {
    throw InputError(
        cat("backend '", options.backend,
            "' is an explicit pin and cannot carry an SLO (the pin bypasses "
            "routing); use backend \"auto\" to route by objective"));
  }
  if (options.slo.has_value()) options.slo->validate();
  options.verify.validate();
  options.scenario_opts.validate();
}

// True when the request opted into the backend router (an explicit pin,
// "auto", or any SLO). The empty default keeps the classic path -- and
// its bit-identical results -- untouched.
bool routing_requested(const SvdOptions& options) {
  return !options.backend.empty() || options.slo.has_value();
}

// The clock backing retry backoff sleeps.
common::Clock& resolve_clock(const SvdOptions& options) {
  return options.clock != nullptr ? *options.clock
                                  : common::MonotonicClock::instance();
}

// True when the cancel token (if any) has expired; used to stop retrying
// the moment the deadline passes instead of burning another attempt.
bool deadline_expired(const SvdOptions& options) {
  return options.cancel != nullptr && options.cancel->expired();
}

// Sleeps one backoff delay, never past the remaining deadline budget.
void backoff_sleep(const SvdOptions& options, common::BackoffSchedule& backoff,
                   int retry_index) {
  double delay = backoff.delay_seconds(retry_index);
  if (options.cancel != nullptr) {
    delay = std::min(delay, options.cancel->remaining_seconds());
  }
  resolve_clock(options).sleep_for(delay);
}

accel::HeteroSvdConfig choose_config(std::size_t rows, std::size_t cols,
                                     int batch, const SvdOptions& options) {
  if (options.config.has_value()) {
    accel::HeteroSvdConfig cfg = *options.config;
    cfg.rows = rows;
    cfg.cols = cols;
    return cfg;
  }
  dse::DseRequest req;
  req.rows = rows;
  req.cols = cols;
  req.batch = batch;
  req.objective =
      batch > 1 ? dse::Objective::kThroughput : dse::Objective::kLatency;
  req.device = options.device;
  req.threads = options.threads;
  req.observer = options.observer;
  const auto point = dse::DesignSpaceExplorer{}.optimize(req);
  accel::HeteroSvdConfig cfg;
  cfg.rows = rows;
  cfg.cols = cols;
  cfg.p_eng = point.p_eng;
  cfg.p_task = point.p_task;
  cfg.pl_frequency_hz = point.frequency_hz;
  cfg.device = options.device;
  return cfg;
}

Svd from_task(const accel::TaskResult& task, const linalg::MatrixF& a,
              bool want_v, int threads) {
  Svd out;
  out.u = task.u;
  out.sigma = task.sigma;
  out.iterations = task.iterations;
  out.convergence_rate = task.convergence_rate;
  out.accelerator_seconds = task.latency_seconds();
  out.status = task.status;
  out.converged = task.converged;
  out.message = task.message;
  out.recovery_attempts = task.recovery_attempts;
  // A failed task has no factors; deriving V needs U.
  if (want_v && task.ok()) out.v = derive_v(a, out.u, out.sigma, threads);
  return out;
}

// The classic (un-routed) single-matrix execution: the facade retry loop
// around a freshly built accelerator per attempt. Factored out so the
// attestation ladder's re-run rung can re-invoke it verbatim.
Svd run_classic_single(const linalg::MatrixF& a, const SvdOptions& options,
                       const accel::HeteroSvdConfig& cfg) {
  // Retry loop: each attempt runs on a freshly built accelerator (clean
  // timelines and tile memories; an external injector keeps its trigger
  // counters, so a one-shot fault does not refire on the retry).
  const common::RetryPolicy* retry =
      options.retry.has_value() ? &*options.retry : nullptr;
  const int max_attempts = retry != nullptr ? retry->max_attempts : 1;
  std::optional<common::BackoffSchedule> backoff;
  if (retry != nullptr) backoff.emplace(*retry, 0);
  std::string last_fault;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // shards == 1 delegates to the inner single-array engine outright,
    // so the default path stays bit-identical (timings included).
    accel::ShardedAccelerator acc(cfg, options.shards);
    if (options.fault_injector != nullptr) {
      acc.attach_faults(options.fault_injector);
    }
    acc.attach_observer(options.observer);
    acc.attach_cancellation(options.cancel);
    obs::ScopedPoolObservation observe(options.observer);
    auto run = acc.run({a});
    const auto& task = run.tasks.front();
    const bool transient =
        !task.ok() || (task.status == SvdStatus::kNotConverged &&
                       retry != nullptr && retry->retry_not_converged);
    if (transient && attempt < max_attempts && !deadline_expired(options)) {
      last_fault = task.message;
      if (options.observer != nullptr) {
        options.observer->metrics().add("svd.retries");
      }
      backoff_sleep(options, *backoff, attempt);
      continue;
    }
    if (!task.ok()) {
      // A single-matrix call has no partial batch to salvage: surface
      // the unrecovered fault as the typed exception.
      throw FaultDetected(task.message.empty()
                              ? std::string("hardware fault detected")
                              : task.message);
    }
    Svd out = from_task(task, a, options.want_v, options.threads);
    out.retries = attempt - 1;
    return out;
  }
  // Unreachable: the final attempt either returned or threw above.
  throw FaultDetected(last_fault.empty() ? std::string("hardware fault detected")
                                         : last_fault);
}

// Escalation hooks for the classic path: re-run repeats the classic
// execution (the injector's trigger counters advance, so a one-shot
// silent error does not refire); re-route pins the cpu backend -- the
// classic path has no router in play, and the host Jacobi is the one
// alternate that shares no fabric with the primary. The alternate runs
// outside the fault domain and without nested attestation.
verify::EscalationHooks classic_hooks(const linalg::MatrixF& a,
                                      const SvdOptions& options,
                                      const accel::HeteroSvdConfig& cfg,
                                      int task_slot) {
  verify::EscalationHooks hooks;
  hooks.rerun = [&a, &options, &cfg, task_slot]() {
    Svd again = run_classic_single(a, options, cfg);
    verify::apply_silent_faults(options, task_slot, again);
    return again;
  };
  hooks.reroute = [&a, &options](std::string* used) {
    SvdOptions alt = options;
    alt.backend = "cpu";
    alt.slo.reset();
    alt.verify = verify::VerifyPolicy{};
    alt.fault_injector = nullptr;
    alt.retry.reset();
    *used = "cpu";
    return svd(a, alt);
  };
  return hooks;
}

}  // namespace

Svd svd(const linalg::MatrixF& a, const SvdOptions& options) {
  validate_options(options);
  HSVD_REQUIRE(a.rows() >= 1 && a.cols() >= 1, "matrix must be non-empty");
  require_finite(a, "matrix");
  if (a.cols() > a.rows()) {
    // Wide input: decompose the transpose and swap the factors
    // (A = U S V^T  <=>  A^T = V S U^T). V is needed to produce U here,
    // so want_v is forced on for the inner call.
    SvdOptions inner = options;
    inner.want_v = true;
    Svd t = svd(linalg::transpose(a), inner);
    std::swap(t.u, t.v);
    if (!options.want_v) t.v = linalg::MatrixF();
    // Attestation ran on the transposed problem; swap the factor scores
    // so the report describes the factors the caller receives.
    for (auto& attempt : t.verify_report.attempts) {
      std::swap(attempt.outcome.u_orth, attempt.outcome.v_orth);
      std::swap(attempt.outcome.orth_bound, attempt.outcome.v_orth_bound);
    }
    return t;
  }
  if (deadline_expired(options)) {
    throw DeadlineExceeded("deadline expired before the decomposition began");
  }
  // Scenario front-ends (DESIGN.md section 16) sit after the wide-
  // transpose branch -- they only ever see tall shapes, so the factor
  // swap above composes with theirs -- and before routed dispatch: each
  // front-end reduces the problem and re-enters svd() with the scenario
  // layer off, so routing, retry, and attestation run on the inner
  // dense core exactly as for a direct request. With scenario off (or
  // auto below the aspect-ratio threshold) this block never diverts and
  // the dense path stays bit-identical to a build without it.
  switch (scenarios::select_scenario(a.rows(), a.cols(), options)) {
    case scenarios::Scenario::kTallSkinny:
      return scenarios::svd_tall_skinny(a, options);
    case scenarios::Scenario::kTruncated:
      return scenarios::svd_truncated(a, options);
    default:
      break;
  }
  // Routed dispatch sits after the wide-transpose branch so every
  // backend estimate and execution sees a tall matrix.
  if (routing_requested(options)) return backend::execute_routed(a, options);
  accel::HeteroSvdConfig cfg = choose_config(a.rows(), a.cols(), 1, options);
  cfg.precision = options.precision;
  cfg.host_threads = options.threads;
  cfg.fault_retries = options.fault_retries;
  Svd out = run_classic_single(a, options, cfg);
  verify::apply_silent_faults(options, 0, out);
  if (!options.verify.enabled()) return out;
  return verify::attest_result(a, options, std::move(out),
                               classic_hooks(a, options, cfg, 0));
}

BatchSvd svd_batch(const std::vector<linalg::MatrixF>& batch,
                   const SvdOptions& options) {
  validate_options(options);
  HSVD_REQUIRE(!batch.empty(), "empty batch");
  const std::size_t rows = batch.front().rows();
  const std::size_t cols = batch.front().cols();
  HSVD_REQUIRE(rows >= 1 && cols >= 1, "batch matrices must be non-empty");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& m = batch[i];
    HSVD_REQUIRE(m.rows() == rows && m.cols() == cols,
                 "all batch matrices must share one shape");
    require_finite(m, cat("batch[", i, "]"));
  }
  // The batch engine carries one dense accelerator configuration for
  // the whole batch; scenario front-ends are single-matrix reductions
  // (the serving layer dispatches them solo). Explicit front-ends and
  // top-k queries are rejected here; kAuto is accepted but never
  // engages in a batch.
  if (options.top_k > 0 ||
      options.scenario == scenarios::Scenario::kTallSkinny ||
      options.scenario == scenarios::Scenario::kTruncated) {
    throw InputError(
        "svd_batch serves the dense path only: scenario front-ends "
        "(tall-skinny, truncated/top_k) are single-matrix -- submit them "
        "one at a time or through the serving layer");
  }
  if (routing_requested(options)) {
    return backend::execute_routed_batch(batch, options);
  }
  accel::HeteroSvdConfig cfg =
      choose_config(rows, cols, static_cast<int>(batch.size()), options);
  cfg.precision = options.precision;
  cfg.host_threads = options.threads;
  cfg.fault_retries = options.fault_retries;
  if (deadline_expired(options)) {
    throw DeadlineExceeded("deadline expired before the batch began");
  }
  accel::ShardedAccelerator acc(cfg, options.shards);
  if (options.fault_injector != nullptr) {
    acc.attach_faults(options.fault_injector);
  }
  acc.attach_observer(options.observer);
  acc.attach_cancellation(options.cancel);
  obs::ScopedPoolObservation observe(options.observer);
  auto run = acc.run(batch);
  BatchSvd out;
  out.config = cfg;
  out.shards = options.shards;
  out.batch_seconds = run.batch_seconds;
  out.throughput_tasks_per_s = run.throughput_tasks_per_s;
  out.failed_tasks = run.failed_tasks;
  out.recovery_runs = run.recovery_runs;
  out.utilization = std::move(run.utilization);
  out.results.resize(batch.size());
  // The host-side post-pass (factor copies + derive_v) is independent
  // per task; fan it out over the pool. derive_v runs inline (threads=1)
  // inside each task since the batch loop already saturates the pool.
  const int threads = common::ThreadPool::resolve_threads(options.threads);
  common::ThreadPool::shared().parallel_for(
      batch.size(), threads, [&](std::size_t i) {
        out.results[i] = from_task(run.tasks[i], batch[i], options.want_v, 1);
        // Silent-error triggers are counted per task slot, so applying
        // them inside the parallel post-pass stays deterministic.
        verify::apply_silent_faults(options, static_cast<int>(i),
                                    out.results[i]);
      },
      "task-post");

  // Facade-level retry: re-submit only the transiently failed (and,
  // policy permitting, non-converged) tasks on a freshly built
  // accelerator, with backoff between rounds. Healthy results are never
  // touched. A deadline expiring during the retry phase stops retrying
  // and keeps the last attempt's statuses -- the batch already holds
  // usable results for every other task.
  if (options.retry.has_value()) {
    const common::RetryPolicy& retry = *options.retry;
    common::BackoffSchedule backoff(retry, 0);
    for (int attempt = 1; attempt < retry.max_attempts; ++attempt) {
      std::vector<std::size_t> again;
      for (std::size_t i = 0; i < out.results.size(); ++i) {
        const SvdStatus s = out.results[i].status;
        if (s == SvdStatus::kFailed ||
            (s == SvdStatus::kNotConverged && retry.retry_not_converged)) {
          again.push_back(i);
        }
      }
      if (again.empty() || deadline_expired(options)) break;
      if (options.observer != nullptr) {
        options.observer->metrics().add("svd.retries", again.size());
      }
      backoff_sleep(options, backoff, attempt);
      std::vector<linalg::MatrixF> sub;
      sub.reserve(again.size());
      for (std::size_t i : again) sub.push_back(batch[i]);
      accel::ShardedAccelerator retry_acc(cfg, options.shards);
      if (options.fault_injector != nullptr) {
        retry_acc.attach_faults(options.fault_injector);
      }
      retry_acc.attach_observer(options.observer);
      retry_acc.attach_cancellation(options.cancel);
      accel::RunResult rerun;
      try {
        rerun = retry_acc.run(sub);
      } catch (const DeadlineExceeded&) {
        break;  // keep the previous attempt's statuses
      }
      for (std::size_t j = 0; j < again.size(); ++j) {
        Svd replacement =
            from_task(rerun.tasks[j], batch[again[j]], options.want_v, 1);
        verify::apply_silent_faults(options, static_cast<int>(again[j]),
                                    replacement);
        replacement.retries = attempt;
        out.results[again[j]] = std::move(replacement);
      }
      out.recovery_runs += rerun.recovery_runs;
      // Retry rounds run after the initial batch; their simulated time
      // extends the campaign makespan sequentially.
      out.batch_seconds += rerun.batch_seconds;
    }
    out.failed_tasks = 0;
    for (const auto& r : out.results) {
      if (r.status == SvdStatus::kFailed) ++out.failed_tasks;
    }
  }
  // Attestation pass, serial: the ladder may spin up a fresh accelerator
  // (re-run rung), which must not nest inside the pool. A kFailed task
  // under an enabled policy is upgraded by the ladder too -- verified
  // compute answers every request, worst case from the host reference.
  if (options.verify.enabled()) {
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      out.results[i] = verify::attest_result(
          batch[i], options, std::move(out.results[i]),
          classic_hooks(batch[i], options, cfg, static_cast<int>(i)));
    }
    out.failed_tasks = 0;
    for (const auto& r : out.results) {
      if (r.status == SvdStatus::kFailed) ++out.failed_tasks;
    }
  }
  return out;
}

accel::HeteroSvdConfig planned_config(std::size_t rows, std::size_t cols,
                                      int batch, const SvdOptions& options) {
  validate_options(options);
  HSVD_REQUIRE(rows >= 1 && cols >= 1, "matrix shape must be non-empty");
  HSVD_REQUIRE(batch >= 1, "batch must be at least 1");
  accel::HeteroSvdConfig cfg = choose_config(rows, cols, batch, options);
  cfg.precision = options.precision;
  cfg.host_threads = options.threads;
  cfg.fault_retries = options.fault_retries;
  return cfg;
}

void validate_host_budget(int threads, int shards) {
  HSVD_REQUIRE(threads >= 0, "threads must be nonnegative (0 = auto)");
  HSVD_REQUIRE(shards >= 1, "shards must be at least 1");
  const int per_shard = std::max(threads, 1);
  const int hardware = common::ThreadPool::hardware_threads();
  if (per_shard * shards > hardware) {
    throw InputError(cat("host budget exceeded: ", threads, " thread(s) x ",
                         shards, " shard(s) needs ", per_shard * shards,
                         " workers but the machine has ", hardware,
                         " hardware threads; lower --threads or --shards"));
  }
}

linalg::MatrixF derive_v(const linalg::MatrixF& a, const linalg::MatrixF& u,
                         const std::vector<float>& sigma, int threads) {
  HSVD_REQUIRE(u.rows() == a.rows(), "U row count must match A");
  HSVD_REQUIRE(sigma.size() <= u.cols(), "sigma longer than U");
  for (std::size_t t = 0; t < sigma.size(); ++t) {
    if (!std::isfinite(sigma[t])) {
      throw InputError(cat("sigma contains a non-finite entry at ", t));
    }
  }
  linalg::MatrixF v(a.cols(), sigma.size());
  // Null-space cutoff, relative to the spectrum's scale: a singular
  // value at or below the float noise floor (~eps * sigma_max) is
  // numerical debris from a rank-deficient input, and dividing by it
  // would inflate A^T u_t noise into an O(sigma_max) column.
  float scale = 0.0f;
  for (float s : sigma) scale = std::max(scale, s);
  const float cutoff = std::max(1e-12f, 1e-6f * scale);
  // Row j of V needs one fused dot per kept singular value:
  // v(j, t) = (a.col(j) . u.col(t)) / sigma[t]. Rows are independent, so
  // they are distributed over the pool; each entry's arithmetic is a
  // self-contained dot, making the result thread-count invariant.
  const int width = common::ThreadPool::resolve_threads(threads);
  common::ThreadPool::shared().parallel_for(
      a.cols(), width,
      [&](std::size_t j) {
        auto aj = a.col(j);
        for (std::size_t t = 0; t < sigma.size(); ++t) {
          if (sigma[t] <= cutoff) continue;
          const float inv = 1.0f / sigma[t];
          v(j, t) = linalg::dot<float>(aj, u.col(t)) * inv;
        }
      },
      "derive-v");
  return v;
}

}  // namespace hsvd
