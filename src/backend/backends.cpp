#include "backend/backends.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "baselines/bcv.hpp"
#include "baselines/fpga_model.hpp"
#include "baselines/gpu_model.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "jacobi/hestenes.hpp"
#include "linalg/ops.hpp"

namespace hsvd::backend {

namespace {

// ---- Host one-sided Jacobi shared by cpu / fpga-bcv / gpu-wcycle ------

// Coarse host cost model behind CpuBackend::estimate: nominal sweep
// count times pair-visit work at a sustained effective rate. Deliberately
// crude -- routing only needs the CPU placed correctly relative to the
// other backends (they sit orders of magnitude apart), and the router
// records estimate-vs-actual error so the residual gap stays visible.
constexpr double kNominalSweeps = 8.0;
constexpr double kCpuEffectiveFlops = 4.0e9;
// Sustained host package power for the energy estimate.
constexpr double kCpuPackageWatts = 65.0;

double cpu_model_latency(std::size_t rows, std::size_t cols) {
  const double m = static_cast<double>(rows);
  const double n = static_cast<double>(cols);
  const double pairs = n * std::max(n - 1.0, 1.0) / 2.0;
  // Per pair visit: one fused dot (2m flops), the rotation applied to B
  // (6m) and to V (6n), plus O(1) bookkeeping.
  const double flops = kNominalSweeps * pairs * (8.0 * m + 6.0 * n + 16.0);
  return flops / kCpuEffectiveFlops;
}

// Copies the top-left rows x cols block (drops padded rows/columns).
linalg::MatrixF shrink(const linalg::MatrixF& src, std::size_t rows,
                       std::size_t cols) {
  if (src.rows() == rows && src.cols() == cols) return src;
  linalg::MatrixF out(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    auto s = src.col(c);
    auto d = out.col(c);
    for (std::size_t r = 0; r < rows; ++r) d[r] = s[r];
  }
  return out;
}

// Decomposes `a` with one of the host engines (BCV for the FPGA
// comparator's own ordering, shifting-ring Hestenes otherwise),
// zero-padding exactly as the accelerator front end does: padded
// rows/columns are fixed points of the rotations, their factors sort
// last (sigma = 0) and truncate away exactly.
Svd host_jacobi(const linalg::MatrixF& a, const SvdOptions& options,
                bool bcv_ordering) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // A single column has a closed-form decomposition; the pair engines
  // need at least two.
  if (n == 1) {
    Svd out;
    double ss = 0.0;
    const auto col = a.col(0);
    for (float x : col) ss += static_cast<double>(x) * x;
    const float sigma = static_cast<float>(std::sqrt(ss));
    out.sigma = {sigma};
    out.u = linalg::MatrixF(m, 1);
    if (sigma > 0.0f) {
      auto u0 = out.u.col(0);
      for (std::size_t r = 0; r < m; ++r) u0[r] = col[r] / sigma;
    }
    if (options.want_v) {
      out.v = linalg::MatrixF::identity(1);
    }
    out.converged = true;
    return out;
  }

  // The Hestenes engine requires an even column count, and both engines
  // require rows >= cols -- so a square odd input also gains a zero row.
  std::size_t n_pad = n;
  if (!bcv_ordering && n % 2 != 0) n_pad = n + 1;
  const std::size_t m_pad = std::max(m, n_pad);
  linalg::MatrixF padded;
  const linalg::MatrixF* input = &a;
  if (n_pad != n || m_pad != m) {
    padded = linalg::MatrixF(m_pad, n_pad);
    for (std::size_t c = 0; c < n; ++c) {
      auto s = a.col(c);
      auto d = padded.col(c);
      for (std::size_t r = 0; r < m; ++r) d[r] = s[r];
    }
    input = &padded;
  }

  const auto start = std::chrono::steady_clock::now();
  jacobi::HestenesResult run;
  if (bcv_ordering) {
    baselines::BcvOptions opts;
    opts.precision = options.precision;
    run = baselines::bcv_svd(*input, opts);
  } else {
    jacobi::HestenesOptions opts;
    opts.ordering = jacobi::OrderingKind::kShiftingRing;
    opts.precision = options.precision;
    opts.accumulate_v = true;
    run = jacobi::hestenes_svd(*input, opts);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Svd out;
  out.u = shrink(run.u, m, n);
  run.sigma.resize(n);
  out.sigma = std::move(run.sigma);
  if (options.want_v) out.v = shrink(run.v, n, n);
  out.iterations = run.sweeps;
  out.convergence_rate = run.final_convergence_rate;
  out.converged = run.converged;
  out.status = run.converged ? SvdStatus::kOk : SvdStatus::kNotConverged;
  if (!run.converged) {
    out.message = "precision target not reached within the sweep budget";
  }
  out.wall_seconds = wall;
  return out;
}

// ---- DSE-backed estimation shared by the two AIE backends -------------

dse::DseRequest make_dse_request(std::size_t rows, std::size_t cols,
                                 const Slo& slo, const SvdOptions& options,
                                 int max_shards) {
  dse::DseRequest req;
  req.rows = rows;
  req.cols = cols;
  req.batch = slo.kind == SloKind::kThroughput ? slo.batch : 1;
  req.objective = slo.kind == SloKind::kLatency ? dse::Objective::kLatency
                                                : dse::Objective::kThroughput;
  req.device = options.device;
  req.threads = options.threads;
  req.observer = options.observer;
  req.max_shards = max_shards;
  // Routing asks for the same handful of shapes over and over; the
  // cross-call memo answers repeats with zero placement calls.
  req.memoize = true;
  return req;
}

Estimate estimate_from_points(std::vector<dse::DesignPoint> points,
                              const Slo& slo, int shards) {
  std::erase_if(points,
                [&](const dse::DesignPoint& p) { return p.shards != shards; });
  if (points.empty()) {
    Estimate e;
    e.note = shards > 1
                 ? cat("no feasible ", shards, "-array AIE placement")
                 : "no feasible AIE placement for this shape on the device";
    return e;
  }
  const dse::DesignPoint* best = &points.front();
  for (const auto& p : points) {
    switch (slo.kind) {
      case SloKind::kLatency:
        if (p.latency_seconds < best->latency_seconds) best = &p;
        break;
      case SloKind::kThroughput:
        if (p.throughput_tasks_per_s > best->throughput_tasks_per_s)
          best = &p;
        break;
      case SloKind::kEnergy:
        if (p.energy_per_task_joules() < best->energy_per_task_joules())
          best = &p;
        break;
    }
  }
  Estimate e;
  e.feasible = true;
  e.latency_seconds = best->latency_seconds;
  e.throughput_tasks_per_s = best->throughput_tasks_per_s;
  e.energy_per_task_joules = best->energy_per_task_joules();
  e.note = cat("p_eng=", best->p_eng, " p_task=", best->p_task, " s=",
               best->shards, " f=", best->frequency_hz / 1.0e6, "MHz");
  return e;
}

// Strips the routing fields for the recursive facade call, so the
// backend's execution takes the classic (pre-router) path. Attestation
// is stripped too: for routed requests the verify ladder runs at the
// router layer (its re-route rung needs the Router), never inside the
// recursion. The fault injector stays attached, so injected faults --
// silent errors included -- land in the recursion as usual.
SvdOptions strip_routing(const SvdOptions& options) {
  SvdOptions inner = options;
  inner.backend.clear();
  inner.slo.reset();
  inner.verify = verify::VerifyPolicy{};
  return inner;
}

}  // namespace

// ---- aie --------------------------------------------------------------

Estimate AieBackend::estimate(std::size_t rows, std::size_t cols,
                              const Slo& slo,
                              const SvdOptions& options) const {
  return estimate_from_points(
      explorer_.enumerate(make_dse_request(rows, cols, slo, options, 1)), slo,
      1);
}

Svd AieBackend::execute(const linalg::MatrixF& a,
                        const SvdOptions& options) const {
  Svd out = hsvd::svd(a, strip_routing(options));
  out.backend = name();
  return out;
}

// ---- aie-sharded ------------------------------------------------------

int ShardedAieBackend::shard_count(const SvdOptions& options) {
  int s = std::max(options.shards, 2);
  // The DSE explores power-of-two shard counts; round down to one.
  while ((s & (s - 1)) != 0) s &= s - 1;
  return s;
}

Estimate ShardedAieBackend::estimate(std::size_t rows, std::size_t cols,
                                     const Slo& slo,
                                     const SvdOptions& options) const {
  const int s = shard_count(options);
  return estimate_from_points(
      explorer_.enumerate(make_dse_request(rows, cols, slo, options, s)), slo,
      s);
}

Svd ShardedAieBackend::execute(const linalg::MatrixF& a,
                               const SvdOptions& options) const {
  SvdOptions inner = strip_routing(options);
  inner.shards = shard_count(options);
  Svd out = hsvd::svd(a, inner);
  out.backend = name();
  return out;
}

// ---- cpu --------------------------------------------------------------

Estimate CpuBackend::estimate(std::size_t rows, std::size_t cols,
                              const Slo& /*slo*/,
                              const SvdOptions& /*options*/) const {
  Estimate e;
  e.feasible = true;
  e.latency_seconds = cpu_model_latency(rows, cols);
  e.throughput_tasks_per_s = 1.0 / e.latency_seconds;
  e.energy_per_task_joules = kCpuPackageWatts * e.latency_seconds;
  e.note = "host flops model (wall time measured at execution)";
  return e;
}

Svd CpuBackend::execute(const linalg::MatrixF& a,
                        const SvdOptions& options) const {
  Svd out = host_jacobi(a, options, /*bcv_ordering=*/false);
  out.backend = name();
  out.energy_joules = kCpuPackageWatts * out.wall_seconds;
  return out;
}

// ---- fpga-bcv ---------------------------------------------------------

Estimate FpgaBcvBackend::estimate(std::size_t rows, std::size_t cols,
                                  const Slo& /*slo*/,
                                  const SvdOptions& /*options*/) const {
  (void)rows;  // the Table II anchors are square-matrix measurements
  baselines::FpgaBcvModel model;
  const baselines::InterpValue lat = model.latency_modeled(std::max<std::size_t>(cols, 2));
  Estimate e;
  e.feasible = true;
  e.latency_seconds = lat.value;
  e.throughput_tasks_per_s = 1.0 / lat.value;
  e.modeled_extrapolated = lat.extrapolated;
  e.note = "Table II fitted model (no published power figure)";
  return e;
}

Svd FpgaBcvBackend::execute(const linalg::MatrixF& a,
                            const SvdOptions& options) const {
  Svd out = host_jacobi(a, options, /*bcv_ordering=*/true);
  out.backend = name();
  out.modeled_time = true;
  const baselines::InterpValue lat = baselines::FpgaBcvModel{}.latency_modeled(
      std::max<std::size_t>(a.cols(), 2), std::max(out.iterations, 1));
  out.modeled_seconds = lat.value;
  out.modeled_extrapolated = lat.extrapolated;
  return out;
}

// ---- gpu-wcycle -------------------------------------------------------

Estimate GpuWcycleBackend::estimate(std::size_t rows, std::size_t cols,
                                    const Slo& slo,
                                    const SvdOptions& /*options*/) const {
  (void)rows;  // the Table III anchors are square-matrix measurements
  baselines::GpuWcycleModel model;
  const baselines::InterpValue lat = model.latency_modeled(cols);
  const baselines::InterpValue thr = model.throughput_modeled(cols);
  Estimate e;
  e.feasible = true;
  e.latency_seconds = lat.value;
  e.throughput_tasks_per_s = thr.value;
  e.energy_per_task_joules = model.board_watts / thr.value;
  // Flag the figure the requested objective actually compares on.
  e.modeled_extrapolated =
      slo.kind == SloKind::kLatency ? lat.extrapolated : thr.extrapolated;
  e.note = "Table III fitted model (270 W board power)";
  return e;
}

Svd GpuWcycleBackend::execute(const linalg::MatrixF& a,
                              const SvdOptions& options) const {
  Svd out = host_jacobi(a, options, /*bcv_ordering=*/false);
  out.backend = name();
  out.modeled_time = true;
  baselines::GpuWcycleModel model;
  const baselines::InterpValue lat = model.latency_modeled(a.cols());
  out.modeled_seconds = lat.value;
  out.modeled_extrapolated = lat.extrapolated;
  out.energy_joules = model.board_watts * lat.value;
  return out;
}

// ---- registry ---------------------------------------------------------

std::vector<std::unique_ptr<Backend>> make_backends(
    const dse::DesignSpaceExplorer& explorer) {
  std::vector<std::unique_ptr<Backend>> out;
  out.push_back(std::make_unique<AieBackend>(explorer));
  out.push_back(std::make_unique<ShardedAieBackend>(explorer));
  out.push_back(std::make_unique<CpuBackend>());
  out.push_back(std::make_unique<FpgaBcvBackend>());
  out.push_back(std::make_unique<GpuWcycleBackend>());
  return out;
}

}  // namespace hsvd::backend
