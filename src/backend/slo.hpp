// Service-level objective attached to one SVD request.
//
// The router (backend/router.hpp) scores every registered backend
// against the request's Slo and dispatches to the best one, which is how
// the paper's crossover -- HeteroSVD wins small-n latency and energy
// efficiency, the GPU W-cycle baseline wins large-n throughput (Tables
// II/III, Fig. 9) -- becomes a live dispatch policy instead of a
// benchmark table.
//
// This header is dependency-light on purpose: the public facade
// (heterosvd.hpp) embeds an Slo in SvdOptions, so it must not pull in
// the backend implementations.
#pragma once

#include <optional>
#include <string>

namespace hsvd::backend {

// What the caller is optimizing for. Exactly one objective per request;
// the deadline/batch/energy fields below refine the chosen kind only.
enum class SloKind {
  kLatency,     // minimize single-matrix latency
  kThroughput,  // maximize sustained tasks/s at the stated batch
  kEnergy,      // minimize energy per task (the Table III EE metric)
};

const char* to_string(SloKind kind);

// Parses "latency" / "throughput" / "energy"; throws InputError
// otherwise.
SloKind parse_slo_kind(const std::string& text);

struct Slo {
  SloKind kind = SloKind::kLatency;
  // kLatency: hard per-matrix deadline in seconds; 0 = no deadline, just
  // pick the fastest backend. The router marks the decision
  // deadline-infeasible when even the winner's estimate misses it.
  double deadline_seconds = 0.0;
  // kThroughput: batch size the throughput estimate is evaluated at.
  int batch = 16;
  // kEnergy: per-task energy budget in joules; 0 = no budget, just pick
  // the most efficient backend with an energy model.
  double energy_budget_joules = 0.0;

  // Throws hsvd::InputError on out-of-range fields (negative or
  // non-finite deadline/budget, batch < 1).
  void validate() const;
};

// Memoization class of an SLO: requests whose slo_class and shape agree
// are routed identically, so the router (and the serving layer's result
// cache) key decisions on this string. Latency deadlines and energy
// budgets do not change which backend *wins* (they only flag
// feasibility), so they are deliberately excluded; the throughput batch
// is bucketed by power of two because the estimate varies smoothly
// with it.
std::string slo_class(const std::optional<Slo>& slo);

// A parsed --backend spec: an explicit backend pin, an SLO for the
// router, or neither (the classic AIE path).
struct BackendSpec {
  // "" = route by `slo` ("auto"); otherwise an explicit backend name.
  std::string backend;
  std::optional<Slo> slo;
};

// True for the five registered backend names: "aie", "aie-sharded",
// "cpu", "fpga-bcv", "gpu-wcycle".
bool is_known_backend(const std::string& name);

// Parses "auto[:slo-kind[:value]]" or an explicit backend name
// ("aie", "aie-sharded", "cpu", "fpga-bcv", "gpu-wcycle"):
//
//   auto                   route with the default latency SLO
//   auto:latency:0.005     route for latency, 5 ms deadline
//   auto:throughput:64     route for sustained throughput at batch 64
//   auto:energy:0.25       route for energy, 0.25 J/task budget
//   gpu-wcycle             pin the GPU model backend
//
// Throws hsvd::InputError for an unknown backend or SLO kind, a
// malformed value, or a *conflicting* pin + SLO ("cpu:latency:0.01"):
// a pin bypasses scoring, so attaching an objective to it is a
// contradiction the caller should hear about.
BackendSpec parse_backend_spec(const std::string& spec);

}  // namespace hsvd::backend
