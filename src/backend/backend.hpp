// Backend: one execution target for an SVD request.
//
// The paper compares HeteroSVD on the VCK190 against a published FPGA
// BCV solver [6] and a GPU W-cycle solver [11]; this repo additionally
// has a sharded multi-array engine and a SIMD host path. A Backend
// wraps each of those five targets behind one interface:
//
//   estimate(shape, slo)  -- what would it cost to run this shape here?
//                            (analytic perf/power model for the AIE
//                            targets, fitted Table II/III models for the
//                            published comparators, a flops model for
//                            the host CPU)
//   execute(matrix, opts) -- actually produce factors.
//
// Honesty rules (DESIGN.md section 14): every result says where its
// reported time came from. The AIE backends report *simulated* seconds
// from the cycle-approximate fabric model; the CPU backend reports
// *wall* seconds; the FPGA/GPU backends execute a host one-sided Jacobi
// for real factors but report the published comparator's *fitted model*
// time (capabilities().modeled_time == true, and Svd::modeled_time on
// every result), never the host wall time, and never mixed.
#pragma once

#include <cstddef>
#include <string>

#include "backend/slo.hpp"
#include "heterosvd.hpp"
#include "linalg/matrix.hpp"

namespace hsvd::backend {

// Static properties of a backend, used by the router to pre-filter
// candidates (e.g. the energy objective only considers backends with an
// energy model) and by callers to interpret results.
struct Capabilities {
  // Produces real factors (all five registered backends do).
  bool functional = true;
  // Reported latency/energy comes from a fitted model of a published
  // comparator, not from this process's execution.
  bool modeled_time = false;
  // estimate() can price energy per task.
  bool has_energy_model = true;
  // Factors are bit-identical to the classic AIE simulator path.
  bool bit_identical_to_aie = false;
};

// One scored candidate: what running (rows x cols) on this backend is
// expected to cost. All quantities are per task.
struct Estimate {
  // False when the backend cannot run the shape at all (e.g. no AIE
  // placement fits the device); `note` says why.
  bool feasible = false;
  double latency_seconds = 0.0;
  double throughput_tasks_per_s = 0.0;
  // 0 when the backend has no energy model.
  double energy_per_task_joules = 0.0;
  // True when a fitted comparator model was clamped outside its
  // published anchor range (baselines/interp.hpp): the number is the
  // nearest supported measurement, not an interpolation.
  bool modeled_extrapolated = false;
  std::string note;
};

class Backend {
 public:
  virtual ~Backend() = default;

  // Stable registry name ("aie", "aie-sharded", "cpu", "fpga-bcv",
  // "gpu-wcycle").
  virtual const char* name() const = 0;

  virtual Capabilities capabilities() const = 0;

  // Scores one shape against `slo` without executing. `options` carries
  // the device/threads/iteration context the estimate should assume;
  // routing-related fields (backend/slo) are ignored.
  virtual Estimate estimate(std::size_t rows, std::size_t cols,
                            const Slo& slo, const SvdOptions& options) const = 0;

  // Decomposes `a` (rows >= cols; wide inputs are transposed by the
  // facade before routing). `options` is the caller's SvdOptions; the
  // backend strips the routing fields before any recursive facade call.
  // The returned Svd carries the backend name and the modeled-time
  // labeling described in the header comment.
  virtual Svd execute(const linalg::MatrixF& a,
                      const SvdOptions& options) const = 0;
};

}  // namespace hsvd::backend
