#include "backend/slo.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/format.hpp"

namespace hsvd::backend {

const char* to_string(SloKind kind) {
  switch (kind) {
    case SloKind::kLatency: return "latency";
    case SloKind::kThroughput: return "throughput";
    case SloKind::kEnergy: return "energy";
  }
  return "unknown";
}

SloKind parse_slo_kind(const std::string& text) {
  if (text == "latency") return SloKind::kLatency;
  if (text == "throughput") return SloKind::kThroughput;
  if (text == "energy") return SloKind::kEnergy;
  throw InputError(cat("unknown slo kind '", text,
                       "' (expected latency, throughput, or energy)"));
}

void Slo::validate() const {
  HSVD_REQUIRE(std::isfinite(deadline_seconds) && deadline_seconds >= 0.0,
               "slo deadline_seconds must be nonnegative and finite "
               "(0 = no deadline)");
  HSVD_REQUIRE(batch >= 1, "slo batch must be at least 1");
  HSVD_REQUIRE(
      std::isfinite(energy_budget_joules) && energy_budget_joules >= 0.0,
      "slo energy_budget_joules must be nonnegative and finite "
      "(0 = no budget)");
}

std::string slo_class(const std::optional<Slo>& slo) {
  if (!slo.has_value()) return "latency";
  if (slo->kind != SloKind::kThroughput) return to_string(slo->kind);
  // Power-of-two batch bucket: estimates vary smoothly with batch, so
  // nearby batches share a routing decision.
  int bucket = 0;
  for (int b = slo->batch; b > 1; b >>= 1) ++bucket;
  return cat("throughput/b", bucket);
}

bool is_known_backend(const std::string& name) {
  return name == "aie" || name == "aie-sharded" || name == "cpu" ||
         name == "fpga-bcv" || name == "gpu-wcycle";
}

BackendSpec parse_backend_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  HSVD_REQUIRE(parts.size() <= 3, "backend spec is name[:slo-kind[:value]]");
  HSVD_REQUIRE(!parts[0].empty(), "backend spec must name a backend or auto");

  BackendSpec out;
  const bool routed = parts[0] == "auto";
  if (!routed) {
    if (parts.size() > 1) {
      throw InputError(cat("backend spec '", spec, "': an explicit backend "
                           "pin cannot carry an SLO (the pin bypasses "
                           "routing); use auto:", parts[1], " to route"));
    }
    if (!is_known_backend(parts[0])) {
      throw InputError(cat("unknown backend '", parts[0],
                           "' (expected auto, aie, aie-sharded, cpu, "
                           "fpga-bcv, or gpu-wcycle)"));
    }
    out.backend = parts[0];
    return out;
  }

  Slo slo;
  if (parts.size() > 1) slo.kind = parse_slo_kind(parts[1]);
  if (parts.size() > 2 && !parts[2].empty()) {
    char* end = nullptr;
    const double value = std::strtod(parts[2].c_str(), &end);
    if (end == parts[2].c_str() || *end != '\0') {
      throw InputError(cat("backend spec '", spec, "': bad value '", parts[2],
                           "'"));
    }
    // An explicitly supplied value must be positive: 0 is only ever the
    // struct's "no bound" default, never something to ask for.
    if (!(value > 0.0) || !std::isfinite(value)) {
      throw InputError(cat("backend spec '", spec, "': ", to_string(slo.kind),
                           " value must be positive"));
    }
    switch (slo.kind) {
      case SloKind::kLatency:
        slo.deadline_seconds = value;
        break;
      case SloKind::kThroughput:
        slo.batch = static_cast<int>(value);
        break;
      case SloKind::kEnergy:
        slo.energy_budget_joules = value;
        break;
    }
  }
  slo.validate();
  out.slo = slo;
  return out;
}

}  // namespace hsvd::backend
