#include "backend/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "verify/escalate.hpp"

namespace hsvd::backend {

namespace {

// Lower-is-better scalarization of an estimate under one SLO kind.
double objective_value(const Estimate& e, SloKind kind) {
  switch (kind) {
    case SloKind::kLatency:
      return e.latency_seconds;
    case SloKind::kThroughput:
      return e.throughput_tasks_per_s > 0.0 ? 1.0 / e.throughput_tasks_per_s
                                            : std::numeric_limits<double>::max();
    case SloKind::kEnergy:
      return e.energy_per_task_joules;
  }
  return std::numeric_limits<double>::max();
}

// Does this candidate meet the request's explicit bound (when one is
// set)? Backends without an energy model report 0 J and would trivially
// "meet" any budget, so the energy objective marks them infeasible.
bool meets_slo(const Candidate& c, const Slo& slo) {
  if (!c.estimate.feasible) return false;
  switch (slo.kind) {
    case SloKind::kLatency:
      return slo.deadline_seconds <= 0.0 ||
             c.estimate.latency_seconds <= slo.deadline_seconds;
    case SloKind::kThroughput:
      return true;  // batch refines the estimate; there is no hard bound
    case SloKind::kEnergy:
      if (!c.backend->capabilities().has_energy_model) return false;
      return slo.energy_budget_joules <= 0.0 ||
             c.estimate.energy_per_task_joules <= slo.energy_budget_joules;
  }
  return false;
}

// How much an estimate should be trusted, for breaking near-ties:
// simulated/measured beats a fitted comparator model (a log-log fit to
// four published anchors carries more than a few percent of error), and
// anything beats a value clamped outside its anchor range.
int trust_rank(const Candidate& c) {
  return (c.backend->capabilities().modeled_time ? 1 : 0) +
         (c.estimate.modeled_extrapolated ? 2 : 0);
}

// Within this relative band two objective values are "the same number"
// as far as the models can tell, and trust decides instead.
constexpr double kNearTie = 0.05;

// Strict preference order: SLO-feasibility first, then the objective,
// with near-ties broken by trust_rank. This is what keeps the n = 128
// latency crossover honest: the simulated AIE (1.41 ms) and the FPGA
// comparator's fitted model (1.40 ms) are within the fit's error band,
// and the router must not prefer a model over its own simulator on a
// sub-percent modeled margin.
bool better(const Candidate& a, const Candidate& b, SloKind kind) {
  if (a.slo_feasible != b.slo_feasible) return a.slo_feasible;
  const double oa = objective_value(a.estimate, kind);
  const double ob = objective_value(b.estimate, kind);
  const int ta = trust_rank(a);
  const int tb = trust_rank(b);
  if (ta != tb && std::abs(oa - ob) <= kNearTie * std::min(oa, ob)) {
    return ta < tb;
  }
  return oa < ob;  // exact ties keep the incumbent (registry order)
}

// Picks the winner among the scored candidates and writes its name into
// the decision. Cheap (no estimate() calls), so it reruns on every memo
// hit against the request's actual deadline/budget.
void pick_winner(RouteDecision& decision) {
  for (auto& c : decision.candidates) c.slo_feasible = meets_slo(c, decision.slo);
  const Candidate* best = nullptr;
  for (const auto& c : decision.candidates) {
    if (!c.estimate.feasible) continue;
    if (c.quarantined) continue;  // health breaker refused this backend
    if (decision.slo.kind == SloKind::kEnergy &&
        !c.backend->capabilities().has_energy_model) {
      continue;
    }
    if (best == nullptr || better(c, *best, decision.slo.kind)) best = &c;
  }
  decision.backend = best != nullptr ? best->backend->name() : "";
}

void count(const SvdOptions& options, const std::string& name,
           std::uint64_t delta = 1) {
  if (options.observer != nullptr) options.observer->metrics().add(name, delta);
}

// The SLO a routed request is scored against when the caller set a
// backend of "auto" without an explicit Slo.
Slo effective_slo(const SvdOptions& options, int batch) {
  if (options.slo.has_value()) return *options.slo;
  Slo slo;
  if (batch > 1) {
    slo.kind = SloKind::kThroughput;
    slo.batch = batch;
  }
  return slo;
}

// Routes (or honors the pin in) `options` and returns the backend to
// execute on, recording the dispatch metrics.
const Backend& dispatch_target(std::size_t rows, std::size_t cols, int batch,
                               const SvdOptions& options, bool admit) {
  Router& router = Router::shared();
  if (!options.backend.empty() && options.backend != "auto") {
    // An explicit pin bypasses scoring AND health admission: the caller
    // forced this backend, quarantine must not silently reroute them.
    count(options, "route.pinned");
    count(options, cat("route.dispatch.", options.backend));
    return router.find(options.backend);
  }
  const RouteDecision decision =
      router.route(rows, cols, effective_slo(options, batch), options, admit);
  if (decision.backend.empty()) {
    throw PlacementError(
        cat("no backend is feasible for ", rows, "x", cols,
            " under slo ", slo_class(decision.slo)));
  }
  count(options, decision.memo_hit ? "route.memo.hit" : "route.memo.miss");
  count(options, cat("route.dispatch.", decision.backend));
  return router.find(decision.backend);
}

// Records how far the winner's estimate was from what execution actually
// reported. Only meaningful where the result carries a time measured
// independently of the estimate: simulated seconds on the AIE backends,
// wall seconds on the CPU. The model-backed comparators *report* their
// fitted model, so comparing it to itself would fake a perfect router.
void observe_estimate_error(const SvdOptions& options, const Backend& backend,
                            const Svd& result, std::size_t rows,
                            std::size_t cols) {
  if (options.observer == nullptr || backend.capabilities().modeled_time) {
    return;
  }
  const double actual = backend.capabilities().bit_identical_to_aie
                            ? result.accelerator_seconds
                            : result.wall_seconds;
  Slo slo;  // latency estimate, the per-task figure both paths report
  const Estimate est = backend.estimate(rows, cols, slo, options);
  if (!est.feasible || est.latency_seconds <= 0.0 || actual <= 0.0) return;
  options.observer->metrics().observe(
      "route.estimate.rel_error",
      std::abs(actual - est.latency_seconds) / est.latency_seconds);
}

}  // namespace

Router::Router(std::vector<std::unique_ptr<Backend>> backends)
    : backends_(std::move(backends)) {}

RouteDecision Router::route(std::size_t rows, std::size_t cols, const Slo& slo,
                            const SvdOptions& options, bool admit) const {
  slo.validate();
  RouteDecision decision;
  decision.slo = slo;
  const MemoKey key{rows, cols, slo_class(slo)};
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      decision.candidates = it->second;
      decision.memo_hit = true;
    }
  }
  if (!decision.memo_hit) {
    decision.candidates.reserve(backends_.size());
    for (const auto& b : backends_) {
      Candidate c;
      c.backend = b.get();
      c.estimate = b->estimate(rows, cols, slo, options);
      decision.candidates.push_back(std::move(c));
    }
    std::lock_guard<std::mutex> lock(memo_mutex_);
    memo_.emplace(key, decision.candidates);
  }
  // The feasibility flags and the argmin depend on the request's actual
  // deadline/budget (excluded from the memo key), so always recompute.
  pick_winner(decision);
  // Health admission, verified paths only (the off policy keeps routing
  // bit-identical to a build without the verify layer). Winner-first:
  // only the would-be winner ever touches its breaker, so losing
  // candidates never consume half-open probe slots.
  if (admit && options.verify.enabled()) {
    while (!decision.backend.empty() &&
           !admit_backend(decision.backend, options)) {
      for (auto& c : decision.candidates) {
        if (decision.backend == c.backend->name()) c.quarantined = true;
      }
      pick_winner(decision);
    }
  }
  return decision;
}

bool Router::admit_backend(const std::string& name,
                           const SvdOptions& options) const {
  serve::BreakerState before;
  serve::BreakerState after;
  bool admitted;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    auto it = health_.find(name);
    if (it == health_.end()) return true;  // never fed: healthy
    before = it->second.state();
    admitted = it->second.allow();
    after = it->second.state();
  }
  if (before != after) {
    // allow() moved a cooled-down breaker open -> half-open.
    invalidate_memo();
    count(options, "route.health.memo_invalidate");
    count(options, cat("route.health.", name, ".", to_string(after)));
  }
  if (admitted && after == serve::BreakerState::kHalfOpen) {
    count(options, "route.health.probe");
  }
  if (!admitted) count(options, "route.health.refused");
  return admitted;
}

void Router::record_health(const std::string& backend, bool ok,
                           const SvdOptions& options) const {
  if (backend.empty() || backend == "reference") return;
  bool known = false;
  for (const auto& b : backends_) {
    if (backend == b->name()) {
      known = true;
      break;
    }
  }
  if (!known) return;
  serve::BreakerState before;
  serve::BreakerState after;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    auto it = health_.find(backend);
    if (it == health_.end()) {
      // A success on a backend with no ledger changes nothing: stay
      // stateless until the first failure.
      if (ok) return;
      const common::Clock* clock = options.clock != nullptr
                                       ? options.clock
                                       : &common::MonotonicClock::instance();
      it = health_
               .emplace(std::piecewise_construct,
                        std::forward_as_tuple(backend),
                        std::forward_as_tuple(health_policy_, clock))
               .first;
    }
    before = it->second.state();
    if (ok) {
      it->second.record_success();
    } else {
      it->second.record_failure();
    }
    after = it->second.state();
  }
  if (before == after) return;
  invalidate_memo();
  count(options, "route.health.memo_invalidate");
  count(options, cat("route.health.", backend, ".", to_string(after)));
  if (after == serve::BreakerState::kOpen) {
    count(options, "route.health.quarantine");
  } else if (after == serve::BreakerState::kClosed) {
    count(options, "route.health.recovered");
  }
}

void Router::record_health_neutral(const std::string& backend) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  auto it = health_.find(backend);
  if (it != health_.end()) it->second.record_neutral();
}

serve::BreakerState Router::health_state(const std::string& backend) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  auto it = health_.find(backend);
  return it == health_.end() ? serve::BreakerState::kClosed
                             : it->second.state();
}

void Router::set_health_policy(const serve::BreakerPolicy& policy) {
  policy.validate();
  std::lock_guard<std::mutex> lock(health_mutex_);
  health_policy_ = policy;
}

void Router::reset_health() {
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_.clear();
  }
  invalidate_memo();
}

void Router::invalidate_memo() const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  memo_.clear();
}

const Backend* Router::alternate(std::size_t rows, std::size_t cols,
                                 const SvdOptions& options,
                                 const std::string& exclude) const {
  RouteDecision decision =
      route(rows, cols, effective_slo(options, 1), options, false);
  for (auto& c : decision.candidates) {
    if (exclude == c.backend->name()) c.quarantined = true;
  }
  pick_winner(decision);
  while (!decision.backend.empty() &&
         !admit_backend(decision.backend, options)) {
    for (auto& c : decision.candidates) {
      if (decision.backend == c.backend->name()) c.quarantined = true;
    }
    pick_winner(decision);
  }
  return decision.backend.empty() ? nullptr : &find(decision.backend);
}

const Backend& Router::find(const std::string& name) const {
  for (const auto& b : backends_) {
    if (name == b->name()) return *b;
  }
  throw InputError(cat("unknown backend '", name,
                       "' (expected aie, aie-sharded, cpu, fpga-bcv, or "
                       "gpu-wcycle)"));
}

Router& Router::shared() {
  static Router* instance =
      new Router(make_backends(dse::DesignSpaceExplorer{}));
  return *instance;
}

namespace {

// One execution of `target`, with silent corruption applied at this
// layer for backends outside the AIE fault domain (the AIE backends
// recurse into the classic path, which applies it internally -- doing
// both would double-corrupt).
Svd run_target(const Backend& target, const linalg::MatrixF& a,
               const SvdOptions& options, int slot) {
  Svd result = target.execute(a, options);
  if (!target.capabilities().bit_identical_to_aie) {
    verify::apply_silent_faults(options, slot, result);
  }
  return result;
}

// Escalation hooks for routed requests: re-run repeats the winning
// backend, re-route asks the Router for the best admitted alternate
// (the failing primary disqualified), and every rung's outcome feeds
// the per-backend health ledger.
verify::EscalationHooks routed_hooks(const linalg::MatrixF& a,
                                     const SvdOptions& options,
                                     const Backend& target, int slot) {
  verify::EscalationHooks hooks;
  hooks.primary_backend = target.name();
  hooks.health = [&options](const std::string& name, bool ok) {
    Router::shared().record_health(name, ok, options);
  };
  hooks.rerun = [&a, &options, &target, slot]() {
    return run_target(target, a, options, slot);
  };
  hooks.reroute = [&a, &options, &target, slot](std::string* used) {
    const Backend* alt =
        Router::shared().alternate(a.rows(), a.cols(), options, target.name());
    if (alt == nullptr) {
      throw PlacementError(cat("no alternate backend for re-routing off '",
                               target.name(), "'"));
    }
    *used = alt->name();
    count(options, cat("route.dispatch.", alt->name()));
    return run_target(*alt, a, options, slot);
  };
  return hooks;
}

}  // namespace

Svd execute_routed(const linalg::MatrixF& a, const SvdOptions& options) {
  const Backend& target = dispatch_target(a.rows(), a.cols(), 1, options,
                                          /*admit=*/true);
  const bool verified_path = options.verify.enabled();
  Svd result;
  try {
    result = run_target(target, a, options, 0);
  } catch (const DeadlineExceeded&) {
    // Breaker-neutral: frees an admitted probe slot without judgment.
    if (verified_path) Router::shared().record_health_neutral(target.name());
    throw;
  } catch (const InputError&) {
    if (verified_path) Router::shared().record_health_neutral(target.name());
    throw;
  } catch (...) {
    if (verified_path) {
      Router::shared().record_health(target.name(), false, options);
    }
    throw;
  }
  observe_estimate_error(options, target, result, a.rows(), a.cols());
  if (!verified_path) return result;
  return verify::attest_result(a, options, std::move(result),
                               routed_hooks(a, options, target, 0));
}

BatchSvd execute_routed_batch(const std::vector<linalg::MatrixF>& batch,
                              const SvdOptions& options) {
  const std::size_t rows = batch.front().rows();
  const std::size_t cols = batch.front().cols();
  const Backend& target =
      dispatch_target(rows, cols, static_cast<int>(batch.size()), options,
                      /*admit=*/true);
  const bool verified_path = options.verify.enabled();

  BatchSvd out;
  if (target.capabilities().bit_identical_to_aie) {
    // The AIE backends run the native batch engine: strip the routing
    // fields and take the classic path (sharded sets its array count).
    // Attestation is stripped too -- it runs below, at this layer, with
    // router-aware re-route hooks; the classic path still applies the
    // silent-fault corruption per task slot.
    SvdOptions inner = options;
    inner.backend.clear();
    inner.slo.reset();
    inner.verify = verify::VerifyPolicy{};
    if (std::string(target.name()) == "aie-sharded") {
      inner.shards = ShardedAieBackend::shard_count(options);
    }
    try {
      out = hsvd::svd_batch(batch, inner);
    } catch (const DeadlineExceeded&) {
      if (verified_path) Router::shared().record_health_neutral(target.name());
      throw;
    }
    out.backend = target.name();
    for (auto& r : out.results) r.backend = target.name();
  } else {
    // Host-executed backends (cpu / fpga-bcv / gpu-wcycle): tasks are
    // independent; fan them out over the pool with single-threaded inner
    // execution, exactly like the facade's post-pass. Silent faults are
    // applied per task slot (slot-keyed trigger counters keep the
    // parallel post-pass deterministic).
    out.backend = target.name();
    out.shards = 1;
    out.results.resize(batch.size());
    SvdOptions inner = options;
    inner.threads = 1;
    const int threads = common::ThreadPool::resolve_threads(options.threads);
    const auto start = std::chrono::steady_clock::now();
    common::ThreadPool::shared().parallel_for(
        batch.size(), threads,
        [&](std::size_t i) {
          out.results[i] = target.execute(batch[i], inner);
          verify::apply_silent_faults(inner, static_cast<int>(i),
                                      out.results[i]);
        },
        "route-batch");
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (target.capabilities().modeled_time) {
      // Modeled backends report the comparator's fitted sustained rate for
      // the batch, never the host wall time (honesty rule: one source per
      // number). Per-task modeled_seconds is already set by execute().
      Slo slo;
      slo.kind = SloKind::kThroughput;
      slo.batch = static_cast<int>(batch.size());
      const Estimate est = target.estimate(rows, cols, slo, options);
      out.throughput_tasks_per_s = est.throughput_tasks_per_s;
      out.batch_seconds = est.throughput_tasks_per_s > 0.0
                              ? batch.size() / est.throughput_tasks_per_s
                              : 0.0;
    } else {
      out.batch_seconds = wall;
      out.throughput_tasks_per_s = wall > 0.0 ? batch.size() / wall : 0.0;
    }
    for (const auto& r : out.results) {
      if (r.status == SvdStatus::kFailed) ++out.failed_tasks;
    }
  }

  // Attestation pass, serial: the ladder's re-run rung re-executes the
  // backend and must not nest inside the pool.
  if (verified_path) {
    for (std::size_t i = 0; i < out.results.size(); ++i) {
      out.results[i] = verify::attest_result(
          batch[i], options, std::move(out.results[i]),
          routed_hooks(batch[i], options, target, static_cast<int>(i)));
    }
    out.failed_tasks = 0;
    for (const auto& r : out.results) {
      if (r.status == SvdStatus::kFailed) ++out.failed_tasks;
    }
  }
  return out;
}

}  // namespace hsvd::backend
