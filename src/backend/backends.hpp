// The five registered backends (see backend.hpp for the interface and
// the modeled-time honesty rules):
//
//   aie         -- the cycle-approximate Versal AIE simulator behind the
//                  classic facade path. Estimates come from the DSE
//                  (analytic perf model, eqs. (8)-(14)) plus the power
//                  model; execution is bit-identical to svd() without
//                  routing.
//   aie-sharded -- the multi-array engine (DESIGN.md section 11): the
//                  same fabric cut across S >= 2 simulated arrays.
//                  Factors are bit-identical to the single array; only
//                  the simulated timeline differs.
//   cpu         -- the host SIMD one-sided Jacobi (shifting-ring
//                  ordering, the runtime-dispatched AVX2 kernels).
//                  Reported time is measured wall time; the estimate is
//                  a coarse flops model.
//   fpga-bcv    -- the published FPGA comparator [6]: functional host
//                  BCV Jacobi (the baseline's own ordering), with the
//                  Table II fitted latency model attached as the
//                  reported (modeled) time. No published power figure,
//                  so no energy model.
//   gpu-wcycle  -- the published GPU comparator [11]: functional host
//                  Jacobi, with the Table III fitted latency/throughput
//                  model and the 270 W board power attached as the
//                  reported (modeled) time and energy.
#pragma once

#include <memory>
#include <vector>

#include "backend/backend.hpp"
#include "dse/explorer.hpp"

namespace hsvd::backend {

class AieBackend : public Backend {
 public:
  explicit AieBackend(dse::DesignSpaceExplorer explorer)
      : explorer_(std::move(explorer)) {}
  const char* name() const override { return "aie"; }
  Capabilities capabilities() const override {
    return {.functional = true,
            .modeled_time = false,
            .has_energy_model = true,
            .bit_identical_to_aie = true};
  }
  Estimate estimate(std::size_t rows, std::size_t cols, const Slo& slo,
                    const SvdOptions& options) const override;
  Svd execute(const linalg::MatrixF& a,
              const SvdOptions& options) const override;

 private:
  dse::DesignSpaceExplorer explorer_;
};

class ShardedAieBackend : public Backend {
 public:
  explicit ShardedAieBackend(dse::DesignSpaceExplorer explorer)
      : explorer_(std::move(explorer)) {}
  const char* name() const override { return "aie-sharded"; }
  Capabilities capabilities() const override {
    return {.functional = true,
            .modeled_time = false,
            .has_energy_model = true,
            .bit_identical_to_aie = true};
  }
  Estimate estimate(std::size_t rows, std::size_t cols, const Slo& slo,
                    const SvdOptions& options) const override;
  Svd execute(const linalg::MatrixF& a,
              const SvdOptions& options) const override;

  // Arrays the backend spans: SvdOptions::shards when the caller asked
  // for more than one, else 2 (the smallest genuinely sharded engine).
  static int shard_count(const SvdOptions& options);

 private:
  dse::DesignSpaceExplorer explorer_;
};

class CpuBackend : public Backend {
 public:
  const char* name() const override { return "cpu"; }
  Capabilities capabilities() const override {
    return {.functional = true,
            .modeled_time = false,
            .has_energy_model = true,
            .bit_identical_to_aie = false};
  }
  Estimate estimate(std::size_t rows, std::size_t cols, const Slo& slo,
                    const SvdOptions& options) const override;
  Svd execute(const linalg::MatrixF& a,
              const SvdOptions& options) const override;
};

class FpgaBcvBackend : public Backend {
 public:
  const char* name() const override { return "fpga-bcv"; }
  Capabilities capabilities() const override {
    return {.functional = true,
            .modeled_time = true,
            .has_energy_model = false,
            .bit_identical_to_aie = false};
  }
  Estimate estimate(std::size_t rows, std::size_t cols, const Slo& slo,
                    const SvdOptions& options) const override;
  Svd execute(const linalg::MatrixF& a,
              const SvdOptions& options) const override;
};

class GpuWcycleBackend : public Backend {
 public:
  const char* name() const override { return "gpu-wcycle"; }
  Capabilities capabilities() const override {
    return {.functional = true,
            .modeled_time = true,
            .has_energy_model = true,
            .bit_identical_to_aie = false};
  }
  Estimate estimate(std::size_t rows, std::size_t cols, const Slo& slo,
                    const SvdOptions& options) const override;
  Svd execute(const linalg::MatrixF& a,
              const SvdOptions& options) const override;
};

// All five backends in registry order. The two AIE backends hold copies
// of `explorer`, which share its placement counters and cross-call
// enumerate memo (dse::DseRequest::memoize) by construction.
std::vector<std::unique_ptr<Backend>> make_backends(
    const dse::DesignSpaceExplorer& explorer);

}  // namespace hsvd::backend
