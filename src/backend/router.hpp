// SLO-aware cost-model router (DESIGN.md section 14).
//
// The paper's Tables II/III/VI establish a crossover: the AIE array wins
// small-n latency, the GPU baseline wins large-n throughput, and the
// fabric simply cannot place very large problems. The router turns that
// static observation into a live dispatch policy: score every registered
// backend's estimate(shape, slo) and execute on the argmin.
//
// Decisions are memoized per (rows, cols, slo-class) -- the slo *class*
// deliberately excludes the deadline/budget numbers (see slo_class), so
// the expensive scoring (a DSE enumeration per AIE backend) runs once per
// shape while the cheap SLO-feasibility flags and the final argmin are
// recomputed against each request's actual bounds.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "backend/backends.hpp"
#include "serve/circuit_breaker.hpp"

namespace hsvd::backend {

// One scored backend in a routing decision.
struct Candidate {
  const Backend* backend = nullptr;
  Estimate estimate;
  // True when the estimate is feasible AND meets the request's explicit
  // deadline / energy budget (when one is set). The router prefers
  // SLO-feasible candidates; when none exists it still dispatches the
  // best-objective backend rather than failing the request.
  bool slo_feasible = false;
  // True when the backend's health breaker refused this request (the
  // backend is quarantined or out of half-open probe slots). Set during
  // admission only -- never memoized -- and a quarantined candidate
  // cannot win the argmin.
  bool quarantined = false;
};

struct RouteDecision {
  // Winner's registry name; empty when no backend can run the shape.
  std::string backend;
  Slo slo;
  // All registered backends in registry order, each scored.
  std::vector<Candidate> candidates;
  // Whether the estimates came from the (rows, cols, slo-class) memo.
  bool memo_hit = false;
};

class Router {
 public:
  explicit Router(std::vector<std::unique_ptr<Backend>> backends);

  // Scores every backend for (rows x cols) under `slo` and picks the
  // winner. Never executes. Throws hsvd::PlacementError when no backend
  // is feasible for the shape (cannot happen with the default registry:
  // the host CPU always fits). With admit = true (the execute paths;
  // default false so `hsvd route` never consumes probe slots) and the
  // request's verify policy enabled, the winner is additionally checked
  // against its health breaker: a refused winner is marked quarantined
  // and the argmin re-picked among the rest. A half-open admission
  // consumes that breaker's probe slot -- the caller must execute and
  // report the outcome through record_health().
  RouteDecision route(std::size_t rows, std::size_t cols, const Slo& slo,
                      const SvdOptions& options, bool admit = false) const;

  // Per-backend health ledger (DESIGN.md section 15): feeds one
  // verification / execution outcome into `backend`'s rolling error
  // budget (a serve::CircuitBreaker). consecutive failures quarantine
  // the backend (kOpen: it stops winning routes) until the cooldown
  // elapses and a half-open probe verifies clean. Any state transition
  // invalidates the route memo and counts route.health.* metrics on
  // options.observer. Unknown names (including "reference") and the
  // classic "" path are ignored.
  void record_health(const std::string& backend, bool ok,
                     const SvdOptions& options) const;
  // Releases an admitted half-open probe slot without judging the
  // backend (the request ended breaker-neutral: deadline expiry or
  // invalid input). No-op for unknown or never-fed backends.
  void record_health_neutral(const std::string& backend) const;
  // Current breaker state (kClosed for a backend never fed).
  serve::BreakerState health_state(const std::string& backend) const;
  // Re-route rung helper: the normal scored argmin with `exclude`
  // disqualified and health admission applied. Returns nullptr when no
  // alternate is feasible for the shape.
  const Backend* alternate(std::size_t rows, std::size_t cols,
                           const SvdOptions& options,
                           const std::string& exclude) const;
  // Policy for breakers created after this call (existing breakers keep
  // theirs). Tests tighten thresholds / shorten cooldowns here.
  void set_health_policy(const serve::BreakerPolicy& policy);
  // Drops all health state and the route memo. Tests call this between
  // cases: Router::shared() is process-wide.
  void reset_health();

  // Lookup by registry name; throws hsvd::InputError for unknown names.
  const Backend& find(const std::string& name) const;

  const std::vector<std::unique_ptr<Backend>>& backends() const {
    return backends_;
  }

  // The process-wide router the facade dispatches through: the default
  // registry over one shared DSE explorer (whose cross-call memo all
  // routed requests share).
  static Router& shared();

 private:
  // True when `name` may take this request (breaker closed or a probe
  // slot granted); counts route.health.probe on a half-open grant.
  bool admit_backend(const std::string& name, const SvdOptions& options) const;
  void invalidate_memo() const;

  std::vector<std::unique_ptr<Backend>> backends_;
  // (rows, cols, slo_class) -> scored candidates. Guarded: routed
  // requests arrive concurrently from the serving layer.
  using MemoKey = std::tuple<std::size_t, std::size_t, std::string>;
  mutable std::mutex memo_mutex_;
  mutable std::map<MemoKey, std::vector<Candidate>> memo_;
  // Per-backend health breakers, created lazily on first feed/refusal.
  // Map nodes are stable, so references survive later insertions; the
  // breaker has its own lock, health_mutex_ only guards the map shape
  // and the policy. Lock order: health_mutex_ before memo_mutex_, never
  // the reverse.
  mutable std::mutex health_mutex_;
  mutable std::map<std::string, serve::CircuitBreaker> health_;
  serve::BreakerPolicy health_policy_;
};

// Facade entry points (called from hsvd::svd / hsvd::svd_batch when
// SvdOptions carries a backend pin or an SLO; `a` is already validated
// and tall). Dispatches through Router::shared(), records route.*
// metrics on options.observer, and returns the backend's result with
// its provenance labels (Svd::backend, modeled_time, ...).
Svd execute_routed(const linalg::MatrixF& a, const SvdOptions& options);
BatchSvd execute_routed_batch(const std::vector<linalg::MatrixF>& batch,
                              const SvdOptions& options);

}  // namespace hsvd::backend
