// SLO-aware cost-model router (DESIGN.md section 14).
//
// The paper's Tables II/III/VI establish a crossover: the AIE array wins
// small-n latency, the GPU baseline wins large-n throughput, and the
// fabric simply cannot place very large problems. The router turns that
// static observation into a live dispatch policy: score every registered
// backend's estimate(shape, slo) and execute on the argmin.
//
// Decisions are memoized per (rows, cols, slo-class) -- the slo *class*
// deliberately excludes the deadline/budget numbers (see slo_class), so
// the expensive scoring (a DSE enumeration per AIE backend) runs once per
// shape while the cheap SLO-feasibility flags and the final argmin are
// recomputed against each request's actual bounds.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "backend/backends.hpp"

namespace hsvd::backend {

// One scored backend in a routing decision.
struct Candidate {
  const Backend* backend = nullptr;
  Estimate estimate;
  // True when the estimate is feasible AND meets the request's explicit
  // deadline / energy budget (when one is set). The router prefers
  // SLO-feasible candidates; when none exists it still dispatches the
  // best-objective backend rather than failing the request.
  bool slo_feasible = false;
};

struct RouteDecision {
  // Winner's registry name; empty when no backend can run the shape.
  std::string backend;
  Slo slo;
  // All registered backends in registry order, each scored.
  std::vector<Candidate> candidates;
  // Whether the estimates came from the (rows, cols, slo-class) memo.
  bool memo_hit = false;
};

class Router {
 public:
  explicit Router(std::vector<std::unique_ptr<Backend>> backends);

  // Scores every backend for (rows x cols) under `slo` and picks the
  // winner. Never executes. Throws hsvd::PlacementError when no backend
  // is feasible for the shape (cannot happen with the default registry:
  // the host CPU always fits).
  RouteDecision route(std::size_t rows, std::size_t cols, const Slo& slo,
                      const SvdOptions& options) const;

  // Lookup by registry name; throws hsvd::InputError for unknown names.
  const Backend& find(const std::string& name) const;

  const std::vector<std::unique_ptr<Backend>>& backends() const {
    return backends_;
  }

  // The process-wide router the facade dispatches through: the default
  // registry over one shared DSE explorer (whose cross-call memo all
  // routed requests share).
  static Router& shared();

 private:
  std::vector<std::unique_ptr<Backend>> backends_;
  // (rows, cols, slo_class) -> scored candidates. Guarded: routed
  // requests arrive concurrently from the serving layer.
  using MemoKey = std::tuple<std::size_t, std::size_t, std::string>;
  mutable std::mutex memo_mutex_;
  mutable std::map<MemoKey, std::vector<Candidate>> memo_;
};

// Facade entry points (called from hsvd::svd / hsvd::svd_batch when
// SvdOptions carries a backend pin or an SLO; `a` is already validated
// and tall). Dispatches through Router::shared(), records route.*
// metrics on options.observer, and returns the backend's result with
// its provenance labels (Svd::backend, modeled_time, ...).
Svd execute_routed(const linalg::MatrixF& a, const SvdOptions& options);
BatchSvd execute_routed_batch(const std::vector<linalg::MatrixF>& batch,
                              const SvdOptions& options);

}  // namespace hsvd::backend
