// Shape assertions for the reproduced evaluation: the qualitative claims
// of the paper's section V that DESIGN.md commits to. (Absolute numbers
// live in the benches; these tests pin the orderings and crossovers so a
// regression in any model or the simulator is caught by ctest.)
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "baselines/fpga_model.hpp"
#include "baselines/gpu_model.hpp"
#include "dse/explorer.hpp"
#include "perfmodel/power_model.hpp"

namespace hsvd {
namespace {

double hsvd_latency(std::size_t n, int iterations, double freq_hz) {
  accel::HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = n;
  cfg.p_eng = 8;
  cfg.p_task = 1;
  cfg.iterations = iterations;
  cfg.pl_frequency_hz = freq_hz;
  return accel::HeteroSvdAccelerator(cfg).estimate(1).task_seconds;
}

// Table II: HeteroSVD beats the FPGA baseline at every evaluated size.
TEST(EvaluationShapes, BeatsFpgaAtEverySize) {
  baselines::FpgaBcvModel fpga;
  dse::FrequencyModel freq;
  for (std::size_t n : {128u, 256u, 512u}) {
    const double ours = hsvd_latency(n, 6, freq.max_frequency_hz(n, 1));
    EXPECT_LT(ours, fpga.latency_seconds(n, 6)) << n;
  }
}

// Table III latency: the advantage over the GPU shrinks with size
// (kernel-launch amortization on the GPU side).
TEST(EvaluationShapes, GpuLatencyAdvantageShrinksWithSize) {
  baselines::GpuWcycleModel gpu;
  dse::FrequencyModel freq;
  double prev_ratio = 1e9;
  for (std::size_t n : {128u, 256u, 512u}) {
    const int sweeps = n == 128 ? 7 : n == 256 ? 11 : 14;
    const double ours = hsvd_latency(n, sweeps, freq.max_frequency_hz(n, 1));
    const double ratio = gpu.latency_seconds(n) / ours;
    EXPECT_GT(ratio, 1.0) << "HeteroSVD should lead latency at " << n;
    EXPECT_LT(ratio, prev_ratio) << "advantage must shrink at " << n;
    prev_ratio = ratio;
  }
}

// Table III energy efficiency: HeteroSVD wins at every size, with the
// gain shrinking as the GPU's utilization climbs.
TEST(EvaluationShapes, EnergyEfficiencyGainEverywhereAndShrinking) {
  baselines::GpuWcycleModel gpu;
  dse::DesignSpaceExplorer explorer;
  perf::PowerModel power;
  double prev_gain = 1e9;
  for (std::size_t n : {128u, 256u}) {
    dse::DseRequest req;
    req.rows = req.cols = n;
    req.batch = 100;
    req.iterations = n == 128 ? 7 : 11;
    req.objective = dse::Objective::kThroughput;
    auto point = explorer.optimize(req);
    const double gain = point.energy_efficiency() / gpu.energy_efficiency(n);
    EXPECT_GT(gain, 2.0) << n;
    EXPECT_LT(gain, prev_gain) << n;
    prev_gain = gain;
  }
}

// Table VI trends on the modeled design points at 208.3 MHz.
TEST(EvaluationShapes, TableViTrends) {
  dse::DesignSpaceExplorer explorer;
  dse::DseRequest req;
  req.rows = req.cols = 256;
  req.batch = 100;
  req.frequency_hz = 208.3e6;
  auto points = explorer.enumerate(req);
  auto find = [&](int pe, int pt) -> const dse::DesignPoint* {
    for (const auto& p : points)
      if (p.p_eng == pe && p.p_task == pt) return &p;
    return nullptr;
  };
  const auto* low = find(2, 26);
  const auto* high = find(8, 2);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  // Higher P_eng: lower latency. Higher P_task: higher throughput, more
  // URAM, more power.
  EXPECT_LT(high->latency_seconds, low->latency_seconds);
  EXPECT_GT(low->throughput_tasks_per_s, high->throughput_tasks_per_s);
  EXPECT_GT(low->resources.uram, high->resources.uram);
  EXPECT_GT(low->power_watts, high->power_watts);
  // Power stays inside Table VI's measured band.
  EXPECT_GT(high->power_watts, 20.0);
  EXPECT_LT(low->power_watts, 50.0);
}

// Fig. 9: HeteroSVD's core utilization falls with size (URAM-bound task
// parallelism) while the GPU's rises -- the crossover mechanism.
TEST(EvaluationShapes, UtilizationCurvesCross) {
  baselines::GpuWcycleModel gpu;
  EXPECT_LT(gpu.core_utilization(128), gpu.core_utilization(1024));
  dse::DesignSpaceExplorer explorer;
  auto util_for = [&](std::size_t n) {
    dse::DseRequest req;
    req.rows = req.cols = n;
    req.batch = 100;
    req.iterations = 2;
    req.objective = dse::Objective::kThroughput;
    auto point = explorer.optimize(req);
    accel::HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = n;
    cfg.p_eng = point.p_eng;
    cfg.p_task = point.p_task;
    cfg.iterations = 2;
    cfg.pl_frequency_hz = point.frequency_hz;
    return accel::HeteroSvdAccelerator(cfg).estimate(cfg.p_task).core_utilization;
  };
  EXPECT_GT(util_for(128), util_for(512));
}

}  // namespace
}  // namespace hsvd
