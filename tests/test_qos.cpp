// Multi-tenant QoS tests: token-bucket quotas, deficit-round-robin fair
// share, priority bands with sweep-barrier preemption, shape-bucketed
// coalescing, and the verified result cache. Deterministic throughout:
// scheduling tests run a paused single-worker server on a fake clock
// and read back dispatch ordinals; only the preemption test uses the
// real clock (it needs work genuinely in flight to cancel).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/token_bucket.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "obs/obs.hpp"
#include "serve/fair_queue.hpp"
#include "serve/qos.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"

namespace hsvd {
namespace {

using common::FakeClock;
using common::TokenBucket;
using serve::DeficitRoundRobin;
using serve::Priority;
using serve::QosOptions;
using serve::Request;
using serve::Response;
using serve::ResultCache;
using serve::ServeStatus;
using serve::ServerOptions;
using serve::SvdServer;
using serve::TenantConfig;

accel::HeteroSvdConfig small_config() {
  accel::HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 2;
  cfg.iterations = 3;
  return cfg;
}

linalg::MatrixF gaussian(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  Rng rng(seed);
  return linalg::random_gaussian(rows, cols, rng).cast<float>();
}

linalg::MatrixF small_matrix(std::uint64_t seed) {
  return gaussian(24, 16, seed);
}

bool same_bits(const linalg::MatrixF& a, const linalg::MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  return da.empty() ||
         std::memcmp(da.data(), db.data(), da.size_bytes()) == 0;
}

bool same_svd_bits(const Svd& a, const Svd& b) {
  return same_bits(a.u, b.u) && same_bits(a.v, b.v) &&
         a.sigma.size() == b.sigma.size() &&
         (a.sigma.empty() ||
          std::memcmp(a.sigma.data(), b.sigma.data(),
                      a.sigma.size() * sizeof(float)) == 0);
}

TenantConfig tenant(const std::string& name, double weight = 1.0,
                    double rate = 1000.0, double burst = 64.0) {
  TenantConfig config;
  config.name = name;
  config.weight = weight;
  config.quota_rate = rate;
  config.quota_burst = burst;
  return config;
}

// ------------------------------------------------------------- quotas

TEST(QosBucket, StartsFullAndDrainsToEmpty) {
  TokenBucket bucket(1.0, 3.0, 0.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));  // burst exhausted
}

TEST(QosBucket, RefillsAtRateAndClampsAtBurst) {
  TokenBucket bucket(2.0, 4.0, 0.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  // 0.5 s at 2 tokens/s = 1 token.
  EXPECT_TRUE(bucket.try_acquire(0.5));
  EXPECT_FALSE(bucket.try_acquire(0.5));
  // A long idle stretch refills to burst, never past it.
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 4.0);
}

TEST(QosBucket, NonMonotonicNowRefillsNothing) {
  TokenBucket bucket(1.0, 1.0, 10.0);
  EXPECT_TRUE(bucket.try_acquire(10.0));
  // A clock reading from the past must not mint tokens.
  EXPECT_FALSE(bucket.try_acquire(5.0));
  EXPECT_FALSE(bucket.try_acquire(10.0));
  EXPECT_TRUE(bucket.try_acquire(11.0));
}

// --------------------------------------------------------- fair share

TEST(QosDrr, ServesBackloggedTenantsByWeight) {
  DeficitRoundRobin drr({1.0, 3.0});
  std::vector<std::size_t> backlog = {100, 100};
  int served[2] = {0, 0};
  for (int i = 0; i < 40; ++i) {
    const auto pick = drr.pick(backlog);
    ASSERT_TRUE(pick.has_value());
    ++served[*pick];
  }
  EXPECT_EQ(served[0], 10);
  EXPECT_EQ(served[1], 30);
}

TEST(QosDrr, IdleTenantBanksNoCredit) {
  DeficitRoundRobin drr({1.0, 1.0});
  // Tenant 0 idles while tenant 1 is served repeatedly...
  std::vector<std::size_t> backlog = {0, 10};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(drr.pick(backlog), 1u);
  // ...then goes busy: it gets its fair half from now on, not a burst
  // of banked credit.
  backlog = {10, 10};
  int served[2] = {0, 0};
  for (int i = 0; i < 10; ++i) ++served[*drr.pick(backlog)];
  EXPECT_EQ(served[0], 5);
  EXPECT_EQ(served[1], 5);
}

TEST(QosDrr, AllEmptyReturnsNullopt) {
  DeficitRoundRobin drr({1.0, 2.0});
  EXPECT_FALSE(drr.pick({0, 0}).has_value());
}

// --------------------------------------------------------- validation

TEST(QosValidation, RejectsBadTenantAndQosOptions) {
  const auto validated = [](QosOptions qos) {
    ServerOptions options;
    options.qos = std::move(qos);
    options.validate();
  };
  QosOptions good;
  good.tenants = {tenant("default")};
  EXPECT_NO_THROW(validated(good));

  QosOptions bad = good;
  bad.tenants[0].weight = 0.0;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.tenants[0].weight = -1.0;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.tenants[0].quota_rate = 0.0;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.tenants[0].quota_burst = 0.5;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.tenants[0].name.clear();
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.tenants.push_back(tenant("default"));  // duplicate name
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.coalesce_max_batch = 0;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.coalesce_max_batch = 4;
  bad.coalesce_window_seconds = 0.0;
  EXPECT_THROW(validated(bad), InputError);
  bad = good;
  bad.cache_enabled = true;
  bad.cache_capacity = 0;
  EXPECT_THROW(validated(bad), InputError);
}

TEST(QosValidation, ParsesTenantSpecs) {
  const TenantConfig full = serve::parse_tenant_spec("acme:2:10:4");
  EXPECT_EQ(full.name, "acme");
  EXPECT_DOUBLE_EQ(full.weight, 2.0);
  EXPECT_DOUBLE_EQ(full.quota_rate, 10.0);
  EXPECT_DOUBLE_EQ(full.quota_burst, 4.0);

  const TenantConfig bare = serve::parse_tenant_spec("solo");
  EXPECT_EQ(bare.name, "solo");
  EXPECT_DOUBLE_EQ(bare.weight, 1.0);

  const TenantConfig skipped = serve::parse_tenant_spec("gap::5");
  EXPECT_DOUBLE_EQ(skipped.weight, 1.0);
  EXPECT_DOUBLE_EQ(skipped.quota_rate, 5.0);

  EXPECT_THROW(serve::parse_tenant_spec("x:notanumber"), InputError);
  EXPECT_THROW(serve::parse_tenant_spec("x:1:2:3:4"), InputError);
  EXPECT_THROW(serve::parse_tenant_spec(":1"), InputError);  // empty name
  EXPECT_THROW(serve::parse_tenant_spec("x:0"), InputError);  // zero weight
}

TEST(QosValidation, ParsesPriorities) {
  EXPECT_EQ(serve::parse_priority("latency"), Priority::kLatency);
  EXPECT_EQ(serve::parse_priority("normal"), Priority::kNormal);
  EXPECT_EQ(serve::parse_priority("batch"), Priority::kBatch);
  EXPECT_THROW(serve::parse_priority("urgent"), InputError);
}

TEST(QosValidation, TenantIndexMapsEmptyToDefault) {
  QosOptions qos;
  qos.tenants = {tenant("alpha"), tenant("default")};
  EXPECT_EQ(qos.tenant_index("alpha"), 0u);
  EXPECT_EQ(qos.tenant_index(""), 1u);
  EXPECT_EQ(qos.tenant_index("stranger"), QosOptions::npos);
}

// -------------------------------------------------------------- cache

TEST(QosCache, HitReturnsStoredFactorsAndTracksLru) {
  ResultCache cache(2);
  const linalg::MatrixF a = small_matrix(1);
  const linalg::MatrixF b = small_matrix(2);
  const linalg::MatrixF c = small_matrix(3);
  Svd result;
  result.sigma = {3.0f, 2.0f, 1.0f};

  cache.insert(a, ResultCache::digest(a), result);
  cache.insert(b, ResultCache::digest(b), result);
  // Touch `a` so `b` is the least recently used entry...
  EXPECT_TRUE(cache.lookup(a, ResultCache::digest(a)).has_value());
  // ...and a third insert evicts `b`, not `a`.
  cache.insert(c, ResultCache::digest(c), result);
  EXPECT_TRUE(cache.lookup(a, ResultCache::digest(a)).has_value());
  EXPECT_FALSE(cache.lookup(b, ResultCache::digest(b)).has_value());
  EXPECT_TRUE(cache.lookup(c, ResultCache::digest(c)).has_value());

  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(QosCache, ForcedDigestCollisionIsCaughtByVerification) {
  ResultCache cache(4);
  const linalg::MatrixF a = small_matrix(10);
  const linalg::MatrixF b = small_matrix(11);  // same shape, other bytes
  Svd result;
  result.sigma = {1.0f};
  // Insert `a` under a forced digest, then look `b` up under the SAME
  // digest: the full-matrix verification must refuse to serve `a`'s
  // factors for `b`.
  const std::uint64_t forced = 0xdeadbeef;
  cache.insert(a, forced, result);
  EXPECT_FALSE(cache.lookup(b, forced).has_value());
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.collisions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // The honest key still hits.
  EXPECT_TRUE(cache.lookup(a, forced).has_value());
}

// ----------------------------------------------------- server: quotas

TEST(QosServer, QuotaShedsOnlyTheOfferingTenant) {
  FakeClock clock;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.start_paused = true;
  options.qos.tenants = {tenant("bursty", 1.0, 0.5, 1.0),
                         tenant("steady", 1.0, 1000.0, 64.0)};
  SvdServer server(options);

  std::vector<std::future<Response>> bursty;
  for (int i = 0; i < 3; ++i) {
    Request request;
    request.matrix = small_matrix(100 + static_cast<std::uint64_t>(i));
    request.tenant = "bursty";
    bursty.push_back(server.submit(std::move(request)));
  }
  std::vector<std::future<Response>> steady;
  for (int i = 0; i < 2; ++i) {
    Request request;
    request.matrix = small_matrix(200 + static_cast<std::uint64_t>(i));
    request.tenant = "steady";
    steady.push_back(server.submit(std::move(request)));
  }
  // Burst capacity 1: the first bursty request is admitted, the next
  // two are shed at admission -- without touching steady's queue.
  EXPECT_EQ(bursty[1].get().status, ServeStatus::kShed);
  EXPECT_EQ(bursty[2].get().status, ServeStatus::kShed);

  // 2 seconds at 0.5 tokens/s refills one token.
  clock.advance(2.0);
  Request refilled;
  refilled.matrix = small_matrix(300);
  refilled.tenant = "bursty";
  std::future<Response> late = server.submit(std::move(refilled));

  server.resume();
  EXPECT_EQ(bursty[0].get().status, ServeStatus::kOk);
  EXPECT_EQ(late.get().status, ServeStatus::kOk);
  for (auto& f : steady) EXPECT_EQ(f.get().status, ServeStatus::kOk);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.quota_shed, 2u);
  EXPECT_EQ(stats.tenants.at("bursty").shed_quota, 2u);
  EXPECT_EQ(stats.tenants.at("bursty").ok, 2u);
  EXPECT_EQ(stats.tenants.at("steady").shed_quota, 0u);
  EXPECT_EQ(stats.tenants.at("steady").ok, 2u);
}

TEST(QosServer, UnknownTenantIsShedAtAdmission) {
  FakeClock clock;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.qos.tenants = {tenant("default")};
  SvdServer server(options);

  Request request;
  request.matrix = small_matrix(1);
  request.tenant = "stranger";
  const Response response = server.serve(std::move(request));
  EXPECT_EQ(response.status, ServeStatus::kShed);
  EXPECT_NE(response.message.find("unknown tenant"), std::string::npos);
  EXPECT_EQ(server.stats().unknown_tenant, 1u);

  // Untagged requests map to the "default" tenant.
  Request untagged;
  untagged.matrix = small_matrix(2);
  EXPECT_EQ(server.serve(std::move(untagged)).status, ServeStatus::kOk);
}

// ------------------------------------------------- server: fair share

TEST(QosServer, DispatchOrderFollowsDrrWeights) {
  FakeClock clock;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.start_paused = true;
  // Weights with power-of-two quanta keep the deficit arithmetic exact,
  // so the schedule below is deterministic, not approximately fair.
  options.qos.tenants = {tenant("light", 1.0), tenant("heavy", 2.0)};
  SvdServer server(options);

  std::vector<std::future<Response>> light, heavy;
  for (int i = 0; i < 2; ++i) {
    Request request;
    request.matrix = small_matrix(10 + static_cast<std::uint64_t>(i));
    request.tenant = "light";
    light.push_back(server.submit(std::move(request)));
  }
  for (int i = 0; i < 4; ++i) {
    Request request;
    request.matrix = small_matrix(20 + static_cast<std::uint64_t>(i));
    request.tenant = "heavy";
    heavy.push_back(server.submit(std::move(request)));
  }
  server.resume();

  std::vector<std::uint64_t> light_ord, heavy_ord;
  for (auto& f : light) {
    const Response r = f.get();
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.tenant, "light");
    light_ord.push_back(r.dispatch_ordinal);
  }
  for (auto& f : heavy) {
    const Response r = f.get();
    EXPECT_EQ(r.status, ServeStatus::kOk);
    heavy_ord.push_back(r.dispatch_ordinal);
  }
  // Weights 1:2 with both tenants backlogged -> the DRR schedule is
  // heavy, light, heavy, heavy, light, heavy.
  EXPECT_EQ(heavy_ord, (std::vector<std::uint64_t>{1, 3, 4, 6}));
  EXPECT_EQ(light_ord, (std::vector<std::uint64_t>{2, 5}));
}

TEST(QosServer, LatencyClassDispatchesBeforeLowerClasses) {
  FakeClock clock;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.start_paused = true;
  options.qos.tenants = {tenant("default")};
  options.qos.enable_preemption = false;  // pure queue-order test
  SvdServer server(options);

  const auto submit_with = [&](Priority priority, std::uint64_t seed) {
    Request request;
    request.matrix = small_matrix(seed);
    request.priority = priority;
    return server.submit(std::move(request));
  };
  auto batch1 = submit_with(Priority::kBatch, 1);
  auto batch2 = submit_with(Priority::kBatch, 2);
  auto normal1 = submit_with(Priority::kNormal, 3);
  auto latency1 = submit_with(Priority::kLatency, 4);
  server.resume();

  const std::uint64_t lat = latency1.get().dispatch_ordinal;
  const std::uint64_t nor = normal1.get().dispatch_ordinal;
  const std::uint64_t ba1 = batch1.get().dispatch_ordinal;
  const std::uint64_t ba2 = batch2.get().dispatch_ordinal;
  EXPECT_EQ(lat, 1u);
  EXPECT_EQ(nor, 2u);
  EXPECT_EQ(ba1, 3u);
  EXPECT_EQ(ba2, 4u);
}

// ------------------------------------------------- server: coalescing

TEST(QosServer, CoalescedBatchIsBitIdenticalToSerialExecution) {
  FakeClock clock;
  obs::ObsContext observer;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.observer = &observer;
  options.start_paused = true;
  options.qos.tenants = {tenant("default")};
  options.qos.coalesce_max_batch = 3;
  SvdServer server(options);

  std::vector<linalg::MatrixF> inputs;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(small_matrix(40 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit(inputs.back()));
  }
  server.resume();

  std::vector<std::size_t> batch_sizes;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response response = futures[i].get();
    ASSERT_EQ(response.status, ServeStatus::kOk);
    batch_sizes.push_back(response.batch_size);
    // The coalesced result must equal serving this matrix alone.
    SvdOptions solo;
    solo.config = small_config();
    const Svd reference = svd(inputs[i], solo);
    EXPECT_TRUE(same_svd_bits(response.result, reference));
  }
  // 4 same-shape requests, max batch 3, all admitted together: one
  // dispatch of 3 and one of 1.
  EXPECT_EQ(std::count(batch_sizes.begin(), batch_sizes.end(), 3u), 3);
  EXPECT_EQ(std::count(batch_sizes.begin(), batch_sizes.end(), 1u), 1);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batch_dispatches, 2u);
  EXPECT_EQ(stats.batch_tasks, 4u);
  EXPECT_EQ(stats.tenants.at("default").coalesced, 3u);

  const obs::MetricsSnapshot snap = observer.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.batch.dispatches"), 2u);
  EXPECT_EQ(snap.histograms.at("serve.batch.fill").total, 2u);
}

TEST(QosServer, CoalescingUnderDseConfigMatchesPlainSvd) {
  // No pinned configuration: the coalescer must pin the per-shape DSE
  // choice the serial path would have made, so results still match a
  // plain svd() call with default options.
  FakeClock clock;
  ServerOptions options;
  options.workers = 1;
  options.clock = &clock;
  options.start_paused = true;
  options.qos.tenants = {tenant("default")};
  options.qos.coalesce_max_batch = 2;
  SvdServer server(options);

  const linalg::MatrixF a = small_matrix(70);
  const linalg::MatrixF b = small_matrix(71);
  auto fa = server.submit(a);
  auto fb = server.submit(b);
  server.resume();

  const Response ra = fa.get();
  const Response rb = fb.get();
  ASSERT_EQ(ra.status, ServeStatus::kOk);
  ASSERT_EQ(rb.status, ServeStatus::kOk);
  EXPECT_EQ(ra.batch_size, 2u);
  EXPECT_TRUE(same_svd_bits(ra.result, svd(a)));
  EXPECT_TRUE(same_svd_bits(rb.result, svd(b)));
}

// ------------------------------------------------------ server: cache

TEST(QosServer, DuplicateMatrixIsServedFromCacheBitIdentically) {
  FakeClock clock;
  obs::ObsContext observer;
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.clock = &clock;
  options.observer = &observer;
  options.start_paused = true;
  options.qos.tenants = {tenant("default")};
  options.qos.cache_enabled = true;
  options.qos.cache_capacity = 8;
  SvdServer server(options);

  const linalg::MatrixF dup = small_matrix(55);
  auto first = server.submit(dup);
  auto second = server.submit(dup);
  auto other = server.submit(small_matrix(56));
  server.resume();

  const Response r1 = first.get();
  const Response r2 = second.get();
  const Response r3 = other.get();
  ASSERT_EQ(r1.status, ServeStatus::kOk);
  ASSERT_EQ(r2.status, ServeStatus::kOk);
  ASSERT_EQ(r3.status, ServeStatus::kOk);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.attempts, 0);  // never touched the fabric
  EXPECT_TRUE(same_svd_bits(r1.result, r2.result));
  EXPECT_FALSE(r3.cache_hit);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 2u);
  EXPECT_EQ(stats.tenants.at("default").cache_hits, 1u);
  const obs::MetricsSnapshot snap = observer.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.hit"), 1u);
  EXPECT_GE(snap.counters.at("serve.cache.miss"), 2u);
}

TEST(QosServer, QosPathWithCacheOffMatchesLegacyServerBitIdentically) {
  // The whole QoS layer disabled feature by feature (no cache, no
  // coalescing, preemption irrelevant on one band) must produce the
  // same bits as the legacy single-FIFO server.
  FakeClock clock_a;
  ServerOptions legacy;
  legacy.workers = 1;
  legacy.svd.config = small_config();
  legacy.clock = &clock_a;
  SvdServer legacy_server(legacy);

  FakeClock clock_b;
  ServerOptions qos = legacy;
  qos.clock = &clock_b;
  qos.qos.tenants = {tenant("default")};
  SvdServer qos_server(qos);

  for (std::uint64_t seed = 80; seed < 84; ++seed) {
    const linalg::MatrixF matrix = small_matrix(seed);
    Request plain;
    plain.matrix = matrix;
    const Response a = legacy_server.serve(std::move(plain));
    Request tagged;
    tagged.matrix = matrix;
    const Response b = qos_server.serve(std::move(tagged));
    ASSERT_EQ(a.status, ServeStatus::kOk);
    ASSERT_EQ(b.status, ServeStatus::kOk);
    EXPECT_TRUE(same_svd_bits(a.result, b.result));
  }
}

// ------------------------------------------------- server: preemption

TEST(QosServer, LatencyRequestPreemptsRunningBatchWork) {
  // Real clock: the batch-class victim must be genuinely in flight when
  // the latency request arrives. The victim is large enough that the
  // cancel lands at one of its many sweep barriers.
  ServerOptions options;
  options.workers = 1;
  options.svd.config = small_config();
  options.qos.tenants = {tenant("default")};
  SvdServer server(options);

  const linalg::MatrixF big = gaussian(96, 64, 7);
  Request victim;
  victim.matrix = big;
  victim.priority = Priority::kBatch;
  auto victim_future = server.submit(std::move(victim));

  // Wait until the victim is on the fabric.
  for (int spin = 0; spin < 100000 && server.stats().in_service == 0;
       ++spin) {
    std::this_thread::yield();
  }
  ASSERT_EQ(server.stats().in_service, 1u);

  Request urgent;
  urgent.matrix = small_matrix(8);
  urgent.priority = Priority::kLatency;
  const Response fast = server.serve(std::move(urgent));
  EXPECT_EQ(fast.status, ServeStatus::kOk);

  // The victim was re-queued at the barrier and its re-run completed
  // bit-identical to an undisturbed run.
  const Response slow = victim_future.get();
  ASSERT_EQ(slow.status, ServeStatus::kOk);
  EXPECT_GE(slow.preemptions, 1);
  SvdOptions solo;
  solo.config = small_config();
  EXPECT_TRUE(same_svd_bits(slow.result, svd(big, solo)));

  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.preemptions, 1u);
  EXPECT_GE(stats.preempt_requests, 1u);
  EXPECT_EQ(stats.tenants.at("default").preemptions, stats.preemptions);
}

// -------------------------------------------------------- planned_config

TEST(QosPlannedConfig, PinnedOptionsRoundTripWithShapeOverride) {
  SvdOptions options;
  options.config = small_config();
  const accel::HeteroSvdConfig cfg = planned_config(48, 32, 1, options);
  EXPECT_EQ(cfg.rows, 48u);
  EXPECT_EQ(cfg.cols, 32u);
  EXPECT_EQ(cfg.p_eng, small_config().p_eng);
  EXPECT_EQ(cfg.p_task, small_config().p_task);
  EXPECT_THROW(planned_config(0, 16, 1, options), InputError);
  EXPECT_THROW(planned_config(24, 16, 0, options), InputError);
}

}  // namespace
}  // namespace hsvd
