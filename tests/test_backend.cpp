// Unit tests for the backend subsystem (DESIGN.md section 14): the
// --backend spec grammar and SLO validation, the slo_class memo
// buckets, the registry's capability matrix, the cost estimates, and
// each host-executed backend's functional execution pinned to the
// double-precision reference SVD -- including the honesty labels
// (modeled vs measured time, energy attribution).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "backend/backends.hpp"
#include "backend/slo.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "dse/explorer.hpp"
#include "heterosvd.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd {
namespace {

using backend::Backend;
using backend::BackendSpec;
using backend::Estimate;
using backend::make_backends;
using backend::parse_backend_spec;
using backend::ShardedAieBackend;
using backend::Slo;
using backend::slo_class;
using backend::SloKind;

// ---- parse_backend_spec ---------------------------------------------------

TEST(BackendSpec, BareAutoRoutesWithDefaultLatencySlo) {
  const BackendSpec spec = parse_backend_spec("auto");
  EXPECT_TRUE(spec.backend.empty());
  // "auto" must still carry an Slo: an empty backend with no slo is the
  // classic un-routed path, and bare auto has to trigger routing.
  ASSERT_TRUE(spec.slo.has_value());
  EXPECT_EQ(spec.slo->kind, SloKind::kLatency);
  EXPECT_EQ(spec.slo->deadline_seconds, 0.0);
}

TEST(BackendSpec, AutoLatencyWithDeadline) {
  const BackendSpec spec = parse_backend_spec("auto:latency:0.005");
  EXPECT_TRUE(spec.backend.empty());
  ASSERT_TRUE(spec.slo.has_value());
  EXPECT_EQ(spec.slo->kind, SloKind::kLatency);
  EXPECT_DOUBLE_EQ(spec.slo->deadline_seconds, 0.005);
}

TEST(BackendSpec, AutoThroughputWithBatch) {
  const BackendSpec spec = parse_backend_spec("auto:throughput:64");
  ASSERT_TRUE(spec.slo.has_value());
  EXPECT_EQ(spec.slo->kind, SloKind::kThroughput);
  EXPECT_EQ(spec.slo->batch, 64);
}

TEST(BackendSpec, AutoEnergyWithBudget) {
  const BackendSpec spec = parse_backend_spec("auto:energy:0.25");
  ASSERT_TRUE(spec.slo.has_value());
  EXPECT_EQ(spec.slo->kind, SloKind::kEnergy);
  EXPECT_DOUBLE_EQ(spec.slo->energy_budget_joules, 0.25);
}

TEST(BackendSpec, AutoKindWithoutValueKeepsDefaults) {
  const BackendSpec spec = parse_backend_spec("auto:throughput");
  ASSERT_TRUE(spec.slo.has_value());
  EXPECT_EQ(spec.slo->kind, SloKind::kThroughput);
  EXPECT_EQ(spec.slo->batch, 16);  // the struct default batch
}

TEST(BackendSpec, ExplicitPinsCarryNoSlo) {
  for (const char* name :
       {"aie", "aie-sharded", "cpu", "fpga-bcv", "gpu-wcycle"}) {
    SCOPED_TRACE(name);
    const BackendSpec spec = parse_backend_spec(name);
    EXPECT_EQ(spec.backend, name);
    EXPECT_FALSE(spec.slo.has_value());
    EXPECT_TRUE(backend::is_known_backend(name));
  }
  EXPECT_FALSE(backend::is_known_backend("tpu"));
  EXPECT_FALSE(backend::is_known_backend("auto"));
}

TEST(BackendSpec, UnknownBackendThrows) {
  EXPECT_THROW(parse_backend_spec("tpu"), InputError);
  EXPECT_THROW(parse_backend_spec("AIE"), InputError);  // names are exact
}

TEST(BackendSpec, PinWithSloIsAContradiction) {
  // A pin bypasses scoring, so attaching an objective to it must be
  // rejected loudly rather than silently ignored.
  EXPECT_THROW(parse_backend_spec("cpu:latency:0.01"), InputError);
  EXPECT_THROW(parse_backend_spec("gpu-wcycle:throughput"), InputError);
}

TEST(BackendSpec, MalformedSpecsThrow) {
  EXPECT_THROW(parse_backend_spec(""), InputError);
  EXPECT_THROW(parse_backend_spec("auto:bogus"), InputError);
  EXPECT_THROW(parse_backend_spec("auto:latency:abc"), InputError);
  EXPECT_THROW(parse_backend_spec("auto:latency:-1"), InputError);
  EXPECT_THROW(parse_backend_spec("auto:throughput:0"), InputError);
  EXPECT_THROW(parse_backend_spec("auto:latency:0.005:extra"), InputError);
}

TEST(BackendSpec, SloValidateRejectsOutOfRangeFields) {
  Slo slo;
  slo.deadline_seconds = -1.0;
  EXPECT_THROW(slo.validate(), InputError);
  slo = Slo{};
  slo.batch = 0;
  EXPECT_THROW(slo.validate(), InputError);
  slo = Slo{};
  slo.energy_budget_joules = -0.5;
  EXPECT_THROW(slo.validate(), InputError);
  EXPECT_NO_THROW(Slo{}.validate());
}

// ---- slo_class ------------------------------------------------------------

TEST(BackendSloClass, KindsAndPowerOfTwoBatchBuckets) {
  EXPECT_EQ(slo_class(std::nullopt), "latency");
  EXPECT_EQ(slo_class(Slo{}), "latency");

  Slo energy;
  energy.kind = SloKind::kEnergy;
  energy.energy_budget_joules = 2.0;  // budgets never change the class
  EXPECT_EQ(slo_class(energy), "energy");

  // Deadlines are deliberately excluded: they flag feasibility, they do
  // not change which backend wins, so they must share the memo entry.
  Slo deadline;
  deadline.deadline_seconds = 0.001;
  EXPECT_EQ(slo_class(deadline), slo_class(Slo{}));

  const auto thr = [](int batch) {
    Slo s;
    s.kind = SloKind::kThroughput;
    s.batch = batch;
    return slo_class(s);
  };
  EXPECT_EQ(thr(1), "throughput/b0");
  EXPECT_EQ(thr(16), "throughput/b4");
  EXPECT_EQ(thr(31), "throughput/b4");  // same power-of-two bucket
  EXPECT_EQ(thr(32), "throughput/b5");
}

// ---- registry -------------------------------------------------------------

TEST(BackendRegistry, FiveBackendsWithTheDocumentedCapabilities) {
  const auto backends = make_backends(dse::DesignSpaceExplorer{});
  ASSERT_EQ(backends.size(), 5u);
  const std::vector<std::string> names = {"aie", "aie-sharded", "cpu",
                                          "fpga-bcv", "gpu-wcycle"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(backends[i]->name(), names[i]);
    EXPECT_TRUE(backends[i]->capabilities().functional);
  }
  const auto caps = [&](const char* name) {
    for (const auto& b : backends) {
      if (name == std::string(b->name())) return b->capabilities();
    }
    ADD_FAILURE() << "missing backend " << name;
    return backend::Capabilities{};
  };
  // The AIE paths are the simulator itself: measured (simulated) time,
  // bit-identical factors.
  EXPECT_FALSE(caps("aie").modeled_time);
  EXPECT_TRUE(caps("aie").bit_identical_to_aie);
  EXPECT_FALSE(caps("aie-sharded").modeled_time);
  EXPECT_TRUE(caps("aie-sharded").bit_identical_to_aie);
  // The host CPU measures wall time.
  EXPECT_FALSE(caps("cpu").modeled_time);
  EXPECT_FALSE(caps("cpu").bit_identical_to_aie);
  EXPECT_TRUE(caps("cpu").has_energy_model);
  // The published comparators report fitted models; Table II has no
  // power figure, Table III does (270 W).
  EXPECT_TRUE(caps("fpga-bcv").modeled_time);
  EXPECT_FALSE(caps("fpga-bcv").has_energy_model);
  EXPECT_TRUE(caps("gpu-wcycle").modeled_time);
  EXPECT_TRUE(caps("gpu-wcycle").has_energy_model);
}

// ---- estimates ------------------------------------------------------------

TEST(BackendEstimate, CpuFlopsModelIsSelfConsistent) {
  const auto backends = make_backends(dse::DesignSpaceExplorer{});
  const Backend& cpu = *backends[2];
  const Estimate e = cpu.estimate(128, 128, Slo{}, SvdOptions{});
  ASSERT_TRUE(e.feasible);
  EXPECT_GT(e.latency_seconds, 0.0);
  EXPECT_DOUBLE_EQ(e.throughput_tasks_per_s, 1.0 / e.latency_seconds);
  EXPECT_DOUBLE_EQ(e.energy_per_task_joules, 65.0 * e.latency_seconds);
  // The model grows superlinearly in n: routing only needs the ordering
  // right, but it must at least be monotone.
  EXPECT_GT(cpu.estimate(512, 512, Slo{}, SvdOptions{}).latency_seconds,
            e.latency_seconds);
}

TEST(BackendEstimate, FittedModelsFlagClampedShapes) {
  const auto backends = make_backends(dse::DesignSpaceExplorer{});
  const Backend& fpga = *backends[3];
  const Backend& gpu = *backends[4];
  // Inside the Table II/III anchor range (n = 128..1024): interpolated.
  EXPECT_FALSE(fpga.estimate(256, 256, Slo{}, SvdOptions{}).modeled_extrapolated);
  EXPECT_FALSE(gpu.estimate(256, 256, Slo{}, SvdOptions{}).modeled_extrapolated);
  // Outside: clamped to the nearest anchor and flagged, and the router's
  // trust ranking depends on that flag surviving into the estimate.
  EXPECT_TRUE(fpga.estimate(16, 16, Slo{}, SvdOptions{}).modeled_extrapolated);
  EXPECT_TRUE(
      gpu.estimate(4096, 4096, Slo{}, SvdOptions{}).modeled_extrapolated);
  // No published FPGA power figure: the energy estimate stays zero.
  EXPECT_EQ(fpga.estimate(256, 256, Slo{}, SvdOptions{}).energy_per_task_joules,
            0.0);
  EXPECT_GT(gpu.estimate(256, 256, Slo{}, SvdOptions{}).energy_per_task_joules,
            0.0);
}

TEST(BackendEstimate, AieInfeasibleBeyondTheDevice) {
  const auto backends = make_backends(dse::DesignSpaceExplorer{});
  const Estimate small = backends[0]->estimate(64, 64, Slo{}, SvdOptions{});
  ASSERT_TRUE(small.feasible);
  EXPECT_GT(small.latency_seconds, 0.0);
  const Estimate huge = backends[0]->estimate(4096, 4096, Slo{}, SvdOptions{});
  EXPECT_FALSE(huge.feasible);
  EXPECT_NE(huge.note.find("no feasible AIE placement"), std::string::npos);
}

TEST(BackendEstimate, ShardCountRoundsDownToAPowerOfTwo) {
  const auto count = [](int shards) {
    SvdOptions options;
    options.shards = shards;
    return ShardedAieBackend::shard_count(options);
  };
  EXPECT_EQ(count(0), 2);  // the smallest genuinely sharded engine
  EXPECT_EQ(count(1), 2);
  EXPECT_EQ(count(2), 2);
  EXPECT_EQ(count(3), 2);
  EXPECT_EQ(count(5), 4);
  EXPECT_EQ(count(8), 8);
}

// ---- execution vs the reference SVD ---------------------------------------

struct RefCase {
  linalg::MatrixF a;
  linalg::SvdResult ref;
};

RefCase gaussian_case(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  const linalg::MatrixD a = linalg::random_gaussian(rows, cols, rng);
  RefCase c;
  c.ref = linalg::reference_svd(a);
  c.a = a.cast<float>();
  return c;
}

// Tolerance contract (same bounds as tests/test_differential.cpp): the
// host-executed backends run a real one-sided Jacobi, so their factors
// are held to float accuracy against the double-precision reference --
// the fitted timing model never touches the numerics.
void expect_matches_reference(const RefCase& c, const Svd& r,
                              const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(r.status, SvdStatus::kOk);
  ASSERT_EQ(r.sigma.size(), c.a.cols());
  const double scale = std::max(c.ref.sigma.front(), 1e-12);
  for (std::size_t i = 0; i < r.sigma.size(); ++i) {
    EXPECT_NEAR(r.sigma[i], c.ref.sigma[i], 5e-5 * scale) << "sigma[" << i
                                                          << "]";
  }
  EXPECT_LT(linalg::orthogonality_error(r.u.cast<double>()), 1e-3);
  EXPECT_LT(linalg::orthogonality_error(r.v.cast<double>()), 1e-3);
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::reconstruction_error(c.a.cast<double>(), r.u.cast<double>(),
                                         sigma, r.v.cast<double>()),
            1e-4);
}

const Backend& registry_backend(const char* name) {
  static const auto backends = make_backends(dse::DesignSpaceExplorer{});
  for (const auto& b : backends) {
    if (name == std::string(b->name())) return *b;
  }
  throw std::logic_error("unknown backend in test");
}

TEST(BackendExecute, CpuMatchesReferenceAndMeasuresWallTime) {
  const RefCase c = gaussian_case(24, 16, 1001);
  const Svd r = registry_backend("cpu").execute(c.a, SvdOptions{});
  expect_matches_reference(c, r, "cpu 24x16");
  EXPECT_EQ(r.backend, "cpu");
  EXPECT_FALSE(r.modeled_time);
  EXPECT_EQ(r.modeled_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  // Energy is attributed from measured wall time at the package power.
  EXPECT_DOUBLE_EQ(r.energy_joules, 65.0 * r.wall_seconds);
}

TEST(BackendExecute, CpuOddColumnCountPadsExactly) {
  // 13 columns force the Hestenes engine's even-n zero-column pad; the
  // padded factors must truncate away without a trace.
  const RefCase c = gaussian_case(21, 13, 1002);
  const Svd r = registry_backend("cpu").execute(c.a, SvdOptions{});
  ASSERT_EQ(r.u.rows(), 21u);
  ASSERT_EQ(r.u.cols(), 13u);
  ASSERT_EQ(r.v.rows(), 13u);
  ASSERT_EQ(r.v.cols(), 13u);
  expect_matches_reference(c, r, "cpu 21x13 (padded)");
}

TEST(BackendExecute, CpuSquareOddGainsZeroRowToo) {
  // A square odd input needs a zero row as well (rows >= padded cols).
  const RefCase c = gaussian_case(13, 13, 1003);
  const Svd r = registry_backend("cpu").execute(c.a, SvdOptions{});
  expect_matches_reference(c, r, "cpu 13x13 (row+col padded)");
}

TEST(BackendExecute, SingleColumnClosedForm) {
  Rng rng(1004);
  const linalg::MatrixD a = linalg::random_gaussian(9, 1, rng);
  const linalg::MatrixF af = a.cast<float>();
  double ss = 0.0;
  for (std::size_t r = 0; r < 9; ++r) ss += a(r, 0) * a(r, 0);
  const Svd r = registry_backend("cpu").execute(af, SvdOptions{});
  ASSERT_EQ(r.status, SvdStatus::kOk);
  ASSERT_EQ(r.sigma.size(), 1u);
  EXPECT_NEAR(r.sigma[0], std::sqrt(ss), 1e-5 * std::sqrt(ss));
  ASSERT_EQ(r.v.rows(), 1u);
  EXPECT_FLOAT_EQ(r.v(0, 0), 1.0f);
  double unorm = 0.0;
  for (std::size_t i = 0; i < 9; ++i)
    unorm += static_cast<double>(r.u(i, 0)) * r.u(i, 0);
  EXPECT_NEAR(unorm, 1.0, 1e-5);
}

TEST(BackendExecute, FpgaBcvMatchesReferenceWithModeledTime) {
  const RefCase c = gaussian_case(32, 24, 1005);
  const Svd r = registry_backend("fpga-bcv").execute(c.a, SvdOptions{});
  expect_matches_reference(c, r, "fpga-bcv 32x24");
  EXPECT_EQ(r.backend, "fpga-bcv");
  // Honesty labels: the factors above are real (host BCV Jacobi), but
  // the reported time is the Table II fitted model -- and the host wall
  // time is carried separately, never substituted.
  EXPECT_TRUE(r.modeled_time);
  EXPECT_GT(r.modeled_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  // n = 24 is below the 128..1024 anchor range: clamped and flagged.
  EXPECT_TRUE(r.modeled_extrapolated);
  // No published power figure, so no energy claim.
  EXPECT_EQ(r.energy_joules, 0.0);
}

TEST(BackendExecute, GpuWcycleMatchesReferenceWithModeledEnergy) {
  const RefCase c = gaussian_case(32, 24, 1006);
  const Svd r = registry_backend("gpu-wcycle").execute(c.a, SvdOptions{});
  expect_matches_reference(c, r, "gpu-wcycle 32x24");
  EXPECT_EQ(r.backend, "gpu-wcycle");
  EXPECT_TRUE(r.modeled_time);
  EXPECT_GT(r.modeled_seconds, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  // Energy is the 270 W board power over the modeled latency.
  EXPECT_DOUBLE_EQ(r.energy_joules, 270.0 * r.modeled_seconds);
}

// ---- facade validation ----------------------------------------------------

TEST(BackendFacade, UnknownBackendNameRejected) {
  const RefCase c = gaussian_case(16, 8, 1007);
  SvdOptions options;
  options.backend = "tpu";
  EXPECT_THROW(svd(c.a, options), InputError);
}

TEST(BackendFacade, PinPlusSloRejected) {
  const RefCase c = gaussian_case(16, 8, 1008);
  SvdOptions options;
  options.backend = "cpu";
  options.slo = Slo{};
  EXPECT_THROW(svd(c.a, options), InputError);
}

TEST(BackendFacade, MalformedSloRejected) {
  const RefCase c = gaussian_case(16, 8, 1009);
  SvdOptions options;
  options.slo = Slo{};
  options.slo->batch = 0;
  EXPECT_THROW(svd(c.a, options), InputError);
  options.slo = Slo{};
  options.slo->deadline_seconds = -2.0;
  EXPECT_THROW(svd(c.a, options), InputError);
}

}  // namespace
}  // namespace hsvd
