// Tests for Householder QR and the SVD utility helpers.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/qr.hpp"
#include "linalg/reference_svd.hpp"
#include "linalg/svd_utils.hpp"

namespace hsvd::linalg {
namespace {

TEST(Qr, ReconstructsInput) {
  Rng rng(31);
  MatrixD a = random_gaussian(10, 6, rng);
  auto qr = householder_qr(a);
  MatrixD rec = matmul(qr.q, qr.r);
  double err = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = rec.data()[i] - a.data()[i];
    err += d * d;
  }
  EXPECT_LT(std::sqrt(err), 1e-10);
}

TEST(Qr, QHasOrthonormalColumns) {
  Rng rng(32);
  MatrixD a = random_gaussian(12, 12, rng);
  auto qr = householder_qr(a);
  EXPECT_LT(orthogonality_error(qr.q), 1e-11);
}

TEST(Qr, RIsUpperTriangularWithNonnegativeDiagonal) {
  Rng rng(33);
  MatrixD a = random_gaussian(8, 5, rng);
  auto qr = householder_qr(a);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_GE(qr.r(j, j), 0.0);
    for (std::size_t i = j + 1; i < 5; ++i) EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
  }
}

TEST(Qr, HandlesRankDeficiency) {
  // Two identical columns: still a valid factorization.
  MatrixD a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = static_cast<double>(i + 1);
  }
  auto qr = householder_qr(a);
  MatrixD rec = matmul(qr.q, qr.r);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(rec(i, 1), a(i, 1), 1e-12);
  EXPECT_NEAR(qr.r(1, 1), 0.0, 1e-12);
}

TEST(Qr, RejectsWideInput) {
  EXPECT_THROW(householder_qr(MatrixD(2, 4)), std::invalid_argument);
}

TEST(SvdUtils, LowRankApproxReconstruction) {
  // Test the reconstruction identity algebraically with sparse factors.
  MatrixF u(5, 2), v(4, 2);
  u(0, 0) = 1;
  u(1, 1) = 1;
  v(2, 0) = 1;
  v(3, 1) = 1;
  std::vector<float> sigma = {2.0f, 0.5f};
  MatrixF rec = low_rank_approx(u, sigma, v, 2);
  EXPECT_FLOAT_EQ(rec(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(rec(1, 3), 0.5f);
  EXPECT_FLOAT_EQ(rec(0, 3), 0.0f);
  // Rank clamping.
  MatrixF rec1 = low_rank_approx(u, sigma, v, 1);
  EXPECT_FLOAT_EQ(rec1(1, 3), 0.0f);
  MatrixF rec9 = low_rank_approx(u, sigma, v, 9);
  EXPECT_FLOAT_EQ(rec9(1, 3), 0.5f);
}

TEST(SvdUtils, CapturedEnergyAndRankForEnergy) {
  const std::vector<float> sigma = {3.0f, 2.0f, 1.0f};  // energies 9, 4, 1
  EXPECT_NEAR(captured_energy(sigma, 1), 9.0 / 14.0, 1e-12);
  EXPECT_NEAR(captured_energy(sigma, 2), 13.0 / 14.0, 1e-12);
  EXPECT_NEAR(captured_energy(sigma, 3), 1.0, 1e-12);
  EXPECT_NEAR(captured_energy(sigma, 99), 1.0, 1e-12);
  EXPECT_EQ(rank_for_energy(sigma, 0.5), 1u);
  EXPECT_EQ(rank_for_energy(sigma, 0.9), 2u);
  EXPECT_EQ(rank_for_energy(sigma, 1.0), 3u);
  EXPECT_THROW(rank_for_energy(sigma, 0.0), std::invalid_argument);
}

TEST(SvdUtils, PsnrBehaviour) {
  MatrixF ref(4, 4);
  for (std::size_t i = 0; i < ref.data().size(); ++i)
    ref.data()[i] = static_cast<float>(i) / 15.0f;  // range [0, 1]
  EXPECT_DOUBLE_EQ(psnr_db(ref, ref), 99.0);  // exact match cap
  MatrixF noisy = ref;
  noisy(0, 0) += 0.1f;
  const double p1 = psnr_db(ref, noisy);
  noisy(1, 1) += 0.3f;
  const double p2 = psnr_db(ref, noisy);
  EXPECT_GT(p1, p2);  // more error, lower PSNR
  EXPECT_GT(p1, 20.0);
  EXPECT_THROW(psnr_db(ref, MatrixF(2, 2)), std::invalid_argument);
}

TEST(SvdUtils, PsnrImprovesWithRank) {
  Rng rng(35);
  MatrixD ad = matrix_with_spectrum(16, 16, geometric_spectrum(16, 1e3), rng);
  MatrixF a = ad.cast<float>();
  auto ref = reference_svd(ad);
  MatrixF u = ref.u.cast<float>();
  MatrixF v = ref.v.cast<float>();
  std::vector<float> sigma(ref.sigma.begin(), ref.sigma.end());
  const double p4 = psnr_db(a, low_rank_approx(u, sigma, v, 4));
  const double p12 = psnr_db(a, low_rank_approx(u, sigma, v, 12));
  EXPECT_GT(p12, p4);
}

}  // namespace
}  // namespace hsvd::linalg
