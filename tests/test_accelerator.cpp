// End-to-end tests for the HeteroSVD accelerator: functional correctness
// through the simulated fabric, batching, padding, convergence mode, and
// timing sanity.
#include <gtest/gtest.h>

#include "accel/accelerator.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/ops.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::accel {
namespace {

using hsvd::Rng;
using hsvd::linalg::MatrixD;
using hsvd::linalg::MatrixF;

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return hsvd::linalg::random_gaussian(rows, cols, rng).cast<float>();
}

// V implied by A ~ U S V^T: V = A^T U S^{-1}. If the accelerator's U and
// sigma are a correct SVD of A, the implied V is orthonormal and the
// reconstruction through it is exact.
MatrixD implied_v(const MatrixD& a, const MatrixD& u,
                  const std::vector<double>& sigma) {
  MatrixD v(a.cols(), sigma.size());
  for (std::size_t t = 0; t < sigma.size(); ++t) {
    if (sigma[t] < 1e-9) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double s = 0;
      for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, j) * u(i, t);
      v(j, t) = s / sigma[t];
    }
  }
  return v;
}

TEST(Accelerator, MatchesReferenceSvd) {
  HeteroSvdConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 10;
  HeteroSvdAccelerator acc(cfg);
  MatrixF a = random_matrix(24, 16, 1001);
  auto run = acc.run({a});
  ASSERT_EQ(run.tasks.size(), 1u);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(run.tasks[0].sigma.begin(), run.tasks[0].sigma.end());
  EXPECT_LT(hsvd::linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
  MatrixD u = run.tasks[0].u.cast<double>();
  EXPECT_LT(hsvd::linalg::orthogonality_error(u), 1e-4);
  MatrixD v = implied_v(a.cast<double>(), u, sigma);
  EXPECT_LT(hsvd::linalg::orthogonality_error(v), 1e-3);
}

TEST(Accelerator, BatchLargerThanTaskParallelism) {
  HeteroSvdConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 2;
  cfg.iterations = 8;
  HeteroSvdAccelerator acc(cfg);
  std::vector<MatrixF> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(random_matrix(16, 8, 2000 + i));
  auto run = acc.run(batch);
  ASSERT_EQ(run.tasks.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    auto ref = hsvd::linalg::reference_svd(batch[i].cast<double>());
    std::vector<double> sigma(run.tasks[i].sigma.begin(),
                              run.tasks[i].sigma.end());
    EXPECT_LT(hsvd::linalg::spectrum_distance(sigma, ref.sigma), 1e-4)
        << "task " << i;
  }
  // 5 tasks on 2 slots: three waves, so makespan ~ 3x one task latency.
  EXPECT_GT(run.batch_seconds, 2.0 * run.task_seconds);
  EXPECT_LT(run.batch_seconds, 4.0 * run.task_seconds);
  EXPECT_NEAR(run.throughput_tasks_per_s, 5.0 / run.batch_seconds, 1e-9);
}

TEST(Accelerator, PaddingHandlesIndivisibleColumns) {
  HeteroSvdConfig cfg;
  cfg.rows = 20;
  cfg.cols = 14;  // pads to 15? no: p_eng 3 -> 15, blocks 5
  cfg.p_eng = 3;
  cfg.p_task = 1;
  cfg.iterations = 10;
  HeteroSvdAccelerator acc(cfg);
  MatrixF a = random_matrix(20, 14, 3000);
  auto run = acc.run({a});
  ASSERT_EQ(run.tasks[0].sigma.size(), 14u);
  auto ref = hsvd::linalg::reference_svd(a.cast<double>());
  std::vector<double> sigma(run.tasks[0].sigma.begin(), run.tasks[0].sigma.end());
  EXPECT_LT(hsvd::linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
}

TEST(Accelerator, PrecisionModeStopsEarly) {
  HeteroSvdConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 1;
  cfg.precision = 1e-6;
  HeteroSvdAccelerator acc(cfg);
  MatrixF a = random_matrix(16, 8, 4000);
  auto run = acc.run({a});
  EXPECT_LT(run.tasks[0].convergence_rate, 1e-6);
  EXPECT_GE(run.tasks[0].iterations, 3);
  EXPECT_LT(run.tasks[0].iterations, 30);
}

TEST(Accelerator, EstimateMatchesFunctionalTiming) {
  // Timing is data-independent at fixed iterations: the timed-only path
  // must agree with the functional path exactly.
  HeteroSvdConfig cfg;
  cfg.rows = 32;
  cfg.cols = 16;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 6;
  HeteroSvdAccelerator functional(cfg);
  HeteroSvdAccelerator timed(cfg);
  MatrixF a = random_matrix(32, 16, 5000);
  auto run_f = functional.run({a});
  auto run_t = timed.estimate(1);
  EXPECT_NEAR(run_f.task_seconds, run_t.task_seconds,
              1e-12 * run_f.task_seconds);
}

TEST(Accelerator, MoreEnginesReduceLatency) {
  auto latency_for = [](int p_eng) {
    HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = 128;
    cfg.p_eng = p_eng;
    cfg.p_task = 1;
    cfg.iterations = 6;
    HeteroSvdAccelerator acc(cfg);
    return acc.estimate(1).task_seconds;
  };
  const double l2 = latency_for(2);
  const double l4 = latency_for(4);
  const double l8 = latency_for(8);
  EXPECT_GT(l2, l4);
  EXPECT_GT(l4, l8);
}

TEST(Accelerator, MoreTasksIncreaseThroughput) {
  auto throughput_for = [](int p_task) {
    HeteroSvdConfig cfg;
    cfg.rows = cfg.cols = 64;
    cfg.p_eng = 2;
    cfg.p_task = p_task;
    cfg.iterations = 6;
    HeteroSvdAccelerator acc(cfg);
    return acc.estimate(8).throughput_tasks_per_s;
  };
  EXPECT_GT(throughput_for(4), 1.8 * throughput_for(1));
}

TEST(Accelerator, DmaStatsReflectShiftingRing) {
  // P_eng = 2 single band: per block-pair sweep, 2(k-1) = 2 DMA moves.
  HeteroSvdConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  cfg.iterations = 1;
  HeteroSvdAccelerator acc(cfg);
  auto run = acc.estimate(1);
  const int block_pairs = cfg.block_pairs();  // p = 4 -> 6 pairs
  EXPECT_EQ(run.stats.dma_transfers,
            static_cast<std::uint64_t>(block_pairs) * 2u);
}

TEST(Accelerator, RejectsWrongShapes) {
  HeteroSvdConfig cfg;
  cfg.rows = 16;
  cfg.cols = 8;
  cfg.p_eng = 2;
  cfg.p_task = 1;
  HeteroSvdAccelerator acc(cfg);
  EXPECT_THROW(acc.run({MatrixF(8, 8)}), std::invalid_argument);
  EXPECT_THROW(acc.estimate(0), std::invalid_argument);
}

TEST(Accelerator, UtilizationAndResourcesReported) {
  HeteroSvdConfig cfg;
  cfg.rows = cfg.cols = 64;
  cfg.p_eng = 4;
  cfg.p_task = 1;
  cfg.iterations = 6;
  HeteroSvdAccelerator acc(cfg);
  auto run = acc.estimate(4);
  EXPECT_GT(run.core_utilization, 0.0);
  EXPECT_LE(run.core_utilization, 1.0);
  EXPECT_GT(run.memory_utilization, 0.0);
  EXPECT_EQ(run.resources.aie_orth, 28);
  EXPECT_EQ(run.resources.plio, 6);
}

}  // namespace
}  // namespace hsvd::accel
