// Generated case matrix for scenario differential sweeps.
//
// The scenario layer (tall-skinny QR pre-reduction, truncated sketch,
// streaming updates) has failure modes that only show up at specific
// corners of the input space: extreme aspect ratios, near-singular
// spectra, sharp decay cliffs the sketch must capture, exact rank
// deficiency. Hand-picked matrices cover a handful of those corners;
// this header instead *generates* the whole cross product of
//
//   {aspect ratio m/n} x {condition number} x {decay profile}
//                     x {rank deficiency},
//
// each case a CaseSpec with a deterministic per-spec seed, so every
// consumer (the differential harness, the property tests, the soak
// driver, bench_scenarios) draws the same matrix for the same spec and
// failures reproduce from the printed name alone.
//
// Construction is direct: A = U0 * diag(spectrum) * V0^T from
// orthonormal factors, so the *realized* spectrum equals the requested
// one to double roundoff -- the property tests pin that with
// reference_svd. U0 is built as the Q of a Gaussian rows x cols QR
// (O(rows * cols^2)), never as a full rows x rows orthogonal matrix,
// which keeps ratio-256 cases affordable.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/matrix.hpp"
#include "linalg/ops.hpp"
#include "linalg/qr.hpp"

namespace hsvd::testing {

// Singular-value decay profiles.
enum class Decay {
  kGeometric,  // sigma_i = condition^(-i/(n-1)): smooth exponential
  kHarmonic,   // sigma_i = (1 + i*(c-1)/(n-1))^-1: slow polynomial
  kStep,       // first half 1, second half 1/condition: a sharp cliff
};

inline const char* to_string(Decay decay) {
  switch (decay) {
    case Decay::kGeometric: return "geo";
    case Decay::kHarmonic: return "harm";
    case Decay::kStep: return "step";
  }
  return "?";
}

struct CaseSpec {
  std::size_t cols = 16;
  std::size_t ratio = 1;      // rows = cols * ratio
  double condition = 100.0;   // sigma_max / sigma_min of the nonzero part
  Decay decay = Decay::kGeometric;
  std::size_t deficiency = 0; // trailing exactly-zero singular values
  std::uint64_t seed = 0;     // base seed; the draw mixes in every field

  std::size_t rows() const { return cols * ratio; }
  // Reproduction handle, unique per grid point: "n16r4_k1e+02_geo_d0".
  std::string name() const {
    char kappa[16];
    std::snprintf(kappa, sizeof(kappa), "%.0e", condition);
    return cat("n", cols, "r", ratio, "_k", kappa, "_", to_string(decay), "_d",
               deficiency);
  }
  // Deterministic seed for this spec: splitmix64 over every field, so
  // two specs differing in any axis draw independent matrices and the
  // same spec is bit-identical across consumers.
  std::uint64_t mixed_seed() const;
};

namespace detail {
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace detail

inline std::uint64_t CaseSpec::mixed_seed() const {
  std::uint64_t h = detail::splitmix64(seed);
  h = detail::splitmix64(h ^ static_cast<std::uint64_t>(cols));
  h = detail::splitmix64(h ^ static_cast<std::uint64_t>(ratio));
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(condition));
  std::memcpy(&bits, &condition, sizeof(bits));
  h = detail::splitmix64(h ^ bits);
  h = detail::splitmix64(h ^ static_cast<std::uint64_t>(decay));
  h = detail::splitmix64(h ^ static_cast<std::uint64_t>(deficiency));
  return h;
}

// The spectrum a spec asks for: length cols, leading value 1, nonzero
// part spanning [1, 1/condition], trailing `deficiency` values exactly
// zero.
inline std::vector<double> case_spectrum(const CaseSpec& spec) {
  HSVD_REQUIRE(spec.cols >= 2, "case_spectrum needs at least two columns");
  HSVD_REQUIRE(spec.deficiency < spec.cols,
               "deficiency must leave at least one nonzero singular value");
  HSVD_REQUIRE(std::isfinite(spec.condition) && spec.condition >= 1.0,
               "condition must be finite and >= 1");
  const std::size_t live = spec.cols - spec.deficiency;
  std::vector<double> sigma(spec.cols, 0.0);
  for (std::size_t i = 0; i < live; ++i) {
    const double t =
        live > 1 ? static_cast<double>(i) / static_cast<double>(live - 1) : 0.0;
    switch (spec.decay) {
      case Decay::kGeometric:
        sigma[i] = std::pow(spec.condition, -t);
        break;
      case Decay::kHarmonic:
        sigma[i] = 1.0 / (1.0 + t * (spec.condition - 1.0));
        break;
      case Decay::kStep:
        sigma[i] = 2 * i < live ? 1.0 : 1.0 / spec.condition;
        break;
    }
  }
  return sigma;
}

// The matrix a spec names, in double (cast to float at the call site).
// A = U0 * diag(sigma) * V0^T with U0 the Q of a Gaussian rows x cols
// QR and V0 the Q of a Gaussian cols x cols QR, both drawn from the
// spec's mixed seed.
inline linalg::MatrixD generate_case(const CaseSpec& spec) {
  HSVD_REQUIRE(spec.ratio >= 1, "ratio must be at least 1");
  const std::vector<double> sigma = case_spectrum(spec);
  const std::size_t rows = spec.rows();
  const std::size_t cols = spec.cols;
  Rng rng(spec.mixed_seed());
  linalg::MatrixD u0 =
      linalg::householder_qr(linalg::random_gaussian(rows, cols, rng)).q;
  const linalg::MatrixD v0 =
      linalg::householder_qr(linalg::random_gaussian(cols, cols, rng)).q;
  for (std::size_t c = 0; c < cols; ++c) {
    auto col = u0.col(c);
    for (std::size_t r = 0; r < rows; ++r) col[r] *= sigma[c];
  }
  return linalg::matmul(u0, linalg::transpose(v0));
}

// Axes of the sweep; case_matrix() emits the full cross product. The
// defaults are a small, fast grid (36 cases of modest size) -- callers
// with a bigger budget (soak, LONG tests) widen the axes explicitly.
struct CaseAxes {
  std::vector<std::size_t> cols = {16, 24};
  std::vector<std::size_t> ratios = {1, 4};
  std::vector<double> conditions = {1e2, 1e6};
  std::vector<Decay> decays = {Decay::kGeometric, Decay::kHarmonic,
                               Decay::kStep};
  // Deficiency as trailing zero count; entries >= cols are clamped to
  // cols - 1 so small-cols grids keep a nonzero spectrum.
  std::vector<std::size_t> deficiencies = {0};
};

inline std::vector<CaseSpec> case_matrix(const CaseAxes& axes,
                                         std::uint64_t base_seed) {
  std::vector<CaseSpec> specs;
  specs.reserve(axes.cols.size() * axes.ratios.size() *
                axes.conditions.size() * axes.decays.size() *
                axes.deficiencies.size());
  for (std::size_t cols : axes.cols) {
    for (std::size_t ratio : axes.ratios) {
      for (double condition : axes.conditions) {
        for (Decay decay : axes.decays) {
          for (std::size_t deficiency : axes.deficiencies) {
            CaseSpec spec;
            spec.cols = cols;
            spec.ratio = ratio;
            spec.condition = condition;
            spec.decay = decay;
            spec.deficiency = std::min(deficiency, cols - 1);
            spec.seed = base_seed;
            specs.push_back(spec);
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace hsvd::testing
