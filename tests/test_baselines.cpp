// Tests for the baseline models: BCV Jacobi (FPGA [6] algorithm), the
// FPGA latency/resource model, and the GPU W-cycle model.
#include <gtest/gtest.h>

#include <set>

#include "baselines/bcv.hpp"
#include "baselines/fpga_model.hpp"
#include "baselines/gpu_model.hpp"
#include "common/rng.hpp"
#include "linalg/generators.hpp"
#include "linalg/metrics.hpp"
#include "linalg/reference_svd.hpp"

namespace hsvd::baselines {
namespace {

TEST(Bcv, RoundsAlternateOddEven) {
  auto rounds = bcv_rounds(6);
  ASSERT_EQ(rounds.size(), 6u);
  EXPECT_EQ(rounds[0].size(), 3u);  // (0,1) (2,3) (4,5)
  EXPECT_EQ(rounds[1].size(), 2u);  // (1,2) (3,4)
  EXPECT_EQ(rounds[0][0], (std::pair{0, 1}));
  EXPECT_EQ(rounds[1][0], (std::pair{1, 2}));
}

TEST(Bcv, SweepCoversAllPairsViaTranspositions) {
  // With unconditional swaps, n rounds of odd-even transposition bring
  // every pair of columns together exactly once (brick-wall network).
  const int n = 8;
  auto rounds = bcv_rounds(n);
  std::vector<int> pos(n);
  for (int i = 0; i < n; ++i) pos[static_cast<std::size_t>(i)] = i;
  std::set<std::pair<int, int>> met;
  for (const auto& round : rounds) {
    for (const auto& [i, j] : round) {
      auto key = std::minmax(pos[static_cast<std::size_t>(i)],
                             pos[static_cast<std::size_t>(j)]);
      EXPECT_TRUE(met.insert({key.first, key.second}).second);
      std::swap(pos[static_cast<std::size_t>(i)], pos[static_cast<std::size_t>(j)]);
    }
  }
  EXPECT_EQ(met.size(), static_cast<std::size_t>(n * (n - 1) / 2));
}

TEST(Bcv, ConvergesToReferenceSvd) {
  Rng rng(77);
  auto ad = linalg::random_gaussian(20, 12, rng);
  auto r = bcv_svd(ad.cast<float>());
  auto ref = linalg::reference_svd(ad);
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
  EXPECT_LT(linalg::orthogonality_error(r.u.cast<double>()), 1e-4);
  EXPECT_TRUE(r.converged);
}

TEST(Bcv, OddColumnCountSupported) {
  Rng rng(78);
  auto ad = linalg::random_gaussian(15, 9, rng);
  auto r = bcv_svd(ad.cast<float>());
  auto ref = linalg::reference_svd(ad);
  std::vector<double> sigma(r.sigma.begin(), r.sigma.end());
  EXPECT_LT(linalg::spectrum_distance(sigma, ref.sigma), 1e-4);
}

TEST(Bcv, FixedSweepsHonored) {
  Rng rng(79);
  auto a = linalg::random_gaussian(12, 6, rng).cast<float>();
  BcvOptions opts;
  opts.fixed_sweeps = 6;
  EXPECT_EQ(bcv_svd(a, opts).sweeps, 6);
}

TEST(FpgaModel, ExactAtTableIIAnchors) {
  FpgaBcvModel fpga;
  EXPECT_NEAR(fpga.latency_seconds(128), 0.0014, 1e-6);
  EXPECT_NEAR(fpga.latency_seconds(256), 0.0113, 1e-6);
  EXPECT_NEAR(fpga.latency_seconds(512), 0.0829, 1e-6);
  EXPECT_NEAR(fpga.latency_seconds(1024), 0.6119, 1e-6);
}

TEST(FpgaModel, MonotoneBetweenAndClampedBeyondAnchors) {
  FpgaBcvModel fpga;
  EXPECT_GT(fpga.latency_seconds(384), fpga.latency_seconds(256));
  EXPECT_LT(fpga.latency_seconds(384), fpga.latency_seconds(512));
  // Outside the Table II anchor range the model clamps to the outermost
  // anchor instead of trusting the fitted slope, and flags the value.
  EXPECT_DOUBLE_EQ(fpga.latency_seconds(2048), fpga.latency_seconds(1024));
  EXPECT_DOUBLE_EQ(fpga.latency_seconds(64), fpga.latency_seconds(128));
  EXPECT_FALSE(fpga.latency_modeled(384).extrapolated);
  EXPECT_FALSE(fpga.latency_modeled(128).extrapolated);
  EXPECT_FALSE(fpga.latency_modeled(1024).extrapolated);
  EXPECT_TRUE(fpga.latency_modeled(2048).extrapolated);
  EXPECT_TRUE(fpga.latency_modeled(64).extrapolated);
}

TEST(GpuModel, ClampedAndFlaggedBeyondAnchors) {
  GpuWcycleModel gpu;
  EXPECT_DOUBLE_EQ(gpu.latency_seconds(64), gpu.latency_seconds(128));
  EXPECT_DOUBLE_EQ(gpu.throughput_tasks_per_s(2048),
                   gpu.throughput_tasks_per_s(1024));
  EXPECT_TRUE(gpu.latency_modeled(64).extrapolated);
  EXPECT_TRUE(gpu.throughput_modeled(2048).extrapolated);
  EXPECT_FALSE(gpu.throughput_modeled(512).extrapolated);
}

TEST(FpgaModel, IterationScalingIsLinear) {
  FpgaBcvModel fpga;
  EXPECT_NEAR(fpga.latency_seconds(256, 12), 2 * fpga.latency_seconds(256, 6),
              1e-9);
}

TEST(FpgaModel, ResourcesMatchTableII) {
  FpgaBcvModel fpga;
  auto r = fpga.resources();
  EXPECT_NEAR(r.lut, 212000, 1);
  EXPECT_EQ(r.dsp, 1602);
  EXPECT_NEAR(r.bram_pct, 0.314, 1e-9);
}

TEST(GpuModel, ExactAtTableIIIAnchors) {
  GpuWcycleModel gpu;
  EXPECT_NEAR(gpu.latency_seconds(128), 0.0166, 1e-5);
  EXPECT_NEAR(gpu.latency_seconds(1024), 0.6857, 1e-4);
  EXPECT_NEAR(gpu.throughput_tasks_per_s(256), 217.39, 0.01);
  EXPECT_NEAR(gpu.energy_efficiency(128), 5.005, 0.01);
  EXPECT_NEAR(gpu.energy_efficiency(1024), 0.013, 0.001);
}

TEST(GpuModel, UtilizationGrowsWithSize) {
  GpuWcycleModel gpu;
  EXPECT_LT(gpu.core_utilization(128), gpu.core_utilization(1024));
  EXPECT_LT(gpu.memory_utilization(128), gpu.memory_utilization(1024));
  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    EXPECT_GT(gpu.core_utilization(n), 0.0);
    EXPECT_LE(gpu.core_utilization(n), 0.95);
    EXPECT_LE(gpu.memory_utilization(n), 0.92);
  }
}

TEST(GpuModel, LatencyTimesThroughputShowsBatchingGain) {
  // Batched throughput far exceeds 1/latency at small sizes -- the GPU
  // needs batching to fill its cores (the paper's motivation).
  GpuWcycleModel gpu;
  EXPECT_GT(gpu.throughput_tasks_per_s(128) * gpu.latency_seconds(128), 5.0);
}

}  // namespace
}  // namespace hsvd::baselines
